#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and lint-clean clippy.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
echo "verify: OK"
