#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, lint-clean clippy,
# canonical formatting, and a trace-disabled test pass (the observability
# layer must compile out without breaking anything).
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
cargo fmt --all -- --check
# Soundness audit: call-graph lints (transitive arena, lock discipline,
# panic freedom, config staleness) plus the per-file SAFETY/containment/
# trace-naming passes (see crates/audit).
cargo run -q -p gcnn-audit
# Gate coverage: every benchmark suite that lands in results/ must have
# a bench_compare gate flag wired in CI — a suite without a gate can
# regress silently while still looking "benchmarked".
for f in results/BENCH_*.json; do
  name="$(basename "$f" .json)"
  name="${name#BENCH_}"
  case "$name" in
    hotpaths) flag="--baseline" ;;
    *) flag="--$name" ;;
  esac
  if ! grep -q -- "$flag " .github/workflows/ci.yml; then
    echo "verify: $f has no bench_compare gate ($flag) wired in .github/workflows/ci.yml" >&2
    exit 1
  fi
done
# Explicit -p list: plain --no-default-features would also strip the
# vendored crates' defaults.
cargo test -q --no-default-features \
  -p gcnn-trace -p gcnn-tensor -p gcnn-gemm -p gcnn-fft \
  -p gcnn-conv -p gcnn-autotune -p gcnn-models -p gcnn-core \
  -p gcnn-bench -p gcnn-serve -p gcnn-mtsim
# Autotune smoke: cold measure → persist → warm reload must reproduce
# every winner from the cache without re-measuring.
GCNN_TUNE_WARMUP=1 GCNN_TUNE_REPS=3 \
  cargo run -q --release -p gcnn-bench --bin autotune_report -- --smoke
# Serving smoke: loopback server under concurrent load must answer
# every request correctly and demonstrably coalesce multi-request
# batches (non-zero exit otherwise).
GCNN_SERVE_MS=150 \
  cargo run -q --release -p gcnn-bench --bin serve_bench -- --smoke
# Multi-tenant simulator smoke: 2-tenant cells must conserve jobs,
# model contention (FIFO slowdown >= 1.8x), show partitioning beating
# round-robin on the occupancy-limited workload, and reproduce maxDNN's
# GM204 occupancy within 5% (non-zero exit otherwise).
cargo run -q --release -p gcnn-bench --bin mtsim_report -- --smoke
echo "verify: OK"
