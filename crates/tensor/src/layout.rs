//! Memory layouts for 4-D feature-map tensors.
//!
//! The seven implementations the paper studies disagree on layout:
//! Caffe/cuDNN/Torch/Theano use NCHW ("BDHW" in the fbfft paper's
//! terminology), cuda-convnet2 uses CHWN (images innermost), and fbfft
//! transposes BDHW → HWBD around its complex GEMM (paper §V-A: "the
//! `Transpose` kernel is used to convert the BDHW layout into HWBD").

use serde::{Deserialize, Serialize};
use std::fmt;

/// Layout of a 4-D tensor in linear memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layout {
    /// Batch-major: `n` slowest, `w` fastest. Used by the unrolling-based
    /// implementations (Caffe, cuDNN, Torch-cunn, Theano-CorrMM).
    /// The fbfft paper calls this BDHW.
    Nchw,
    /// Image-minor: `c` slowest, `n` fastest. Used by cuda-convnet2,
    /// whose kernels read 32/64/128 images per memory transaction.
    Chwn,
    /// Spatial-major: `(h, w)` slowest, `n` fastest. fbfft's "HWBD"
    /// layout, produced by its `Transpose` kernel so the per-frequency
    /// complex GEMM reads contiguous `[c × n]` panels.
    Hwcn,
    /// Channel-blocked NCHW with an inner block of 8:
    /// `[n][⌈c/8⌉][h][w][8]`. The layout oneDNN and the cuDNN CPU
    /// backends converged on: the innermost 8 channels sit contiguously
    /// so a direct convolution broadcasts one input lane against a full
    /// SIMD vector of filter taps — no im2col expansion needed. When
    /// `c % 8 != 0` the trailing lanes of the last block are zero
    /// padding (see `crate::nchwc`), so the buffer is larger than the
    /// logical element count.
    Nchw8c,
    /// Channel-blocked NCHW with an inner block of 16
    /// (`[n][⌈c/16⌉][h][w][16]`), for 512-bit SIMD hosts. Stride math
    /// and pack/unpack are block-generic; the AVX2 kernels use
    /// [`Layout::Nchw8c`].
    Nchw16c,
}

impl Layout {
    /// Inner channel-block width, or `None` for the planar layouts.
    #[inline]
    pub const fn channel_block(&self) -> Option<usize> {
        match self {
            Layout::Nchw8c => Some(8),
            Layout::Nchw16c => Some(16),
            _ => None,
        }
    }

    /// Whether this is a channel-blocked (NCHWc) layout.
    #[inline]
    pub const fn is_blocked(&self) -> bool {
        self.channel_block().is_some()
    }

    /// Buffer length (in elements) a tensor of logical shape
    /// `(nn, cc, hh, ww)` occupies in this layout. Planar layouts store
    /// exactly `nn*cc*hh*ww`; blocked layouts round the channel count up
    /// to a whole number of blocks, so remainder channels cost zero
    /// padding rather than a scalar tail in every kernel.
    #[inline]
    pub const fn buffer_len(&self, (nn, cc, hh, ww): (usize, usize, usize, usize)) -> usize {
        match self.channel_block() {
            Some(b) => nn * cc.div_ceil(b) * b * hh * ww,
            None => nn * cc * hh * ww,
        }
    }

    /// Linear offset of logical element `(n, c, h, w)` in a tensor of
    /// logical shape `(nn, cc, hh, ww)` stored in this layout.
    #[inline]
    pub const fn offset(
        &self,
        (nn, cc, hh, ww): (usize, usize, usize, usize),
        (n, c, h, w): (usize, usize, usize, usize),
    ) -> usize {
        match self {
            Layout::Nchw => ((n * cc + c) * hh + h) * ww + w,
            Layout::Chwn => ((c * hh + h) * ww + w) * nn + n,
            Layout::Hwcn => ((h * ww + w) * cc + c) * nn + n,
            Layout::Nchw8c => Self::blocked_offset(8, (nn, cc, hh, ww), (n, c, h, w)),
            Layout::Nchw16c => Self::blocked_offset(16, (nn, cc, hh, ww), (n, c, h, w)),
        }
    }

    /// `[n][c/b][h][w][c%b]` stride math shared by the blocked variants.
    #[inline]
    const fn blocked_offset(
        b: usize,
        (_nn, cc, hh, ww): (usize, usize, usize, usize),
        (n, c, h, w): (usize, usize, usize, usize),
    ) -> usize {
        let blocks = cc.div_ceil(b);
        ((((n * blocks + c / b) * hh + h) * ww + w) * b) + c % b
    }

    /// Short name used in reports.
    pub const fn name(&self) -> &'static str {
        match self {
            Layout::Nchw => "NCHW",
            Layout::Chwn => "CHWN",
            Layout::Hwcn => "HWCN",
            Layout::Nchw8c => "NCHW8c",
            Layout::Nchw16c => "NCHW16c",
        }
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Reorder a contiguous buffer from one layout to another.
///
/// This is the CPU analogue of fbfft's `Transpose` kernel; the GPU cost
/// of that kernel is modeled separately in `gcnn-frameworks::fbfft`.
pub fn relayout(
    src: &[f32],
    dst: &mut [f32],
    shape: (usize, usize, usize, usize),
    from: Layout,
    to: Layout,
) {
    let (nn, cc, hh, ww) = shape;
    assert!(
        !from.is_blocked() && !to.is_blocked(),
        "relayout handles planar layouts only; use gcnn_tensor::nchwc for \
         blocked pack/unpack (the buffers differ in length when c % block != 0)"
    );
    assert_eq!(src.len(), nn * cc * hh * ww, "relayout: src length");
    assert_eq!(dst.len(), src.len(), "relayout: dst length");
    if from == to {
        dst.copy_from_slice(src);
        return;
    }
    for n in 0..nn {
        for c in 0..cc {
            for h in 0..hh {
                for w in 0..ww {
                    let idx = (n, c, h, w);
                    dst[to.offset(shape, idx)] = src[from.offset(shape, idx)];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nchw_offsets_are_row_major() {
        let shape = (2, 3, 4, 5);
        assert_eq!(Layout::Nchw.offset(shape, (0, 0, 0, 0)), 0);
        assert_eq!(Layout::Nchw.offset(shape, (0, 0, 0, 1)), 1);
        assert_eq!(Layout::Nchw.offset(shape, (1, 2, 3, 4)), 119);
    }

    #[test]
    fn chwn_puts_batch_innermost() {
        let shape = (2, 3, 4, 5);
        assert_eq!(Layout::Chwn.offset(shape, (0, 0, 0, 0)), 0);
        assert_eq!(Layout::Chwn.offset(shape, (1, 0, 0, 0)), 1);
        assert_eq!(Layout::Chwn.offset(shape, (0, 0, 0, 1)), 2);
    }

    #[test]
    fn hwcn_puts_spatial_outermost() {
        let shape = (2, 3, 4, 5);
        assert_eq!(Layout::Hwcn.offset(shape, (0, 0, 0, 0)), 0);
        assert_eq!(Layout::Hwcn.offset(shape, (1, 0, 0, 0)), 1);
        assert_eq!(Layout::Hwcn.offset(shape, (0, 1, 0, 0)), 2);
        assert_eq!(Layout::Hwcn.offset(shape, (0, 0, 1, 0)), 5 * 3 * 2);
    }

    #[test]
    fn blocked_offsets_interleave_channels() {
        // c=10, block=8: two blocks, the second 6 lanes of padding.
        let shape = (2, 10, 3, 4);
        let l = Layout::Nchw8c;
        assert_eq!(l.channel_block(), Some(8));
        assert_eq!(l.buffer_len(shape), 2 * 16 * 3 * 4);
        assert_eq!(l.offset(shape, (0, 0, 0, 0)), 0);
        // Channels within one block are adjacent...
        assert_eq!(l.offset(shape, (0, 1, 0, 0)), 1);
        assert_eq!(l.offset(shape, (0, 7, 0, 0)), 7);
        // ...the next spatial position starts a fresh lane group...
        assert_eq!(l.offset(shape, (0, 0, 0, 1)), 8);
        // ...and channel 8 lives in the second block plane.
        assert_eq!(l.offset(shape, (0, 8, 0, 0)), 8 * 3 * 4);
        // Images are buffer_len/n apart.
        assert_eq!(l.offset(shape, (1, 0, 0, 0)), 16 * 3 * 4);
    }

    #[test]
    fn blocked_offsets_are_injective_within_padded_buffer() {
        let shape = (2, 10, 3, 4);
        for layout in [Layout::Nchw8c, Layout::Nchw16c] {
            let len = layout.buffer_len(shape);
            let mut seen = vec![false; len];
            for n in 0..2 {
                for c in 0..10 {
                    for h in 0..3 {
                        for w in 0..4 {
                            let off = layout.offset(shape, (n, c, h, w));
                            assert!(off < len, "{layout}: offset {off} out of bounds");
                            assert!(!seen[off], "{layout}: duplicate offset {off}");
                            seen[off] = true;
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "planar layouts only")]
    fn relayout_rejects_blocked_layouts() {
        let src = [0.0f32; 8];
        let mut dst = [0.0f32; 8];
        relayout(&src, &mut dst, (1, 2, 2, 2), Layout::Nchw, Layout::Nchw8c);
    }

    #[test]
    fn all_layouts_are_bijections() {
        let shape = (2, 3, 4, 5);
        for layout in [Layout::Nchw, Layout::Chwn, Layout::Hwcn] {
            let mut seen = [false; 120];
            for n in 0..2 {
                for c in 0..3 {
                    for h in 0..4 {
                        for w in 0..5 {
                            let off = layout.offset(shape, (n, c, h, w));
                            assert!(!seen[off], "{layout}: duplicate offset {off}");
                            seen[off] = true;
                        }
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "{layout}: not surjective");
        }
    }

    #[test]
    fn relayout_roundtrip() {
        let shape = (2, 3, 4, 5);
        let src: Vec<f32> = (0..120).map(|i| i as f32).collect();
        let mut mid = vec![0.0; 120];
        let mut back = vec![0.0; 120];
        relayout(&src, &mut mid, shape, Layout::Nchw, Layout::Hwcn);
        relayout(&mid, &mut back, shape, Layout::Hwcn, Layout::Nchw);
        assert_eq!(src, back);
    }

    #[test]
    fn relayout_identity_is_copy() {
        let shape = (1, 2, 2, 2);
        let src: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let mut dst = [0.0; 8];
        relayout(&src, &mut dst, shape, Layout::Chwn, Layout::Chwn);
        assert_eq!(src, dst);
    }
}
