//! A minimal single-precision complex number.
//!
//! The FFT-based convolution strategy (paper §II-B, implemented by fbfft
//! and Theano-fft) works in the Fourier domain; this type is the element
//! of every frequency-domain buffer in `gcnn-fft` and `gcnn-gemm::cgemm`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f32` real and imaginary parts.
///
/// `#[repr(C)]` guarantees the `[re, im]` field order and no padding, so
/// a `&[Complex32]` can be soundly viewed as interleaved `f32` pairs by
/// the SIMD kernels in [`crate::simd`] and `gcnn-fft`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[repr(C)]
pub struct Complex32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

// The interleaved-f32 reinterpretation used by the SIMD kernels is only
// sound while `Complex32` is exactly two packed f32s; a compile error
// here means a field or attribute change broke that contract.
const _: () = assert!(std::mem::size_of::<Complex32>() == 2 * std::mem::size_of::<f32>());
const _: () = assert!(std::mem::align_of::<Complex32>() == std::mem::align_of::<f32>());

impl Complex32 {
    /// The additive identity.
    pub const ZERO: Complex32 = Complex32 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex32 = Complex32 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex32 = Complex32 { re: 0.0, im: 1.0 };

    /// Create a complex number from its parts.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        Complex32 { re, im }
    }

    /// Create a purely real complex number.
    #[inline]
    pub const fn from_real(re: f32) -> Self {
        Complex32 { re, im: 0.0 }
    }

    /// `e^(i·theta)` — a point on the unit circle; the twiddle-factor
    /// constructor.
    #[inline]
    pub fn from_polar_unit(theta: f32) -> Self {
        Complex32 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex32 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// Multiply-accumulate: `self + a * b`, the inner-loop operation of
    /// the complex GEMM ("Cgemm" in the paper's fbfft hotspot analysis).
    #[inline]
    pub fn mul_add(self, a: Complex32, b: Complex32) -> Self {
        Complex32 {
            re: self.re + a.re * b.re - a.im * b.im,
            im: self.im + a.re * b.im + a.im * b.re,
        }
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f32) -> Self {
        Complex32 {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex32 {
    type Output = Complex32;
    #[inline]
    fn add(self, rhs: Complex32) -> Complex32 {
        Complex32::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex32 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex32) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex32 {
    type Output = Complex32;
    #[inline]
    fn sub(self, rhs: Complex32) -> Complex32 {
        Complex32::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex32 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex32) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: Complex32) -> Complex32 {
        Complex32::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex32 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex32) {
        *self = *self * rhs;
    }
}

impl Mul<f32> for Complex32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: f32) -> Complex32 {
        self.scale(rhs)
    }
}

impl Div<f32> for Complex32 {
    type Output = Complex32;
    #[inline]
    fn div(self, rhs: f32) -> Complex32 {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex32 {
    type Output = Complex32;
    #[inline]
    fn neg(self) -> Complex32 {
        Complex32::new(-self.re, -self.im)
    }
}

impl Sum for Complex32 {
    fn sum<I: Iterator<Item = Complex32>>(iter: I) -> Self {
        iter.fold(Complex32::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Complex32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f32> for Complex32 {
    fn from(re: f32) -> Self {
        Complex32::from_real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex32, b: Complex32) -> bool {
        (a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex32::new(3.0, -4.0);
        assert_eq!(z + Complex32::ZERO, z);
        assert_eq!(z * Complex32::ONE, z);
        assert_eq!(z - z, Complex32::ZERO);
        assert!(close(z * Complex32::I, Complex32::new(4.0, 3.0)));
    }

    #[test]
    fn multiplication() {
        let a = Complex32::new(1.0, 2.0);
        let b = Complex32::new(3.0, -1.0);
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert!(close(a * b, Complex32::new(5.0, 5.0)));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex32::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex32::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        // z * conj(z) == |z|² (purely real)
        assert!(close(z * z.conj(), Complex32::new(25.0, 0.0)));
    }

    #[test]
    fn polar_unit_is_on_unit_circle() {
        for k in 0..16 {
            let theta = 2.0 * std::f32::consts::PI * k as f32 / 16.0;
            let z = Complex32::from_polar_unit(theta);
            assert!((z.abs() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn mul_add_matches_explicit() {
        let acc = Complex32::new(1.0, 1.0);
        let a = Complex32::new(2.0, 3.0);
        let b = Complex32::new(-1.0, 0.5);
        assert!(close(acc.mul_add(a, b), acc + a * b));
    }

    #[test]
    fn sum_over_roots_of_unity_is_zero() {
        let n = 8;
        let s: Complex32 = (0..n)
            .map(|k| Complex32::from_polar_unit(2.0 * std::f32::consts::PI * k as f32 / n as f32))
            .sum();
        assert!(s.abs() < 1e-5);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex32::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex32::new(1.0, -2.0).to_string(), "1-2i");
    }
}
