//! Thread-local workspace arena for steady-state allocation-free hot paths.
//!
//! The paper's profiling methodology times *steady-state* iterations:
//! the first call of a layer may set up scratch, but every subsequent
//! call with the same shapes must not touch the allocator. This module
//! provides the scratch substrate the GEMM, FFT, and convolution hot
//! paths draw from:
//!
//! * a **thread-local, size-classed pool** of `f32` and [`Complex32`]
//!   buffers ([`take_f32`], [`take_c32`], …) handed out as RAII
//!   [`Scratch`] guards that return the buffer on drop,
//! * a global **fresh-allocation counter** ([`fresh_allocs`],
//!   [`alloc_scope`]) so tests can assert that a second identical call
//!   performs **zero** new checkouts,
//! * an explicit [`Workspace`] handle that convolution strategies and
//!   the training loop thread through forward/backward so the borrow is
//!   visible in signatures even though storage is thread-local.
//!
//! Size classes are powers of two up to 1 Mi elements; larger requests
//! round up to a multiple of 1 Mi elements. Rounding bounds pool growth
//! when a mix of nearby sizes is requested (e.g. the per-tile packing
//! strips of every (MC, KC) combination map to one class).

use crate::complex::Complex32;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Requests at or below this element count use power-of-two classes.
const POW2_LIMIT: usize = 1 << 20;
/// Requests above [`POW2_LIMIT`] round up to a multiple of this.
const BIG_QUANTUM: usize = 1 << 20;

/// Number of `f32`/`Complex32` buffers freshly allocated (pool misses)
/// since process start. Monotonic; read it before and after a region via
/// [`alloc_scope`] to count misses inside the region.
static FRESH_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Bytes companion of [`FRESH_ALLOCS`]: capacity × element size of every
/// pool-miss allocation. The autotune harness differences this around a
/// candidate run to account its peak-workspace demand.
static FRESH_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// Total fresh buffer allocations made by all workspace pools so far.
pub fn fresh_allocs() -> u64 {
    FRESH_ALLOCS.load(Ordering::Relaxed)
}

/// Total bytes of fresh (pool-miss) buffer allocations so far.
/// Monotonic; difference across a region to bound the scratch the region
/// demanded beyond what the pools already held.
pub fn fresh_alloc_bytes() -> u64 {
    FRESH_ALLOC_BYTES.load(Ordering::Relaxed)
}

/// Registry mirror of [`FRESH_ALLOCS`] (`workspace.fresh_allocs`), so
/// `bench_report` and the CI regression gate see pool misses without a
/// test harness. Cached handle: no registry lookup on the hot path.
fn fresh_alloc_counter() -> &'static gcnn_trace::Counter {
    static C: OnceLock<gcnn_trace::Counter> = OnceLock::new();
    C.get_or_init(|| gcnn_trace::counter("workspace.fresh_allocs"))
}

/// Registry counter of every scratch checkout (`workspace.checkouts`).
fn checkout_counter() -> &'static gcnn_trace::Counter {
    static C: OnceLock<gcnn_trace::Counter> = OnceLock::new();
    C.get_or_init(|| gcnn_trace::counter("workspace.checkouts"))
}

/// Run `body` and return `(result, fresh allocations made inside)`.
///
/// This is the test hook behind the "second identical call allocates
/// nothing" guarantee:
///
/// ```
/// use gcnn_tensor::workspace::{alloc_scope, take_f32};
/// let (_, first) = alloc_scope(|| drop(take_f32(1000)));
/// let (_, second) = alloc_scope(|| drop(take_f32(1000)));
/// assert!(first >= 1);
/// assert_eq!(second, 0);
/// ```
pub fn alloc_scope<R>(body: impl FnOnce() -> R) -> (R, u64) {
    let before = fresh_allocs();
    let out = body();
    (out, fresh_allocs() - before)
}

/// Round a request up to its size class.
fn size_class(len: usize) -> usize {
    if len == 0 {
        0
    } else if len <= POW2_LIMIT {
        len.next_power_of_two()
    } else {
        len.div_ceil(BIG_QUANTUM) * BIG_QUANTUM
    }
}

/// One per-thread pool of same-type buffers, grouped by capacity class.
struct Pool<T> {
    /// `(class capacity, buffers of that capacity)`, sorted by capacity.
    classes: Vec<(usize, Vec<Vec<T>>)>,
}

impl<T> Pool<T> {
    // AUDIT: cold-path — const constructor of an empty pool; `Vec::new` here
    // is the non-allocating const form, no heap touch until first checkout.
    const fn new() -> Self {
        Pool {
            classes: Vec::new(),
        }
    }

    /// Check out a buffer of exactly `class` capacity, allocating on miss.
    // AUDIT: cold-path — this IS the arena: it allocates only on the first
    // miss per size class, and every fresh allocation is counted by the
    // FRESH_ALLOCS instrumentation the zero-alloc tests assert on.
    fn take(&mut self, class: usize) -> Vec<T> {
        let idx = self.classes.binary_search_by_key(&class, |(c, _)| *c);
        match idx {
            Ok(i) => {
                if let Some(buf) = self.classes[i].1.pop() {
                    return buf;
                }
            }
            Err(i) => self.classes.insert(i, (class, Vec::new())),
        }
        FRESH_ALLOCS.fetch_add(1, Ordering::Relaxed);
        FRESH_ALLOC_BYTES.fetch_add((class * std::mem::size_of::<T>()) as u64, Ordering::Relaxed);
        fresh_alloc_counter().inc();
        Vec::with_capacity(class)
    }

    /// Return a buffer to its class shelf.
    fn restore(&mut self, buf: Vec<T>) {
        let class = buf.capacity();
        if class == 0 {
            return;
        }
        if let Ok(i) = self.classes.binary_search_by_key(&class, |(c, _)| *c) {
            self.classes[i].1.push(buf);
        } else {
            // A buffer whose capacity is not a known class (e.g. adopted
            // from outside). Shelve it under its own capacity; future
            // same-class requests will still hit.
            let i = self
                .classes
                .binary_search_by_key(&class, |(c, _)| *c)
                .unwrap_err();
            self.classes.insert(i, (class, vec![buf]));
        }
    }
}

thread_local! {
    static F32_POOL: RefCell<Pool<f32>> = const { RefCell::new(Pool::new()) };
    static C32_POOL: RefCell<Pool<Complex32>> = const { RefCell::new(Pool::new()) };
}

/// A checked-out scratch buffer; returns itself to the thread-local pool
/// on drop. Derefs to `Vec<T>` so call sites index and slice it like any
/// owned buffer.
pub struct Scratch<T: PoolItem> {
    buf: Option<Vec<T>>,
}

impl<T: PoolItem> Scratch<T> {
    /// The buffer's current length (as sized by the checkout call).
    pub fn len(&self) -> usize {
        self.buf.as_ref().map_or(0, Vec::len)
    }

    /// Whether the buffer holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// View as a slice.
    pub fn as_slice(&self) -> &[T] {
        self.buf.as_deref().unwrap_or(&[])
    }

    /// View as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.buf.as_deref_mut().unwrap_or(&mut [])
    }
}

impl<T: PoolItem> std::ops::Deref for Scratch<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: PoolItem> std::ops::DerefMut for Scratch<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: PoolItem> Drop for Scratch<T> {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            T::restore_raw(buf);
        }
    }
}

/// Element types that have a thread-local pool. Sealed to `f32` and
/// [`Complex32`], the only scalar types the hot paths use.
pub trait PoolItem: Copy + Default + Sized {
    #[doc(hidden)]
    fn take_raw(class: usize) -> Vec<Self>;
    #[doc(hidden)]
    fn restore_raw(buf: Vec<Self>);
}

impl PoolItem for f32 {
    fn take_raw(class: usize) -> Vec<Self> {
        F32_POOL.with(|p| p.borrow_mut().take(class))
    }
    fn restore_raw(buf: Vec<Self>) {
        F32_POOL.with(|p| p.borrow_mut().restore(buf));
    }
}

impl PoolItem for Complex32 {
    fn take_raw(class: usize) -> Vec<Self> {
        C32_POOL.with(|p| p.borrow_mut().take(class))
    }
    fn restore_raw(buf: Vec<Self>) {
        C32_POOL.with(|p| p.borrow_mut().restore(buf));
    }
}

/// Check out a buffer of `len` elements with **unspecified contents**
/// (whatever the previous user left, or `T::default()` on a fresh
/// allocation). Use when every element is written before being read,
/// e.g. packing buffers.
pub fn take<T: PoolItem>(len: usize) -> Scratch<T> {
    checkout_counter().inc();
    let class = size_class(len);
    let mut buf = T::take_raw(class);
    // Resize within capacity: never reallocates, only extends the
    // initialized prefix with `default()` (cheap relative to the fill
    // the caller is about to do) or truncates.
    buf.resize(len, T::default());
    Scratch { buf: Some(buf) }
}

/// Check out a buffer of `len` elements, all zeroed.
pub fn take_zeroed<T: PoolItem>(len: usize) -> Scratch<T> {
    let mut s = take::<T>(len);
    s.as_mut_slice().fill(T::default());
    s
}

/// Check out `len` `f32`s with unspecified contents.
pub fn take_f32(len: usize) -> Scratch<f32> {
    take(len)
}

/// Check out `len` zeroed `f32`s.
pub fn take_f32_zeroed(len: usize) -> Scratch<f32> {
    take_zeroed(len)
}

/// Check out `len` [`Complex32`]s with unspecified contents.
pub fn take_c32(len: usize) -> Scratch<Complex32> {
    take(len)
}

/// Check out `len` zeroed [`Complex32`]s.
pub fn take_c32_zeroed(len: usize) -> Scratch<Complex32> {
    take_zeroed(len)
}

/// Explicit workspace handle threaded through convolution forward and
/// backward passes and the training loop.
///
/// Storage lives in thread-local pools, so `Workspace` itself is a
/// zero-sized token — its job is to make the scratch dependency visible
/// in signatures (`fn forward_ws(&self, …, ws: &mut Workspace)`) and to
/// give call sites one object whose lifetime scopes the reuse story.
/// Creating one is free; all handles on a thread share the same pools.
#[derive(Debug, Default)]
pub struct Workspace {
    _private: (),
}

impl Workspace {
    /// Create a workspace handle.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Check out `len` `f32`s with unspecified contents.
    pub fn take_f32(&mut self, len: usize) -> Scratch<f32> {
        take(len)
    }

    /// Check out `len` zeroed `f32`s.
    pub fn take_f32_zeroed(&mut self, len: usize) -> Scratch<f32> {
        take_zeroed(len)
    }

    /// Check out `len` [`Complex32`]s with unspecified contents.
    pub fn take_c32(&mut self, len: usize) -> Scratch<Complex32> {
        take(len)
    }

    /// Check out `len` zeroed [`Complex32`]s.
    pub fn take_c32_zeroed(&mut self, len: usize) -> Scratch<Complex32> {
        take_zeroed(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_round_up() {
        assert_eq!(size_class(0), 0);
        assert_eq!(size_class(1), 1);
        assert_eq!(size_class(3), 4);
        assert_eq!(size_class(1000), 1024);
        assert_eq!(size_class(POW2_LIMIT), POW2_LIMIT);
        assert_eq!(size_class(POW2_LIMIT + 1), 2 * BIG_QUANTUM);
        assert_eq!(size_class(5 * BIG_QUANTUM + 7), 6 * BIG_QUANTUM);
    }

    #[test]
    fn second_checkout_hits_pool() {
        // Warm the class with a distinctive size for this test.
        let (_, _first) = alloc_scope(|| drop(take_f32(12345)));
        let (_, misses) = alloc_scope(|| {
            let s = take_f32(12345);
            assert_eq!(s.len(), 12345);
            drop(s);
        });
        assert_eq!(misses, 0, "pooled buffer was not reused");
    }

    #[test]
    fn nearby_sizes_share_a_class() {
        let (_, _first) = alloc_scope(|| drop(take_f32(900)));
        // 900 and 1024 both map to the 1024 class.
        let (_, misses) = alloc_scope(|| drop(take_f32(1024)));
        assert_eq!(misses, 0);
    }

    #[test]
    fn zeroed_checkout_is_zeroed_after_reuse() {
        {
            let mut s = take_f32(64);
            s.as_mut_slice().fill(7.5);
        }
        let s = take_f32_zeroed(64);
        assert!(s.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn concurrent_checkouts_are_distinct() {
        let mut a = take_f32(256);
        let mut b = take_f32(256);
        a.as_mut_slice().fill(1.0);
        b.as_mut_slice().fill(2.0);
        assert!(a.iter().all(|&x| x == 1.0));
        assert!(b.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn complex_pool_round_trips() {
        let (_, _first) = alloc_scope(|| drop(take_c32(500)));
        let (_, misses) = alloc_scope(|| {
            let s = take_c32_zeroed(500);
            assert!(s.iter().all(|c| *c == Complex32::ZERO));
        });
        assert_eq!(misses, 0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn registry_mirrors_fresh_allocs() {
        let before = gcnn_trace::snapshot().counter("workspace.fresh_allocs");
        // A size class no other test uses: guaranteed fresh, then pooled.
        let (_, misses) = alloc_scope(|| drop(take_f32(777_777)));
        assert!(misses >= 1);
        let after = gcnn_trace::snapshot().counter("workspace.fresh_allocs");
        // Other test threads may allocate concurrently; the mirror must
        // move at least as much as this thread's observed misses.
        assert!(after - before >= 1, "registry must mirror FRESH_ALLOCS");
        let checkouts = gcnn_trace::snapshot().counter("workspace.checkouts");
        assert!(checkouts >= 1, "checkouts counter must tick");
    }

    #[test]
    fn fresh_alloc_bytes_tracks_misses() {
        let before = fresh_alloc_bytes();
        // A size class no other test uses: guaranteed a miss, and the
        // byte counter must advance by at least the f32 payload.
        let s = take_f32(333_333);
        assert!(fresh_alloc_bytes() - before >= (333_333 * std::mem::size_of::<f32>()) as u64);
        drop(s);
        let pooled = fresh_alloc_bytes();
        drop(take_f32(333_333));
        assert_eq!(fresh_alloc_bytes(), pooled, "pool hit must not add bytes");
    }

    #[test]
    fn workspace_handle_delegates() {
        let mut ws = Workspace::new();
        let (_, _warm) = alloc_scope(|| drop(ws.take_f32(2048)));
        let (_, misses) = alloc_scope(|| drop(ws.take_f32(2048)));
        assert_eq!(misses, 0);
    }
}
