//! NCHW ↔ NCHWc pack/unpack kernels for the channel-blocked layout.
//!
//! The blocked layout stores `[n][⌈c/b⌉][h][w][b]` with the inner block
//! `b` equal to the SIMD vector width ([`simd::preferred_block`]), the
//! arrangement oneDNN and the cuDNN CPU backends converged on: a direct
//! convolution reads one input lane group and a `b×b` filter panel and
//! never builds im2col columns. Two conventions make the kernels
//! branch-free:
//!
//! * **Remainder channels are zero padding.** When `c % b != 0` the
//!   trailing lanes of the last block are zeroed at pack time (inputs
//!   *and* filters), so the channel loop always runs whole blocks and
//!   the padding lanes contribute exact zeros to every accumulation.
//! * **Spatial padding is baked into the packed buffer.** `pack` takes
//!   the consuming convolution's `pad` and materializes zero borders,
//!   so the conv kernels need no edge guards.
//!
//! Filters pack as `[⌈f/b⌉][⌈c/b⌉][ky][kx][ci][fo]` (oneDNN's
//! OIhw8i8o): the innermost `b` output channels of one tap are
//! contiguous, which is exactly the vector [`simd::conv_nchwc_tap`]
//! broadcasts each input lane against.

use crate::layout::Layout;
use crate::shape::Shape4;
use crate::simd;

/// The blocked [`Layout`] matching this host's SIMD width.
pub fn preferred_layout() -> Layout {
    if simd::preferred_block() == 16 {
        Layout::Nchw16c
    } else {
        Layout::Nchw8c
    }
}

/// Buffer length of a packed activation of logical shape `shape`,
/// spatially zero-padded by `pad` on all four sides.
pub const fn packed_len(shape: Shape4, block: usize, pad: usize) -> usize {
    shape.n * shape.c.div_ceil(block) * block * (shape.h + 2 * pad) * (shape.w + 2 * pad)
}

/// Buffer length of a packed filter bank of logical shape
/// `(f, c, k, k)`.
pub const fn packed_filter_len(shape: Shape4, block: usize) -> usize {
    shape.n.div_ceil(block) * shape.c.div_ceil(block) * shape.h * shape.w * block * block
}

/// Pack a planar NCHW activation into NCHWc with `pad` zero rows/cols
/// baked around each spatial plane.
///
/// `src.len()` must be `shape.len()` and `dst.len()` must be
/// [`packed_len`]`(shape, block, pad)`. Remainder lanes and borders are
/// zeroed.
pub fn pack_nchwc_into(src: &[f32], shape: Shape4, block: usize, pad: usize, dst: &mut [f32]) {
    assert_eq!(src.len(), shape.len(), "pack_nchwc_into: src length");
    assert_eq!(
        dst.len(),
        packed_len(shape, block, pad),
        "pack_nchwc_into: dst length"
    );
    let (nn, cc, hh, ww) = (shape.n, shape.c, shape.h, shape.w);
    let blocks = cc.div_ceil(block);
    let (hp, wp) = (hh + 2 * pad, ww + 2 * pad);
    dst.fill(0.0);
    for n in 0..nn {
        for cb in 0..blocks {
            let lanes = block.min(cc - cb * block);
            for h in 0..hh {
                let drow = (((n * blocks + cb) * hp + h + pad) * wp + pad) * block;
                for ci in 0..lanes {
                    let srow = ((n * cc + cb * block + ci) * hh + h) * ww;
                    for w in 0..ww {
                        dst[drow + w * block + ci] = src[srow + w];
                    }
                }
            }
        }
    }
}

/// Unpack an NCHWc activation (no spatial padding) back to planar NCHW.
///
/// `src.len()` must be [`packed_len`]`(shape, block, 0)` and
/// `dst.len()` must be `shape.len()`. Remainder lanes are ignored.
pub fn unpack_nchwc_from(src: &[f32], shape: Shape4, block: usize, dst: &mut [f32]) {
    assert_eq!(
        src.len(),
        packed_len(shape, block, 0),
        "unpack_nchwc_from: src length"
    );
    assert_eq!(dst.len(), shape.len(), "unpack_nchwc_from: dst length");
    let (nn, cc, hh, ww) = (shape.n, shape.c, shape.h, shape.w);
    let blocks = cc.div_ceil(block);
    for n in 0..nn {
        for cb in 0..blocks {
            let lanes = block.min(cc - cb * block);
            for h in 0..hh {
                let srow = ((n * blocks + cb) * hh + h) * ww * block;
                for ci in 0..lanes {
                    let drow = ((n * cc + cb * block + ci) * hh + h) * ww;
                    for w in 0..ww {
                        dst[drow + w] = src[srow + w * block + ci];
                    }
                }
            }
        }
    }
}

/// Pack a planar `(f, c, k, k)` filter bank into the OIhw8i8o-style
/// `[⌈f/b⌉][⌈c/b⌉][ky][kx][ci][fo]` arrangement.
///
/// Remainder input *and* output channels are zeroed, so a padded input
/// lane meets a zero filter lane and padded output lanes accumulate
/// garbage-free zeros.
pub fn pack_filters_into(src: &[f32], shape: Shape4, block: usize, dst: &mut [f32]) {
    assert_eq!(src.len(), shape.len(), "pack_filters_into: src length");
    assert_eq!(
        dst.len(),
        packed_filter_len(shape, block),
        "pack_filters_into: dst length"
    );
    let (ff, cc, kh, kw) = (shape.n, shape.c, shape.h, shape.w);
    let fblocks = ff.div_ceil(block);
    let cblocks = cc.div_ceil(block);
    dst.fill(0.0);
    for fb in 0..fblocks {
        let folanes = block.min(ff - fb * block);
        for cb in 0..cblocks {
            let cilanes = block.min(cc - cb * block);
            for ky in 0..kh {
                for kx in 0..kw {
                    let dtap = ((((fb * cblocks + cb) * kh + ky) * kw) + kx) * block * block;
                    for ci in 0..cilanes {
                        for fo in 0..folanes {
                            let s =
                                ((fb * block + fo) * cc + cb * block + ci) * kh * kw + ky * kw + kx;
                            dst[dtap + ci * block + fo] = src[s];
                        }
                    }
                }
            }
        }
    }
}

/// Copy an unpadded packed activation into a packed buffer with `pad`
/// zero borders — the transition used when one blocked layer's output
/// feeds a blocked consumer that needs spatial padding.
///
/// `src.len()` must be [`packed_len`]`(shape, block, 0)` and
/// `dst.len()` must be [`packed_len`]`(shape, block, pad)`.
pub fn repad_packed(src: &[f32], shape: Shape4, block: usize, pad: usize, dst: &mut [f32]) {
    assert_eq!(
        src.len(),
        packed_len(shape, block, 0),
        "repad_packed: src length"
    );
    assert_eq!(
        dst.len(),
        packed_len(shape, block, pad),
        "repad_packed: dst length"
    );
    let (nn, cc, hh, ww) = (shape.n, shape.c, shape.h, shape.w);
    let blocks = cc.div_ceil(block);
    let (hp, wp) = (hh + 2 * pad, ww + 2 * pad);
    dst.fill(0.0);
    for plane in 0..nn * blocks {
        for h in 0..hh {
            let s = (plane * hh + h) * ww * block;
            let d = ((plane * hp + h + pad) * wp + pad) * block;
            dst[d..d + ww * block].copy_from_slice(&src[s..s + ww * block]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(len: usize) -> Vec<f32> {
        (0..len).map(|i| i as f32 + 1.0).collect()
    }

    #[test]
    fn preferred_layout_matches_simd_block() {
        let l = preferred_layout();
        assert_eq!(l.channel_block(), Some(simd::preferred_block()));
    }

    /// Pack → unpack is the identity, including remainder channels.
    #[test]
    fn roundtrip_exact_with_remainders() {
        for (c, block) in [(1usize, 8usize), (5, 8), (8, 8), (10, 8), (3, 16), (16, 16)] {
            let shape = Shape4::new(2, c, 3, 4);
            let src = ramp(shape.len());
            let mut packed = vec![f32::NAN; packed_len(shape, block, 0)];
            let mut back = vec![f32::NAN; shape.len()];
            pack_nchwc_into(&src, shape, block, 0, &mut packed);
            unpack_nchwc_from(&packed, shape, block, &mut back);
            assert_eq!(src, back, "c={c} block={block}");
        }
    }

    /// The pack kernel and `Layout::offset` must implement the same
    /// stride math: every logical element lands where the layout's
    /// offset function says it lives.
    #[test]
    fn pack_agrees_with_layout_offsets() {
        let shape = Shape4::new(2, 10, 3, 4);
        let dims = (shape.n, shape.c, shape.h, shape.w);
        let src = ramp(shape.len());
        let mut packed = vec![0.0; packed_len(shape, 8, 0)];
        pack_nchwc_into(&src, shape, 8, 0, &mut packed);
        for n in 0..shape.n {
            for c in 0..shape.c {
                for h in 0..shape.h {
                    for w in 0..shape.w {
                        let idx = (n, c, h, w);
                        assert_eq!(
                            packed[Layout::Nchw8c.offset(dims, idx)],
                            src[Layout::Nchw.offset(dims, idx)],
                            "mismatch at {idx:?}"
                        );
                    }
                }
            }
        }
    }

    /// Remainder lanes and padded borders must be exact zeros (the conv
    /// kernels accumulate over them unconditionally).
    #[test]
    fn padding_lanes_and_borders_are_zero() {
        let shape = Shape4::new(1, 5, 3, 3);
        let (block, pad) = (8, 2);
        let src = ramp(shape.len());
        let mut packed = vec![f32::NAN; packed_len(shape, block, pad)];
        pack_nchwc_into(&src, shape, block, pad, &mut packed);
        let (hp, wp) = (shape.h + 2 * pad, shape.w + 2 * pad);
        let mut nonzero = 0;
        for h in 0..hp {
            for w in 0..wp {
                for ci in 0..block {
                    let v = packed[(h * wp + w) * block + ci];
                    let interior =
                        (pad..pad + shape.h).contains(&h) && (pad..pad + shape.w).contains(&w);
                    if !interior || ci >= shape.c {
                        assert_eq!(v, 0.0, "h={h} w={w} ci={ci} must be padding");
                    } else {
                        assert!(v > 0.0, "h={h} w={w} ci={ci} must carry data");
                        nonzero += 1;
                    }
                }
            }
        }
        assert_eq!(nonzero, shape.len());
    }

    #[test]
    fn filter_pack_places_taps_and_zeroes_remainders() {
        // f=10, c=5, k=3 with block 8: 2 filter blocks, 1 channel block.
        let shape = Shape4::new(10, 5, 3, 3);
        let block = 8;
        let src = ramp(shape.len());
        let mut packed = vec![f32::NAN; packed_filter_len(shape, block)];
        pack_filters_into(&src, shape, block, &mut packed);
        let (cblocks, kk) = (1, 3);
        for fb in 0..2usize {
            for (ky, kx) in [(0, 0), (1, 2), (2, 1)] {
                for ci in 0..block {
                    for fo in 0..block {
                        let d = ((((fb * cblocks) * kk + ky) * kk) + kx) * block * block
                            + ci * block
                            + fo;
                        let (f, c) = (fb * block + fo, ci);
                        if f < shape.n && c < shape.c {
                            let s = (f * shape.c + c) * kk * kk + ky * kk + kx;
                            assert_eq!(packed[d], src[s]);
                        } else {
                            assert_eq!(packed[d], 0.0, "fb={fb} ci={ci} fo={fo} must be zero");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn repad_shifts_rows_into_zero_borders() {
        let shape = Shape4::new(2, 8, 3, 3);
        let (block, pad) = (8, 1);
        let src = ramp(shape.len());
        let mut packed = vec![0.0; packed_len(shape, block, 0)];
        pack_nchwc_into(&src, shape, block, 0, &mut packed);
        let mut repadded = vec![f32::NAN; packed_len(shape, block, pad)];
        repad_packed(&packed, shape, block, pad, &mut repadded);
        // Must equal packing the planar source with the pad directly.
        let mut direct = vec![0.0; packed_len(shape, block, pad)];
        pack_nchwc_into(&src, shape, block, pad, &mut direct);
        assert_eq!(repadded, direct);
    }
}
