//! Zero-padding and cropping of feature maps.
//!
//! The FFT convolution strategy zero-pads both input and filter planes to
//! a common transform size (paper §V-B: FFT implementations "need extra
//! memory for zero-padding to extend filter bank to be the same size of
//! input"); direct and unrolling strategies optionally pad the input
//! spatially before convolving.

use crate::shape::Shape4;
use crate::tensor::Tensor4;

/// Zero-pad every plane of `src` to `(new_h, new_w)`, placing the
/// original content at offset `(top, left)`.
///
/// # Panics
/// Panics if the padded region cannot contain the source plane.
pub fn pad_planes(src: &Tensor4, new_h: usize, new_w: usize, top: usize, left: usize) -> Tensor4 {
    let s = src.shape();
    assert!(
        top + s.h <= new_h && left + s.w <= new_w,
        "pad_planes: target {new_h}x{new_w} cannot hold {}x{} at ({top},{left})",
        s.h,
        s.w
    );
    let mut out = Tensor4::zeros(Shape4::new(s.n, s.c, new_h, new_w));
    for n in 0..s.n {
        for c in 0..s.c {
            let sp = src.plane(n, c);
            let dp = out.plane_mut(n, c);
            for h in 0..s.h {
                let srow = &sp[h * s.w..(h + 1) * s.w];
                let dstart = (h + top) * new_w + left;
                dp[dstart..dstart + s.w].copy_from_slice(srow);
            }
        }
    }
    out
}

/// Crop every plane of `src` to `(new_h, new_w)` starting at
/// `(top, left)` — the inverse of [`pad_planes`].
///
/// # Panics
/// Panics if the crop window exceeds the source plane.
pub fn crop_planes(src: &Tensor4, new_h: usize, new_w: usize, top: usize, left: usize) -> Tensor4 {
    let s = src.shape();
    assert!(
        top + new_h <= s.h && left + new_w <= s.w,
        "crop_planes: window {new_h}x{new_w} at ({top},{left}) exceeds source {}x{}",
        s.h,
        s.w
    );
    let mut out = Tensor4::zeros(Shape4::new(s.n, s.c, new_h, new_w));
    for n in 0..s.n {
        for c in 0..s.c {
            let sp = src.plane(n, c);
            let dp = out.plane_mut(n, c);
            for h in 0..new_h {
                let sstart = (h + top) * s.w + left;
                dp[h * new_w..(h + 1) * new_w].copy_from_slice(&sp[sstart..sstart + new_w]);
            }
        }
    }
    out
}

/// Flip every `h×w` plane by 180° (reverse both spatial axes). The
/// backward-data pass of convolution correlates with flipped filters.
pub fn flip_planes(src: &Tensor4) -> Tensor4 {
    let s = src.shape();
    Tensor4::from_fn(s, |n, c, h, w| src.get(n, c, s.h - 1 - h, s.w - 1 - w))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(shape: Shape4) -> Tensor4 {
        let mut i = 0.0;
        Tensor4::from_fn(shape, |_, _, _, _| {
            i += 1.0;
            i
        })
    }

    #[test]
    fn pad_then_crop_roundtrips() {
        let src = seq(Shape4::new(2, 3, 4, 5));
        let padded = pad_planes(&src, 9, 8, 2, 1);
        assert_eq!(padded.shape(), Shape4::new(2, 3, 9, 8));
        let back = crop_planes(&padded, 4, 5, 2, 1);
        assert_eq!(back, src);
    }

    #[test]
    fn padding_is_zero_outside() {
        let src = Tensor4::full(Shape4::new(1, 1, 2, 2), 1.0);
        let padded = pad_planes(&src, 4, 4, 1, 1);
        assert_eq!(padded.sum(), 4.0);
        assert_eq!(padded.get(0, 0, 0, 0), 0.0);
        assert_eq!(padded.get(0, 0, 1, 1), 1.0);
        assert_eq!(padded.get(0, 0, 2, 2), 1.0);
        assert_eq!(padded.get(0, 0, 3, 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "pad_planes")]
    fn pad_rejects_too_small_target() {
        let src = seq(Shape4::new(1, 1, 4, 4));
        pad_planes(&src, 4, 4, 1, 0);
    }

    #[test]
    #[should_panic(expected = "crop_planes")]
    fn crop_rejects_out_of_bounds() {
        let src = seq(Shape4::new(1, 1, 4, 4));
        crop_planes(&src, 3, 3, 2, 2);
    }

    #[test]
    fn flip_is_involution() {
        let src = seq(Shape4::new(2, 2, 3, 4));
        assert_eq!(flip_planes(&flip_planes(&src)), src);
    }

    #[test]
    fn flip_reverses_corners() {
        let src = seq(Shape4::new(1, 1, 2, 2)); // [[1,2],[3,4]]
        let f = flip_planes(&src);
        assert_eq!(f.get(0, 0, 0, 0), 4.0);
        assert_eq!(f.get(0, 0, 1, 1), 1.0);
    }
}
