//! Shape types for 4-D feature-map tensors and 2-D matrices.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a 4-D feature-map tensor in NCHW order:
/// `n` images per mini-batch, `c` channels (feature maps), spatial
/// `h`×`w`.
///
/// This mirrors the paper's 5-tuple convention `(b, i, f, k, s)` where a
/// convolution input is the shape `(b, c, i, i)` and a filter bank is
/// `(f, c, k, k)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape4 {
    /// Mini-batch size (the paper's `b`).
    pub n: usize,
    /// Channel / feature-map count.
    pub c: usize,
    /// Spatial height.
    pub h: usize,
    /// Spatial width.
    pub w: usize,
}

impl Shape4 {
    /// Create a new shape.
    pub const fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape4 { n, c, h, w }
    }

    /// Total number of scalar elements.
    pub const fn len(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// True when any dimension is zero.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of scalars in one image (all channels).
    pub const fn image_len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Number of scalars in one channel plane.
    pub const fn plane_len(&self) -> usize {
        self.h * self.w
    }

    /// Linear offset of element `(n, c, h, w)` under contiguous NCHW
    /// strides.
    #[inline]
    pub const fn offset(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Size of the tensor in bytes at `f32` precision.
    pub const fn bytes(&self) -> usize {
        self.len() * std::mem::size_of::<f32>()
    }
}

impl fmt::Display for Shape4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.c, self.h, self.w)
    }
}

/// The shape of a row-major 2-D matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape2 {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Shape2 {
    /// Create a new matrix shape.
    pub const fn new(rows: usize, cols: usize) -> Self {
        Shape2 { rows, cols }
    }

    /// Total number of scalar elements.
    pub const fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True when either dimension is zero.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear offset of element `(r, c)` under row-major strides.
    #[inline]
    pub const fn offset(&self, r: usize, c: usize) -> usize {
        r * self.cols + c
    }

    /// The transposed shape.
    pub const fn transposed(&self) -> Self {
        Shape2 {
            rows: self.cols,
            cols: self.rows,
        }
    }
}

impl fmt::Display for Shape2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// Round `n` up to the next power of two (used by the FFT convolution
/// strategy, whose transforms pad to power-of-two sizes — this padding is
/// the cause of the memory-usage fluctuations in the paper's Fig. 5b/5d).
pub const fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape4_len_and_offsets() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.len(), 120);
        assert_eq!(s.image_len(), 60);
        assert_eq!(s.plane_len(), 20);
        assert_eq!(s.offset(0, 0, 0, 0), 0);
        assert_eq!(s.offset(1, 2, 3, 4), 119);
        assert_eq!(s.offset(0, 1, 0, 0), 20);
        assert_eq!(s.bytes(), 480);
    }

    #[test]
    fn shape4_display() {
        assert_eq!(Shape4::new(64, 3, 128, 128).to_string(), "64x3x128x128");
    }

    #[test]
    fn shape2_offsets_and_transpose() {
        let s = Shape2::new(3, 7);
        assert_eq!(s.len(), 21);
        assert_eq!(s.offset(2, 6), 20);
        assert_eq!(s.transposed(), Shape2::new(7, 3));
    }

    #[test]
    fn shape_is_empty() {
        assert!(Shape4::new(0, 3, 4, 5).is_empty());
        assert!(!Shape4::new(1, 1, 1, 1).is_empty());
        assert!(Shape2::new(3, 0).is_empty());
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(127), 128);
        assert_eq!(next_pow2(128), 128);
        assert_eq!(next_pow2(129), 256);
    }
}
