//! Explicit SIMD micro-kernels with safe runtime dispatch.
//!
//! The paper's central diagnosis is that hotspot-kernel efficiency —
//! not algorithm choice alone — separates the seven frameworks (§V-C:
//! IPC and warp execution efficiency of the SGEMM/FFT kernels). The
//! host-CPU analogue of an un-tuned kernel is leaning on LLVM
//! autovectorization, which will widen loops but never contract
//! mul+add into FMA nor pick the register blocking a hand-scheduled
//! kernel uses. This module is the dispatch point for the hand-written
//! paths:
//!
//! * [`isa`] — the ISA selected once at startup: AVX2+FMA on capable
//!   `x86_64` (via `is_x86_feature_detected!`), NEON on `aarch64`
//!   (baseline there), scalar everywhere else. `GCNN_FORCE_SCALAR=1`
//!   pins the scalar path for A/B measurement and CI.
//! * Slice primitives ([`saxpy`], [`sscal`], [`sdot`], [`add_assign`],
//!   [`scale_add`], [`cmac`]) used by `gcnn-tensor::ops`, `im2col`,
//!   the GEMM writeback and the FFT pointwise products.
//!
//! The scalar implementations are not vestigial: they are the
//! always-available fallback *and* the oracle the SIMD kernels are
//! property-tested against (`crates/gemm/tests/simd_vs_scalar.rs`).
//! Every `unsafe` block below is a `#[target_feature]` function called
//! only after the matching runtime detection, which is the safety
//! contract `std::arch` requires.

use crate::complex::Complex32;
use std::sync::atomic::{AtomicI8, Ordering};
use std::sync::OnceLock;

/// The instruction set selected for the hand-written kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Portable scalar fallback — also the property-test oracle.
    Scalar,
    /// x86-64 AVX2 + FMA (256-bit, 8 × f32 lanes).
    Avx2Fma,
    /// AArch64 NEON (128-bit, 4 × f32 lanes).
    Neon,
}

impl Isa {
    /// Stable lowercase name — used in the autotune device fingerprint
    /// and the `BENCH_simd.json` report.
    pub const fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2Fma => "avx2+fma",
            Isa::Neon => "neon",
        }
    }

    /// Numeric level for the `simd.isa_level` trace gauge:
    /// 0 scalar, 1 AVX2+FMA, 2 NEON.
    pub const fn level(self) -> u8 {
        match self {
            Isa::Scalar => 0,
            Isa::Avx2Fma => 1,
            Isa::Neon => 2,
        }
    }
}

/// `-1` = not yet read from the environment; `0`/`1` = resolved.
static FORCE_SCALAR: AtomicI8 = AtomicI8::new(-1);

fn force_scalar() -> bool {
    match FORCE_SCALAR.load(Ordering::Relaxed) {
        -1 => {
            let on = std::env::var("GCNN_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0");
            FORCE_SCALAR.store(on as i8, Ordering::Relaxed);
            publish_isa();
            on
        }
        v => v != 0,
    }
}

/// Force (or release) the scalar dispatch path at runtime. Benches use
/// this to measure scalar-vs-SIMD throughput inside one process; tests
/// normally prefer the `GCNN_FORCE_SCALAR=1` environment override,
/// which this supersedes. Takes effect on the next [`isa`] call —
/// dispatch sites re-read the table per kernel call, so there is no
/// stale fast path.
pub fn set_force_scalar(on: bool) {
    FORCE_SCALAR.store(on as i8, Ordering::Relaxed);
    publish_isa();
}

fn detect() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Isa::Avx2Fma;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is a baseline feature of AArch64.
        return Isa::Neon;
    }
    #[allow(unreachable_code)] // fallback is unreachable only on aarch64 builds
    Isa::Scalar
}

fn detected() -> Isa {
    static DETECTED: OnceLock<Isa> = OnceLock::new();
    *DETECTED.get_or_init(detect)
}

/// Publish the effective ISA as the `simd.isa_level` gauge (a no-op in
/// trace-disabled builds).
fn publish_isa() {
    let effective = if FORCE_SCALAR.load(Ordering::Relaxed) == 1 {
        Isa::Scalar
    } else {
        detected()
    };
    gcnn_trace::gauge_set("simd.isa_level", effective.level() as f64);
}

/// The dispatch table: the ISA every hand-written kernel keys its
/// `match` on. Detection runs once (cached); per-call cost is two
/// relaxed atomic loads, negligible against any kernel body.
#[inline]
pub fn isa() -> Isa {
    if force_scalar() {
        Isa::Scalar
    } else {
        detected()
    }
}

/// [`Isa::name`] of the current dispatch selection.
pub fn isa_name() -> &'static str {
    isa().name()
}

// ---------------------------------------------------------------------
// f32 slice primitives
// ---------------------------------------------------------------------

/// `y ← alpha·x + y`.
#[inline]
pub fn saxpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    match isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2Fma` is only selected after runtime
        // AVX2+FMA detection (see [`detect`]).
        Isa::Avx2Fma => unsafe { saxpy_avx2(alpha, x, y) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: `Neon` is only selected on AArch64, where NEON
        // is a baseline feature.
        Isa::Neon => unsafe { saxpy_neon(alpha, x, y) },
        _ => saxpy_scalar(alpha, x, y),
    }
}

/// Scalar oracle for [`saxpy`].
#[inline]
pub fn saxpy_scalar(alpha: f32, x: &[f32], y: &mut [f32]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y ← y + x` — the accumulate of the GEMM tile writeback and the
/// col2im fold.
#[inline]
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    saxpy(1.0, x, y);
}

/// `y ← beta·y + x` — the fused beta-scale writeback of the blocked
/// GEMM driver.
#[inline]
pub fn scale_add(beta: f32, y: &mut [f32], x: &[f32]) {
    debug_assert_eq!(x.len(), y.len());
    match isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2Fma` is only selected after runtime
        // AVX2+FMA detection (see [`detect`]).
        Isa::Avx2Fma => unsafe { scale_add_avx2(beta, y, x) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: `Neon` is only selected on AArch64, where NEON
        // is a baseline feature.
        Isa::Neon => unsafe { scale_add_neon(beta, y, x) },
        _ => scale_add_scalar(beta, y, x),
    }
}

/// Scalar oracle for [`scale_add`].
#[inline]
pub fn scale_add_scalar(beta: f32, y: &mut [f32], x: &[f32]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = beta * *yi + xi;
    }
}

/// `x ← alpha·x`.
#[inline]
pub fn sscal(alpha: f32, x: &mut [f32]) {
    match isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2Fma` is only selected after runtime
        // AVX2+FMA detection (see [`detect`]).
        Isa::Avx2Fma => unsafe { sscal_avx2(alpha, x) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: `Neon` is only selected on AArch64, where NEON
        // is a baseline feature.
        Isa::Neon => unsafe { sscal_neon(alpha, x) },
        _ => sscal_scalar(alpha, x),
    }
}

/// Scalar oracle for [`sscal`].
#[inline]
pub fn sscal_scalar(alpha: f32, x: &mut [f32]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Dot product. The SIMD paths reassociate the sum (4 independent
/// accumulator chains), so results can differ from the scalar oracle
/// by O(len · ε) — the property tests budget for exactly that.
#[inline]
pub fn sdot(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    match isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2Fma` is only selected after runtime
        // AVX2+FMA detection (see [`detect`]).
        Isa::Avx2Fma => unsafe { sdot_avx2(x, y) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: `Neon` is only selected on AArch64, where NEON
        // is a baseline feature.
        Isa::Neon => unsafe { sdot_neon(x, y) },
        _ => sdot_scalar(x, y),
    }
}

/// Scalar oracle for [`sdot`].
#[inline]
pub fn sdot_scalar(x: &[f32], y: &[f32]) -> f32 {
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

// ---------------------------------------------------------------------
// NCHWc block kernels
// ---------------------------------------------------------------------

/// Channel-block width the NCHWc layout should use on this host.
///
/// 8 lanes everywhere today: one AVX2 vector, two NEON vectors, and a
/// cheap unrolled loop on the scalar fallback. A future AVX-512 `Isa`
/// variant returns 16 here (the `Layout::Nchw16c` stride math and
/// pack/unpack are already block-generic).
#[inline]
pub fn preferred_block() -> usize {
    match isa() {
        Isa::Scalar | Isa::Avx2Fma | Isa::Neon => 8,
    }
}

/// One filter-tap update of a blocked direct convolution: for each of
/// `ow` output positions `j`,
///
/// `out_row[j·b + fo] += Σ_ci in_row[j·stride·b + ci] · w_tap[ci·b + fo]`
///
/// where `b = block`. `out_row` is one spatial row of one output
/// channel block, `in_row` the matching input row of one input channel
/// block (already offset to the tap's `kx`, padding baked into the
/// packed buffer), and `w_tap` the tap's `b×b` channel-mixing panel
/// (`[ci][fo]`, OIhw-packed). The SIMD paths broadcast one input lane
/// against a whole vector of filter lanes — this is the kernel that
/// lets stride-1 convolutions skip im2col entirely.
///
/// The vector paths keep the scalar path's per-element accumulation
/// order (`ci` ascending) but contract multiply+add into FMA, so
/// results can differ from the oracle by an ulp per update.
#[inline]
pub fn conv_nchwc_tap(
    out_row: &mut [f32],
    in_row: &[f32],
    w_tap: &[f32],
    ow: usize,
    stride: usize,
    block: usize,
) {
    debug_assert!(ow == 0 || out_row.len() >= ow * block);
    debug_assert!(ow == 0 || in_row.len() >= ((ow - 1) * stride + 1) * block);
    debug_assert!(w_tap.len() >= block * block);
    match isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2Fma` is only selected after runtime
        // AVX2+FMA detection (see [`detect`]).
        Isa::Avx2Fma if block == 8 => unsafe {
            conv_nchwc_tap8_avx2(out_row, in_row, w_tap, ow, stride)
        },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: `Neon` is only selected on AArch64, where NEON
        // is a baseline feature.
        Isa::Neon if block % 4 == 0 => unsafe {
            conv_nchwc_tap_neon(out_row, in_row, w_tap, ow, stride, block)
        },
        _ => conv_nchwc_tap_scalar(out_row, in_row, w_tap, ow, stride, block),
    }
}

/// Scalar oracle for [`conv_nchwc_tap`].
#[inline]
pub fn conv_nchwc_tap_scalar(
    out_row: &mut [f32],
    in_row: &[f32],
    w_tap: &[f32],
    ow: usize,
    stride: usize,
    block: usize,
) {
    for j in 0..ow {
        let out = &mut out_row[j * block..(j + 1) * block];
        let x = &in_row[j * stride * block..j * stride * block + block];
        for (ci, &xv) in x.iter().enumerate() {
            let w = &w_tap[ci * block..(ci + 1) * block];
            for (o, &wv) in out.iter_mut().zip(w) {
                *o += xv * wv;
            }
        }
    }
}

/// In-place ReLU: `x[i] ← max(x[i], 0)` — the activation half of the
/// fused conv+ReLU tile, applied while the tile is still cache-hot.
#[inline]
pub fn relu_inplace(x: &mut [f32]) {
    match isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2Fma` is only selected after runtime
        // AVX2+FMA detection (see [`detect`]).
        Isa::Avx2Fma => unsafe { relu_inplace_avx2(x) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: `Neon` is only selected on AArch64, where NEON
        // is a baseline feature.
        Isa::Neon => unsafe { relu_inplace_neon(x) },
        _ => relu_inplace_scalar(x),
    }
}

/// Scalar oracle for [`relu_inplace`].
#[inline]
pub fn relu_inplace_scalar(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v = v.max(0.0);
    }
}

/// Elementwise running maximum: `y[i] ← max(y[i], x[i])` — the window
/// fold of the fused max-pool stage.
#[inline]
pub fn max_assign(y: &mut [f32], x: &[f32]) {
    debug_assert_eq!(x.len(), y.len());
    match isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2Fma` is only selected after runtime
        // AVX2+FMA detection (see [`detect`]).
        Isa::Avx2Fma => unsafe { max_assign_avx2(y, x) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: `Neon` is only selected on AArch64, where NEON
        // is a baseline feature.
        Isa::Neon => unsafe { max_assign_neon(y, x) },
        _ => max_assign_scalar(y, x),
    }
}

/// Scalar oracle for [`max_assign`].
#[inline]
pub fn max_assign_scalar(y: &mut [f32], x: &[f32]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = yi.max(*xi);
    }
}

// ---------------------------------------------------------------------
// Complex slice primitive
// ---------------------------------------------------------------------

/// Pointwise complex multiply-accumulate: `out[i] += a[i] · b[i]`, or
/// `a[i] · conj(b[i])` when `conj_b` — the Fourier-domain product of
/// the FFT convolution strategy (the paper's fbfft "Cgemm" hotspot in
/// its pointwise form).
#[inline]
pub fn cmac(a: &[Complex32], b: &[Complex32], conj_b: bool, out: &mut [Complex32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    match isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2Fma` is only selected after runtime
        // AVX2+FMA detection (see [`detect`]).
        Isa::Avx2Fma => unsafe { cmac_avx2(a, b, conj_b, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: `Neon` is only selected on AArch64, where NEON
        // is a baseline feature.
        Isa::Neon => unsafe { cmac_neon(a, b, conj_b, out) },
        _ => cmac_scalar(a, b, conj_b, out),
    }
}

/// Scalar oracle for [`cmac`].
#[inline]
pub fn cmac_scalar(a: &[Complex32], b: &[Complex32], conj_b: bool, out: &mut [Complex32]) {
    for ((&x, &y), o) in a.iter().zip(b).zip(out.iter_mut()) {
        let yy = if conj_b { y.conj() } else { y };
        *o = o.mul_add(x, yy);
    }
}

// ---------------------------------------------------------------------
// AVX2 + FMA bodies
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::Complex32;
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must have verified AVX2 and FMA at runtime; the dispatch
    /// table ([`super::isa`]) is the only caller.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn saxpy_avx2(alpha: f32, x: &[f32], y: &mut [f32]) {
        debug_assert_eq!(x.len(), y.len(), "saxpy_avx2: length mismatch");
        let n = x.len().min(y.len());
        // SAFETY: intrinsics are executable because this fn only runs
        // after runtime AVX2+FMA detection. All pointer offsets stay in
        // bounds: the vector loop reads/writes `[i, i+8)` only while
        // `i + 8 <= n`, the scalar tail covers `[i, n)`, and
        // `n <= x.len(), y.len()` by construction.
        unsafe {
            let av = _mm256_set1_ps(alpha);
            let xp = x.as_ptr();
            let yp = y.as_mut_ptr();
            let mut i = 0;
            while i + 8 <= n {
                let yv = _mm256_loadu_ps(yp.add(i));
                let xv = _mm256_loadu_ps(xp.add(i));
                _mm256_storeu_ps(yp.add(i), _mm256_fmadd_ps(av, xv, yv));
                i += 8;
            }
            for j in i..n {
                *yp.add(j) += alpha * *xp.add(j);
            }
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 and FMA at runtime; the dispatch
    /// table ([`super::isa`]) is the only caller.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn scale_add_avx2(beta: f32, y: &mut [f32], x: &[f32]) {
        debug_assert_eq!(x.len(), y.len(), "scale_add_avx2: length mismatch");
        let n = x.len().min(y.len());
        // SAFETY: runs only after runtime AVX2+FMA detection; offsets
        // stay inside `x[..n]` / `y[..n]` exactly as in `saxpy_avx2`
        // (8-lane loop guarded by `i + 8 <= n`, scalar tail to `n`).
        unsafe {
            let bv = _mm256_set1_ps(beta);
            let xp = x.as_ptr();
            let yp = y.as_mut_ptr();
            let mut i = 0;
            while i + 8 <= n {
                let yv = _mm256_loadu_ps(yp.add(i));
                let xv = _mm256_loadu_ps(xp.add(i));
                _mm256_storeu_ps(yp.add(i), _mm256_fmadd_ps(bv, yv, xv));
                i += 8;
            }
            for j in i..n {
                *yp.add(j) = beta * *yp.add(j) + *xp.add(j);
            }
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 and FMA at runtime; the dispatch
    /// table ([`super::isa`]) is the only caller.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn sscal_avx2(alpha: f32, x: &mut [f32]) {
        let n = x.len();
        // SAFETY: runs only after runtime AVX2+FMA detection; the
        // 8-lane loop touches `[i, i+8)` only while `i + 8 <= n` and
        // the scalar tail stops at `n == x.len()`.
        unsafe {
            let av = _mm256_set1_ps(alpha);
            let xp = x.as_mut_ptr();
            let mut i = 0;
            while i + 8 <= n {
                _mm256_storeu_ps(xp.add(i), _mm256_mul_ps(av, _mm256_loadu_ps(xp.add(i))));
                i += 8;
            }
            for j in i..n {
                *xp.add(j) *= alpha;
            }
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 and FMA at runtime; the dispatch
    /// table ([`super::isa`]) is the only caller.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn sdot_avx2(x: &[f32], y: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), y.len(), "sdot_avx2: length mismatch");
        let n = x.len().min(y.len());
        // SAFETY: runs only after runtime AVX2+FMA detection. The
        // 32-lane loop reads `[i, i+32)` while `i + 32 <= n`, the
        // 8-lane cleanup reads `[i, i+8)` while `i + 8 <= n`, and the
        // scalar tail stops at `n` — all within both slices.
        unsafe {
            let xp = x.as_ptr();
            let yp = y.as_ptr();
            // Four independent accumulator chains hide FMA latency.
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut acc2 = _mm256_setzero_ps();
            let mut acc3 = _mm256_setzero_ps();
            let mut i = 0;
            while i + 32 <= n {
                acc0 =
                    _mm256_fmadd_ps(_mm256_loadu_ps(xp.add(i)), _mm256_loadu_ps(yp.add(i)), acc0);
                acc1 = _mm256_fmadd_ps(
                    _mm256_loadu_ps(xp.add(i + 8)),
                    _mm256_loadu_ps(yp.add(i + 8)),
                    acc1,
                );
                acc2 = _mm256_fmadd_ps(
                    _mm256_loadu_ps(xp.add(i + 16)),
                    _mm256_loadu_ps(yp.add(i + 16)),
                    acc2,
                );
                acc3 = _mm256_fmadd_ps(
                    _mm256_loadu_ps(xp.add(i + 24)),
                    _mm256_loadu_ps(yp.add(i + 24)),
                    acc3,
                );
                i += 32;
            }
            while i + 8 <= n {
                acc0 =
                    _mm256_fmadd_ps(_mm256_loadu_ps(xp.add(i)), _mm256_loadu_ps(yp.add(i)), acc0);
                i += 8;
            }
            let acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
            // Horizontal sum: fold 256 → 128 → scalar.
            let lo = _mm256_castps256_ps128(acc);
            let hi = _mm256_extractf128_ps(acc, 1);
            let s128 = _mm_add_ps(lo, hi);
            let s64 = _mm_add_ps(s128, _mm_movehl_ps(s128, s128));
            let s32 = _mm_add_ss(s64, _mm_shuffle_ps(s64, s64, 0b01));
            let mut total = _mm_cvtss_f32(s32);
            for j in i..n {
                total += *xp.add(j) * *yp.add(j);
            }
            total
        }
    }

    /// Sign mask flipping the imaginary (odd) lanes — xor-ing with it
    /// conjugates four packed [`Complex32`] values.
    ///
    /// # Safety
    /// Caller must have verified AVX at runtime (guaranteed by every
    /// caller being itself `avx2,fma` target-feature gated).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn conj_mask() -> __m256 {
        // Pure register constant: safe to call inside an `avx2`
        // target-feature fn; no inner unsafe is needed.
        _mm256_setr_ps(0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0)
    }

    /// # Safety
    /// Caller must have verified AVX2 and FMA at runtime; the dispatch
    /// table ([`super::isa`]) is the only caller.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn cmac_avx2(
        a: &[Complex32],
        b: &[Complex32],
        conj_b: bool,
        out: &mut [Complex32],
    ) {
        debug_assert_eq!(a.len(), b.len(), "cmac_avx2: length mismatch");
        debug_assert_eq!(a.len(), out.len(), "cmac_avx2: length mismatch");
        let n = a.len().min(b.len()).min(out.len());
        // SAFETY: runs only after runtime AVX2+FMA detection. Viewing
        // `&[Complex32]` as interleaved f32 is sound because Complex32
        // is `#[repr(C)] { re: f32, im: f32 }` with size 8 and align 4
        // (const-asserted next to the type); `2 * n` f32 elements span
        // exactly `n` complex elements. The 4-complex (8-f32) loop
        // reads/writes f32 offsets `[2i, 2i+8)` only while `i + 4 <= n`,
        // and the scalar tail handles `[i, n)` through safe subslices.
        unsafe {
            let ap = a.as_ptr() as *const f32;
            let bp = b.as_ptr() as *const f32;
            let op = out.as_mut_ptr() as *mut f32;
            let mask = conj_mask();
            let mut i = 0; // complex index
            while i + 4 <= n {
                let av = _mm256_loadu_ps(ap.add(2 * i));
                let mut bv = _mm256_loadu_ps(bp.add(2 * i));
                if conj_b {
                    bv = _mm256_xor_ps(bv, mask);
                }
                let ov = _mm256_loadu_ps(op.add(2 * i));
                // With b = [br, bi, …]: even lanes need +br·are − bi·aim,
                // odd lanes +br·aim + bi·are (a swapped within pairs).
                let bre = _mm256_moveldup_ps(bv); // [br, br, …]
                let bim = _mm256_movehdup_ps(bv); // [bi, bi, …]
                let aswap = _mm256_permute_ps(av, 0b1011_0001); // [ai, ar, …]
                let res = _mm256_fmadd_ps(bre, av, ov);
                let res = _mm256_addsub_ps(res, _mm256_mul_ps(bim, aswap));
                _mm256_storeu_ps(op.add(2 * i), res);
                i += 4;
            }
            super::cmac_scalar(&a[i..n], &b[i..n], conj_b, &mut out[i..n]);
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 and FMA at runtime; the dispatch
    /// table ([`super::isa`]) is the only caller. Slice lengths must
    /// satisfy `out_row.len() >= ow*8`, `w_tap.len() >= 64`, and
    /// `in_row.len() >= ((ow-1)*stride + 1)*8` (asserted).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn conv_nchwc_tap8_avx2(
        out_row: &mut [f32],
        in_row: &[f32],
        w_tap: &[f32],
        ow: usize,
        stride: usize,
    ) {
        const B: usize = 8;
        if ow == 0 {
            return;
        }
        assert!(out_row.len() >= ow * B, "conv_nchwc_tap8_avx2: out_row");
        assert!(
            in_row.len() >= ((ow - 1) * stride + 1) * B,
            "conv_nchwc_tap8_avx2: in_row"
        );
        assert!(w_tap.len() >= B * B, "conv_nchwc_tap8_avx2: w_tap");
        // SAFETY: runs only after runtime AVX2+FMA detection. Pointer
        // offsets stay in bounds by the asserts above: output vectors
        // touch `[j*8, j*8+8)` for `j < ow`, input broadcasts read lane
        // `j*stride*8 + ci` with `ci < 8` (max offset `((ow-1)*stride+1)*8
        // - 1`), and the 8 filter vectors cover `w_tap[..64]`.
        unsafe {
            let op = out_row.as_mut_ptr();
            let ip = in_row.as_ptr();
            let wp = w_tap.as_ptr();
            // The 8×8 channel-mixing panel stays resident in registers
            // for the whole row.
            let w = [
                _mm256_loadu_ps(wp),
                _mm256_loadu_ps(wp.add(8)),
                _mm256_loadu_ps(wp.add(16)),
                _mm256_loadu_ps(wp.add(24)),
                _mm256_loadu_ps(wp.add(32)),
                _mm256_loadu_ps(wp.add(40)),
                _mm256_loadu_ps(wp.add(48)),
                _mm256_loadu_ps(wp.add(56)),
            ];
            // Four output positions per iteration: the four FMA chains
            // are independent, which hides the FMA latency a single
            // accumulator chain would serialize on.
            let mut j = 0;
            while j + 4 <= ow {
                let x0 = ip.add(j * stride * B);
                let x1 = ip.add((j + 1) * stride * B);
                let x2 = ip.add((j + 2) * stride * B);
                let x3 = ip.add((j + 3) * stride * B);
                let mut a0 = _mm256_loadu_ps(op.add(j * B));
                let mut a1 = _mm256_loadu_ps(op.add((j + 1) * B));
                let mut a2 = _mm256_loadu_ps(op.add((j + 2) * B));
                let mut a3 = _mm256_loadu_ps(op.add((j + 3) * B));
                for (ci, &wv) in w.iter().enumerate() {
                    a0 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*x0.add(ci)), wv, a0);
                    a1 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*x1.add(ci)), wv, a1);
                    a2 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*x2.add(ci)), wv, a2);
                    a3 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*x3.add(ci)), wv, a3);
                }
                _mm256_storeu_ps(op.add(j * B), a0);
                _mm256_storeu_ps(op.add((j + 1) * B), a1);
                _mm256_storeu_ps(op.add((j + 2) * B), a2);
                _mm256_storeu_ps(op.add((j + 3) * B), a3);
                j += 4;
            }
            while j < ow {
                let x = ip.add(j * stride * B);
                let mut acc = _mm256_loadu_ps(op.add(j * B));
                for (ci, &wv) in w.iter().enumerate() {
                    acc = _mm256_fmadd_ps(_mm256_broadcast_ss(&*x.add(ci)), wv, acc);
                }
                _mm256_storeu_ps(op.add(j * B), acc);
                j += 1;
            }
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 and FMA at runtime; the dispatch
    /// table ([`super::isa`]) is the only caller.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn relu_inplace_avx2(x: &mut [f32]) {
        let n = x.len();
        // SAFETY: runs only after runtime AVX2+FMA detection; the
        // 8-lane loop touches `[i, i+8)` only while `i + 8 <= n` and
        // the scalar tail stops at `n == x.len()`. `maxps` returns the
        // second operand when the first is NaN, matching `f32::max`'s
        // NaN-discarding with the zero vector second.
        unsafe {
            let zero = _mm256_setzero_ps();
            let xp = x.as_mut_ptr();
            let mut i = 0;
            while i + 8 <= n {
                _mm256_storeu_ps(xp.add(i), _mm256_max_ps(_mm256_loadu_ps(xp.add(i)), zero));
                i += 8;
            }
            for j in i..n {
                *xp.add(j) = (*xp.add(j)).max(0.0);
            }
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 and FMA at runtime; the dispatch
    /// table ([`super::isa`]) is the only caller.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn max_assign_avx2(y: &mut [f32], x: &[f32]) {
        debug_assert_eq!(x.len(), y.len(), "max_assign_avx2: length mismatch");
        let n = x.len().min(y.len());
        // SAFETY: runs only after runtime AVX2+FMA detection; offsets
        // stay inside `x[..n]` / `y[..n]` (8-lane loop guarded by
        // `i + 8 <= n`, scalar tail to `n`).
        unsafe {
            let xp = x.as_ptr();
            let yp = y.as_mut_ptr();
            let mut i = 0;
            while i + 8 <= n {
                let yv = _mm256_loadu_ps(yp.add(i));
                let xv = _mm256_loadu_ps(xp.add(i));
                _mm256_storeu_ps(yp.add(i), _mm256_max_ps(yv, xv));
                i += 8;
            }
            for j in i..n {
                *yp.add(j) = (*yp.add(j)).max(*xp.add(j));
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
use avx2::{
    cmac_avx2, conv_nchwc_tap8_avx2, max_assign_avx2, relu_inplace_avx2, saxpy_avx2,
    scale_add_avx2, sdot_avx2, sscal_avx2,
};

// ---------------------------------------------------------------------
// NEON bodies
// ---------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::Complex32;
    use std::arch::aarch64::*;

    /// # Safety
    /// Caller must be on an AArch64 host (NEON is baseline there); the
    /// dispatch table ([`super::isa`]) is the only caller.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn saxpy_neon(alpha: f32, x: &[f32], y: &mut [f32]) {
        debug_assert_eq!(x.len(), y.len(), "saxpy_neon: length mismatch");
        let n = x.len().min(y.len());
        // SAFETY: NEON is an AArch64 baseline feature. All pointer
        // offsets stay in bounds: the 4-lane loop touches `[i, i+4)`
        // only while `i + 4 <= n`, the scalar tail stops at `n`, and
        // `n <= x.len(), y.len()` by construction.
        unsafe {
            let av = vdupq_n_f32(alpha);
            let xp = x.as_ptr();
            let yp = y.as_mut_ptr();
            let mut i = 0;
            while i + 4 <= n {
                let yv = vld1q_f32(yp.add(i));
                let xv = vld1q_f32(xp.add(i));
                vst1q_f32(yp.add(i), vfmaq_f32(yv, av, xv));
                i += 4;
            }
            for j in i..n {
                *yp.add(j) += alpha * *xp.add(j);
            }
        }
    }

    /// # Safety
    /// Caller must be on an AArch64 host (NEON is baseline there); the
    /// dispatch table ([`super::isa`]) is the only caller.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn scale_add_neon(beta: f32, y: &mut [f32], x: &[f32]) {
        debug_assert_eq!(x.len(), y.len(), "scale_add_neon: length mismatch");
        let n = x.len().min(y.len());
        // SAFETY: NEON is an AArch64 baseline feature; offsets stay
        // inside `x[..n]` / `y[..n]` (4-lane loop guarded by
        // `i + 4 <= n`, scalar tail to `n`).
        unsafe {
            let bv = vdupq_n_f32(beta);
            let xp = x.as_ptr();
            let yp = y.as_mut_ptr();
            let mut i = 0;
            while i + 4 <= n {
                let yv = vld1q_f32(yp.add(i));
                let xv = vld1q_f32(xp.add(i));
                vst1q_f32(yp.add(i), vfmaq_f32(xv, bv, yv));
                i += 4;
            }
            for j in i..n {
                *yp.add(j) = beta * *yp.add(j) + *xp.add(j);
            }
        }
    }

    /// # Safety
    /// Caller must be on an AArch64 host (NEON is baseline there); the
    /// dispatch table ([`super::isa`]) is the only caller.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn sscal_neon(alpha: f32, x: &mut [f32]) {
        let n = x.len();
        // SAFETY: NEON is an AArch64 baseline feature; the 4-lane loop
        // touches `[i, i+4)` only while `i + 4 <= n` and the scalar
        // tail stops at `n == x.len()`.
        unsafe {
            let av = vdupq_n_f32(alpha);
            let xp = x.as_mut_ptr();
            let mut i = 0;
            while i + 4 <= n {
                vst1q_f32(xp.add(i), vmulq_f32(av, vld1q_f32(xp.add(i))));
                i += 4;
            }
            for j in i..n {
                *xp.add(j) *= alpha;
            }
        }
    }

    /// # Safety
    /// Caller must be on an AArch64 host (NEON is baseline there); the
    /// dispatch table ([`super::isa`]) is the only caller.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn sdot_neon(x: &[f32], y: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), y.len(), "sdot_neon: length mismatch");
        let n = x.len().min(y.len());
        // SAFETY: NEON is an AArch64 baseline feature. The 16-lane loop
        // reads `[i, i+16)` while `i + 16 <= n`, the 4-lane cleanup
        // reads `[i, i+4)` while `i + 4 <= n`, and the scalar tail
        // stops at `n` — all within both slices.
        unsafe {
            let xp = x.as_ptr();
            let yp = y.as_ptr();
            let mut acc0 = vdupq_n_f32(0.0);
            let mut acc1 = vdupq_n_f32(0.0);
            let mut acc2 = vdupq_n_f32(0.0);
            let mut acc3 = vdupq_n_f32(0.0);
            let mut i = 0;
            while i + 16 <= n {
                acc0 = vfmaq_f32(acc0, vld1q_f32(xp.add(i)), vld1q_f32(yp.add(i)));
                acc1 = vfmaq_f32(acc1, vld1q_f32(xp.add(i + 4)), vld1q_f32(yp.add(i + 4)));
                acc2 = vfmaq_f32(acc2, vld1q_f32(xp.add(i + 8)), vld1q_f32(yp.add(i + 8)));
                acc3 = vfmaq_f32(acc3, vld1q_f32(xp.add(i + 12)), vld1q_f32(yp.add(i + 12)));
                i += 16;
            }
            while i + 4 <= n {
                acc0 = vfmaq_f32(acc0, vld1q_f32(xp.add(i)), vld1q_f32(yp.add(i)));
                i += 4;
            }
            let acc = vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3));
            let mut total = vaddvq_f32(acc);
            for j in i..n {
                total += *xp.add(j) * *yp.add(j);
            }
            total
        }
    }

    /// # Safety
    /// Caller must be on an AArch64 host (NEON is baseline there); the
    /// dispatch table ([`super::isa`]) is the only caller.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn cmac_neon(
        a: &[Complex32],
        b: &[Complex32],
        conj_b: bool,
        out: &mut [Complex32],
    ) {
        debug_assert_eq!(a.len(), b.len(), "cmac_neon: length mismatch");
        debug_assert_eq!(a.len(), out.len(), "cmac_neon: length mismatch");
        let n = a.len().min(b.len()).min(out.len());
        // SAFETY: NEON is an AArch64 baseline feature. Viewing
        // `&[Complex32]` as interleaved f32 is sound because Complex32
        // is `#[repr(C)] { re: f32, im: f32 }` with size 8 and align 4
        // (const-asserted next to the type). The 2-complex (4-f32) loop
        // reads/writes f32 offsets `[2i, 2i+4)` only while `i + 2 <= n`,
        // and the scalar tail handles `[i, n)` through safe subslices.
        unsafe {
            let ap = a.as_ptr() as *const f32;
            let bp = b.as_ptr() as *const f32;
            let op = out.as_mut_ptr() as *mut f32;
            // Flips the sign of the imaginary (odd) lanes.
            let conj = vreinterpretq_u32_f32(vld1q_f32([0.0f32, -0.0, 0.0, -0.0].as_ptr()));
            // Flips the sign of the real (even) lanes — used to realize
            // the addsub pattern: out += [−bi·ai, +bi·ar].
            let negeven = vreinterpretq_u32_f32(vld1q_f32([-0.0f32, 0.0, -0.0, 0.0].as_ptr()));
            let mut i = 0; // complex index
            while i + 2 <= n {
                let av = vld1q_f32(ap.add(2 * i));
                let mut bv = vld1q_f32(bp.add(2 * i));
                if conj_b {
                    bv = vreinterpretq_f32_u32(veorq_u32(vreinterpretq_u32_f32(bv), conj));
                }
                let ov = vld1q_f32(op.add(2 * i));
                let bre = vtrn1q_f32(bv, bv); // [br, br, …]
                let bim = vtrn2q_f32(bv, bv); // [bi, bi, …]
                let aswap = vrev64q_f32(av); // [ai, ar, …]
                let cross = vmulq_f32(bim, aswap); // [bi·ai, bi·ar]
                let cross = vreinterpretq_f32_u32(veorq_u32(vreinterpretq_u32_f32(cross), negeven));
                let res = vfmaq_f32(ov, bre, av);
                vst1q_f32(op.add(2 * i), vaddq_f32(res, cross));
                i += 2;
            }
            super::cmac_scalar(&a[i..n], &b[i..n], conj_b, &mut out[i..n]);
        }
    }

    /// # Safety
    /// Caller must be on an AArch64 host (NEON is baseline there); the
    /// dispatch table ([`super::isa`]) is the only caller. `block` must
    /// be a multiple of 4 (guarded at the dispatch site); slice lengths
    /// must satisfy `out_row.len() >= ow*block`, `w_tap.len() >=
    /// block*block`, and `in_row.len() >= ((ow-1)*stride + 1)*block`
    /// (asserted).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn conv_nchwc_tap_neon(
        out_row: &mut [f32],
        in_row: &[f32],
        w_tap: &[f32],
        ow: usize,
        stride: usize,
        block: usize,
    ) {
        if ow == 0 {
            return;
        }
        assert!(block % 4 == 0, "conv_nchwc_tap_neon: block % 4");
        assert!(out_row.len() >= ow * block, "conv_nchwc_tap_neon: out_row");
        assert!(
            in_row.len() >= ((ow - 1) * stride + 1) * block,
            "conv_nchwc_tap_neon: in_row"
        );
        assert!(w_tap.len() >= block * block, "conv_nchwc_tap_neon: w_tap");
        // SAFETY: NEON is an AArch64 baseline feature. Offsets stay in
        // bounds by the asserts above: output vectors touch
        // `[j*block + fo, j*block + fo + 4)` with `fo + 4 <= block`,
        // input lanes read `j*stride*block + ci` with `ci < block`, and
        // filter vectors read `[ci*block + fo, ci*block + fo + 4)`
        // within `w_tap[..block*block]`.
        unsafe {
            let op = out_row.as_mut_ptr();
            let ip = in_row.as_ptr();
            let wp = w_tap.as_ptr();
            for j in 0..ow {
                let obase = op.add(j * block);
                let xbase = ip.add(j * stride * block);
                let mut fo = 0;
                while fo + 4 <= block {
                    let mut acc = vld1q_f32(obase.add(fo));
                    for ci in 0..block {
                        let xv = vdupq_n_f32(*xbase.add(ci));
                        let wv = vld1q_f32(wp.add(ci * block + fo));
                        acc = vfmaq_f32(acc, xv, wv);
                    }
                    vst1q_f32(obase.add(fo), acc);
                    fo += 4;
                }
            }
        }
    }

    /// # Safety
    /// Caller must be on an AArch64 host (NEON is baseline there); the
    /// dispatch table ([`super::isa`]) is the only caller.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn relu_inplace_neon(x: &mut [f32]) {
        let n = x.len();
        // SAFETY: NEON is an AArch64 baseline feature; the 4-lane loop
        // touches `[i, i+4)` only while `i + 4 <= n` and the scalar
        // tail stops at `n == x.len()`.
        unsafe {
            let zero = vdupq_n_f32(0.0);
            let xp = x.as_mut_ptr();
            let mut i = 0;
            while i + 4 <= n {
                vst1q_f32(xp.add(i), vmaxq_f32(vld1q_f32(xp.add(i)), zero));
                i += 4;
            }
            for j in i..n {
                *xp.add(j) = (*xp.add(j)).max(0.0);
            }
        }
    }

    /// # Safety
    /// Caller must be on an AArch64 host (NEON is baseline there); the
    /// dispatch table ([`super::isa`]) is the only caller.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn max_assign_neon(y: &mut [f32], x: &[f32]) {
        debug_assert_eq!(x.len(), y.len(), "max_assign_neon: length mismatch");
        let n = x.len().min(y.len());
        // SAFETY: NEON is an AArch64 baseline feature; offsets stay
        // inside `x[..n]` / `y[..n]` (4-lane loop guarded by
        // `i + 4 <= n`, scalar tail to `n`).
        unsafe {
            let xp = x.as_ptr();
            let yp = y.as_mut_ptr();
            let mut i = 0;
            while i + 4 <= n {
                vst1q_f32(
                    yp.add(i),
                    vmaxq_f32(vld1q_f32(yp.add(i)), vld1q_f32(xp.add(i))),
                );
                i += 4;
            }
            for j in i..n {
                *yp.add(j) = (*yp.add(j)).max(*xp.add(j));
            }
        }
    }
}

#[cfg(target_arch = "aarch64")]
use neon::{
    cmac_neon, conv_nchwc_tap_neon, max_assign_neon, relu_inplace_neon, saxpy_neon, scale_add_neon,
    sdot_neon, sscal_neon,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn rand_cvec(len: usize, seed: u64) -> Vec<Complex32> {
        let raw = rand_vec(2 * len, seed);
        raw.chunks(2).map(|p| Complex32::new(p[0], p[1])).collect()
    }

    #[test]
    fn isa_is_stable_and_named() {
        let a = isa();
        assert_eq!(a, isa());
        assert!(!isa_name().is_empty());
        assert_eq!(Isa::Scalar.name(), "scalar");
        assert_eq!(Isa::Scalar.level(), 0);
    }

    /// Serializes the tests that toggle the process-global force flag,
    /// and lets them restore whatever state (env-driven or not) they
    /// found.
    static FORCE_MUTEX: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn force_scalar_overrides_dispatch() {
        let _guard = FORCE_MUTEX.lock().unwrap();
        let before = force_scalar();
        set_force_scalar(true);
        assert_eq!(isa(), Isa::Scalar);
        set_force_scalar(false);
        assert_eq!(isa(), detected());
        set_force_scalar(before);
    }

    /// Every dispatched primitive must agree with its scalar oracle on
    /// lengths that cover remainders (0, 1, lane-1, lane, lane+1, big).
    #[test]
    fn primitives_match_scalar_oracle() {
        for len in [0usize, 1, 3, 7, 8, 9, 31, 32, 33, 100] {
            let x = rand_vec(len, 1 + len as u64);
            let y0 = rand_vec(len, 2 + len as u64);

            let mut y = y0.clone();
            saxpy(1.5, &x, &mut y);
            let mut yref = y0.clone();
            saxpy_scalar(1.5, &x, &mut yref);
            for (a, b) in y.iter().zip(&yref) {
                assert!((a - b).abs() < 1e-5, "saxpy len {len}: {a} vs {b}");
            }

            let mut y = y0.clone();
            scale_add(-0.75, &mut y, &x);
            let mut yref = y0.clone();
            scale_add_scalar(-0.75, &mut yref, &x);
            for (a, b) in y.iter().zip(&yref) {
                assert!((a - b).abs() < 1e-5, "scale_add len {len}: {a} vs {b}");
            }

            let mut y = y0.clone();
            sscal(0.5, &mut y);
            let mut yref = y0.clone();
            sscal_scalar(0.5, &mut yref);
            assert_eq!(y, yref, "sscal len {len}");

            let d = sdot(&x, &y0);
            let dref = sdot_scalar(&x, &y0);
            assert!(
                (d - dref).abs() <= 1e-5 * (len.max(1) as f32),
                "sdot len {len}: {d} vs {dref}"
            );
        }
    }

    /// The blocked conv tap and its helpers must agree with their
    /// scalar oracles across block widths, strides, and row lengths
    /// that exercise both the 4-position unrolled loop and its tail.
    #[test]
    fn nchwc_kernels_match_scalar_oracle() {
        assert_eq!(preferred_block() % 4, 0, "kernels assume 4-lane blocks");
        for block in [4usize, 8, 16] {
            for ow in [0usize, 1, 3, 4, 5, 9, 26] {
                for stride in [1usize, 2] {
                    let in_len = if ow == 0 {
                        block
                    } else {
                        ((ow - 1) * stride + 1) * block
                    };
                    let x = rand_vec(in_len, (block + ow * 3 + stride) as u64);
                    let w = rand_vec(block * block, (block * 7 + ow) as u64);
                    let o0 = rand_vec(ow * block, (block + ow + 11) as u64);

                    let mut o = o0.clone();
                    conv_nchwc_tap(&mut o, &x, &w, ow, stride, block);
                    let mut oref = o0.clone();
                    conv_nchwc_tap_scalar(&mut oref, &x, &w, ow, stride, block);
                    for (a, b) in o.iter().zip(&oref) {
                        assert!(
                            (a - b).abs() < 1e-4,
                            "conv_nchwc_tap b={block} ow={ow} s={stride}: {a} vs {b}"
                        );
                    }
                }
            }
        }

        for len in [0usize, 1, 7, 8, 9, 33, 100] {
            let x0 = rand_vec(len, 21 + len as u64);
            let mut x = x0.clone();
            relu_inplace(&mut x);
            let mut xref = x0.clone();
            relu_inplace_scalar(&mut xref);
            assert_eq!(x, xref, "relu_inplace len {len}");
            assert!(x.iter().all(|v| *v >= 0.0));

            let y0 = rand_vec(len, 22 + len as u64);
            let mut y = y0.clone();
            max_assign(&mut y, &x0);
            let mut yref = y0.clone();
            max_assign_scalar(&mut yref, &x0);
            assert_eq!(y, yref, "max_assign len {len}");
        }
    }

    #[test]
    fn cmac_matches_scalar_oracle() {
        for len in [0usize, 1, 2, 3, 4, 5, 17, 64] {
            for conj_b in [false, true] {
                let a = rand_cvec(len, 3 + len as u64);
                let b = rand_cvec(len, 4 + len as u64);
                let o0 = rand_cvec(len, 5 + len as u64);

                let mut o = o0.clone();
                cmac(&a, &b, conj_b, &mut o);
                let mut oref = o0;
                cmac_scalar(&a, &b, conj_b, &mut oref);
                for (x, y) in o.iter().zip(&oref) {
                    assert!(
                        (*x - *y).abs() < 1e-5,
                        "cmac len {len} conj {conj_b}: {x} vs {y}"
                    );
                }
            }
        }
    }

    /// The scalar path must produce bit-identical results when reached
    /// through the dispatcher with the override pinned.
    #[test]
    fn forced_scalar_is_bit_identical_to_oracle() {
        let _guard = FORCE_MUTEX.lock().unwrap();
        let before = force_scalar();
        let x = rand_vec(37, 7);
        let y0 = rand_vec(37, 8);
        set_force_scalar(true);
        let mut y = y0.clone();
        saxpy(2.5, &x, &mut y);
        let d = sdot(&x, &y);
        set_force_scalar(before);
        let mut yref = y0;
        saxpy_scalar(2.5, &x, &mut yref);
        assert_eq!(y, yref);
        assert_eq!(d, sdot_scalar(&x, &yref));
    }
}
