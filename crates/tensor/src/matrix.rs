//! Row-major `f32` matrix used by the GEMM substrate and the unrolling
//! convolution strategy.

use crate::error::TensorError;
use crate::shape::Shape2;
use crate::Result;

/// An owned, contiguous, row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    shape: Shape2,
    data: Vec<f32>,
}

impl Matrix {
    /// A zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            shape: Shape2::new(rows, cols),
            data: vec![0.0; rows * cols],
        }
    }

    /// Wrap an existing buffer of length `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::shape(
                "Matrix::from_vec",
                rows * cols,
                data.len(),
            ));
        }
        Ok(Matrix {
            shape: Shape2::new(rows, cols),
            data,
        })
    }

    /// Build a matrix by evaluating `f(row, col)` everywhere.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix {
            shape: Shape2::new(rows, cols),
            data,
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.shape.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.shape.cols
    }

    /// The matrix shape.
    #[inline]
    pub fn shape(&self) -> Shape2 {
        self.shape
    }

    /// Immutable view of the backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[self.shape.offset(r, c)]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        let off = self.shape.offset(r, c);
        self.data[off] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let start = r * self.shape.cols;
        &self.data[start..start + self.shape.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let start = r * self.shape.cols;
        let cols = self.shape.cols;
        &mut self.data[start..start + cols]
    }

    /// Out-of-place transpose.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols(), self.rows());
        for r in 0..self.rows() {
            for c in 0..self.cols() {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Maximum absolute difference against another matrix of the same
    /// shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::shape(
                "Matrix::max_abs_diff",
                self.shape,
                other.shape,
            ));
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max))
    }

    /// Fill with zeros, reusing the allocation.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn from_vec_validates() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn identity_diagonal() {
        let i = Matrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(i.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        let t = m.transposed();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.get(4, 2), m.get(2, 4));
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn row_mut_updates() {
        let mut m = Matrix::zeros(2, 2);
        m.row_mut(1).copy_from_slice(&[3.0, 4.0]);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn diff_checks_shape() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(a.max_abs_diff(&b).is_err());
    }
}
