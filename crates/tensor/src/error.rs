//! Error type shared by tensor operations.

use std::fmt;

/// Errors raised by shape-checked tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that must agree do not.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// The shape that was expected.
        expected: String,
        /// The shape that was provided.
        got: String,
    },
    /// A dimension that must be non-zero was zero, or an index was out of
    /// bounds.
    InvalidDimension {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Details of the offending dimension.
        detail: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, expected, got } => {
                write!(f, "{op}: shape mismatch (expected {expected}, got {got})")
            }
            TensorError::InvalidDimension { op, detail } => {
                write!(f, "{op}: invalid dimension ({detail})")
            }
        }
    }
}

impl std::error::Error for TensorError {}

impl TensorError {
    /// Construct a [`TensorError::ShapeMismatch`].
    pub fn shape(op: &'static str, expected: impl fmt::Display, got: impl fmt::Display) -> Self {
        TensorError::ShapeMismatch {
            op,
            expected: expected.to_string(),
            got: got.to_string(),
        }
    }

    /// Construct a [`TensorError::InvalidDimension`].
    pub fn dim(op: &'static str, detail: impl fmt::Display) -> Self {
        TensorError::InvalidDimension {
            op,
            detail: detail.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::shape("add", "2x2", "3x3");
        assert_eq!(e.to_string(), "add: shape mismatch (expected 2x2, got 3x3)");
    }

    #[test]
    fn display_invalid_dimension() {
        let e = TensorError::dim("pool", "window 0");
        assert_eq!(e.to_string(), "pool: invalid dimension (window 0)");
    }
}
