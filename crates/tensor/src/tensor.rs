//! The owned 4-D feature-map tensor.

use crate::error::TensorError;
use crate::shape::Shape4;
use crate::Result;

/// An owned, contiguous, NCHW-ordered `f32` tensor.
///
/// This is the universal currency between layers and convolution
/// strategies in the workspace: inputs, filter banks (`n` = filter count,
/// `c` = input channels), gradients and feature maps are all `Tensor4`s.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor4 {
    shape: Shape4,
    data: Vec<f32>,
}

impl Tensor4 {
    /// A zero-filled tensor of the given shape.
    // AUDIT: cold-path — owned-tensor constructor for setup, weights, and
    // tests; hot paths check out workspace scratch instead.
    pub fn zeros(shape: Shape4) -> Self {
        Tensor4 {
            shape,
            data: vec![0.0; shape.len()],
        }
    }

    /// A tensor filled with a constant value.
    pub fn full(shape: Shape4, value: f32) -> Self {
        Tensor4 {
            shape,
            data: vec![value; shape.len()],
        }
    }

    /// Wrap an existing buffer. The buffer length must equal
    /// `shape.len()`.
    pub fn from_vec(shape: Shape4, data: Vec<f32>) -> Result<Self> {
        if data.len() != shape.len() {
            return Err(TensorError::shape(
                "Tensor4::from_vec",
                shape.len(),
                data.len(),
            ));
        }
        Ok(Tensor4 { shape, data })
    }

    /// Build a tensor by evaluating `f(n, c, h, w)` at every index.
    pub fn from_fn(shape: Shape4, mut f: impl FnMut(usize, usize, usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for n in 0..shape.n {
            for c in 0..shape.c {
                for h in 0..shape.h {
                    for w in 0..shape.w {
                        data.push(f(n, c, h, w));
                    }
                }
            }
        }
        Tensor4 { shape, data }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// Immutable view of the backing buffer (NCHW order).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer (NCHW order).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.offset(n, c, h, w)]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let off = self.shape.offset(n, c, h, w);
        self.data[off] = v;
    }

    /// Add `v` to element `(n, c, h, w)`.
    #[inline]
    pub fn add_at(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let off = self.shape.offset(n, c, h, w);
        self.data[off] += v;
    }

    /// The contiguous `h×w` plane of image `n`, channel `c`.
    pub fn plane(&self, n: usize, c: usize) -> &[f32] {
        let start = self.shape.offset(n, c, 0, 0);
        &self.data[start..start + self.shape.plane_len()]
    }

    /// Mutable `h×w` plane of image `n`, channel `c`.
    pub fn plane_mut(&mut self, n: usize, c: usize) -> &mut [f32] {
        let start = self.shape.offset(n, c, 0, 0);
        let len = self.shape.plane_len();
        &mut self.data[start..start + len]
    }

    /// The contiguous image `n` (all channels).
    pub fn image(&self, n: usize) -> &[f32] {
        let start = self.shape.offset(n, 0, 0, 0);
        &self.data[start..start + self.shape.image_len()]
    }

    /// Mutable image `n` (all channels).
    pub fn image_mut(&mut self, n: usize) -> &mut [f32] {
        let start = self.shape.offset(n, 0, 0, 0);
        let len = self.shape.image_len();
        &mut self.data[start..start + len]
    }

    /// Split the tensor into per-image mutable chunks — the rayon-friendly
    /// accessor used by parallel layer implementations.
    pub fn images_mut(&mut self) -> std::slice::ChunksMut<'_, f32> {
        let len = self.shape.image_len().max(1);
        self.data.chunks_mut(len)
    }

    /// Reinterpret as a matrix of shape `(rows, cols)`; total element
    /// count must match.
    pub fn reshape_matrix(&self, rows: usize, cols: usize) -> Result<crate::Matrix> {
        if rows * cols != self.data.len() {
            return Err(TensorError::shape(
                "Tensor4::reshape_matrix",
                self.data.len(),
                rows * cols,
            ));
        }
        crate::Matrix::from_vec(rows, cols, self.data.clone())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum absolute difference against another tensor of the same
    /// shape. Used pervasively by cross-strategy correctness tests.
    pub fn max_abs_diff(&self, other: &Tensor4) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::shape(
                "Tensor4::max_abs_diff",
                self.shape,
                other.shape,
            ));
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max))
    }

    /// Relative L2 distance `‖a−b‖₂ / max(‖a‖₂, ε)` against another
    /// tensor; tolerant comparison for FFT-vs-direct checks where f32
    /// rounding differs.
    pub fn rel_l2_dist(&self, other: &Tensor4) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::shape(
                "Tensor4::rel_l2_dist",
                self.shape,
                other.shape,
            ));
        }
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (a, b) in self.data.iter().zip(&other.data) {
            num += ((a - b) as f64).powi(2);
            den += (*a as f64).powi(2);
        }
        Ok((num.sqrt() / den.sqrt().max(1e-12)) as f32)
    }

    /// In-place scaled add: `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor4) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::shape("Tensor4::axpy", self.shape, other.shape));
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Fill with zeros, reusing the allocation.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let t = Tensor4::zeros(Shape4::new(1, 2, 2, 2));
        assert_eq!(t.sum(), 0.0);
        let t = Tensor4::full(Shape4::new(1, 2, 2, 2), 1.5);
        assert_eq!(t.sum(), 12.0);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![0.0; 3]).is_err());
        assert!(Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![0.0; 4]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor4::zeros(Shape4::new(2, 3, 4, 5));
        t.set(1, 2, 3, 4, 7.5);
        assert_eq!(t.get(1, 2, 3, 4), 7.5);
        t.add_at(1, 2, 3, 4, 0.5);
        assert_eq!(t.get(1, 2, 3, 4), 8.0);
    }

    #[test]
    fn from_fn_indexing() {
        let t = Tensor4::from_fn(Shape4::new(2, 2, 2, 2), |n, c, h, w| {
            (n * 1000 + c * 100 + h * 10 + w) as f32
        });
        assert_eq!(t.get(1, 0, 1, 0), 1010.0);
        assert_eq!(t.get(0, 1, 0, 1), 101.0);
    }

    #[test]
    fn plane_and_image_views() {
        let t = Tensor4::from_fn(Shape4::new(2, 2, 2, 2), |n, c, h, w| {
            (n * 8 + c * 4 + h * 2 + w) as f32
        });
        assert_eq!(t.plane(1, 1), &[12.0, 13.0, 14.0, 15.0]);
        assert_eq!(t.image(0).len(), 8);
        assert_eq!(t.image(1)[0], 8.0);
    }

    #[test]
    fn axpy_and_diff() {
        let a = Tensor4::full(Shape4::new(1, 1, 2, 2), 1.0);
        let mut b = Tensor4::full(Shape4::new(1, 1, 2, 2), 2.0);
        b.axpy(0.5, &a).unwrap();
        assert_eq!(b.get(0, 0, 0, 0), 2.5);
        assert_eq!(b.max_abs_diff(&a).unwrap(), 1.5);
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = Tensor4::zeros(Shape4::new(1, 1, 2, 2));
        let mut b = Tensor4::zeros(Shape4::new(1, 1, 2, 3));
        assert!(b.axpy(1.0, &a).is_err());
        assert!(a.max_abs_diff(&b).is_err());
        assert!(a.rel_l2_dist(&b).is_err());
    }

    #[test]
    fn rel_l2_identical_is_zero() {
        let a = Tensor4::from_fn(Shape4::new(1, 2, 3, 4), |n, c, h, w| {
            (n + c + h + w) as f32 * 0.1
        });
        assert_eq!(a.rel_l2_dist(&a).unwrap(), 0.0);
    }

    #[test]
    fn reshape_matrix() {
        let t = Tensor4::from_fn(Shape4::new(1, 2, 2, 3), |_, c, h, w| {
            (c * 6 + h * 3 + w) as f32
        });
        let m = t.reshape_matrix(2, 6).unwrap();
        assert_eq!(m.get(1, 0), 6.0);
        assert!(t.reshape_matrix(5, 5).is_err());
    }

    #[test]
    fn images_mut_chunks() {
        let mut t = Tensor4::zeros(Shape4::new(3, 1, 2, 2));
        for (i, img) in t.images_mut().enumerate() {
            img.iter_mut().for_each(|x| *x = i as f32);
        }
        assert_eq!(t.get(2, 0, 1, 1), 2.0);
        assert_eq!(t.get(0, 0, 0, 0), 0.0);
    }
}
