//! `im2col` / `col2im` — the unrolling primitives.
//!
//! Paper §II-B, "Unrolling Based Convolution": *"The local regions of
//! input image are unrolled into columns and the filter banks are
//! unrolled into rows using im2col. The final convolution can be
//! converted into a clean and efficient matrix-matrix production […]
//! Finally, the results should be remapped back to the proper dimension
//! using col2im."*
//!
//! These are the CPU ground-truth versions of the `im2col_gpu_kernel` /
//! `col2im_gpu_kernel` hotspots the paper identifies in Caffe, Torch-cunn
//! and Theano-CorrMM (Fig. 4).

use crate::matrix::Matrix;
use crate::shape::Shape4;
use crate::tensor::Tensor4;

/// Spatial geometry of an unrolled convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input spatial height.
    pub in_h: usize,
    /// Input spatial width.
    pub in_w: usize,
    /// Number of input channels.
    pub channels: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Stride (same in both axes).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvGeometry {
    /// Output spatial height: `(in_h + 2·pad − kernel) / stride + 1`.
    pub const fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Output spatial width.
    pub const fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Rows of the unrolled column matrix: `channels · kernel²`.
    pub const fn col_rows(&self) -> usize {
        self.channels * self.kernel * self.kernel
    }

    /// Columns of the unrolled column matrix: `out_h · out_w`.
    pub const fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Whether the geometry is valid (kernel fits inside the padded
    /// input and stride is non-zero).
    pub const fn is_valid(&self) -> bool {
        self.stride > 0
            && self.kernel > 0
            && self.channels > 0
            && self.in_h + 2 * self.pad >= self.kernel
            && self.in_w + 2 * self.pad >= self.kernel
    }
}

/// Valid output range `[lo, hi)` along one axis for kernel tap `kt`:
/// the outputs whose input coordinate `o·s + kt − p` lands inside
/// `[0, in_dim)`. Empty ranges come back as `(0, 0)`.
const fn tap_range(out_dim: usize, in_dim: usize, kt: usize, s: usize, p: usize) -> (usize, usize) {
    let lo = if kt >= p { 0 } else { (p - kt).div_ceil(s) };
    let hi = if in_dim + p > kt {
        let h = (in_dim + p - 1 - kt) / s + 1;
        if h < out_dim {
            h
        } else {
            out_dim
        }
    } else {
        0
    };
    if lo < hi {
        (lo, hi)
    } else {
        (0, 0)
    }
}

/// Unroll one image (`image` = the `c·h·w` slice of a [`Tensor4`]) into a
/// row-major `(c·k·k) × (out_h·out_w)` column buffer.
///
/// Row `(c, kh, kw)` and column `(oh, ow)` holds input element
/// `(c, oh·s + kh − pad, ow·s + kw − pad)`, or zero when that falls in
/// the padding. Only the padding halo is zero-filled: each row's valid
/// `(oh, ow)` rectangle is computed up front and its interior copied
/// without per-element bounds tests (contiguously for stride 1 — the
/// overwhelmingly common case in the paper's configuration sweeps).
pub fn im2col_into(image: &[f32], geom: &ConvGeometry, cols: &mut [f32]) {
    let _span = gcnn_trace::span("tensor.im2col");
    debug_assert!(geom.is_valid(), "im2col: invalid geometry {geom:?}");
    debug_assert_eq!(image.len(), geom.channels * geom.in_h * geom.in_w);
    debug_assert_eq!(cols.len(), geom.col_rows() * geom.col_cols());

    let (out_h, out_w) = (geom.out_h(), geom.out_w());
    let (k, s, p) = (geom.kernel, geom.stride, geom.pad);
    let (in_h, in_w) = (geom.in_h, geom.in_w);
    let plane = in_h * in_w;
    let o2 = out_h * out_w;

    let mut row = 0;
    for c in 0..geom.channels {
        let src = &image[c * plane..(c + 1) * plane];
        for kh in 0..k {
            let (oh_lo, oh_hi) = tap_range(out_h, in_h, kh, s, p);
            for kw in 0..k {
                let dst = &mut cols[row * o2..(row + 1) * o2];
                row += 1;
                let (ow_lo, ow_hi) = tap_range(out_w, in_w, kw, s, p);
                if oh_lo == oh_hi || ow_lo == ow_hi {
                    // The tap never leaves the padding.
                    dst.fill(0.0);
                    continue;
                }
                // Zero only the halo: rows above/below the valid band…
                dst[..oh_lo * out_w].fill(0.0);
                dst[oh_hi * out_w..].fill(0.0);
                for oh in oh_lo..oh_hi {
                    let seg = &mut dst[oh * out_w..(oh + 1) * out_w];
                    // …and the left/right margins of each valid row.
                    seg[..ow_lo].fill(0.0);
                    seg[ow_hi..].fill(0.0);
                    let ih = oh * s + kh - p;
                    if s == 1 {
                        let iw0 = ow_lo + kw - p;
                        seg[ow_lo..ow_hi].copy_from_slice(
                            &src[ih * in_w + iw0..ih * in_w + iw0 + ow_hi - ow_lo],
                        );
                    } else {
                        for (ow, slot) in seg[ow_lo..ow_hi].iter_mut().enumerate() {
                            *slot = src[ih * in_w + (ow_lo + ow) * s + kw - p];
                        }
                    }
                }
            }
        }
    }
}

/// [`im2col_into`] writing into a [`Matrix`] of shape
/// `(c·k·k, out_h·out_w)`.
pub fn im2col(image: &[f32], geom: &ConvGeometry, cols: &mut Matrix) {
    debug_assert_eq!(cols.rows(), geom.col_rows());
    debug_assert_eq!(cols.cols(), geom.col_cols());
    im2col_into(image, geom, cols.as_mut_slice());
}

/// Fold a column matrix back into an image, *accumulating* overlapping
/// contributions — the adjoint of [`im2col`], used by the backward-data
/// pass.
pub fn col2im_from(cols: &[f32], geom: &ConvGeometry, image: &mut [f32]) {
    let _span = gcnn_trace::span("tensor.col2im");
    debug_assert!(geom.is_valid(), "col2im: invalid geometry {geom:?}");
    debug_assert_eq!(image.len(), geom.channels * geom.in_h * geom.in_w);
    debug_assert_eq!(cols.len(), geom.col_rows() * geom.col_cols());

    image.fill(0.0);
    let (out_h, out_w) = (geom.out_h(), geom.out_w());
    let (k, s, p) = (geom.kernel, geom.stride, geom.pad);
    let (in_h, in_w) = (geom.in_h, geom.in_w);
    let plane = in_h * in_w;
    let o2 = out_h * out_w;

    let mut row = 0;
    for c in 0..geom.channels {
        let dst = &mut image[c * plane..(c + 1) * plane];
        for kh in 0..k {
            let (oh_lo, oh_hi) = tap_range(out_h, in_h, kh, s, p);
            for kw in 0..k {
                let src = &cols[row * o2..(row + 1) * o2];
                row += 1;
                let (ow_lo, ow_hi) = tap_range(out_w, in_w, kw, s, p);
                // Taps that land in the padding contribute nothing; only
                // the valid (oh, ow) band is walked.
                for oh in oh_lo..oh_hi {
                    let ih = oh * s + kh - p;
                    let srow = &src[oh * out_w + ow_lo..oh * out_w + ow_hi];
                    if s == 1 {
                        let iw0 = ow_lo + kw - p;
                        crate::simd::add_assign(
                            &mut dst[ih * in_w + iw0..ih * in_w + iw0 + ow_hi - ow_lo],
                            srow,
                        );
                    } else {
                        for (ow, v) in srow.iter().enumerate() {
                            dst[ih * in_w + (ow_lo + ow) * s + kw - p] += v;
                        }
                    }
                }
            }
        }
    }
}

/// [`col2im_from`] reading from a [`Matrix`].
pub fn col2im(cols: &Matrix, geom: &ConvGeometry, image: &mut [f32]) {
    debug_assert_eq!(cols.rows(), geom.col_rows());
    debug_assert_eq!(cols.cols(), geom.col_cols());
    col2im_from(cols.as_slice(), geom, image);
}

/// Unroll a filter bank `(f, c, k, k)` into the `(f, c·k·k)` row matrix
/// that left-multiplies the im2col output.
pub fn filters_to_rows(filters: &Tensor4) -> Matrix {
    let s = filters.shape();
    Matrix::from_vec(s.n, s.c * s.h * s.w, filters.as_slice().to_vec())
        .expect("filters_to_rows: contiguous filter bank")
}

/// Re-roll a `(f, c·k·k)` row matrix into a filter bank tensor.
pub fn rows_to_filters(rows: &Matrix, shape: Shape4) -> Tensor4 {
    assert_eq!(rows.rows(), shape.n, "rows_to_filters: filter count");
    assert_eq!(
        rows.cols(),
        shape.c * shape.h * shape.w,
        "rows_to_filters: filter volume"
    );
    Tensor4::from_vec(shape, rows.as_slice().to_vec()).expect("rows_to_filters: size checked")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(in_hw: usize, c: usize, k: usize, s: usize, p: usize) -> ConvGeometry {
        ConvGeometry {
            in_h: in_hw,
            in_w: in_hw,
            channels: c,
            kernel: k,
            stride: s,
            pad: p,
        }
    }

    #[test]
    fn geometry_output_sizes() {
        let g = geom(128, 3, 11, 1, 0);
        assert_eq!(g.out_h(), 118);
        assert_eq!(g.col_rows(), 3 * 121);
        assert_eq!(g.col_cols(), 118 * 118);
        let g = geom(32, 1, 3, 2, 1);
        assert_eq!(g.out_h(), 16);
    }

    #[test]
    fn geometry_validity() {
        assert!(geom(8, 1, 3, 1, 0).is_valid());
        assert!(!geom(2, 1, 3, 1, 0).is_valid()); // kernel larger than input
        assert!(geom(2, 1, 3, 1, 1).is_valid()); // …but padding rescues it
        assert!(!geom(8, 1, 3, 0, 0).is_valid()); // zero stride
    }

    #[test]
    fn im2col_identity_kernel() {
        // k=1, s=1: the column matrix is just the image reshaped.
        let g = geom(3, 2, 1, 1, 0);
        let image: Vec<f32> = (0..18).map(|i| i as f32).collect();
        let mut cols = Matrix::zeros(g.col_rows(), g.col_cols());
        im2col(&image, &g, &mut cols);
        assert_eq!(cols.as_slice(), &image[..]);
    }

    #[test]
    fn im2col_known_values() {
        // 1 channel, 3x3 input [[0,1,2],[3,4,5],[6,7,8]], k=2, s=1, p=0.
        let g = geom(3, 1, 2, 1, 0);
        let image: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let mut cols = Matrix::zeros(4, 4);
        im2col(&image, &g, &mut cols);
        // Row (kh=0,kw=0): top-left of each window.
        assert_eq!(cols.row(0), &[0.0, 1.0, 3.0, 4.0]);
        // Row (kh=1,kw=1): bottom-right of each window.
        assert_eq!(cols.row(3), &[4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn im2col_padding_zeros() {
        let g = geom(2, 1, 3, 1, 1);
        let image = vec![1.0, 2.0, 3.0, 4.0];
        let mut cols = Matrix::zeros(9, 4);
        im2col(&image, &g, &mut cols);
        // Center tap (kh=1,kw=1) hits each input pixel once.
        assert_eq!(cols.row(4), &[1.0, 2.0, 3.0, 4.0]);
        // Corner tap (kh=0,kw=0) is always padding except the last window.
        assert_eq!(cols.row(0), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining
        // property of an adjoint pair, checked on a pseudo-random basis.
        let g = geom(5, 2, 3, 2, 1);
        let xlen = g.channels * g.in_h * g.in_w;
        let x: Vec<f32> = (0..xlen).map(|i| ((i * 37 % 11) as f32) - 5.0).collect();
        let mut cols = Matrix::zeros(g.col_rows(), g.col_cols());
        im2col(&x, &g, &mut cols);

        let y = Matrix::from_fn(g.col_rows(), g.col_cols(), |r, c| {
            ((r * 13 + c * 7) % 9) as f32 - 4.0
        });
        let mut folded = vec![0.0f32; xlen];
        col2im(&y, &g, &mut folded);

        let lhs: f32 = cols
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x.iter().zip(&folded).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0));
    }

    #[test]
    fn filters_roundtrip() {
        let shape = Shape4::new(4, 3, 2, 2);
        let filters = Tensor4::from_fn(shape, |n, c, h, w| (n * 100 + c * 10 + h * 2 + w) as f32);
        let rows = filters_to_rows(&filters);
        assert_eq!(rows.rows(), 4);
        assert_eq!(rows.cols(), 12);
        assert_eq!(rows_to_filters(&rows, shape), filters);
    }
}
