//! Elementwise and reduction helpers shared by layers and tests.

use crate::matrix::Matrix;
use crate::tensor::Tensor4;
use rayon::prelude::*;

/// `y ← alpha·x + y` over raw slices (lengths must match).
/// Dispatches to the SIMD path selected by [`crate::simd::isa`].
#[inline]
pub fn saxpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    crate::simd::saxpy(alpha, x, y);
}

/// `x ← alpha·x` over a raw slice.
/// Dispatches to the SIMD path selected by [`crate::simd::isa`].
#[inline]
pub fn sscal(alpha: f32, x: &mut [f32]) {
    crate::simd::sscal(alpha, x);
}

/// Dot product of two slices.
/// Dispatches to the SIMD path selected by [`crate::simd::isa`].
#[inline]
pub fn sdot(x: &[f32], y: &[f32]) -> f32 {
    crate::simd::sdot(x, y)
}

/// Parallel elementwise map over a tensor, in place.
pub fn map_inplace(t: &mut Tensor4, f: impl Fn(f32) -> f32 + Sync) {
    t.as_mut_slice().par_iter_mut().for_each(|x| *x = f(*x));
}

/// Parallel elementwise binary zip: `out[i] = f(a[i], b[i])`.
///
/// # Panics
/// Panics if the shapes differ.
pub fn zip_map(a: &Tensor4, b: &Tensor4, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor4 {
    assert_eq!(a.shape(), b.shape(), "zip_map: shape mismatch");
    let data: Vec<f32> = a
        .as_slice()
        .par_iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| f(x, y))
        .collect();
    Tensor4::from_vec(a.shape(), data).expect("zip_map: same length as input")
}

/// Index of the maximum element of a slice (first occurrence).
pub fn argmax(x: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in x.iter().enumerate() {
        if v > x[best] {
            best = i;
        }
    }
    best
}

/// Out-of-place blocked matrix transpose (cache-friendlier than the
/// naive loop in [`Matrix::transposed`] for large matrices).
pub fn transpose_blocked(src: &Matrix, block: usize) -> Matrix {
    assert!(block > 0, "transpose_blocked: zero block");
    let (r, c) = (src.rows(), src.cols());
    let mut out = Matrix::zeros(c, r);
    for rb in (0..r).step_by(block) {
        for cb in (0..c).step_by(block) {
            for i in rb..(rb + block).min(r) {
                for j in cb..(cb + block).min(c) {
                    out.set(j, i, src.get(i, j));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape4;

    #[test]
    fn saxpy_and_sscal() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        saxpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
        sscal(0.5, &mut y);
        assert_eq!(y, [6.0, 12.0, 18.0]);
    }

    #[test]
    fn sdot_known() {
        assert_eq!(sdot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn map_and_zip() {
        let mut t = Tensor4::full(Shape4::new(1, 1, 2, 2), -2.0);
        map_inplace(&mut t, |x| x.max(0.0));
        assert_eq!(t.sum(), 0.0);

        let a = Tensor4::full(Shape4::new(1, 1, 2, 2), 3.0);
        let b = Tensor4::full(Shape4::new(1, 1, 2, 2), 4.0);
        let c = zip_map(&a, &b, |x, y| x * y);
        assert_eq!(c.sum(), 48.0);
    }

    #[test]
    fn argmax_first_occurrence() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 2.0]), 1);
        assert_eq!(argmax(&[-3.0]), 0);
    }

    #[test]
    fn blocked_transpose_matches_naive() {
        let m = Matrix::from_fn(13, 29, |r, c| (r * 29 + c) as f32);
        for block in [1, 4, 8, 64] {
            assert_eq!(transpose_blocked(&m, block), m.transposed());
        }
    }
}
