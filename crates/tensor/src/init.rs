//! Deterministic random initialization helpers.
//!
//! All experiment inputs in this workspace are synthetic (the paper's
//! measurements are shape-driven, not data-driven), so reproducibility
//! matters more than entropy: every generator takes an explicit seed.

use crate::matrix::Matrix;
use crate::shape::Shape4;
use crate::tensor::Tensor4;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A tensor with i.i.d. uniform values in `[lo, hi)`.
pub fn uniform_tensor(shape: Shape4, lo: f32, hi: f32, seed: u64) -> Tensor4 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let data = (0..shape.len()).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor4::from_vec(shape, data).expect("uniform_tensor: length matches shape")
}

/// A matrix with i.i.d. uniform values in `[lo, hi)`.
pub fn uniform_matrix(rows: usize, cols: usize, lo: f32, hi: f32, seed: u64) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Matrix::from_vec(rows, cols, data).expect("uniform_matrix: length matches shape")
}

/// Xavier/Glorot-style uniform initialization for a filter bank of shape
/// `(f, c, k, k)`: bound `sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_filters(shape: Shape4, seed: u64) -> Tensor4 {
    let fan_in = (shape.c * shape.h * shape.w) as f32;
    let fan_out = (shape.n * shape.h * shape.w) as f32;
    let bound = (6.0 / (fan_in + fan_out)).sqrt();
    uniform_tensor(shape, -bound, bound, seed)
}

/// i.i.d. standard-normal-ish values via the sum of 4 uniforms
/// (Irwin–Hall, variance-normalized) — cheap, deterministic, and good
/// enough for synthetic image content.
pub fn gaussian_tensor(shape: Shape4, mean: f32, std: f32, seed: u64) -> Tensor4 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let data = (0..shape.len())
        .map(|_| {
            let s: f32 = (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).sum();
            // Sum of 4 U(-1,1) has variance 4/3; normalize to unit.
            mean + std * s * (3.0f32 / 4.0).sqrt()
        })
        .collect();
    Tensor4::from_vec(shape, data).expect("gaussian_tensor: length matches shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let s = Shape4::new(2, 3, 4, 4);
        let a = uniform_tensor(s, -1.0, 1.0, 42);
        let b = uniform_tensor(s, -1.0, 1.0, 42);
        let c = uniform_tensor(s, -1.0, 1.0, 43);
        assert_eq!(a, b);
        assert!(a.max_abs_diff(&c).unwrap() > 0.0);
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = uniform_tensor(Shape4::new(1, 1, 32, 32), 2.0, 3.0, 7);
        assert!(t.as_slice().iter().all(|&x| (2.0..3.0).contains(&x)));
    }

    #[test]
    fn xavier_bound_shrinks_with_fan() {
        let small = xavier_filters(Shape4::new(4, 1, 3, 3), 1);
        let large = xavier_filters(Shape4::new(512, 512, 3, 3), 1);
        let max_small = small.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let max_large = large.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        assert!(max_large < max_small);
    }

    #[test]
    fn gaussian_moments_roughly_match() {
        let t = gaussian_tensor(Shape4::new(4, 4, 32, 32), 1.0, 2.0, 5);
        let n = t.shape().len() as f32;
        let mean = t.sum() / n;
        let var = t.as_slice().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.2, "std {}", var.sqrt());
    }

    #[test]
    fn uniform_matrix_shape() {
        let m = uniform_matrix(3, 5, 0.0, 1.0, 9);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 5);
    }
}
