//! # gcnn-tensor
//!
//! Tensor substrate for the `gcnn` workspace — the Rust reproduction of
//! *Performance Analysis of GPU-based Convolutional Neural Networks*
//! (Li et al., ICPP 2016).
//!
//! This crate provides the data structures every other crate builds on:
//!
//! * [`Shape4`] / [`Shape2`] — dimension bookkeeping for 4-D feature maps
//!   (mini-batch × channels × height × width) and 2-D matrices.
//! * [`Tensor4`] — an owned, contiguous, `f32`, NCHW-ordered 4-D tensor.
//! * [`Matrix`] — an owned, contiguous, row-major `f32` matrix.
//! * [`Complex32`] — a minimal complex number for the FFT substrate.
//! * [`Layout`] — NCHW vs. CHWN (the paper's "BDHW" vs. "HWBD" fbfft
//!   layouts map onto these plus explicit transposes), plus the
//!   channel-blocked `NCHW{8,16}c` variants whose pack/unpack kernels
//!   live in [`nchwc`].
//! * `im2col`/`col2im` — the unrolling primitives behind Caffe-style
//!   convolution (paper §II-B, "Unrolling Based Convolution").
//! * Zero-padding / cropping used by the FFT convolution strategy.
//!
//! Everything is deterministic and `f32`-exact so that the three
//! convolution strategies implemented in `gcnn-conv` can be cross-checked
//! bit-for-bit against a naive reference.

pub mod complex;
pub mod error;
pub mod im2col;
pub mod init;
pub mod layout;
pub mod matrix;
pub mod nchwc;
pub mod ops;
pub mod pad;
pub mod shape;
pub mod simd;
pub mod tensor;
pub mod workspace;

pub use complex::Complex32;
pub use error::TensorError;
pub use layout::Layout;
pub use matrix::Matrix;
pub use shape::{Shape2, Shape4};
pub use tensor::Tensor4;
pub use workspace::{Scratch, Workspace};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
