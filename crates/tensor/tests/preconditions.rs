//! Debug-build precondition tests for the SIMD dispatchers: mismatched
//! buffer lengths must trip the `debug_assert!` guards *before* any
//! pointer arithmetic runs. The whole file is gated on
//! `debug_assertions` because release CI compiles the asserts away
//! (the guards are defense-in-depth, not release-mode bounds checks —
//! see DESIGN.md "Soundness auditing").

#![cfg(debug_assertions)]

use gcnn_tensor::complex::Complex32;
use gcnn_tensor::simd;

#[test]
#[should_panic]
fn saxpy_rejects_length_mismatch() {
    let x = [1.0f32; 8];
    let mut y = [0.0f32; 7];
    simd::saxpy(2.0, &x, &mut y);
}

#[test]
#[should_panic]
fn scale_add_rejects_length_mismatch() {
    let x = [1.0f32; 5];
    let mut y = [0.0f32; 9];
    simd::scale_add(0.5, &mut y, &x);
}

#[test]
#[should_panic]
fn sdot_rejects_length_mismatch() {
    let x = [1.0f32; 16];
    let y = [1.0f32; 12];
    let _ = simd::sdot(&x, &y);
}

#[test]
#[should_panic]
fn cmac_rejects_operand_length_mismatch() {
    let a = [Complex32::ZERO; 8];
    let b = [Complex32::ZERO; 6];
    let mut out = [Complex32::ZERO; 8];
    simd::cmac(&a, &b, false, &mut out);
}

#[test]
#[should_panic]
fn cmac_rejects_output_length_mismatch() {
    let a = [Complex32::ZERO; 8];
    let b = [Complex32::ZERO; 8];
    let mut out = [Complex32::ZERO; 4];
    simd::cmac(&a, &b, false, &mut out);
}
