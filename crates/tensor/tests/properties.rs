//! Property-based tests for the tensor substrate.

use gcnn_tensor::im2col::{col2im, im2col, ConvGeometry};
use gcnn_tensor::layout::{relayout, Layout};
use gcnn_tensor::pad::{crop_planes, flip_planes, pad_planes};
use gcnn_tensor::{Matrix, Shape4};
use proptest::prelude::*;

fn small_shape() -> impl Strategy<Value = Shape4> {
    (1usize..4, 1usize..4, 1usize..8, 1usize..8).prop_map(|(n, c, h, w)| Shape4::new(n, c, h, w))
}

proptest! {
    #[test]
    fn pad_crop_roundtrip(shape in small_shape(), top in 0usize..3, left in 0usize..3, extra_h in 0usize..3, extra_w in 0usize..3, seed in 0u64..1000) {
        let t = gcnn_tensor::init::uniform_tensor(shape, -1.0, 1.0, seed);
        let padded = pad_planes(&t, shape.h + top + extra_h, shape.w + left + extra_w, top, left);
        let back = crop_planes(&padded, shape.h, shape.w, top, left);
        prop_assert_eq!(back, t);
    }

    #[test]
    fn pad_preserves_sum(shape in small_shape(), seed in 0u64..1000) {
        let t = gcnn_tensor::init::uniform_tensor(shape, 0.0, 1.0, seed);
        let padded = pad_planes(&t, shape.h + 4, shape.w + 4, 2, 2);
        prop_assert!((padded.sum() - t.sum()).abs() < 1e-3 * t.sum().abs().max(1.0));
    }

    #[test]
    fn flip_involution(shape in small_shape(), seed in 0u64..1000) {
        let t = gcnn_tensor::init::uniform_tensor(shape, -1.0, 1.0, seed);
        prop_assert_eq!(flip_planes(&flip_planes(&t)), t);
    }

    #[test]
    fn relayout_roundtrip_any_pair(shape in small_shape(), seed in 0u64..1000,
                                   a in 0usize..3, b in 0usize..3) {
        let layouts = [Layout::Nchw, Layout::Chwn, Layout::Hwcn];
        let (from, to) = (layouts[a], layouts[b]);
        let t = gcnn_tensor::init::uniform_tensor(shape, -1.0, 1.0, seed);
        let dims = (shape.n, shape.c, shape.h, shape.w);
        let mut mid = vec![0.0; shape.len()];
        let mut back = vec![0.0; shape.len()];
        relayout(t.as_slice(), &mut mid, dims, from, to);
        relayout(&mid, &mut back, dims, to, from);
        prop_assert_eq!(back, t.as_slice().to_vec());
    }

    /// NCHW → NCHWc → NCHW is the identity for any channel count,
    /// including remainders (`c % block != 0`), any block, and any baked
    /// spatial padding — the contract `Network::infer_ws` relies on at
    /// every layout transition.
    #[test]
    fn nchwc_pack_unpack_roundtrip(
        shape in small_shape(),
        wide_c in 1usize..20,
        block_sel in 0usize..2,
        pad in 0usize..3,
        seed in 0u64..1000,
    ) {
        use gcnn_tensor::nchwc::{pack_nchwc_into, packed_len, unpack_nchwc_from};
        // Stretch the channel axis past the block width so remainder
        // lanes (and multi-block counts) are actually exercised.
        let shape = Shape4::new(shape.n, wide_c, shape.h, shape.w);
        let block = [8usize, 16][block_sel];
        let t = gcnn_tensor::init::uniform_tensor(shape, -1.0, 1.0, seed);
        // Remainder lanes and padded borders must be zero, never NaN —
        // the conv kernels read them unconditionally.
        let mut padded = vec![f32::NAN; packed_len(shape, block, pad)];
        pack_nchwc_into(t.as_slice(), shape, block, pad, &mut padded);
        prop_assert!(padded.iter().all(|v| v.is_finite()));
        // Unpack works on pad-0 buffers (the only form the network
        // ever unpacks) and must be the exact inverse of pack.
        let mut packed = vec![f32::NAN; packed_len(shape, block, 0)];
        pack_nchwc_into(t.as_slice(), shape, block, 0, &mut packed);
        let mut back = vec![0.0f32; shape.len()];
        unpack_nchwc_from(&packed, shape, block, &mut back);
        prop_assert_eq!(back.as_slice(), t.as_slice());
    }

    /// Repacking a pad-0 packed buffer to a padded one preserves every
    /// interior value (the packed-to-packed transition between adjacent
    /// blocked conv layers).
    #[test]
    fn nchwc_repad_preserves_interior(
        shape in small_shape(),
        wide_c in 1usize..20,
        pad in 1usize..3,
        seed in 0u64..1000,
    ) {
        use gcnn_tensor::nchwc::{pack_nchwc_into, packed_len, repad_packed};
        let shape = Shape4::new(shape.n, wide_c, shape.h, shape.w);
        let block = 8usize;
        let t = gcnn_tensor::init::uniform_tensor(shape, -1.0, 1.0, seed);
        let mut tight = vec![0.0f32; packed_len(shape, block, 0)];
        pack_nchwc_into(t.as_slice(), shape, block, 0, &mut tight);
        let mut padded = vec![0.0f32; packed_len(shape, block, pad)];
        repad_packed(&tight, shape, block, pad, &mut padded);
        let mut direct = vec![0.0f32; packed_len(shape, block, pad)];
        pack_nchwc_into(t.as_slice(), shape, block, pad, &mut direct);
        prop_assert_eq!(padded, direct);
    }

    /// im2col followed by summing each column group equals a box filter —
    /// here we only check the adjoint identity <im2col(x), y> = <x, col2im(y)>,
    /// which pins both functions to each other.
    #[test]
    fn im2col_col2im_adjoint(
        in_hw in 3usize..9,
        channels in 1usize..3,
        kernel in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        let geom = ConvGeometry { in_h: in_hw, in_w: in_hw, channels, kernel, stride, pad };
        prop_assume!(geom.is_valid());
        let xlen = channels * in_hw * in_hw;
        let x = gcnn_tensor::init::uniform_matrix(1, xlen, -1.0, 1.0, seed);
        let mut cols = Matrix::zeros(geom.col_rows(), geom.col_cols());
        im2col(x.as_slice(), &geom, &mut cols);
        let y = gcnn_tensor::init::uniform_matrix(geom.col_rows(), geom.col_cols(), -1.0, 1.0, seed + 1);
        let mut folded = vec![0.0f32; xlen];
        col2im(&y, &geom, &mut folded);

        let lhs: f32 = cols.as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.as_slice().iter().zip(&folded).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0), "lhs {lhs} rhs {rhs}");
    }

    /// Every element that im2col extracts comes from the input or padding.
    #[test]
    fn im2col_values_come_from_input(
        in_hw in 3usize..7,
        kernel in 1usize..4,
        stride in 1usize..3,
        seed in 0u64..1000,
    ) {
        let geom = ConvGeometry { in_h: in_hw, in_w: in_hw, channels: 1, kernel, stride, pad: 0 };
        prop_assume!(geom.is_valid());
        let x = gcnn_tensor::init::uniform_matrix(1, in_hw * in_hw, 0.5, 1.5, seed);
        let mut cols = Matrix::zeros(geom.col_rows(), geom.col_cols());
        im2col(x.as_slice(), &geom, &mut cols);
        for &v in cols.as_slice() {
            prop_assert!(x.as_slice().contains(&v));
        }
    }
}
