//! Fixture-file tests: each file under `tests/fixtures/` exercises one
//! lint with deliberate violations (or their absence). The fixtures are
//! plain text to the auditor — cargo never compiles them.

use std::path::Path;

use gcnn_audit::{audit_file, AuditConfig, Lint};

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn cfg() -> AuditConfig {
    AuditConfig::default()
}

#[test]
fn missing_safety_flags_fn_block_and_impl() {
    let src = fixture("missing_safety.rs");
    let d = audit_file(
        "crates/tensor/src/fix.rs",
        &src,
        "gcnn-tensor",
        false,
        &cfg(),
    );
    let safety: Vec<_> = d.iter().filter(|x| x.lint == Lint::SafetyComment).collect();
    assert_eq!(safety.len(), 3, "{d:?}");
    let msgs: Vec<&str> = safety.iter().map(|x| x.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("`unsafe fn`")));
    assert!(msgs.iter().any(|m| m.contains("`unsafe` block")));
    assert!(msgs.iter().any(|m| m.contains("`unsafe impl`")));
}

#[test]
fn documented_safety_is_clean() {
    let src = fixture("documented_safety.rs");
    let d = audit_file(
        "crates/tensor/src/fix.rs",
        &src,
        "gcnn-tensor",
        false,
        &cfg(),
    );
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn arena_violations_are_reported_per_site_with_lines() {
    let src = fixture("arena_violation.rs");
    // The fixture impersonates the unroll hot path via its audit path.
    let d = audit_file(
        "crates/conv/src/unroll.rs",
        &src,
        "gcnn-conv",
        false,
        &cfg(),
    );
    let arena: Vec<_> = d
        .iter()
        .filter(|x| x.lint == Lint::ArenaDiscipline)
        .collect();
    assert_eq!(arena.len(), 4, "{d:?}");
    assert!(arena.iter().any(|x| x.message.contains("`Vec::new`")));
    assert!(arena.iter().any(|x| x.message.contains("`vec!` macro")));
    assert!(arena.iter().any(|x| x.message.contains("`.to_vec()`")));
    assert!(arena.iter().any(|x| x.message.contains("`Box::new`")));
    // `cold_path`'s to_vec and the test module's vec! are exempt, and
    // every reported line falls inside `fn forward`'s body.
    assert!(
        arena.iter().all(|x| (7..=11).contains(&x.line)),
        "{arena:?}"
    );
}

#[test]
fn trace_bad_names_flagged_good_names_and_tests_exempt() {
    let src = fixture("trace_bad_name.rs");
    let d = audit_file("crates/core/src/fix.rs", &src, "gcnn-core", false, &cfg());
    let trace: Vec<_> = d.iter().filter(|x| x.lint == Lint::TraceNaming).collect();
    assert_eq!(trace.len(), 3, "{d:?}");
    assert!(trace.iter().any(|x| x.message.contains("\"sgemm\"")));
    assert!(trace.iter().any(|x| x.message.contains("\"Cache.Hits\"")));
    assert!(trace.iter().any(|x| x.message.contains("\"mem\"")));
}

#[test]
fn containment_rejects_even_documented_unsafe() {
    let src = fixture("forbidden_unsafe.rs");
    let d = audit_file("crates/conv/src/fix.rs", &src, "gcnn-conv", false, &cfg());
    let cont: Vec<_> = d
        .iter()
        .filter(|x| x.lint == Lint::UnsafeContainment)
        .collect();
    assert_eq!(cont.len(), 1, "{d:?}");
    assert!(cont[0].message.contains("gcnn-conv"));
    // The same file inside a kernel crate is fine.
    let ok = audit_file(
        "crates/tensor/src/fix.rs",
        &src,
        "gcnn-tensor",
        false,
        &cfg(),
    );
    assert!(ok.is_empty(), "{ok:?}");
}

#[test]
fn crate_root_without_forbid_is_flagged_only_outside_allowlist() {
    let src = fixture("missing_forbid_root.rs");
    let d = audit_file("crates/conv/src/lib.rs", &src, "gcnn-conv", true, &cfg());
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].lint, Lint::UnsafeContainment);
    assert!(d[0].message.contains("#![forbid(unsafe_code)]"));
    // Kernel crates are exempt from the root requirement…
    let kernel = audit_file("crates/fft/src/lib.rs", &src, "gcnn-fft", true, &cfg());
    assert!(kernel.is_empty(), "{kernel:?}");
    // …and non-root files of non-kernel crates don't need the attr.
    let nonroot = audit_file("crates/conv/src/other.rs", &src, "gcnn-conv", false, &cfg());
    assert!(nonroot.is_empty(), "{nonroot:?}");
}
