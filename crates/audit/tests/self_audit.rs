//! The auditor's acceptance test: the workspace that ships the auditor
//! must itself audit clean. Any new undocumented unsafe, containment
//! leak, hot-path allocation, or off-convention trace name fails this
//! test (and `scripts/verify.sh`, and the CI `audit` job).

use std::path::Path;

use gcnn_audit::{audit_workspace, AuditConfig};

#[test]
fn workspace_audits_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = audit_workspace(&root, &AuditConfig::default()).expect("walk workspace");
    assert!(
        report.crates_scanned >= 22,
        "expected the full workspace (crates + vendor + tests + examples), \
         scanned only {} units",
        report.crates_scanned
    );
    assert!(
        report.files_scanned >= 100,
        "expected the full workspace, scanned only {} files",
        report.files_scanned
    );
    assert!(
        report.fn_items >= 500 && report.call_edges >= 1000,
        "call graph looks truncated: {} fns / {} edges",
        report.fn_items,
        report.call_edges
    );
    assert!(
        report.diagnostics.is_empty(),
        "workspace must audit clean:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Regression test for the v1 blind spot: the auditor used to scan only
/// `crates/*`, so workspace-level integration tests and example
/// binaries escaped the forbid-unsafe and trace-naming passes entirely.
/// The paper-claims suite is the load-bearing case — it must be visited.
#[test]
fn workspace_tests_and_examples_are_visited() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = audit_workspace(&root, &AuditConfig::default()).expect("walk workspace");
    assert!(
        report.files.iter().any(|f| f == "tests/paper_claims.rs"),
        "tests/paper_claims.rs must be audited; visited: {:?}",
        report
            .files
            .iter()
            .filter(|f| f.starts_with("tests/"))
            .collect::<Vec<_>>()
    );
    assert!(
        report.files.iter().any(|f| f.starts_with("examples/")),
        "example binaries must be audited"
    );
}

/// The staleness guarantee against the real tree: if any hand-listed
/// hot function disappeared from the workspace (renamed, deleted), the
/// audit fails instead of silently auditing nothing. Simulated by
/// renaming one configured root to a name that cannot exist.
#[test]
fn deleting_a_hot_function_is_caught_by_staleness() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut cfg = AuditConfig::default();
    let first = &mut cfg.hot_paths[0].functions[0];
    let victim = first.clone();
    *first = format!("{victim}_deleted_in_a_refactor");
    let report = audit_workspace(&root, &cfg).expect("walk workspace");
    assert!(
        report.diagnostics.iter().any(|d| {
            d.lint == gcnn_audit::Lint::ConfigStaleness
                && d.message.contains("_deleted_in_a_refactor")
        }),
        "staleness lint must catch the missing root `{victim}`:\n{:?}",
        report.diagnostics
    );
}

/// The JSON diagnostics document CI uploads must stay parseable and
/// carry the counters the problem-matcher workflow reports.
#[test]
fn json_report_is_well_formed() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = audit_workspace(&root, &AuditConfig::default()).expect("walk workspace");
    let json = gcnn_audit::report_to_json(&report);
    for key in [
        "\"tool\": \"gcnn-audit\"",
        "\"schema_version\": 2",
        "\"crates_scanned\"",
        "\"files_scanned\"",
        "\"fn_items\"",
        "\"call_edges\"",
        "\"violations\"",
        "\"diagnostics\"",
    ] {
        assert!(json.contains(key), "JSON report missing {key}:\n{json}");
    }
    assert!(
        json.ends_with("}\n") && json.starts_with('{'),
        "not a JSON object"
    );
}

/// The serving crate's admission/pop pair is on the default
/// arena-discipline list: a `Vec::new` slipped into `offer` or
/// `pop_batch_into` (both run under the batcher mutex on every
/// request) must fail the audit, not just a code review.
#[test]
fn default_policy_covers_serve_batcher() {
    let cfg = AuditConfig::default();
    let hot = cfg
        .hot_paths
        .iter()
        .find(|h| "crates/serve/src/batcher.rs".ends_with(&h.file_suffix))
        .expect("serve batcher must be a registered hot path");
    for f in ["offer", "pop_batch_into"] {
        assert!(
            hot.functions.iter().any(|g| g == f),
            "serve hot path must audit `{f}`"
        );
    }
}

/// The NCHWc layout kernels are covered on both sides: the pack/unpack
/// family in `gcnn-tensor` and the fused tile kernels in `gcnn-conv`
/// run per inference inside `alloc_scope`-asserted paths, so a stray
/// allocation must fail the audit. The conv crate also stays on the
/// no-unsafe side of the containment line — the blocked path vectorizes
/// through the safe `simd` wrappers, not raw intrinsics.
#[test]
fn default_policy_covers_nchwc_kernels() {
    let cfg = AuditConfig::default();
    let cases: [(&str, &[&str]); 2] = [
        (
            "crates/tensor/src/nchwc.rs",
            &[
                "pack_nchwc_into",
                "unpack_nchwc_from",
                "pack_filters_into",
                "repad_packed",
            ],
        ),
        (
            "crates/conv/src/nchwc.rs",
            &[
                "forward_tile",
                "fused_conv_relu",
                "fused_conv_relu_pool",
                "max_pool_tile",
            ],
        ),
    ];
    for (path, fns) in cases {
        let hot = cfg
            .hot_paths
            .iter()
            .find(|h| path.ends_with(&h.file_suffix))
            .unwrap_or_else(|| panic!("{path} must be a registered hot path"));
        for f in fns {
            assert!(
                hot.functions.iter().any(|g| g == f),
                "{path} hot path must audit `{f}`"
            );
        }
    }
    assert!(
        !cfg.allowed_unsafe.iter().any(|c| c == "gcnn-conv"),
        "gcnn-conv forbids unsafe; the blocked path must not change that"
    );
}

/// The simulator's event loop is covered from day one: `step` and
/// `dispatch` run once per simulated kernel launch, so an allocation
/// there turns an analytical simulator into a heap-churn benchmark.
/// The crate is also pure model code — it must never earn an unsafe
/// allowance.
#[test]
fn default_policy_covers_mtsim_engine() {
    let cfg = AuditConfig::default();
    let hot = cfg
        .hot_paths
        .iter()
        .find(|h| "crates/mtsim/src/engine.rs".ends_with(&h.file_suffix))
        .expect("mtsim engine must be a registered hot path");
    for f in ["Engine::step", "Engine::dispatch"] {
        assert!(
            hot.functions.iter().any(|g| g == f),
            "mtsim hot path must audit `{f}`"
        );
    }
    assert!(
        !cfg.allowed_unsafe.iter().any(|c| c == "gcnn-mtsim"),
        "the simulator is pure model code; it gets no unsafe allowance"
    );
}
