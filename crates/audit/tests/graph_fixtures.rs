//! Fixture tests for the call-graph lint families (transitive-arena,
//! lock-discipline, panic-freedom, config-staleness). Each fixture
//! under `tests/fixtures/` is fed through [`analyze_sources`] as a
//! miniature workspace with a narrow config; positive, negative, and
//! escape-hatch cases are asserted per family.

use std::path::Path;

use gcnn_audit::analysis::analyze_sources;
use gcnn_audit::{AuditConfig, Diagnostic, HotPath, Lint, SourceFile};

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn sf(rel: &str, fixture_name: &str) -> SourceFile {
    SourceFile {
        rel: rel.to_string(),
        crate_name: "gcnn-fix".to_string(),
        is_root: false,
        src: fixture(fixture_name),
    }
}

/// A config with every list empty — tests opt into exactly the names
/// their fixture defines, so staleness never fires incidentally.
fn empty_cfg() -> AuditConfig {
    AuditConfig {
        allowed_unsafe: Vec::new(),
        hot_paths: Vec::new(),
        trace_fns: Vec::new(),
        lock_order: Vec::new(),
        condvars: Vec::new(),
    }
}

fn hot_root_cfg(file_suffix: &str) -> AuditConfig {
    AuditConfig {
        hot_paths: vec![HotPath {
            file_suffix: file_suffix.to_string(),
            functions: vec!["hot_root".to_string()],
        }],
        ..empty_cfg()
    }
}

fn by_lint(diags: &[Diagnostic], lint: Lint) -> Vec<&Diagnostic> {
    diags.iter().filter(|d| d.lint == lint).collect()
}

// ---------------------------------------------------------------------------
// transitive-arena
// ---------------------------------------------------------------------------

#[test]
fn allocation_two_hops_from_root_is_caught() {
    let src = sf("crates/fix/src/hot.rs", "transitive_two_hop.rs");
    let cfg = hot_root_cfg("fix/src/hot.rs");
    let (diags, fns, edges) = analyze_sources(&[src], &cfg);
    assert_eq!(fns, 3);
    assert!(edges >= 2, "chain edges missing: {edges}");
    let arena = by_lint(&diags, Lint::TransitiveArena);
    assert_eq!(arena.len(), 1, "{diags:?}");
    assert!(arena[0].message.contains("`stage_two`"), "{}", arena[0]);
    assert!(
        arena[0]
            .message
            .contains("hot_root -> stage_one -> stage_two"),
        "diagnostic must name the concrete call chain: {}",
        arena[0]
    );
    assert!(arena[0].message.contains("`Vec::new`"));
}

#[test]
fn clean_call_chain_passes() {
    let src = sf("crates/fix/src/hot.rs", "transitive_clean.rs");
    let cfg = hot_root_cfg("fix/src/hot.rs");
    let (diags, _, _) = analyze_sources(&[src], &cfg);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn justified_cold_path_exempts_unjustified_is_flagged() {
    let src = sf("crates/fix/src/hot.rs", "transitive_cold_path.rs");
    let cfg = hot_root_cfg("fix/src/hot.rs");
    let (diags, _, _) = analyze_sources(&[src], &cfg);
    let arena = by_lint(&diags, Lint::TransitiveArena);
    // `build_plan`'s Vec::new is escaped with a justification; the only
    // finding is the bare marker on `shortcut` (whose to_vec is then
    // neither flagged nor traversed).
    assert_eq!(arena.len(), 1, "{diags:?}");
    assert!(
        arena[0].message.contains("`shortcut`") && arena[0].message.contains("justification"),
        "{}",
        arena[0]
    );
}

#[test]
fn transitive_pass_spans_files() {
    // Split root and allocating helper across two files: the call graph
    // must resolve across the workspace, not per file.
    let root = SourceFile {
        rel: "crates/fix/src/hot.rs".into(),
        crate_name: "gcnn-fix".into(),
        is_root: false,
        src: "pub fn hot_root(x: &mut [f32]) { helper_far(x); }\n".into(),
    };
    let helper = SourceFile {
        rel: "crates/fix/src/util.rs".into(),
        crate_name: "gcnn-fix".into(),
        is_root: false,
        src: "pub fn helper_far(x: &mut [f32]) { let _c = x.to_vec(); }\n".into(),
    };
    let cfg = hot_root_cfg("fix/src/hot.rs");
    let (diags, _, _) = analyze_sources(&[root, helper], &cfg);
    let arena = by_lint(&diags, Lint::TransitiveArena);
    assert_eq!(arena.len(), 1, "{diags:?}");
    assert_eq!(arena[0].file, "crates/fix/src/util.rs");
}

// ---------------------------------------------------------------------------
// lock-discipline
// ---------------------------------------------------------------------------

fn lock_cfg(order: &[&str], condvars: &[&str]) -> AuditConfig {
    AuditConfig {
        lock_order: order.iter().map(|s| s.to_string()).collect(),
        condvars: condvars.iter().map(|s| s.to_string()).collect(),
        ..empty_cfg()
    }
}

#[test]
fn inverted_lock_order_is_flagged_correct_order_passes() {
    let src = sf("crates/fix/src/locks.rs", "lock_order.rs");
    let (diags, _, _) = analyze_sources(&[src], &lock_cfg(&["counters", "gauges"], &[]));
    let locks = by_lint(&diags, Lint::LockDiscipline);
    assert_eq!(locks.len(), 1, "{diags:?}");
    assert!(
        locks[0].message.contains("`fn bad`")
            && locks[0].message.contains("counters")
            && locks[0].message.contains("gauges"),
        "{}",
        locks[0]
    );
}

#[test]
fn lock_unwrap_flagged_outside_tests_only() {
    let src = sf("crates/fix/src/locks.rs", "lock_unwrap.rs");
    let (diags, _, _) = analyze_sources(&[src], &lock_cfg(&[], &[]));
    let locks = by_lint(&diags, Lint::LockDiscipline);
    // `bad` (Mutex) and `rwlock_bad` (RwLock::read) are flagged; `good`
    // uses expect and the `#[test]` region unwrap is exempt.
    assert_eq!(locks.len(), 2, "{diags:?}");
    assert!(locks.iter().any(|d| d.message.contains("`fn bad`")));
    assert!(locks.iter().any(|d| d.message.contains("`fn rwlock_bad`")));
    assert!(locks.iter().all(|d| d.message.contains(".expect(")));
}

#[test]
fn condvar_wait_needs_a_predicate_loop() {
    let src = sf("crates/fix/src/locks.rs", "condvar_wait.rs");
    let (diags, _, _) = analyze_sources(&[src], &lock_cfg(&[], &["available"]));
    let locks = by_lint(&diags, Lint::LockDiscipline);
    // Only `bad`'s wait inside an `if` fires; the `while` and
    // `loop`-with-break forms both pass.
    assert_eq!(locks.len(), 1, "{diags:?}");
    assert!(
        locks[0].message.contains("`fn bad`") && locks[0].message.contains("spuriously"),
        "{}",
        locks[0]
    );
}

// ---------------------------------------------------------------------------
// panic-freedom
// ---------------------------------------------------------------------------

fn kernel_cfg() -> AuditConfig {
    AuditConfig {
        allowed_unsafe: vec!["gcnn-fix".to_string()],
        ..empty_cfg()
    }
}

#[test]
fn unguarded_kernel_sites_are_flagged() {
    let src = sf("crates/fix/src/kern.rs", "kernel_unguarded.rs");
    let (diags, _, _) = analyze_sources(&[src], &kernel_cfg());
    let panics = by_lint(&diags, Lint::PanicFreedom);
    // Two computed index sites plus one `.unwrap()`.
    assert_eq!(panics.len(), 3, "{diags:?}");
    assert!(panics.iter().any(|d| d.message.contains("`.unwrap()`")));
    assert!(panics.iter().any(|d| d.message.contains("slice indexing")));
    assert!(panics.iter().all(|d| d.message.contains("`fn kern`")));
}

#[test]
fn debug_assert_at_entry_guards_the_body() {
    let src = sf("crates/fix/src/kern.rs", "kernel_guarded.rs");
    let (diags, _, _) = analyze_sources(&[src], &kernel_cfg());
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn bounds_comments_cover_individual_sites() {
    let src = sf("crates/fix/src/kern.rs", "kernel_bounds_comment.rs");
    let (diags, _, _) = analyze_sources(&[src], &kernel_cfg());
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn kernel_lint_only_runs_in_unsafe_allowed_crates() {
    // The same unguarded kernel in a crate outside the allowlist is the
    // containment lint's problem (per-file pass), not panic-freedom's.
    let src = sf("crates/fix/src/kern.rs", "kernel_unguarded.rs");
    let (diags, _, _) = analyze_sources(&[src], &empty_cfg());
    assert!(by_lint(&diags, Lint::PanicFreedom).is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// config-staleness
// ---------------------------------------------------------------------------

#[test]
fn fully_resolving_config_is_not_stale() {
    let src = sf("crates/fix/src/ws.rs", "stale_workspace.rs");
    let cfg = AuditConfig {
        hot_paths: vec![HotPath {
            file_suffix: "fix/src/ws.rs".into(),
            functions: vec!["hot".into()],
        }],
        trace_fns: vec!["span".into()],
        lock_order: vec!["state".into()],
        condvars: vec!["available".into()],
        ..empty_cfg()
    };
    let (diags, _, _) = analyze_sources(&[src], &cfg);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn removed_hot_function_is_caught() {
    let src = sf("crates/fix/src/ws.rs", "stale_missing_fn.rs");
    let cfg = AuditConfig {
        hot_paths: vec![HotPath {
            file_suffix: "fix/src/ws.rs".into(),
            functions: vec!["hot".into()],
        }],
        ..empty_cfg()
    };
    let (diags, _, _) = analyze_sources(&[src], &cfg);
    let stale = by_lint(&diags, Lint::ConfigStaleness);
    assert_eq!(stale.len(), 1, "{diags:?}");
    assert!(
        stale[0].message.contains("`hot`") && stale[0].message.contains("renamed or removed"),
        "{}",
        stale[0]
    );
    // Staleness anchors at the compiled-in config, where the fix goes.
    assert_eq!(stale[0].file, "crates/audit/src/lib.rs");
}

#[test]
fn missing_file_lock_and_trace_fn_are_caught() {
    let src = sf("crates/fix/src/ws.rs", "stale_workspace.rs");
    let cfg = AuditConfig {
        hot_paths: vec![HotPath {
            file_suffix: "fix/src/gone.rs".into(),
            functions: vec!["hot".into()],
        }],
        trace_fns: vec!["gauge".into()],
        lock_order: vec!["phantom".into()],
        ..empty_cfg()
    };
    let (diags, _, _) = analyze_sources(&[src], &cfg);
    let stale = by_lint(&diags, Lint::ConfigStaleness);
    assert_eq!(stale.len(), 3, "{diags:?}");
    assert!(stale.iter().any(
        |d| d.message.contains("`fix/src/gone.rs`") && d.message.contains("no workspace file")
    ));
    assert!(stale
        .iter()
        .any(|d| d.message.contains("`phantom`") && d.message.contains("lock")));
    assert!(stale
        .iter()
        .any(|d| d.message.contains("`gauge`") && d.message.contains("trace fn")));
}

#[test]
fn declared_lock_fields_satisfy_the_lock_namespace() {
    // `outer`/`inner` resolve both as receivers and as Mutex fields.
    let src = sf("crates/fix/src/ws.rs", "stale_locks.rs");
    let cfg = AuditConfig {
        lock_order: vec!["outer".into(), "inner".into()],
        ..empty_cfg()
    };
    let (diags, _, _) = analyze_sources(&[src], &cfg);
    assert!(diags.is_empty(), "{diags:?}");
}
