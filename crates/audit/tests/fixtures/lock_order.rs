//! Lock-discipline fixture: ordering. With the configured order
//! `counters > gauges` (outermost first), `bad` acquires them inverted
//! within one body; `good` follows the table.

pub fn bad(shared: &Shared) -> u64 {
    let g = shared.gauges.lock().expect("gauges lock");
    let c = shared.counters.lock().expect("counters lock");
    *g + *c
}

pub fn good(shared: &Shared) -> u64 {
    let c = shared.counters.lock().expect("counters lock");
    let g = shared.gauges.lock().expect("gauges lock");
    *c + *g
}
