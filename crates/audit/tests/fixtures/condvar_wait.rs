//! Lock-discipline fixture: condvar waits. Condition variables wake
//! spuriously, so a configured condvar's `wait`/`wait_timeout` must sit
//! inside a `while`/`loop` that re-checks the predicate.

pub fn bad(shared: &Shared) {
    let mut guard = shared.queue.lock().expect("queue lock");
    if guard.is_empty() {
        guard = shared.available.wait(guard).expect("queue lock");
    }
    drop(guard);
}

pub fn good(shared: &Shared) {
    let mut guard = shared.queue.lock().expect("queue lock");
    while guard.is_empty() {
        guard = shared.available.wait(guard).expect("queue lock");
    }
    drop(guard);
}

pub fn good_timeout(shared: &Shared) {
    let mut guard = shared.queue.lock().expect("queue lock");
    loop {
        if !guard.is_empty() {
            break;
        }
        let (g, _timed_out) = shared
            .available
            .wait_timeout(guard, TICK)
            .expect("queue lock");
        guard = g;
    }
    drop(guard);
}
