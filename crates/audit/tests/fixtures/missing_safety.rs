// Fixture: three undocumented unsafe sites — a block, a fn, an impl.
// Not compiled by cargo (tests/ subdirectories are ignored); read as
// text by tests/audit_fixtures.rs.

pub unsafe fn no_doc(p: *const u8) -> u8 {
    *p
}

pub fn block(p: *const u8) -> u8 {
    unsafe { *p }
}

struct Wrapper(*mut u8);

unsafe impl Send for Wrapper {}
