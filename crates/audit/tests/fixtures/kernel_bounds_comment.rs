//! Panic-freedom fixture, comment-covered case: each panic-capable
//! site carries a SAFETY/bounds comment within three lines above it
//! instead of a body-level assert.

#[target_feature(enable = "avx2")]
pub unsafe fn kern(x: &mut [f32], n: usize) {
    let mut acc = 0.0;
    let mut i = 0;
    while i < n {
        // in-bounds: i < n <= x.len(), checked by the dispatch wrapper
        acc += x[i];
        i += 1;
    }
    // in-bounds: n >= 1 per the wrapper's argument validation
    x[n - 1] = acc;
}
