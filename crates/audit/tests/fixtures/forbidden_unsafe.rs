// Fixture: unsafe in a crate outside the kernel allowlist. Even a
// documented site must be rejected by the containment lint.

pub fn sneaky(p: *const u8) -> u8 {
    // SAFETY: documented, but this crate may not use unsafe at all.
    unsafe { *p }
}
