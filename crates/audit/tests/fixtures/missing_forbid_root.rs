//! Fixture: a non-kernel crate root missing `#![forbid(unsafe_code)]`.

pub fn noop() {}
