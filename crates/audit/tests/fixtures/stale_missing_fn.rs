//! Config-staleness fixture: the file a config's hot path points at,
//! after the registered root was renamed away. Only `hot_renamed`
//! remains — a config still listing `hot` must be flagged.

pub fn hot_renamed(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v += 1.0;
    }
}
