//! Panic-freedom fixture, positive case: a `#[target_feature]` kernel
//! with computed slice indexing and an `.unwrap()`, no `debug_assert`
//! and no covering comment. Every site must be flagged.

#[target_feature(enable = "avx2")]
pub unsafe fn kern(x: &mut [f32], n: usize) {
    let mut acc = 0.0;
    let mut i = 0;
    while i < n {
        acc += x[i];
        i += 1;
    }
    x[n - 1] = acc;
    let _ = lookup(acc).unwrap();
}

fn lookup(v: f32) -> Option<f32> {
    Some(v)
}
