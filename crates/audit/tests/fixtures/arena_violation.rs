// Fixture: a hot-path function (matched as `forward` when the file is
// audited under the suffix `conv/src/unroll.rs`) that allocates four
// different banned ways, plus a cold function that may allocate freely
// and a test module that is exempt.

pub fn forward(xs: &[f32]) -> usize {
    let a: Vec<f32> = Vec::new();
    let b = vec![0.0f32; 8];
    let c = xs.to_vec();
    let d = Box::new(1.0f32);
    a.len() + b.len() + c.len() + (*d as usize)
}

pub fn cold_path(xs: &[f32]) -> Vec<f32> {
    xs.to_vec()
}

#[cfg(test)]
mod tests {
    pub fn forward() -> Vec<f32> {
        vec![1.0]
    }
}
