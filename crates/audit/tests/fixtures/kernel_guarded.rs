//! Panic-freedom fixture, negative case: the same kernel with its
//! preconditions asserted at entry. A `debug_assert` earlier in the
//! body guards every later site.

#[target_feature(enable = "avx2")]
pub unsafe fn kern(x: &mut [f32], n: usize) {
    debug_assert!(n >= 1 && n <= x.len(), "n within the slice");
    let mut acc = 0.0;
    let mut i = 0;
    while i < n {
        acc += x[i];
        i += 1;
    }
    x[n - 1] = acc;
    let first = x[0];
    x[0] = first + acc;
}
