// Fixture: fully documented unsafe — the auditor must accept all of it.

/// # Safety
/// Caller must pass a pointer valid for reads.
pub unsafe fn with_doc(p: *const u8) -> u8 {
    // SAFETY: validity is the caller's documented obligation.
    unsafe { *p }
}

pub fn block(p: *const u8) -> u8 {
    // SAFETY: p comes from a live reference in the only caller.
    unsafe { *p }
}

pub fn wrapped_statement(p: *mut f32, n: usize) -> usize {
    // SAFETY: the caller owns [p, p+n) exclusively; the slice borrow
    // ends before this function returns.
    let view =
        unsafe { std::slice::from_raw_parts_mut(p, n) };
    view.len()
}

pub fn dispatch_arm(x: u8) -> u8 {
    match x {
        // SAFETY: gated variant is only reached after detection.
        #[cfg(target_arch = "x86_64")]
        7 => unsafe { core::hint::unreachable_unchecked() },
        other => other,
    }
}

struct Wrapper(*mut u8);

// SAFETY: Wrapper's pointer is only dereferenced on the owning thread.
unsafe impl Send for Wrapper {}
