//! Transitive-arena fixture, escape-hatch cases: a justified
//! `// AUDIT: cold-path` exempts the helper (and stops traversal
//! through it); a bare marker without a justification is itself a
//! violation.

pub fn hot_root(x: &mut [f32]) {
    let p = build_plan(x.len());
    apply(x, &p);
    shortcut(x);
}

// AUDIT: cold-path — the plan is built once per size and memoized by
// the caller; steady-state iterations only read it.
fn build_plan(n: usize) -> Vec<f32> {
    let mut p = Vec::new();
    p.resize(n, 0.0);
    p
}

fn apply(x: &mut [f32], p: &[f32]) {
    for (v, w) in x.iter_mut().zip(p) {
        *v += *w;
    }
}

// AUDIT: cold-path
fn shortcut(x: &mut [f32]) {
    let copy = x.to_vec();
    x.copy_from_slice(&copy);
}
