// Fixture: trace-naming violations alongside conforming names.

pub fn run() {
    let _a = gcnn_trace::span("sgemm"); // bad: single segment
    let _b = gcnn_trace::span("gemm.sgemm"); // good
    gcnn_trace::counter_add("Cache.Hits", 1); // bad: uppercase
    gcnn_trace::counter_add("autotune.cache.hits", 1); // good
    gcnn_trace::gauge_set("mem", 1.0); // bad: single segment
}

#[cfg(test)]
mod tests {
    pub fn short_names_are_fine_here() {
        let _t = gcnn_trace::span("t");
    }
}
