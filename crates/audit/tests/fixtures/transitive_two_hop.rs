//! Transitive-arena fixture: the hot root allocates nothing itself,
//! but a helper two calls away does. v1's per-file lint was blind to
//! this; the call-graph pass must catch it.

pub fn hot_root(x: &mut [f32]) {
    stage_one(x);
}

fn stage_one(x: &mut [f32]) {
    stage_two(x);
}

fn stage_two(x: &mut [f32]) {
    let mut scratch: Vec<f32> = Vec::new();
    scratch.extend_from_slice(x);
    x.copy_from_slice(&scratch);
}
