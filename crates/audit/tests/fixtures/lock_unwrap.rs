//! Lock-discipline fixture: `.unwrap()` on lock results. Production
//! code must name the lock in an `.expect`; `#[test]` regions are
//! exempt (a poisoned lock in a test should just panic).

pub fn bad(shared: &Shared) -> u64 {
    let g = shared.state.lock().unwrap();
    *g
}

pub fn good(shared: &Shared) -> u64 {
    let g = shared.state.lock().expect("state lock poisoned");
    *g
}

pub fn rwlock_bad(shared: &Shared) -> u64 {
    let g = shared.table.read().unwrap();
    *g
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let g = SHARED.state.lock().unwrap();
        assert_eq!(*g, 0);
    }
}
