//! Transitive-arena fixture, negative case: the whole reachable set
//! works in place — no banned allocation anywhere in the chain.

pub fn hot_root(x: &mut [f32]) {
    stage_one(x);
}

fn stage_one(x: &mut [f32]) {
    stage_two(x);
}

fn stage_two(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v *= 2.0;
    }
}
