//! Config-staleness fixture: lock names. `inner` and `outer` are real
//! Mutex fields (declared and acquired); anything else a config lists
//! in its lock tables must be flagged as stale.

use std::sync::Mutex;

pub struct Shared {
    pub outer: Mutex<u64>,
    pub inner: Mutex<u64>,
}

pub fn touch(shared: &Shared) -> u64 {
    let o = shared.outer.lock().expect("outer lock");
    let i = shared.inner.lock().expect("inner lock");
    *o + *i
}
