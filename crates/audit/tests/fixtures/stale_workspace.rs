//! Config-staleness fixture: a miniature workspace file defining the
//! items a config can point at — a hot fn, a Mutex field, a condvar
//! field, and a trace-shaped fn.

use std::sync::{Condvar, Mutex};

pub struct Shared {
    pub state: Mutex<u64>,
    pub available: Condvar,
}

pub fn hot(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v += 1.0;
    }
}

pub fn span(name: &str) -> usize {
    name.len()
}
