//! Workspace soundness auditor entry point.
//!
//! `cargo run -p gcnn-audit [workspace-root]` — audits every `.rs`
//! file under `crates/` and `vendor/`, prints `path:line: [lint]
//! message` diagnostics, and exits non-zero if any policy is violated.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use gcnn_audit::{audit_workspace, AuditConfig};

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."));
    let report = match audit_workspace(&root, &AuditConfig::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "gcnn-audit: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    for d in &report.diagnostics {
        println!("{d}");
    }
    if report.diagnostics.is_empty() {
        println!(
            "gcnn-audit: OK — {} files across {} crates, 0 violations",
            report.files_scanned, report.crates_scanned
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "gcnn-audit: {} violation(s) in {} files across {} crates",
            report.diagnostics.len(),
            report.files_scanned,
            report.crates_scanned
        );
        ExitCode::FAILURE
    }
}
