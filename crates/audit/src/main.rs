//! Workspace soundness auditor entry point.
//!
//! `cargo run -p gcnn-audit [--format text|json] [workspace-root]` —
//! audits every `.rs` file under `crates/`, `vendor/`, `tests/`, and
//! `examples/`. The default text mode prints `path:line: [lint]
//! message` diagnostics (the format the CI problem matcher consumes);
//! `--format json` emits a machine-readable report document instead.
//! Exits non-zero if any policy is violated.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use gcnn_audit::{audit_workspace, report_to_json, AuditConfig};

enum Format {
    Text,
    Json,
}

fn usage() -> ExitCode {
    eprintln!("usage: gcnn-audit [--format text|json] [workspace-root]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => return usage(),
            },
            "--help" | "-h" => return usage(),
            _ if root.is_none() => root = Some(PathBuf::from(arg)),
            _ => return usage(),
        }
    }
    let root = root.unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."));
    let report = match audit_workspace(&root, &AuditConfig::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "gcnn-audit: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    match format {
        Format::Json => print!("{}", report_to_json(&report)),
        Format::Text => {
            for d in &report.diagnostics {
                println!("{d}");
            }
            if report.diagnostics.is_empty() {
                println!(
                    "gcnn-audit: OK — {} files across {} scan units, {} fns / {} call edges, 0 violations",
                    report.files_scanned,
                    report.crates_scanned,
                    report.fn_items,
                    report.call_edges
                );
            } else {
                eprintln!(
                    "gcnn-audit: {} violation(s) in {} files across {} scan units",
                    report.diagnostics.len(),
                    report.files_scanned,
                    report.crates_scanned
                );
            }
        }
    }
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
