//! Pass 2 of the two-pass analyzer: workspace-wide dataflow lints over
//! the call graph built from the pass-1 item table.
//!
//! Four lint families run here (the per-file token lints stay in the
//! crate root):
//!
//! * **transitive-arena** — allocation reachability. The configured
//!   hot paths are *roots*; a breadth-first walk over the call graph
//!   flags banned allocation patterns in every function reachable from
//!   a root, so a helper that allocates three calls deep is caught
//!   without anyone registering it. A `// AUDIT: cold-path — <why>`
//!   comment on a function exempts it *and* stops traversal through it;
//!   the justification text is mandatory.
//! * **lock-discipline** — `.lock()/.read()/.write()` results must not
//!   be `.unwrap()`ed outside tests (a poisoned lock deserves a named
//!   `.expect`); configured locks must be acquired in the
//!   [`AuditConfig::lock_order`] order within any one function body;
//!   `Condvar::wait` / `wait_timeout` must sit inside a `while`/`loop`
//!   that re-checks its predicate (spurious wakeups).
//! * **panic-freedom** — `unwrap`/`expect`/`panic!` and slice indexing
//!   inside `unsafe fn` / `#[target_feature]` kernel functions must be
//!   preceded by a `debug_assert` in the same body or carry a
//!   SAFETY/bounds comment within three lines above the site.
//! * **config-staleness** — every configured hot-path file and
//!   function, lock name, condvar name, and trace function must resolve
//!   against the parsed workspace (item table / observed lock
//!   receivers), so the lint config can never silently rot.

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::items::{call_sites, parse_fns, CallSite, FnItem};
use crate::lexer::{lex, Tok, TokKind};
use crate::{banned_alloc_at, test_regions, AuditConfig, Diagnostic, Lint};

/// One source file handed to the analyzer. `rel` is the
/// workspace-relative path with `/` separators.
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub rel: String,
    pub crate_name: String,
    pub is_root: bool,
    pub src: String,
}

pub(crate) struct FileData {
    pub rel: String,
    pub crate_name: String,
    pub toks: Vec<Tok>,
    pub lines: Vec<String>,
    /// Whole file is test/bench/example code.
    pub test_file: bool,
}

/// The pass-1 product: parsed files, the fn item table, the resolved
/// call graph, and the observed lock/condvar receiver names.
pub struct WorkspaceIndex {
    pub(crate) files: Vec<FileData>,
    pub fns: Vec<FnItem>,
    /// `edges[f]` = indices of fns the body of `fns[f]` may call.
    pub edges: Vec<Vec<usize>>,
    /// Identifiers observed as `.lock()`/`.read()`/`.write()`/`.wait*()`
    /// receivers or declared as `Mutex`/`RwLock`/`Condvar` fields.
    pub lock_names_seen: BTreeSet<String>,
    pub call_edge_count: usize,
}

fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
}

impl WorkspaceIndex {
    /// Build the item table and call graph for a set of source files.
    pub fn build(sources: &[SourceFile]) -> WorkspaceIndex {
        let mut files = Vec::with_capacity(sources.len());
        let mut fns: Vec<FnItem> = Vec::new();
        for (fi, s) in sources.iter().enumerate() {
            let toks = lex(&s.src);
            let regions = test_regions(&toks);
            let test_file = is_test_path(&s.rel);
            fns.extend(parse_fns(fi, &toks, &regions, test_file));
            files.push(FileData {
                rel: s.rel.clone(),
                crate_name: s.crate_name.clone(),
                toks,
                lines: s.src.lines().map(|l| l.to_string()).collect(),
                test_file,
            });
        }

        // Name → production fn indices, for call resolution.
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            if !f.in_test {
                by_name.entry(f.name.as_str()).or_default().push(i);
            }
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        let mut call_edge_count = 0;
        for (i, f) in fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let Some(body) = f.body else { continue };
            let fd = &files[f.file];
            for c in call_sites(&fd.toks, body) {
                let mut targets = resolve(&c, f, &fns, &by_name, &files);
                targets.retain(|&t| t != i);
                call_edge_count += targets.len();
                edges[i].extend(targets);
            }
            edges[i].sort_unstable();
            edges[i].dedup();
        }

        let mut lock_names_seen = BTreeSet::new();
        for fd in &files {
            collect_lock_names(&fd.toks, &mut lock_names_seen);
        }

        WorkspaceIndex {
            files,
            fns,
            edges,
            lock_names_seen,
            call_edge_count,
        }
    }

    pub(crate) fn qname(&self, i: usize) -> String {
        self.fns[i].qname()
    }
}

/// Resolve one call site to item-table candidates via the narrowest
/// non-empty scope tier: owner-qualified match, same file, same crate,
/// whole workspace.
fn resolve(
    c: &CallSite,
    caller: &FnItem,
    fns: &[FnItem],
    by_name: &HashMap<&str, Vec<usize>>,
    files: &[FileData],
) -> Vec<usize> {
    let Some(cands) = by_name.get(c.name.as_str()) else {
        return Vec::new();
    };
    if let Some(q) = &c.qualifier {
        let owned: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&t| fns[t].owner.as_deref() == Some(q.as_str()))
            .collect();
        if !owned.is_empty() {
            return owned;
        }
    }
    let same_file: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&t| fns[t].file == caller.file)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let caller_crate = &files[caller.file].crate_name;
    let same_crate: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&t| &files[fns[t].file].crate_name == caller_crate)
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    cands.clone()
}

/// Receivers of lock-shaped calls plus `Mutex`/`RwLock`/`Condvar`
/// field declarations — the namespace the configured lock names must
/// resolve against.
fn collect_lock_names(toks: &[Tok], out: &mut BTreeSet<String>) {
    for i in 2..toks.len() {
        let t = &toks[i];
        let recv_call = t.kind == TokKind::Ident
            && toks[i - 1].is_punct('.')
            && toks[i - 2].kind == TokKind::Ident
            && toks.get(i + 1).map(|x| x.is_punct('(')) == Some(true);
        if recv_call
            && [
                "lock",
                "read",
                "write",
                "wait",
                "wait_timeout",
                "wait_while",
            ]
            .iter()
            .any(|m| t.is_ident(m))
        {
            out.insert(toks[i - 2].text.clone());
        }
        // `name: Mutex<…>` / `name: RwLock<…>` / `name: Condvar` fields.
        if (t.is_ident("Mutex") || t.is_ident("RwLock") || t.is_ident("Condvar"))
            && toks[i - 1].is_punct(':')
            && toks[i - 2].kind == TokKind::Ident
        {
            out.insert(toks[i - 2].text.clone());
        }
    }
}

// ---------------------------------------------------------------------------
// Cold-path escape hatch
// ---------------------------------------------------------------------------

pub(crate) struct Escape {
    pub line: usize,
    pub justified: bool,
}

/// Scan the comment/attribute lines immediately above a fn declaration
/// for `// AUDIT: cold-path`. The marker must carry a justification on
/// the same line (text after `cold-path` beyond separators).
pub(crate) fn cold_path_escape(lines: &[String], decl_line: usize) -> Option<Escape> {
    let mut idx = decl_line as isize - 2; // 0-based line above the decl
    while idx >= 0 {
        let t = lines[idx as usize].trim();
        if t.starts_with("//") {
            if let Some(pos) = t.find("AUDIT:") {
                let rest = t[pos + "AUDIT:".len()..].trim_start();
                if let Some(tail) = rest.strip_prefix("cold-path") {
                    let why = tail.trim_matches(|c: char| {
                        c.is_whitespace() || c == '—' || c == '-' || c == ':' || c == ','
                    });
                    return Some(Escape {
                        line: idx as usize + 1,
                        justified: !why.is_empty(),
                    });
                }
            }
            idx -= 1;
        } else if t.starts_with("#[") || t.starts_with("#![") || t.ends_with(']') {
            idx -= 1;
        } else {
            return None;
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Lint family 1: transitive arena discipline
// ---------------------------------------------------------------------------

/// Resolve the configured hot-path roots against the item table.
/// Returns root fn indices; unresolvable entries become
/// `config-staleness` diagnostics (see [`lint_config_staleness`]).
pub(crate) fn resolve_roots(ix: &WorkspaceIndex, cfg: &AuditConfig) -> Vec<usize> {
    let mut roots = Vec::new();
    for hp in &cfg.hot_paths {
        let file_ids: Vec<usize> = ix
            .files
            .iter()
            .enumerate()
            .filter(|(_, f)| f.rel.ends_with(&hp.file_suffix))
            .map(|(i, _)| i)
            .collect();
        for name in &hp.functions {
            let (owner, bare) = match name.split_once("::") {
                Some((o, b)) => (Some(o), b),
                None => (None, name.as_str()),
            };
            for (i, f) in ix.fns.iter().enumerate() {
                if f.name == bare
                    && !f.in_test
                    && file_ids.contains(&f.file)
                    && owner.is_none_or(|o| f.owner.as_deref() == Some(o))
                {
                    roots.push(i);
                }
            }
        }
    }
    roots.sort_unstable();
    roots.dedup();
    roots
}

pub(crate) fn lint_transitive_arena(
    ix: &WorkspaceIndex,
    roots: &[usize],
    out: &mut Vec<Diagnostic>,
) {
    // BFS with parent tracking so each diagnostic can name one concrete
    // call chain from a root.
    let mut parent: HashMap<usize, usize> = HashMap::new();
    let mut origin: HashMap<usize, usize> = HashMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &r in roots {
        if origin.insert(r, r).is_none() {
            queue.push_back(r);
        }
    }
    while let Some(f) = queue.pop_front() {
        let item = &ix.fns[f];
        let fd = &ix.files[item.file];
        let is_root = roots.contains(&f);
        if !is_root {
            if let Some(esc) = cold_path_escape(&fd.lines, item.line) {
                if !esc.justified {
                    out.push(Diagnostic {
                        file: fd.rel.clone(),
                        line: esc.line,
                        lint: Lint::TransitiveArena,
                        message: format!(
                            "`// AUDIT: cold-path` on `{}` must carry a justification \
                             on the same line (why is this allocation acceptable?)",
                            item.qname()
                        ),
                    });
                }
                // Escaped: neither checked nor traversed through.
                continue;
            }
            // The roots' own bodies are covered by the per-file
            // arena-discipline lint; here we check everything they reach.
            if let Some(body) = item.body {
                for w in body.0..body.1 {
                    if let Some(pat) = banned_alloc_at(&fd.toks, w) {
                        out.push(Diagnostic {
                            file: fd.rel.clone(),
                            line: fd.toks[w].line,
                            lint: Lint::TransitiveArena,
                            message: format!(
                                "`{}` allocates via {pat} and is reachable from hot root \
                                 `{}` (call chain: {}); use the workspace arena or mark it \
                                 `// AUDIT: cold-path — <why>`",
                                item.qname(),
                                ix.qname(origin[&f]),
                                chain(ix, &parent, roots, f),
                            ),
                        });
                    }
                }
            }
        }
        for &callee in &ix.edges[f] {
            if ix.fns[callee].in_test {
                continue;
            }
            let root_of_f = origin[&f];
            if let std::collections::hash_map::Entry::Vacant(e) = origin.entry(callee) {
                e.insert(root_of_f);
                parent.insert(callee, f);
                queue.push_back(callee);
            }
        }
    }
}

fn chain(
    ix: &WorkspaceIndex,
    parent: &HashMap<usize, usize>,
    roots: &[usize],
    mut f: usize,
) -> String {
    let mut names = vec![ix.qname(f)];
    while !roots.contains(&f) {
        match parent.get(&f) {
            Some(&p) => {
                names.push(ix.qname(p));
                f = p;
            }
            None => break,
        }
    }
    names.reverse();
    names.join(" -> ")
}

// ---------------------------------------------------------------------------
// Lint family 2: lock discipline
// ---------------------------------------------------------------------------

pub(crate) fn lint_lock_discipline(
    ix: &WorkspaceIndex,
    cfg: &AuditConfig,
    out: &mut Vec<Diagnostic>,
) {
    for f in &ix.fns {
        if f.in_test {
            continue;
        }
        let Some(body) = f.body else { continue };
        let fd = &ix.files[f.file];
        if fd.test_file {
            continue;
        }
        lock_lints_in_body(fd, f, body, cfg, out);
    }
}

fn lock_lints_in_body(
    fd: &FileData,
    f: &FnItem,
    body: (usize, usize),
    cfg: &AuditConfig,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &fd.toks;
    let loops = loop_spans(toks, body);
    // Configured-lock acquisitions seen so far in this body, as
    // (rank, receiver). The heuristic is function-body granularity, as
    // documented: we cannot see guard drops, so an acquisition of an
    // outer lock after an inner one anywhere in the same body is
    // flagged even if the inner guard was already released.
    let mut held: Vec<(usize, String)> = Vec::new();
    let mut i = body.0 + 1;
    while i < body.1 {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !toks[i - 1].is_punct('.') {
            i += 1;
            continue;
        }
        let recv = if toks[i - 2].kind == TokKind::Ident {
            Some(toks[i - 2].text.as_str())
        } else {
            None
        };
        let is_lock = t.is_ident("lock") && toks.get(i + 1).map(|x| x.is_punct('(')) == Some(true);
        // Empty parens distinguish `RwLock::{read,write}` from
        // `io::{Read,Write}` methods, which always take a buffer.
        let is_rw = (t.is_ident("read") || t.is_ident("write"))
            && toks.get(i + 1).map(|x| x.is_punct('(')) == Some(true)
            && toks.get(i + 2).map(|x| x.is_punct(')')) == Some(true);
        if is_lock || is_rw {
            // a) ordering among configured locks.
            if let Some(recv) = recv {
                if let Some(rank) = cfg.lock_order.iter().position(|n| n == recv) {
                    if let Some((prev_rank, prev_name)) =
                        held.iter().find(|(r, _)| *r > rank).cloned()
                    {
                        out.push(Diagnostic {
                            file: fd.rel.clone(),
                            line: t.line,
                            lint: Lint::LockDiscipline,
                            message: format!(
                                "`fn {}` acquires `{recv}` after `{prev_name}` in the same \
                                 body, against the configured lock order ({}); inner locks \
                                 ({} rank {prev_rank}) must never be held when taking an \
                                 outer one (rank {rank})",
                                f.qname(),
                                cfg.lock_order.join(" > "),
                                prev_name,
                            ),
                        });
                    }
                    held.push((rank, recv.to_string()));
                }
            }
            // b) unwrap on a poisoned-lock result. Only zero-argument
            // `lock()` / `read()` / `write()` are std lock acquisitions;
            // a custom `lock(key)` is not.
            let close = i + 2;
            if toks.get(close).map(|x| x.is_punct(')')) != Some(true) {
                i += 1;
                continue;
            }
            if toks.get(close + 1).map(|x| x.is_punct('.')) == Some(true)
                && toks.get(close + 2).map(|x| x.is_ident("unwrap")) == Some(true)
            {
                out.push(Diagnostic {
                    file: fd.rel.clone(),
                    line: t.line,
                    lint: Lint::LockDiscipline,
                    message: format!(
                        "`fn {}` calls `.{}().unwrap()`; poisoned-lock results outside \
                         tests must use `.expect(\"…\")` with a message naming the lock",
                        f.qname(),
                        t.text,
                    ),
                });
            }
        }
        // c) Condvar waits must re-check their predicate in a loop.
        let is_wait = (t.is_ident("wait") || t.is_ident("wait_timeout"))
            && toks.get(i + 1).map(|x| x.is_punct('(')) == Some(true)
            && recv.is_some_and(|r| cfg.condvars.iter().any(|c| c == r));
        if is_wait && !loops.iter().any(|&(s, e)| i > s && i < e) {
            out.push(Diagnostic {
                file: fd.rel.clone(),
                line: t.line,
                lint: Lint::LockDiscipline,
                message: format!(
                    "`fn {}` calls `{}.{}` outside a `while`/`loop` body; condition \
                     variables wake spuriously, so the predicate must be re-checked \
                     in a loop around the wait",
                    f.qname(),
                    recv.unwrap_or("condvar"),
                    t.text,
                ),
            });
        }
        i += 1;
    }
}

/// Token spans of `while … {…}` and `loop {…}` bodies inside `body`.
fn loop_spans(toks: &[Tok], body: (usize, usize)) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = body.0 + 1;
    while i < body.1 {
        if toks[i].is_ident("while") || toks[i].is_ident("loop") {
            // Find the body `{` (immediately next for `loop`; past the
            // condition — which cannot contain a bare struct literal —
            // for `while`).
            let mut k = i + 1;
            let mut pdepth = 0i32;
            while k < body.1 {
                if toks[k].is_punct('(') || toks[k].is_punct('[') {
                    pdepth += 1;
                } else if toks[k].is_punct(')') || toks[k].is_punct(']') {
                    pdepth -= 1;
                } else if toks[k].is_punct('{') && pdepth == 0 {
                    break;
                }
                k += 1;
            }
            let mut bd = 0i32;
            let mut e = k;
            while e <= body.1 {
                if toks[e].is_punct('{') {
                    bd += 1;
                } else if toks[e].is_punct('}') {
                    bd -= 1;
                    if bd == 0 {
                        break;
                    }
                }
                e += 1;
            }
            spans.push((k, e.min(body.1)));
        }
        i += 1;
    }
    spans
}

// ---------------------------------------------------------------------------
// Lint family 3: panic-freedom in kernel fns
// ---------------------------------------------------------------------------

pub(crate) fn lint_panic_freedom(
    ix: &WorkspaceIndex,
    cfg: &AuditConfig,
    out: &mut Vec<Diagnostic>,
) {
    for f in &ix.fns {
        if f.in_test || !(f.is_unsafe || f.target_feature) {
            continue;
        }
        let fd = &ix.files[f.file];
        if fd.test_file || !cfg.allowed_unsafe.contains(&fd.crate_name) {
            continue;
        }
        let Some(body) = f.body else { continue };
        let toks = &fd.toks;
        // Any debug_assert earlier in the body counts as a guard for
        // sites after it — the kernels assert their preconditions at
        // entry and then index freely within the asserted extents.
        let guarded_from = toks[body.0..body.1]
            .iter()
            .position(|t| t.kind == TokKind::Ident && t.text.starts_with("debug_assert"))
            .map_or(usize::MAX, |p| body.0 + p);
        for w in body.0 + 1..body.1 {
            let t = &toks[w];
            let site = panic_site_at(toks, w);
            let Some(site) = site else { continue };
            if w > guarded_from || has_bounds_comment(&fd.lines, t.line) {
                continue;
            }
            out.push(Diagnostic {
                file: fd.rel.clone(),
                line: t.line,
                lint: Lint::PanicFreedom,
                message: format!(
                    "{site} in kernel `fn {}` ({}) is neither preceded by a \
                     `debug_assert` in this body nor covered by a SAFETY/bounds \
                     comment within 3 lines above; kernels must not panic in release",
                    f.qname(),
                    if f.target_feature {
                        "#[target_feature]"
                    } else {
                        "unsafe fn"
                    },
                ),
            });
        }
    }
}

/// A panic-capable site: `.unwrap()`, `.expect(…)`, `panic!`, or slice
/// indexing (`expr[…]` where `expr` ends in an identifier, `)` or `]`).
fn panic_site_at(toks: &[Tok], i: usize) -> Option<&'static str> {
    let t = &toks[i];
    if t.kind == TokKind::Ident && toks[i - 1].is_punct('.') {
        if t.is_ident("unwrap") && toks.get(i + 1).map(|x| x.is_punct('(')) == Some(true) {
            return Some("`.unwrap()`");
        }
        if t.is_ident("expect") && toks.get(i + 1).map(|x| x.is_punct('(')) == Some(true) {
            return Some("`.expect(…)`");
        }
    }
    if t.is_ident("panic") && toks.get(i + 1).map(|x| x.is_punct('!')) == Some(true) {
        return Some("`panic!`");
    }
    if t.is_punct('[') {
        let p = &toks[i - 1];
        let ident_recv = p.kind == TokKind::Ident
            && ![
                "mut", "ref", "dyn", "as", "in", "let", "return", "where", "else",
            ]
            .iter()
            .any(|k| p.is_ident(k));
        // `v[0]` — a lone numeric-literal index into a fixed receiver is
        // input-independent (any test run exercises it); the release
        // panic risk this lint targets is *computed* indices.
        let const_index = toks.get(i + 1).map(|x| x.kind == TokKind::Num) == Some(true)
            && toks.get(i + 2).map(|x| x.is_punct(']')) == Some(true);
        if (ident_recv || p.is_punct(')') || p.is_punct(']')) && !const_index {
            return Some("slice indexing");
        }
    }
    None
}

/// A comment mentioning SAFETY or bounds within the 3 lines above.
fn has_bounds_comment(lines: &[String], line: usize) -> bool {
    let lo = line.saturating_sub(4); // 3 lines above, 0-based
    (lo..line.saturating_sub(1)).any(|ix| {
        lines.get(ix).is_some_and(|l| {
            let t = l.trim();
            let lower = t.to_ascii_lowercase();
            t.contains("//") && (lower.contains("safety") || lower.contains("bound"))
        })
    })
}

// ---------------------------------------------------------------------------
// Lint family 4: config staleness
// ---------------------------------------------------------------------------

/// The synthetic "file" staleness diagnostics anchor to: the config is
/// compiled into the auditor, so that is where the fix goes.
pub const CONFIG_FILE: &str = "crates/audit/src/lib.rs";

pub(crate) fn lint_config_staleness(
    ix: &WorkspaceIndex,
    cfg: &AuditConfig,
    out: &mut Vec<Diagnostic>,
) {
    let stale = |message: String| Diagnostic {
        file: CONFIG_FILE.to_string(),
        line: 1,
        lint: Lint::ConfigStaleness,
        message,
    };
    for hp in &cfg.hot_paths {
        let file_ids: Vec<usize> = ix
            .files
            .iter()
            .enumerate()
            .filter(|(_, f)| f.rel.ends_with(&hp.file_suffix))
            .map(|(i, _)| i)
            .collect();
        if file_ids.is_empty() {
            out.push(stale(format!(
                "hot-path file suffix `{}` matches no workspace file; \
                 remove or update the AuditConfig entry",
                hp.file_suffix
            )));
            continue;
        }
        for name in &hp.functions {
            let (owner, bare) = match name.split_once("::") {
                Some((o, b)) => (Some(o), b),
                None => (None, name.as_str()),
            };
            let found = ix.fns.iter().any(|f| {
                f.name == bare
                    && file_ids.contains(&f.file)
                    && owner.is_none_or(|o| f.owner.as_deref() == Some(o))
            });
            if !found {
                out.push(stale(format!(
                    "hot-path root `{name}` does not resolve to any `fn` in `{}`; \
                     the function was renamed or removed — update the AuditConfig \
                     roots to match",
                    hp.file_suffix
                )));
            }
        }
    }
    for name in cfg.lock_order.iter().chain(cfg.condvars.iter()) {
        if !ix.lock_names_seen.contains(name) {
            out.push(stale(format!(
                "configured lock/condvar `{name}` is never used as a lock receiver \
                 or declared as a Mutex/RwLock/Condvar field anywhere in the \
                 workspace; update the AuditConfig lock tables",
            )));
        }
    }
    for name in &cfg.trace_fns {
        if !ix.fns.iter().any(|f| &f.name == name) {
            out.push(stale(format!(
                "configured trace fn `{name}` is not defined anywhere in the \
                 workspace; update AuditConfig::trace_fns to the real gcnn-trace API",
            )));
        }
    }
}

/// Run all graph lints. Returns the diagnostics plus index statistics
/// for the report.
pub fn analyze_sources(
    sources: &[SourceFile],
    cfg: &AuditConfig,
) -> (Vec<Diagnostic>, usize, usize) {
    let ix = WorkspaceIndex::build(sources);
    let mut out = Vec::new();
    let roots = resolve_roots(&ix, cfg);
    lint_transitive_arena(&ix, &roots, &mut out);
    lint_lock_discipline(&ix, cfg, &mut out);
    lint_panic_freedom(&ix, cfg, &mut out);
    lint_config_staleness(&ix, cfg, &mut out);
    (out, ix.fns.len(), ix.call_edge_count)
}
