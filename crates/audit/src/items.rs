//! Pass 1 of the two-pass analyzer: a lightweight per-file item table.
//!
//! [`parse_fns`] walks one file's token stream and records every `fn`
//! item — name, enclosing `impl` owner, declaring line, body token
//! span, and the `unsafe` / `#[target_feature]` flags the kernel lints
//! key on. [`call_sites`] then extracts the call-shaped token patterns
//! (`name(…)`, `Type::name(…)`, `.name(…)`, turbofish) from a body
//! span; the workspace index resolves them against the item table to
//! build the intra-workspace call graph.
//!
//! This is deliberately *not* name resolution — no imports, no types.
//! The resolver over-approximates (a method call links to every
//! workspace `fn` of that name in the narrowest non-empty scope tier),
//! which is the right direction for reachability lints: a false edge
//! can only make the audit stricter, never blind.

use crate::lexer::{Tok, TokKind};

/// One `fn` item from pass 1.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index of the owning file in the analysis file list.
    pub file: usize,
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type (last path segment), when inside one.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index of the `fn` keyword in the file's stream.
    pub fn_tok: usize,
    /// Token span of the body braces (`{` index, `}` index), when the
    /// item has a body (trait-method declarations do not).
    pub body: Option<(usize, usize)>,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// Carries a `#[target_feature(…)]` attribute.
    pub target_feature: bool,
    /// Inside a `#[test]` / `#[cfg(test)]` region, or in a file that is
    /// test/bench/example code wholesale.
    pub in_test: bool,
}

impl FnItem {
    /// Display name: `Owner::name` inside an impl, bare name otherwise.
    pub fn qname(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One call-shaped site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Token index of the callee name.
    pub tok: usize,
    /// Callee name (last path segment).
    pub name: String,
    /// `Type` in a `Type::name(…)` path call.
    pub qualifier: Option<String>,
    /// `.name(…)` method-call syntax.
    pub is_method: bool,
}

/// Identifiers that look like calls but are control flow or bindings.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "as", "in", "else", "move", "unsafe",
    "let", "mut", "ref", "break", "continue", "where", "impl", "dyn", "use", "pub", "mod",
    "struct", "enum", "trait", "type", "const", "static", "await", "yield",
];

fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(s, e)| idx >= s && idx <= e)
}

/// Find the `{…}` body span starting the scan just after the fn name:
/// the first `{` outside parameter/return brackets opens the body, a
/// top-level `;` means a bodiless declaration.
pub fn find_body(toks: &[Tok], start: usize) -> Option<(usize, usize)> {
    let mut k = start;
    let mut pdepth = 0i32;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') {
            pdepth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            pdepth -= 1;
        } else if t.is_punct('{') && pdepth == 0 {
            break;
        } else if t.is_punct(';') && pdepth == 0 {
            return None;
        }
        k += 1;
    }
    if k >= toks.len() || !toks[k].is_punct('{') {
        return None;
    }
    let mut bd = 0i32;
    let mut e = k;
    while e < toks.len() {
        if toks[e].is_punct('{') {
            bd += 1;
        } else if toks[e].is_punct('}') {
            bd -= 1;
            if bd == 0 {
                return Some((k, e));
            }
        }
        e += 1;
    }
    Some((k, toks.len().saturating_sub(1)))
}

/// Skip an attribute starting at `#` (outer) or `#!` (inner); returns
/// (tokens inside the brackets, index just past the closing `]`).
fn scan_attr(toks: &[Tok], i: usize) -> (Vec<Tok>, usize) {
    let mut j = i + 1;
    if j < toks.len() && toks[j].is_punct('!') {
        j += 1;
    }
    if j >= toks.len() || !toks[j].is_punct('[') {
        return (Vec::new(), i + 1);
    }
    let start = j + 1;
    let mut depth = 1i32;
    j += 1;
    while j < toks.len() && depth > 0 {
        if toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(']') {
            depth -= 1;
        }
        j += 1;
    }
    (toks[start..j.saturating_sub(1)].to_vec(), j)
}

/// True when the tokens immediately before the `fn` keyword include
/// `unsafe` (scanning back through `pub`, `const`, visibility parens,
/// and the `extern "C"` string).
fn modifiers_include_unsafe(toks: &[Tok], fn_idx: usize) -> bool {
    let mut j = fn_idx;
    while j > 0 {
        let p = &toks[j - 1];
        let modifier = matches!(p.kind, TokKind::Str)
            || p.is_punct('(')
            || p.is_punct(')')
            || [
                "pub", "const", "async", "unsafe", "extern", "crate", "super", "self", "in",
            ]
            .iter()
            .any(|m| p.is_ident(m));
        if !modifier {
            return false;
        }
        if p.is_ident("unsafe") {
            return true;
        }
        j -= 1;
    }
    false
}

/// Owner type of an `impl` header starting just past the `impl`
/// keyword: the last angle-depth-0 path segment before the body brace —
/// of the `for` part when present (`impl Trait for Foo`), of the whole
/// header otherwise (`impl Foo<T>`), never of the `where` clause.
fn parse_impl_owner(toks: &[Tok], start: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut j = start;
    let mut after_for = false;
    let mut head_last: Option<String> = None;
    let mut for_last: Option<String> = None;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            if !(j > 0 && toks[j - 1].is_punct('-')) {
                angle -= 1;
            }
        } else if angle == 0 {
            if t.is_punct('{') || t.is_punct(';') || t.is_ident("where") {
                break;
            }
            if t.is_ident("for") {
                after_for = true;
            } else if t.kind == TokKind::Ident && !t.is_ident("dyn") {
                if after_for {
                    for_last = Some(t.text.clone());
                } else {
                    head_last = Some(t.text.clone());
                }
            }
        }
        j += 1;
    }
    for_last.or(head_last)
}

/// Parse every `fn` item in one file. `force_test` marks the whole file
/// as test code (integration tests, benches, examples): its items join
/// the table for staleness resolution but are excluded from call-graph
/// traversal and the kernel lints.
pub fn parse_fns(
    file: usize,
    toks: &[Tok],
    regions: &[(usize, usize)],
    force_test: bool,
) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut impl_stack: Vec<(Option<String>, i32)> = Vec::new();
    let mut pending_impl: Option<Option<String>> = None;
    let mut pending_tf = false;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('#')
            && (toks.get(i + 1).map(|x| x.is_punct('[')) == Some(true)
                || (toks.get(i + 1).map(|x| x.is_punct('!')) == Some(true)
                    && toks.get(i + 2).map(|x| x.is_punct('[')) == Some(true)))
        {
            let (attr, end) = scan_attr(toks, i);
            if attr.iter().any(|a| a.is_ident("target_feature")) {
                pending_tf = true;
            }
            i = end;
            continue;
        }
        if t.is_punct('{') {
            depth += 1;
            if let Some(owner) = pending_impl.take() {
                impl_stack.push((owner, depth));
            }
            pending_tf = false;
        } else if t.is_punct('}') {
            if impl_stack.last().map(|&(_, d)| d) == Some(depth) {
                impl_stack.pop();
            }
            depth -= 1;
            pending_tf = false;
        } else if t.is_punct(';') {
            pending_tf = false;
        } else if t.is_ident("impl") {
            pending_impl = Some(parse_impl_owner(toks, i + 1));
        } else if t.is_ident("fn") && toks.get(i + 1).map(|x| x.kind) == Some(TokKind::Ident) {
            out.push(FnItem {
                file,
                name: toks[i + 1].text.clone(),
                owner: impl_stack.last().and_then(|(o, _)| o.clone()),
                line: toks[i].line,
                fn_tok: i,
                body: find_body(toks, i + 2),
                is_unsafe: modifiers_include_unsafe(toks, i),
                target_feature: pending_tf,
                in_test: force_test || in_regions(regions, i),
            });
            pending_tf = false;
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

/// Extract call-shaped sites from a body token span.
pub fn call_sites(toks: &[Tok], body: (usize, usize)) -> Vec<CallSite> {
    let (bs, be) = body;
    let mut out = Vec::new();
    let mut i = bs + 1;
    while i < be {
        let t = &toks[i];
        if t.kind != TokKind::Ident || NON_CALL_KEYWORDS.iter().any(|k| t.is_ident(k)) {
            i += 1;
            continue;
        }
        // Skip nested `fn` definitions — the definition site is not a
        // call (the nested item is parsed separately by `parse_fns`).
        if i > 0 && toks[i - 1].is_ident("fn") {
            i += 1;
            continue;
        }
        // `name(`, or `name::<T>(` through a turbofish.
        let mut j = i + 1;
        if j + 2 < be
            && toks[j].is_punct(':')
            && toks[j + 1].is_punct(':')
            && toks[j + 2].is_punct('<')
        {
            let mut angle = 1i32;
            j += 3;
            while j < be && angle > 0 {
                if toks[j].is_punct('<') {
                    angle += 1;
                } else if toks[j].is_punct('>') && !toks[j - 1].is_punct('-') {
                    angle -= 1;
                }
                j += 1;
            }
        }
        let is_call = toks.get(j).map(|x| x.is_punct('(')) == Some(true);
        // `name!(…)` is a macro, not a resolvable call.
        let is_macro = toks.get(i + 1).map(|x| x.is_punct('!')) == Some(true);
        if is_call && !is_macro {
            let qualifier = if i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].kind == TokKind::Ident
            {
                Some(toks[i - 3].text.clone())
            } else {
                None
            };
            let is_method = i > 0 && toks[i - 1].is_punct('.');
            out.push(CallSite {
                tok: i,
                name: t.text.clone(),
                qualifier,
                is_method,
            });
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::test_regions;

    fn items(src: &str) -> Vec<FnItem> {
        let toks = lex(src);
        let regions = test_regions(&toks);
        parse_fns(0, &toks, &regions, false)
    }

    #[test]
    fn finds_free_and_impl_fns_with_owners() {
        let src = "fn free() {}\nstruct S;\nimpl S {\n    pub fn method(&self) {}\n}\nimpl std::fmt::Display for S {\n    fn fmt(&self) {}\n}\n";
        let f = items(src);
        assert_eq!(f.len(), 3, "{f:?}");
        assert_eq!(f[0].qname(), "free");
        assert_eq!(f[1].qname(), "S::method");
        assert_eq!(f[2].qname(), "S::fmt");
    }

    #[test]
    fn generic_impl_owner_is_the_type_not_the_param() {
        let src = "impl<T: Clone> Pool<T> {\n    fn take(&mut self) {}\n}\n";
        let f = items(src);
        assert_eq!(f[0].qname(), "Pool::take");
    }

    #[test]
    fn unsafe_and_target_feature_flags() {
        let src = "#[target_feature(enable = \"avx2\")]\npub unsafe fn kern() {}\n#[inline]\nfn plain() {}\n";
        let f = items(src);
        assert!(f[0].is_unsafe && f[0].target_feature, "{f:?}");
        assert!(!f[1].is_unsafe && !f[1].target_feature, "{f:?}");
    }

    #[test]
    fn test_region_fns_are_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let f = items(src);
        assert!(!f[0].in_test);
        assert!(f[1].in_test);
    }

    #[test]
    fn bodiless_trait_methods_have_no_span() {
        let src = "trait T {\n    fn sig(&self);\n    fn with_default(&self) {}\n}\n";
        let f = items(src);
        assert!(f[0].body.is_none());
        assert!(f[1].body.is_some());
    }

    #[test]
    fn call_sites_capture_path_method_and_turbofish() {
        let src = "fn f() {\n    helper();\n    Tensor::zeros(4);\n    x.method(1);\n    take::<f32>(8);\n    vec![1];\n    if cond() {}\n}\n";
        let toks = lex(src);
        let body = find_body(&toks, 2).unwrap();
        let calls = call_sites(&toks, body);
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["helper", "zeros", "method", "take", "cond"]);
        assert_eq!(calls[1].qualifier.as_deref(), Some("Tensor"));
        assert!(calls[2].is_method);
        assert!(!calls[0].is_method && calls[0].qualifier.is_none());
    }

    #[test]
    fn nested_fn_definition_is_an_item_not_a_call() {
        let src = "fn outer() {\n    fn inner() {}\n    inner();\n}\n";
        let f = items(src);
        assert_eq!(f.len(), 2);
        let toks = lex(src);
        let body = find_body(&toks, 2).unwrap();
        let calls = call_sites(&toks, body);
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].name, "inner");
    }
}
