//! A minimal hand-rolled Rust lexer — just enough token structure for
//! the audit lints, with line numbers on every token.
//!
//! The workspace vendors no parsing crates (no `syn`), so the auditor
//! tokenises source itself. The lexer understands the constructs that
//! would otherwise produce false positives in a plain text search:
//! line and (nested) block comments, string/raw-string/byte-string
//! literals, char literals vs. lifetimes, and numeric literals. It
//! deliberately does *not* build a syntax tree; the lints pattern-match
//! short token sequences instead.

/// Token categories distinguished by the lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `fn`, `Vec`, ...).
    Ident,
    /// Single punctuation character (`{`, `:`, `!`, ...).
    Punct,
    /// String literal of any flavour; `text` holds the *content*
    /// (quotes and raw-string hashes stripped).
    Str,
    /// Char literal (`'a'`, `'\n'`); `text` holds the raw spelling.
    Char,
    /// Lifetime (`'a`, `'static`); `text` includes the leading `'`.
    Lifetime,
    /// Numeric literal, suffix included.
    Num,
}

/// One token with the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

impl Tok {
    /// True when the token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// True when the token is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

/// Tokenise `src`, discarding comments and whitespace.
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                // Block comments nest in Rust.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start = line;
                let (content, ni, nl) = scan_string(&b, i + 1, line);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: content,
                    line: start,
                });
                i = ni;
                line = nl;
            }
            'r' | 'b' if raw_or_byte_string_start(&b, i) => {
                let start = line;
                let (content, ni, nl) = scan_raw_or_byte(&b, i, line);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: content,
                    line: start,
                });
                i = ni;
                line = nl;
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let is_lifetime = i + 1 < b.len()
                    && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                    && b[i + 1] != '\\'
                    && !(i + 2 < b.len() && b[i + 2] == '\'');
                if is_lifetime {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: b[i..j].iter().collect(),
                        line,
                    });
                    i = j;
                } else {
                    let mut j = i + 1;
                    if j < b.len() && b[j] == '\\' {
                        j += 2; // escape + escaped char
                                // Longer escapes (\u{...}, \x41) run to the quote.
                        while j < b.len() && b[j] != '\'' {
                            j += 1;
                        }
                    } else {
                        while j < b.len() && b[j] != '\'' {
                            j += 1;
                        }
                    }
                    j = (j + 1).min(b.len()); // closing quote
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: b[i..j].iter().collect(),
                        line,
                    });
                    i = j;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                // A dot continues the number only when followed by a
                // digit, so `1.0` is one token but `1.max(…)` is not.
                if j + 1 < b.len() && b[j] == '.' && b[j + 1].is_ascii_digit() {
                    j += 1;
                    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: b[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Scan a regular `"…"` string body starting just past the opening
/// quote. Returns (content, next index, next line).
fn scan_string(b: &[char], mut i: usize, mut line: usize) -> (String, usize, usize) {
    let mut out = String::new();
    while i < b.len() {
        match b[i] {
            '\\' if i + 1 < b.len() => {
                out.push(b[i]);
                out.push(b[i + 1]);
                if b[i + 1] == '\n' {
                    line += 1;
                }
                i += 2;
            }
            '"' => return (out, i + 1, line),
            '\n' => {
                out.push('\n');
                line += 1;
                i += 1;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    (out, i, line)
}

/// True when position `i` starts a raw string (`r"`, `r#"`), byte
/// string (`b"`), or raw byte string (`br#"` / `rb…` is not Rust).
fn raw_or_byte_string_start(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j < b.len() && b[j] == 'r' {
            j += 1;
        }
    } else if b[j] == 'r' {
        j += 1;
    } else {
        return false;
    }
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"'
}

/// Scan `r#"…"#` / `b"…"` / `br#"…"#` starting at the prefix char.
fn scan_raw_or_byte(b: &[char], mut i: usize, mut line: usize) -> (String, usize, usize) {
    let mut raw = false;
    if b[i] == 'b' {
        i += 1;
    }
    if i < b.len() && b[i] == 'r' {
        raw = true;
        i += 1;
    }
    let mut hashes = 0;
    while i < b.len() && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    let mut out = String::new();
    while i < b.len() {
        if b[i] == '\n' {
            line += 1;
        }
        if !raw && b[i] == '\\' && i + 1 < b.len() {
            out.push(b[i]);
            out.push(b[i + 1]);
            i += 2;
            continue;
        }
        if b[i] == '"' {
            // A raw string only closes when followed by `hashes` #s.
            let mut k = i + 1;
            let mut seen = 0;
            while k < b.len() && b[k] == '#' && seen < hashes {
                k += 1;
                seen += 1;
            }
            if seen == hashes {
                return (out, k, line);
            }
        }
        out.push(b[i]);
        i += 1;
    }
    (out, i, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_not_idents() {
        let toks = lex("// unsafe in comment\nlet s = \"unsafe\"; /* unsafe /* nested */ */");
        assert!(!toks.iter().any(|t| t.is_ident("unsafe")));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "unsafe"));
    }

    #[test]
    fn lifetimes_do_not_eat_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn raw_strings_with_quotes_inside() {
        let toks = lex("let s = r#\"say \"hi\" unsafe\"#; fn g() {}");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.contains("say \"hi\"")));
        assert!(toks.iter().any(|t| t.is_ident("g")));
    }

    #[test]
    fn line_numbers_are_one_based_and_track_newlines() {
        let toks = lex("a\nb\n  c");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn numbers_do_not_swallow_method_calls() {
        let toks = lex("let x = 1.max(2); let y = 1.5;");
        assert!(toks.iter().any(|t| t.is_ident("max")));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "1.5"));
    }
}
