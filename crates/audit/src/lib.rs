//! # gcnn-audit
//!
//! Workspace soundness auditor — a two-pass, call-graph-aware static
//! analyzer. It walks every `.rs` file under `crates/`, `vendor/`, the
//! workspace `tests/`, and `examples/`; pass 1 ([`items`]) parses every
//! `fn` into a lightweight item table and resolves call sites into an
//! intra-workspace call graph, pass 2 ([`analysis`]) runs dataflow
//! lints over that graph alongside the original per-file token lints.
//!
//! Per-file lints (v1, unchanged semantics):
//!
//! 1. **safety-comment** — every `unsafe` block, `unsafe fn`, and
//!    `unsafe impl` must be preceded by a `// SAFETY:` justification
//!    (or a `# Safety` doc section for functions).
//! 2. **unsafe-containment** — `unsafe` is permitted only in the three
//!    kernel crates (`gcnn-tensor`, `gcnn-fft`, `gcnn-gemm`); every
//!    other crate root (and every example binary) must declare
//!    `#![forbid(unsafe_code)]`, and no `unsafe` token may appear
//!    anywhere else — integration tests, benches, and the workspace
//!    `tests/`/`examples/` trees included.
//! 3. **arena-discipline** — hot-path *root* functions may not call
//!    `Vec::new`, `vec![…]`, `.to_vec()` or `Box::new`; steady-state
//!    allocations must come from `gcnn_tensor::workspace`.
//! 4. **trace-naming** — string literals passed to `gcnn-trace` span /
//!    counter / gauge calls must follow the `subsystem.verb`
//!    convention (lowercase dot-separated segments such as
//!    `gemm.sgemm`). Applies to production code everywhere, including
//!    non-`#[test]` helpers in test and bench files.
//!
//! Call-graph lints (v2, see [`analysis`] for the full semantics):
//!
//! 5. **transitive-arena** — allocation reachability propagated from
//!    the configured roots through the call graph, with a
//!    `// AUDIT: cold-path — <why>` escape hatch.
//! 6. **lock-discipline** — lock-order violations per function body,
//!    `.lock().unwrap()` outside tests, `Condvar::wait` outside a
//!    predicate re-check loop.
//! 7. **panic-freedom** — `unwrap`/`expect`/`panic!`/slice indexing in
//!    `unsafe` / `#[target_feature]` kernel fns must be
//!    `debug_assert`-guarded or carry a SAFETY/bounds comment.
//! 8. **config-staleness** — every configured root, file, lock,
//!    condvar, and trace fn must resolve against the parsed workspace.
//!
//! The workspace vendors no parser crates, so the auditor runs on a
//! hand-rolled lexer ([`lexer`]) rather than `syn`. Style lints skip
//! `#[test]` / `#[cfg(test)]` regions; the soundness lints apply
//! everywhere (test code gets no soundness pass). Vendored crates get
//! the per-file lints only — the call graph stops at the workspace
//! boundary, since arena discipline is a policy about our code, not
//! upstream's.
//!
//! Run with `cargo run -p gcnn-audit` (human-readable, non-zero exit on
//! any diagnostic) or `cargo run -p gcnn-audit -- --format json` for
//! the machine-readable form CI uploads and the problem matcher
//! consumes. See `DESIGN.md` ("Soundness auditing") for the policy
//! rationale.

#![forbid(unsafe_code)]
// The auditor's own docs and diagnostics quote `// SAFETY:` syntax,
// which this clippy lint mistakes for misplaced safety comments.
#![allow(clippy::unnecessary_safety_comment)]

pub mod analysis;
pub mod items;
pub mod lexer;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

pub use analysis::SourceFile;
use lexer::{lex, Tok, TokKind};

/// The audit lints: four per-file token lints and four call-graph
/// dataflow lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lint {
    /// `unsafe` without a `// SAFETY:` / `# Safety` justification.
    SafetyComment,
    /// `unsafe` outside the kernel-crate allowlist, or a non-kernel
    /// crate root missing `#![forbid(unsafe_code)]`.
    UnsafeContainment,
    /// Heap allocation inside a configured hot-path root function.
    ArenaDiscipline,
    /// Trace span/counter literal violating `subsystem.verb`.
    TraceNaming,
    /// Heap allocation in a function *reachable* from a hot-path root
    /// (or an unjustified `// AUDIT: cold-path` escape).
    TransitiveArena,
    /// Lock-order violation, `.lock().unwrap()`, or a condvar wait
    /// outside a predicate re-check loop.
    LockDiscipline,
    /// Panic-capable site in an `unsafe`/`#[target_feature]` kernel fn
    /// without a `debug_assert` guard or bounds comment.
    PanicFreedom,
    /// A configured hot path, file, lock, condvar, or trace fn that no
    /// longer resolves against the parsed workspace.
    ConfigStaleness,
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Lint::SafetyComment => "safety-comment",
            Lint::UnsafeContainment => "unsafe-containment",
            Lint::ArenaDiscipline => "arena-discipline",
            Lint::TraceNaming => "trace-naming",
            Lint::TransitiveArena => "transitive-arena",
            Lint::LockDiscipline => "lock-discipline",
            Lint::PanicFreedom => "panic-freedom",
            Lint::ConfigStaleness => "config-staleness",
        })
    }
}

/// One violation, formatted `path:line: [lint] message`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    pub lint: Lint,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// A set of hot-path *root* functions in one file. Their own bodies
/// must not allocate (arena-discipline), and everything they reach
/// through the call graph is checked by the transitive-arena pass.
/// Function entries may be owner-qualified (`Engine::step`).
#[derive(Debug, Clone)]
pub struct HotPath {
    /// Matched against the end of the workspace-relative path.
    pub file_suffix: String,
    /// Root function names audited within that file.
    pub functions: Vec<String>,
}

/// Auditor policy. [`AuditConfig::default`] is the repo policy;
/// the fields are public so fixture tests can build narrower configs.
/// Every name-shaped field is validated by the config-staleness lint:
/// a root, lock, condvar, or trace fn that stops resolving against the
/// parsed workspace fails the audit rather than silently rotting.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Crates (by `Cargo.toml` package name) allowed to contain
    /// `unsafe`. Also the scope of the panic-freedom kernel lint.
    pub allowed_unsafe: Vec<String>,
    /// Hot-path roots: arena-discipline on their bodies, and the
    /// origin set of the transitive reachability pass.
    pub hot_paths: Vec<HotPath>,
    /// Function names whose first string-literal argument is a trace
    /// name subject to the naming convention.
    pub trace_fns: Vec<String>,
    /// Lock acquisition order, outermost first (receiver identifiers,
    /// e.g. the `batcher` in `shared.batcher.lock()`). Within any one
    /// function body, a configured lock may never be acquired after a
    /// lock that ranks below it.
    pub lock_order: Vec<String>,
    /// Condvar receiver identifiers whose `wait`/`wait_timeout` calls
    /// must sit inside a `while`/`loop` predicate re-check.
    pub condvars: Vec<String>,
}

impl Default for AuditConfig {
    // AUDIT: cold-path — the config is built once per auditor run; it never
    // sits on an inference hot path.
    fn default() -> Self {
        let s = |v: &[&str]| v.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        AuditConfig {
            allowed_unsafe: s(&["gcnn-tensor", "gcnn-fft", "gcnn-gemm"]),
            hot_paths: vec![
                HotPath {
                    file_suffix: "conv/src/unroll.rs".into(),
                    functions: s(&["forward", "backward_data"]),
                },
                HotPath {
                    file_suffix: "conv/src/fft_conv.rs".into(),
                    functions: s(&["forward", "backward_data", "backward_filters"]),
                },
                HotPath {
                    file_suffix: "gemm/src/sgemm.rs".into(),
                    functions: s(&["sgemm_blocked"]),
                },
                HotPath {
                    file_suffix: "tensor/src/im2col.rs".into(),
                    functions: s(&["im2col_into", "col2im_from"]),
                },
                HotPath {
                    file_suffix: "tensor/src/nchwc.rs".into(),
                    functions: s(&[
                        "pack_nchwc_into",
                        "unpack_nchwc_from",
                        "pack_filters_into",
                        "repad_packed",
                    ]),
                },
                HotPath {
                    file_suffix: "conv/src/nchwc.rs".into(),
                    functions: s(&[
                        "forward_tile",
                        "fused_conv_relu",
                        "fused_conv_relu_pool",
                        "max_pool_tile",
                    ]),
                },
                HotPath {
                    file_suffix: "serve/src/batcher.rs".into(),
                    functions: s(&["offer", "pop_batch_into"]),
                },
                HotPath {
                    file_suffix: "serve/src/server.rs".into(),
                    functions: s(&["worker_loop"]),
                },
                HotPath {
                    file_suffix: "models/src/network.rs".into(),
                    functions: s(&["Network::infer_ws"]),
                },
                HotPath {
                    file_suffix: "mtsim/src/engine.rs".into(),
                    functions: s(&["Engine::step", "Engine::dispatch"]),
                },
            ],
            trace_fns: s(&[
                "span",
                "span_owned",
                "counter",
                "counter_add",
                "counter_inc",
                "gauge_set",
            ]),
            // Outermost first. The batcher mutex is the serving layer's
            // outer lock; the trace registry's maps come next (counters
            // are bumped while the batcher is held); the latency ring is
            // a leaf no other lock may be taken under.
            lock_order: s(&["batcher", "counters", "gauges", "spans", "latencies_ms"]),
            condvars: s(&["available"]),
        }
    }
}

/// Summary of one [`audit_workspace`] run.
#[derive(Debug)]
pub struct AuditReport {
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
    /// Scan units: crates under `crates/` and `vendor/`, plus the
    /// workspace `tests/` and `examples/` trees (one unit each).
    pub crates_scanned: usize,
    /// Workspace-relative paths of every file visited, sorted.
    pub files: Vec<String>,
    /// `fn` items in the pass-1 table (workspace code only).
    pub fn_items: usize,
    /// Resolved intra-workspace call edges.
    pub call_edges: usize,
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Token-index ranges (inclusive) covered by `#[test]` / `#[cfg(test)]`
/// items, so style lints can skip test code.
pub fn test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        // Attribute body: tokens between the matching brackets.
        let attr_start = i + 2;
        let mut j = attr_start;
        let mut depth = 1usize;
        while j < toks.len() && depth > 0 {
            if toks[j].is_punct('[') {
                depth += 1;
            } else if toks[j].is_punct(']') {
                depth -= 1;
            }
            j += 1;
        }
        let attr = &toks[attr_start..j.saturating_sub(1)];
        if !attr_is_test(attr) {
            i = j;
            continue;
        }
        // Body of the following item: first top-level `{…}`, unless a
        // top-level `;` ends the item first (e.g. `#[cfg(test)] use …;`).
        let mut k = j;
        let mut pdepth = 0i32;
        let mut body_start = None;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct('(') || t.is_punct('[') {
                pdepth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                pdepth -= 1;
            } else if t.is_punct('{') && pdepth == 0 {
                body_start = Some(k);
                break;
            } else if t.is_punct(';') && pdepth == 0 {
                break;
            }
            k += 1;
        }
        let Some(bs) = body_start else {
            i = j;
            continue;
        };
        let mut bd = 0i32;
        let mut e = bs;
        while e < toks.len() {
            if toks[e].is_punct('{') {
                bd += 1;
            } else if toks[e].is_punct('}') {
                bd -= 1;
                if bd == 0 {
                    break;
                }
            }
            e += 1;
        }
        regions.push((i, e.min(toks.len().saturating_sub(1))));
        i = e + 1;
    }
    regions
}

/// `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]` — but NOT
/// `#[cfg(not(test))]`, whose body is precisely the non-test build.
fn attr_is_test(attr: &[Tok]) -> bool {
    if attr.len() == 1 && attr[0].is_ident("test") {
        return true;
    }
    if attr.first().map(|t| t.is_ident("cfg")) != Some(true) {
        return false;
    }
    let mut depth = 0i32;
    let mut not_depths: Vec<i32> = Vec::new();
    let mut k = 1;
    while k < attr.len() {
        let t = &attr[k];
        if t.is_ident("not") && k + 1 < attr.len() && attr[k + 1].is_punct('(') {
            depth += 1;
            not_depths.push(depth);
            k += 2;
            continue;
        }
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            if not_depths.last() == Some(&depth) {
                not_depths.pop();
            }
            depth -= 1;
        } else if t.is_ident("test") && not_depths.is_empty() {
            return true;
        }
        k += 1;
    }
    false
}

fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(s, e)| idx >= s && idx <= e)
}

// ---------------------------------------------------------------------------
// Lint 1: SAFETY comments
// ---------------------------------------------------------------------------

/// Scan the comment/attribute lines immediately above `line` (1-based)
/// for a safety justification (`// SAFETY:` or a `/// # Safety` doc
/// line). Attribute lines — including rustfmt-wrapped multi-line
/// attributes — are skipped so `#[cfg(…)]` between the comment and the
/// `unsafe` site does not break the association.
fn has_safety_above(lines: &[&str], line: usize) -> bool {
    let mut idx = line as isize - 2; // 0-based index of the line above
    while idx >= 0 {
        let t = lines[idx as usize].trim();
        if t.starts_with("//") {
            if t.to_ascii_lowercase().contains("safety") {
                return true;
            }
            idx -= 1;
        } else if t.starts_with("#[") || t.starts_with("#![") {
            idx -= 1;
        } else if t.ends_with(']') {
            // Possibly the closing line of a wrapped attribute: walk up
            // to its opening `#[`; bail if we hit something else first.
            let mut k = idx - 1;
            let mut opened = false;
            while k >= 0 {
                let u = lines[k as usize].trim();
                if u.starts_with("#[") || u.starts_with("#![") {
                    opened = true;
                    break;
                }
                if u.contains('{') || u.contains('}') || u.ends_with(';') || u.is_empty() {
                    break;
                }
                k -= 1;
            }
            if !opened {
                return false;
            }
            idx = k - 1;
        } else {
            return false;
        }
    }
    false
}

fn lint_safety_comments(file: &str, lines: &[&str], toks: &[Tok], out: &mut Vec<Diagnostic>) {
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        let next = toks.get(i + 1);
        let kind = match next {
            Some(n) if n.is_ident("fn") => "`unsafe fn`",
            Some(n) if n.is_ident("impl") => "`unsafe impl`",
            Some(n) if n.is_ident("trait") => "`unsafe trait`",
            Some(n) if n.is_ident("extern") => "`unsafe extern` block",
            _ => "`unsafe` block",
        };
        // Anchor the comment scan at the first token of the statement
        // (or match arm / call argument) containing the `unsafe`, so a
        // justification above `let x =` also covers an `unsafe` on the
        // rustfmt-wrapped continuation line.
        let mut j = i;
        while j > 0 {
            let p = &toks[j - 1];
            if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') || p.is_punct(',') {
                break;
            }
            j -= 1;
        }
        // A justification may also sit on comment lines *inside* the
        // statement span — e.g. between a `#[cfg]` attribute and the
        // match arm it gates.
        let interior = (toks[j].line..t.line).any(|ln| {
            let l = lines.get(ln - 1).map(|l| l.trim()).unwrap_or("");
            l.starts_with("//") && l.to_ascii_lowercase().contains("safety")
        });
        if !interior && !has_safety_above(lines, toks[j].line) {
            out.push(Diagnostic {
                file: file.into(),
                line: t.line,
                lint: Lint::SafetyComment,
                message: format!(
                    "{kind} without a preceding `// SAFETY:` comment \
                     (or `# Safety` doc section) justifying it"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Lint 2: unsafe containment
// ---------------------------------------------------------------------------

fn lint_unsafe_containment(
    file: &str,
    crate_name: &str,
    is_crate_root: bool,
    toks: &[Tok],
    cfg: &AuditConfig,
    out: &mut Vec<Diagnostic>,
) {
    let allowed = cfg.allowed_unsafe.iter().any(|c| c == crate_name);
    if allowed {
        return;
    }
    for t in toks {
        if t.is_ident("unsafe") {
            out.push(Diagnostic {
                file: file.into(),
                line: t.line,
                lint: Lint::UnsafeContainment,
                message: format!(
                    "`unsafe` in crate `{crate_name}`, which is outside the \
                     kernel allowlist ({})",
                    cfg.allowed_unsafe.join(", ")
                ),
            });
        }
    }
    if is_crate_root && !has_forbid_unsafe(toks) {
        out.push(Diagnostic {
            file: file.into(),
            line: 1,
            lint: Lint::UnsafeContainment,
            message: format!(
                "crate root of `{crate_name}` must declare #![forbid(unsafe_code)]; \
                 unsafe is only permitted in {}",
                cfg.allowed_unsafe.join(", ")
            ),
        });
    }
}

/// Token-sequence search for `#![forbid(unsafe_code)]` (whitespace and
/// comments already stripped by the lexer).
fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    toks.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

// ---------------------------------------------------------------------------
// Lint 3: arena discipline
// ---------------------------------------------------------------------------

fn lint_arena_discipline(
    file: &str,
    toks: &[Tok],
    regions: &[(usize, usize)],
    cfg: &AuditConfig,
    out: &mut Vec<Diagnostic>,
) {
    let Some(hot) = cfg
        .hot_paths
        .iter()
        .find(|h| file.ends_with(&h.file_suffix))
    else {
        return;
    };
    // Config entries may be owner-qualified (`Engine::step`); the
    // per-file pass matches on the bare name — names are file-scoped.
    let bare = |f: &String| f.rsplit("::").next().unwrap_or(f).to_string();
    let mut i = 0;
    while i + 1 < toks.len() {
        let named_hot = toks[i].is_ident("fn")
            && toks[i + 1].kind == TokKind::Ident
            && hot.functions.iter().any(|f| bare(f) == toks[i + 1].text);
        if !named_hot || in_regions(regions, i) {
            i += 1;
            continue;
        }
        let fn_name = toks[i + 1].text.clone();
        // Body: first `{` outside the parameter parens.
        let mut k = i + 2;
        let mut pdepth = 0i32;
        while k < toks.len() {
            if toks[k].is_punct('(') || toks[k].is_punct('[') {
                pdepth += 1;
            } else if toks[k].is_punct(')') || toks[k].is_punct(']') {
                pdepth -= 1;
            } else if toks[k].is_punct('{') && pdepth == 0 {
                break;
            } else if toks[k].is_punct(';') && pdepth == 0 {
                break; // trait method declaration — no body to audit
            }
            k += 1;
        }
        if k >= toks.len() || !toks[k].is_punct('{') {
            i = k;
            continue;
        }
        let body_start = k;
        let mut bd = 0i32;
        let mut e = body_start;
        while e < toks.len() {
            if toks[e].is_punct('{') {
                bd += 1;
            } else if toks[e].is_punct('}') {
                bd -= 1;
                if bd == 0 {
                    break;
                }
            }
            e += 1;
        }
        for w in body_start..e.min(toks.len()) {
            let pat = banned_alloc_at(toks, w);
            if let Some(pat) = pat {
                out.push(Diagnostic {
                    file: file.into(),
                    line: toks[w].line,
                    lint: Lint::ArenaDiscipline,
                    message: format!(
                        "hot path `fn {fn_name}` allocates via {pat}; use the \
                         workspace arena (gcnn_tensor::workspace) instead"
                    ),
                });
            }
        }
        i = e + 1;
    }
}

/// The banned-allocation token patterns, reported at their first token.
pub(crate) fn banned_alloc_at(toks: &[Tok], i: usize) -> Option<&'static str> {
    let t = |d: usize| toks.get(i + d);
    let seq2 = |a: &str, b: char| toks[i].is_ident(a) && t(1).map(|x| x.is_punct(b)) == Some(true);
    let path2 = |a: &str, b: &str| {
        toks[i].is_ident(a)
            && t(1).map(|x| x.is_punct(':')) == Some(true)
            && t(2).map(|x| x.is_punct(':')) == Some(true)
            && t(3).map(|x| x.is_ident(b)) == Some(true)
    };
    if path2("Vec", "new") {
        Some("`Vec::new`")
    } else if path2("Box", "new") {
        Some("`Box::new`")
    } else if seq2("vec", '!') {
        Some("the `vec!` macro")
    } else if toks[i].is_punct('.') && t(1).map(|x| x.is_ident("to_vec")) == Some(true) {
        Some("`.to_vec()`")
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Lint 4: trace naming
// ---------------------------------------------------------------------------

/// `subsystem.verb`: at least two non-empty dot-separated segments of
/// `[a-z0-9_]`.
pub fn valid_trace_name(name: &str) -> bool {
    let segs: Vec<&str> = name.split('.').collect();
    segs.len() >= 2
        && segs.iter().all(|s| {
            !s.is_empty()
                && s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

fn lint_trace_naming(
    file: &str,
    toks: &[Tok],
    regions: &[(usize, usize)],
    cfg: &AuditConfig,
    out: &mut Vec<Diagnostic>,
) {
    // Test and bench *regions* keep their short ad-hoc names, but the
    // files themselves are visited: a non-`#[test]` helper in an
    // integration test or a bench binary is production code and must
    // follow the convention.
    for i in 0..toks.len() {
        let is_trace_call = toks[i].kind == TokKind::Ident
            && cfg.trace_fns.iter().any(|f| *f == toks[i].text)
            && toks.get(i + 1).map(|t| t.is_punct('(')) == Some(true)
            && toks.get(i + 2).map(|t| t.kind == TokKind::Str) == Some(true);
        if !is_trace_call || in_regions(regions, i) {
            continue;
        }
        let name = &toks[i + 2].text;
        if !valid_trace_name(name) {
            out.push(Diagnostic {
                file: file.into(),
                line: toks[i + 2].line,
                lint: Lint::TraceNaming,
                message: format!(
                    "trace name \"{name}\" violates the `subsystem.verb` convention \
                     (lowercase dot-separated segments, e.g. `gemm.sgemm`)"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Per-file and workspace drivers
// ---------------------------------------------------------------------------

/// Audit one source file. `rel_path` is the workspace-relative path
/// with `/` separators (used for hot-path matching and reporting);
/// `crate_name` is the owning package name; `is_crate_root` marks
/// `src/lib.rs`, `src/main.rs`, and `src/bin/*.rs`, which the
/// containment lint requires to carry `#![forbid(unsafe_code)]`.
pub fn audit_file(
    rel_path: &str,
    src: &str,
    crate_name: &str,
    is_crate_root: bool,
    cfg: &AuditConfig,
) -> Vec<Diagnostic> {
    let toks = lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let regions = test_regions(&toks);
    let mut out = Vec::new();
    lint_safety_comments(rel_path, &lines, &toks, &mut out);
    lint_unsafe_containment(rel_path, crate_name, is_crate_root, &toks, cfg, &mut out);
    lint_arena_discipline(rel_path, &toks, &regions, cfg, &mut out);
    lint_trace_naming(rel_path, &toks, &regions, cfg, &mut out);
    out
}

/// Audit every `.rs` file of every crate under `<root>/crates` and
/// `<root>/vendor`, plus the workspace-level `tests/` and `examples/`
/// trees. Paths containing `tests/fixtures/` are skipped — those are
/// the auditor's own deliberately-violating test inputs.
///
/// The per-file lints run on everything; the call-graph passes run on
/// the workspace's own code (vendored crates are external to the arena
/// and lock policies).
pub fn audit_workspace(root: &Path, cfg: &AuditConfig) -> std::io::Result<AuditReport> {
    let mut report = AuditReport {
        diagnostics: Vec::new(),
        files_scanned: 0,
        crates_scanned: 0,
        files: Vec::new(),
        fn_items: 0,
        call_edges: 0,
    };
    // Workspace sources for the call-graph passes, collected as we walk.
    let mut sources: Vec<SourceFile> = Vec::new();
    let visit = |report: &mut AuditReport,
                 sources: &mut Vec<SourceFile>,
                 f: &Path,
                 crate_name: &str,
                 is_root: bool,
                 graph: bool|
     -> std::io::Result<()> {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        if rel.contains("tests/fixtures/") {
            return Ok(());
        }
        let src = fs::read_to_string(f)?;
        report.files_scanned += 1;
        report.files.push(rel.clone());
        report
            .diagnostics
            .extend(audit_file(&rel, &src, crate_name, is_root, cfg));
        if graph {
            sources.push(SourceFile {
                rel,
                crate_name: crate_name.to_string(),
                is_root,
                src,
            });
        }
        Ok(())
    };
    for group in ["crates", "vendor"] {
        let dir = root.join(group);
        if !dir.is_dir() {
            continue;
        }
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect();
        crate_dirs.sort();
        for cdir in crate_dirs {
            let name = package_name(&cdir.join("Cargo.toml"))?;
            report.crates_scanned += 1;
            let mut files = Vec::new();
            collect_rs(&cdir, &mut files)?;
            files.sort();
            for f in files {
                let is_root = is_crate_root(&f, &cdir);
                visit(
                    &mut report,
                    &mut sources,
                    &f,
                    &name,
                    is_root,
                    group == "crates",
                )?;
            }
        }
    }
    // Workspace-level integration tests and examples: one scan unit
    // each. Examples are standalone binaries, so each must carry
    // `#![forbid(unsafe_code)]` like any other non-kernel crate root;
    // test files are scanned for unsafe tokens and (non-test-region)
    // trace names but are not crate roots.
    for (dir_name, unit_name, files_are_roots) in [
        ("tests", "workspace-tests", false),
        ("examples", "workspace-examples", true),
    ] {
        let dir = root.join(dir_name);
        if !dir.is_dir() {
            continue;
        }
        report.crates_scanned += 1;
        let mut files = Vec::new();
        collect_rs(&dir, &mut files)?;
        files.sort();
        for f in files {
            visit(
                &mut report,
                &mut sources,
                &f,
                unit_name,
                files_are_roots,
                true,
            )?;
        }
    }
    let (graph_diags, fn_items, call_edges) = analysis::analyze_sources(&sources, cfg);
    report.diagnostics.extend(graph_diags);
    report.fn_items = fn_items;
    report.call_edges = call_edges;
    report.files.sort();
    report
        .diagnostics
        .sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(report)
}

/// Serialize a report as the machine-readable diagnostics document the
/// CI audit job uploads (`--format json`). Hand-rolled — the auditor
/// stays dependency-free — with full string escaping.
pub fn report_to_json(report: &AuditReport) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    out.push_str("  \"tool\": \"gcnn-audit\",\n  \"schema_version\": 2,\n");
    out.push_str(&format!(
        "  \"crates_scanned\": {},\n  \"files_scanned\": {},\n  \"fn_items\": {},\n  \"call_edges\": {},\n",
        report.crates_scanned, report.files_scanned, report.fn_items, report.call_edges
    ));
    out.push_str(&format!(
        "  \"violations\": {},\n  \"diagnostics\": [",
        report.diagnostics.len()
    ));
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"lint\": {}, \"message\": {}}}",
            json_str(&d.file),
            d.line,
            json_str(&d.lint.to_string()),
            json_str(&d.message)
        ));
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// JSON string literal with escaping for quotes, backslashes, and
/// control characters.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn is_crate_root(file: &Path, crate_dir: &Path) -> bool {
    file == crate_dir.join("src/lib.rs")
        || file == crate_dir.join("src/main.rs")
        || file.parent() == Some(&crate_dir.join("src/bin"))
}

/// First `name = "…"` in the manifest — enough for this workspace's
/// plain manifests (no parser crates available).
fn package_name(manifest: &Path) -> std::io::Result<String> {
    let text = fs::read_to_string(manifest)?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let v = rest.trim().trim_matches('"');
                return Ok(v.to_string());
            }
        }
    }
    Ok(manifest
        .parent()
        .and_then(|p| p.file_name())
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default())
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            if name.as_deref() == Some("target") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().map(|e| e == "rs") == Some(true) {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AuditConfig {
        AuditConfig::default()
    }

    #[test]
    fn undocumented_unsafe_block_is_flagged() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let d = audit_file("crates/tensor/src/x.rs", src, "gcnn-tensor", false, &cfg());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, Lint::SafetyComment);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn documented_unsafe_block_passes() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        let d = audit_file("crates/tensor/src/x.rs", src, "gcnn-tensor", false, &cfg());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn safety_comment_reaches_through_cfg_attributes() {
        let src = "fn f() {\n    match isa {\n        // SAFETY: detected at runtime.\n        #[cfg(target_arch = \"x86_64\")]\n        Isa::Avx2 => unsafe { go() },\n        _ => {}\n    }\n}\n";
        let d = audit_file("crates/tensor/src/x.rs", src, "gcnn-tensor", false, &cfg());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unsafe_fn_requires_safety_doc() {
        let bad = "pub unsafe fn k() {}\n";
        let good = "/// # Safety\n/// Caller must check the CPU.\npub unsafe fn k() {}\n";
        assert_eq!(
            audit_file("crates/fft/src/x.rs", bad, "gcnn-fft", false, &cfg()).len(),
            1
        );
        assert!(audit_file("crates/fft/src/x.rs", good, "gcnn-fft", false, &cfg()).is_empty());
    }

    #[test]
    fn unsafe_in_comment_or_string_is_ignored() {
        let src = "// unsafe is discussed here\nfn f() { let s = \"unsafe\"; let _ = s; }\n";
        let d = audit_file("crates/conv/src/x.rs", src, "gcnn-conv", false, &cfg());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn containment_flags_unsafe_outside_allowlist() {
        let src = "// SAFETY: not actually fine.\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let d = audit_file("crates/conv/src/x.rs", src, "gcnn-conv", false, &cfg());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, Lint::UnsafeContainment);
    }

    #[test]
    fn crate_root_outside_allowlist_needs_forbid() {
        let bare = "pub fn f() {}\n";
        let d = audit_file("crates/conv/src/lib.rs", bare, "gcnn-conv", true, &cfg());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, Lint::UnsafeContainment);
        let ok = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(audit_file("crates/conv/src/lib.rs", ok, "gcnn-conv", true, &cfg()).is_empty());
    }

    #[test]
    fn arena_lint_flags_alloc_in_hot_fn_only() {
        let src = "fn forward() {\n    let v = vec![0.0f32; 4];\n    let _ = v;\n}\nfn elsewhere() { let _ = vec![1]; }\n";
        let d = audit_file("crates/conv/src/unroll.rs", src, "gcnn-conv", false, &cfg());
        let arena: Vec<_> = d
            .iter()
            .filter(|x| x.lint == Lint::ArenaDiscipline)
            .collect();
        assert_eq!(arena.len(), 1, "{d:?}");
        assert_eq!(arena[0].line, 2);
    }

    #[test]
    fn arena_lint_skips_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn forward() { let _ = Vec::<f32>::new(); }\n}\n";
        let d = audit_file("crates/conv/src/unroll.rs", src, "gcnn-conv", false, &cfg());
        assert!(d.iter().all(|x| x.lint != Lint::ArenaDiscipline), "{d:?}");
    }

    #[test]
    fn trace_names_must_be_dotted_lowercase() {
        assert!(valid_trace_name("gemm.sgemm"));
        assert!(valid_trace_name("autotune.cache.hits"));
        assert!(!valid_trace_name("sgemm"));
        assert!(!valid_trace_name("Gemm.sgemm"));
        assert!(!valid_trace_name("gemm."));
        assert!(!valid_trace_name(".sgemm"));
        assert!(!valid_trace_name("gemm sgemm"));
    }

    #[test]
    fn trace_lint_flags_bad_span_name() {
        let src = "fn f() { let _s = gcnn_trace::span(\"sgemm\"); }\n";
        let d = audit_file("crates/gemm/src/x.rs", src, "gcnn-gemm", false, &cfg());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, Lint::TraceNaming);
    }

    #[test]
    fn trace_lint_skips_cfg_not_test_is_still_checked() {
        // not(test) code is production code in disguise — still linted.
        let src = "#[cfg(not(test))]\nfn f() { let _s = span(\"bad\"); }\n";
        let d = audit_file("crates/trace/src/x.rs", src, "gcnn-trace", false, &cfg());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, Lint::TraceNaming);
    }

    #[test]
    fn trace_lint_skips_test_regions_but_not_test_file_helpers() {
        // A `#[test]` fn in an integration-test file keeps its ad-hoc
        // span names...
        let in_region = "#[test]\nfn t() { let _s = span(\"bad\"); }\n";
        assert!(audit_file(
            "crates/gemm/tests/t.rs",
            in_region,
            "gcnn-gemm",
            false,
            &cfg()
        )
        .is_empty());
        // ...but a bare helper fn in the same file is production code
        // for naming purposes: test files are now visited.
        let helper = "fn f() { let _s = span(\"bad\"); }\n";
        for rel in ["crates/gemm/tests/t.rs", "crates/bench/benches/b.rs"] {
            let diags = audit_file(rel, helper, "gcnn-gemm", false, &cfg());
            assert_eq!(diags.len(), 1, "{rel}: {diags:?}");
            assert_eq!(diags[0].lint, Lint::TraceNaming);
        }
    }
}
