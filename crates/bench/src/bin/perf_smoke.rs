//! perf_smoke — tracked wall-clock timings of the hot paths every figure
//! depends on, at the paper's base configuration `(64,128,64,11,1)`.
//!
//! Times the im2col-shaped SGEMM (`m = f`, `n = b·oh·ow`, `k = c·k²`),
//! a batched 2-D real FFT of the fft-conv plane set, and one
//! forward + backward convolution per strategy, then writes
//! `results/BENCH_hotpaths.json` with mean/p50/p95 per section so the
//! performance trajectory is comparable across PRs.
//!
//! Timing goes through the shared `gcnn_autotune::timing` util (warmup
//! then trimmed-median aggregation) — the same one `bench_report` and
//! the autotune harness use — so every number in `results/` is produced
//! the same way.
//!
//! Environment knobs:
//! * `GCNN_PERF_ITERS` — iterations per section (default 10).
//! * `GCNN_PERF_WARMUP` — untimed warmup iterations (default 1).
//! * `GCNN_PERF_DIRECT_ITERS` — iterations for the `Direct` strategy
//!   (default 2: it is the unoptimized O(n⁷) reference loop and costs
//!   minutes per iteration at the base config on one core; it also
//!   gets no warmup).
//!
//! A second report, `results/BENCH_simd.json`, records scalar-vs-SIMD
//! throughput of the GEMM and FFT micro-kernels: each micro-bench runs
//! under the native dispatch table and again with the table pinned to
//! scalar (`set_force_scalar`), and the p50 ratio is the speedup
//! `bench_compare --simd` gates on so a silent dispatch regression to
//! scalar fails CI.

#![forbid(unsafe_code)]

use gcnn_autotune::timing::{env_usize, stats, time_wall, Repeats};
use gcnn_conv::{algorithm_for, ConvConfig, Strategy};
use gcnn_fft::RfftPlan;
use gcnn_gemm::{gemm_flops, sgemm, Transpose};
use gcnn_tensor::init::{uniform_tensor, xavier_filters};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Section {
    name: String,
    iters: usize,
    mean_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
    min_ms: f64,
    max_ms: f64,
    /// Sustained GFLOP/s over the mean, where a FLOP count is defined.
    gflops: Option<f64>,
    note: Option<String>,
}

#[derive(Debug, Serialize)]
struct Report {
    config: ConvConfig,
    sections: Vec<Section>,
}

fn section(name: &str, samples: Vec<f64>, flops: Option<u64>, note: Option<String>) -> Section {
    let st = stats(&samples);
    let s = Section {
        name: name.to_string(),
        iters: st.iters,
        mean_ms: st.mean_ms,
        p50_ms: st.p50_ms,
        p95_ms: st.p95_ms,
        min_ms: st.min_ms,
        max_ms: st.max_ms,
        gflops: flops.map(|f| f as f64 / (st.mean_ms * 1e6)),
        note,
    };
    println!(
        "{:<24} iters {:>3}  mean {:>10} ms  p50 {:>10} ms  p95 {:>10} ms{}",
        s.name,
        s.iters,
        gcnn_bench::ms(s.mean_ms),
        gcnn_bench::ms(s.p50_ms),
        gcnn_bench::ms(s.p95_ms),
        s.gflops
            .map(|g| format!("  {g:.2} GFLOP/s"))
            .unwrap_or_default(),
    );
    s
}

fn skipped(name: &str, reason: String) -> Section {
    println!("{name:<24} skipped: {reason}");
    Section {
        name: name.to_string(),
        iters: 0,
        mean_ms: 0.0,
        p50_ms: 0.0,
        p95_ms: 0.0,
        min_ms: 0.0,
        max_ms: 0.0,
        gflops: None,
        note: Some(reason),
    }
}

/// The im2col GEMM of the whole base-config batch: `m = f = 64`,
/// `n = b·oh·ow = 891136`, `k = c·k² = 363`.
fn bench_sgemm(cfg: &ConvConfig, repeats: Repeats) -> Section {
    let m = cfg.filters;
    let n = cfg.batch * cfg.output() * cfg.output();
    let k = cfg.channels * cfg.kernel * cfg.kernel;
    let a = uniform_tensor(gcnn_tensor::Shape4::new(1, 1, m, k), -1.0, 1.0, 11);
    let b = uniform_tensor(gcnn_tensor::Shape4::new(1, 1, k, n), -1.0, 1.0, 12);
    let mut c = vec![0.0f32; m * n];
    let samples = time_wall(repeats, || {
        sgemm(
            Transpose::No,
            Transpose::No,
            m,
            n,
            k,
            1.0,
            a.as_slice(),
            k,
            b.as_slice(),
            n,
            0.0,
            &mut c,
            n,
        );
    });
    section(
        "sgemm_im2col_base",
        samples,
        Some(gemm_flops(m, n, k)),
        Some(format!("m={m} n={n} k={k}")),
    )
}

/// Batched 2-D real FFT round-trip over the fft-conv input plane set
/// (`b·c` planes, padded size = next pow2 ≥ `i + k − 1`).
fn bench_batched_fft(cfg: &ConvConfig, repeats: Repeats) -> Section {
    let min_size = cfg.input + cfg.kernel - 1;
    let fft_n = min_size.next_power_of_two();
    let planes = cfg.batch * cfg.channels;
    let plan = RfftPlan::cached(fft_n);
    let data = uniform_tensor(
        gcnn_tensor::Shape4::new(planes, 1, fft_n, fft_n),
        -1.0,
        1.0,
        13,
    );
    let mut spectra = vec![gcnn_tensor::Complex32::ZERO; planes * plan.spectrum_len()];
    let mut back = vec![0.0f32; planes * fft_n * fft_n];
    let samples = time_wall(repeats, || {
        gcnn_fft::rfft_forward_batch(&plan, data.as_slice(), &mut spectra);
        gcnn_fft::rfft_inverse_batch(&plan, &spectra, &mut back);
        std::hint::black_box(&back);
    });
    section(
        "batched_rfft_roundtrip",
        samples,
        None,
        Some(format!("{planes} planes of {fft_n}x{fft_n}")),
    )
}

/// Scalar-vs-SIMD micro-bench report (`results/BENCH_simd.json`).
#[derive(Debug, Serialize)]
struct SimdReport {
    /// The natively dispatched ISA ([`gcnn_tensor::simd::isa_name`]).
    isa: String,
    sections: Vec<Section>,
    /// `scalar p50 / simd p50` of the 256³ SGEMM micro-bench.
    sgemm_speedup: f64,
    /// `scalar p50 / simd p50` of the batched rfft round-trip.
    rfft_speedup: f64,
}

/// Time `body` under the native dispatch table, then with the table
/// pinned to scalar; returns the two sections and the p50 speedup.
fn ab_scalar(
    name: &str,
    repeats: Repeats,
    flops: Option<u64>,
    mut body: impl FnMut(),
) -> (Section, Section, f64) {
    let simd = time_wall(repeats, &mut body);
    gcnn_tensor::simd::set_force_scalar(true);
    let scalar = time_wall(repeats, &mut body);
    gcnn_tensor::simd::set_force_scalar(false);
    let s_simd = section(&format!("{name}_simd"), simd, flops, None);
    let s_scalar = section(&format!("{name}_scalar"), scalar, flops, None);
    let speedup = if s_simd.p50_ms > 0.0 {
        s_scalar.p50_ms / s_simd.p50_ms
    } else {
        1.0
    };
    (s_simd, s_scalar, speedup)
}

/// The SIMD A/B suite: the 256×256×256 SGEMM the acceptance gate tracks
/// and a batched rfft round-trip covering butterflies + pointwise paths.
fn bench_simd(repeats: Repeats) -> SimdReport {
    let isa = gcnn_tensor::simd::isa_name().to_string();
    println!("simd A/B: native isa = {isa}");

    let (m, n, k) = (256usize, 256, 256);
    let a = uniform_tensor(gcnn_tensor::Shape4::new(1, 1, m, k), -1.0, 1.0, 31);
    let b = uniform_tensor(gcnn_tensor::Shape4::new(1, 1, k, n), -1.0, 1.0, 32);
    let mut c = vec![0.0f32; m * n];
    let (g_simd, g_scalar, sgemm_speedup) =
        ab_scalar("sgemm_256", repeats, Some(gemm_flops(m, n, k)), || {
            sgemm(
                Transpose::No,
                Transpose::No,
                m,
                n,
                k,
                1.0,
                a.as_slice(),
                k,
                b.as_slice(),
                n,
                0.0,
                &mut c,
                n,
            );
        });

    let fft_n = 64usize;
    let planes = 32usize;
    let plan = RfftPlan::cached(fft_n);
    let data = uniform_tensor(
        gcnn_tensor::Shape4::new(planes, 1, fft_n, fft_n),
        -1.0,
        1.0,
        33,
    );
    let mut spectra = vec![gcnn_tensor::Complex32::ZERO; planes * plan.spectrum_len()];
    let mut back = vec![0.0f32; planes * fft_n * fft_n];
    let (f_simd, f_scalar, rfft_speedup) = ab_scalar("rfft_batch", repeats, None, || {
        gcnn_fft::rfft_forward_batch(&plan, data.as_slice(), &mut spectra);
        gcnn_fft::rfft_inverse_batch(&plan, &spectra, &mut back);
        std::hint::black_box(&back);
    });

    println!("simd A/B: sgemm {sgemm_speedup:.2}x, rfft {rfft_speedup:.2}x over scalar");
    SimdReport {
        isa,
        sections: vec![g_simd, g_scalar, f_simd, f_scalar],
        sgemm_speedup,
        rfft_speedup,
    }
}

/// One forward + full backward (data + filters) for one algorithm.
fn bench_algo(
    cfg: &ConvConfig,
    algo: &dyn gcnn_conv::ConvAlgorithm,
    tag: &str,
    repeats: Repeats,
) -> Vec<Section> {
    if let Err(err) = algo.supports(cfg) {
        return vec![skipped(&format!("conv_{tag}"), format!("{err:?}"))];
    }
    if repeats.reps == 0 {
        return vec![skipped(&format!("conv_{tag}"), "iters = 0".to_string())];
    }
    let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 21);
    let w = xavier_filters(cfg.filter_shape(), 22);
    let y = algo.forward(cfg, &x, &w);

    let fwd = time_wall(repeats, || {
        std::hint::black_box(algo.forward(cfg, &x, &w));
    });
    let bwd = time_wall(repeats, || {
        std::hint::black_box(algo.backward_data(cfg, &y, &w));
        std::hint::black_box(algo.backward_filters(cfg, &x, &y));
    });
    vec![
        section(
            &format!("conv_{tag}_fwd"),
            fwd,
            Some(cfg.forward_flops()),
            None,
        ),
        section(&format!("conv_{tag}_bwd"), bwd, None, None),
    ]
}

fn main() {
    let repeats = Repeats::new(
        env_usize("GCNN_PERF_WARMUP", 1),
        env_usize("GCNN_PERF_ITERS", 10),
    );
    // Direct is minutes per iteration: no warmup, few reps.
    let direct_repeats = Repeats::new(0, env_usize("GCNN_PERF_DIRECT_ITERS", 2));
    let cfg = ConvConfig::paper_base();
    println!(
        "perf_smoke: base config {:?} (output {}), {} iters after {} warmup",
        cfg,
        cfg.output(),
        repeats.reps,
        repeats.warmup
    );

    let mut sections = Vec::new();
    sections.push(bench_sgemm(&cfg, repeats));
    sections.push(bench_batched_fft(&cfg, repeats));
    for strat in [Strategy::Unrolling, Strategy::Fft] {
        let algo = algorithm_for(strat);
        let tag = format!("{strat:?}").to_lowercase();
        sections.extend(bench_algo(&cfg, algo.as_ref(), &tag, repeats));
    }
    // Winograd has no `Strategy` slot of its own (it rides the
    // transform-domain family) and F(2x2,3x3) needs k = 3, so it is
    // tracked at the 3x3 variant of the base config.
    let wcfg = ConvConfig { kernel: 3, ..cfg };
    let winograd = gcnn_conv::WinogradConv::new();
    sections.extend(bench_algo(&wcfg, &winograd, "winograd_3x3", repeats));
    {
        let algo = algorithm_for(Strategy::Direct);
        sections.extend(bench_algo(&cfg, algo.as_ref(), "direct", direct_repeats));
    }

    let report = Report {
        config: cfg,
        sections,
    };
    match gcnn_bench::write_json("BENCH_hotpaths", &report) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write BENCH_hotpaths.json: {e}"),
    }

    let simd_report = bench_simd(repeats);
    match gcnn_bench::write_json("BENCH_simd", &simd_report) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write BENCH_simd.json: {e}"),
    }
}
