//! perf_smoke — tracked wall-clock timings of the hot paths every figure
//! depends on, at the paper's base configuration `(64,128,64,11,1)`.
//!
//! Times the im2col-shaped SGEMM (`m = f`, `n = b·oh·ow`, `k = c·k²`),
//! a batched 2-D real FFT of the fft-conv plane set, and one
//! forward + backward convolution per strategy, then writes
//! `results/BENCH_hotpaths.json` with mean/p50/p95 per section so the
//! performance trajectory is comparable across PRs.
//!
//! Timing goes through the shared `gcnn_autotune::timing` util (warmup
//! then trimmed-median aggregation) — the same one `bench_report` and
//! the autotune harness use — so every number in `results/` is produced
//! the same way.
//!
//! Environment knobs:
//! * `GCNN_PERF_ITERS` — iterations per section (default 10).
//! * `GCNN_PERF_WARMUP` — untimed warmup iterations (default 1).
//! * `GCNN_PERF_DIRECT_ITERS` — iterations for the `Direct` strategy
//!   (default 2: it is the unoptimized O(n⁷) reference loop and costs
//!   minutes per iteration at the base config on one core; it also
//!   gets no warmup).
//!
//! A second report, `results/BENCH_simd.json`, records scalar-vs-SIMD
//! throughput of the GEMM and FFT micro-kernels: each micro-bench runs
//! under the native dispatch table and again with the table pinned to
//! scalar (`set_force_scalar`), and the p50 ratio is the speedup
//! `bench_compare --simd` gates on so a silent dispatch regression to
//! scalar fails CI.
//!
//! A third, `results/BENCH_fft.json`, is the rfft A/B broken out per
//! transform size × batch count (the aggregate in `BENCH_simd` is its
//! geometric mean); `bench_compare --fft` gates on it.
//!
//! A fourth, `results/BENCH_layout.json`, A/Bs the fused NCHWc
//! conv+ReLU(+pool) path against the unfused planar unrolling path over
//! LeNet's remainder-heavy layers and two conv-heavy zoo shapes whose
//! channel counts fill the SIMD block; `bench_compare --layout` gates
//! on the headline geomean.

#![forbid(unsafe_code)]

use gcnn_autotune::timing::{env_usize, stats, time_wall, Repeats};
use gcnn_conv::{algorithm_for, ConvConfig, Strategy};
use gcnn_fft::RfftPlan;
use gcnn_gemm::{gemm_flops, sgemm, Transpose};
use gcnn_tensor::init::{uniform_tensor, xavier_filters};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Section {
    name: String,
    iters: usize,
    mean_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
    min_ms: f64,
    max_ms: f64,
    /// Sustained GFLOP/s over the mean, where a FLOP count is defined.
    gflops: Option<f64>,
    note: Option<String>,
}

#[derive(Debug, Serialize)]
struct Report {
    config: ConvConfig,
    sections: Vec<Section>,
}

fn section(name: &str, samples: Vec<f64>, flops: Option<u64>, note: Option<String>) -> Section {
    let st = stats(&samples);
    let s = Section {
        name: name.to_string(),
        iters: st.iters,
        mean_ms: st.mean_ms,
        p50_ms: st.p50_ms,
        p95_ms: st.p95_ms,
        min_ms: st.min_ms,
        max_ms: st.max_ms,
        gflops: flops.map(|f| f as f64 / (st.mean_ms * 1e6)),
        note,
    };
    println!(
        "{:<24} iters {:>3}  mean {:>10} ms  p50 {:>10} ms  p95 {:>10} ms{}",
        s.name,
        s.iters,
        gcnn_bench::ms(s.mean_ms),
        gcnn_bench::ms(s.p50_ms),
        gcnn_bench::ms(s.p95_ms),
        s.gflops
            .map(|g| format!("  {g:.2} GFLOP/s"))
            .unwrap_or_default(),
    );
    s
}

fn skipped(name: &str, reason: String) -> Section {
    println!("{name:<24} skipped: {reason}");
    Section {
        name: name.to_string(),
        iters: 0,
        mean_ms: 0.0,
        p50_ms: 0.0,
        p95_ms: 0.0,
        min_ms: 0.0,
        max_ms: 0.0,
        gflops: None,
        note: Some(reason),
    }
}

/// The im2col GEMM of the whole base-config batch: `m = f = 64`,
/// `n = b·oh·ow = 891136`, `k = c·k² = 363`.
fn bench_sgemm(cfg: &ConvConfig, repeats: Repeats) -> Section {
    let m = cfg.filters;
    let n = cfg.batch * cfg.output() * cfg.output();
    let k = cfg.channels * cfg.kernel * cfg.kernel;
    let a = uniform_tensor(gcnn_tensor::Shape4::new(1, 1, m, k), -1.0, 1.0, 11);
    let b = uniform_tensor(gcnn_tensor::Shape4::new(1, 1, k, n), -1.0, 1.0, 12);
    let mut c = vec![0.0f32; m * n];
    let samples = time_wall(repeats, || {
        sgemm(
            Transpose::No,
            Transpose::No,
            m,
            n,
            k,
            1.0,
            a.as_slice(),
            k,
            b.as_slice(),
            n,
            0.0,
            &mut c,
            n,
        );
    });
    section(
        "sgemm_im2col_base",
        samples,
        Some(gemm_flops(m, n, k)),
        Some(format!("m={m} n={n} k={k}")),
    )
}

/// Batched 2-D real FFT round-trip over the fft-conv input plane set
/// (`b·c` planes, padded size = next pow2 ≥ `i + k − 1`).
fn bench_batched_fft(cfg: &ConvConfig, repeats: Repeats) -> Section {
    let min_size = cfg.input + cfg.kernel - 1;
    let fft_n = min_size.next_power_of_two();
    let planes = cfg.batch * cfg.channels;
    let plan = RfftPlan::cached(fft_n);
    let data = uniform_tensor(
        gcnn_tensor::Shape4::new(planes, 1, fft_n, fft_n),
        -1.0,
        1.0,
        13,
    );
    let mut spectra = vec![gcnn_tensor::Complex32::ZERO; planes * plan.spectrum_len()];
    let mut back = vec![0.0f32; planes * fft_n * fft_n];
    let samples = time_wall(repeats, || {
        gcnn_fft::rfft_forward_batch(&plan, data.as_slice(), &mut spectra);
        gcnn_fft::rfft_inverse_batch(&plan, &spectra, &mut back);
        std::hint::black_box(&back);
    });
    section(
        "batched_rfft_roundtrip",
        samples,
        None,
        Some(format!("{planes} planes of {fft_n}x{fft_n}")),
    )
}

/// Scalar-vs-SIMD micro-bench report (`results/BENCH_simd.json`).
#[derive(Debug, Serialize)]
struct SimdReport {
    /// The natively dispatched ISA ([`gcnn_tensor::simd::isa_name`]).
    isa: String,
    sections: Vec<Section>,
    /// `scalar p50 / simd p50` of the 256³ SGEMM micro-bench.
    sgemm_speedup: f64,
    /// Geometric mean of the per-size×batch rfft sweep speedups (the
    /// per-entry breakdown lives in `results/BENCH_fft.json`).
    rfft_speedup: f64,
}

/// One cell of the rfft A/B sweep: a `n×n` round-trip at one batch
/// count, dispatched natively and with the table pinned to scalar.
#[derive(Debug, Serialize)]
struct FftEntry {
    n: usize,
    batch: usize,
    simd_p50_ms: f64,
    scalar_p50_ms: f64,
    /// `scalar p50 / simd p50` for this cell.
    speedup: f64,
}

/// Per-size × batch rfft A/B report (`results/BENCH_fft.json`). A
/// single aggregate number hid size-dependent regressions (small
/// transforms are shuffle-bound, large ones bandwidth-bound); the sweep
/// exposes every cell and the gate enforces both the geomean and a
/// per-cell floor.
#[derive(Debug, Serialize)]
struct FftReport {
    /// The natively dispatched ISA ([`gcnn_tensor::simd::isa_name`]).
    isa: String,
    entries: Vec<FftEntry>,
    /// Geometric mean of the per-entry speedups — the number
    /// `bench_compare --fft` gates on.
    overall_speedup: f64,
}

/// A/B the batched rfft round-trip over transform sizes × batch counts.
fn bench_fft_sweep(repeats: Repeats) -> FftReport {
    let isa = gcnn_tensor::simd::isa_name().to_string();
    println!("fft A/B sweep: native isa = {isa}");
    let mut entries = Vec::new();
    for n in [16usize, 32, 64, 128] {
        for batch in [1usize, 8, 32] {
            let plan = RfftPlan::cached(n);
            let data = uniform_tensor(
                gcnn_tensor::Shape4::new(batch, 1, n, n),
                -1.0,
                1.0,
                (n * 131 + batch) as u64,
            );
            let mut spectra = vec![gcnn_tensor::Complex32::ZERO; batch * plan.spectrum_len()];
            let mut back = vec![0.0f32; batch * n * n];
            let mut round_trip = || {
                gcnn_fft::rfft_forward_batch(&plan, data.as_slice(), &mut spectra);
                gcnn_fft::rfft_inverse_batch(&plan, &spectra, &mut back);
                std::hint::black_box(&back);
            };
            // A small-n round-trip runs in a few µs — below clock
            // jitter when timed one call at a time. Calibrate an
            // inner-repetition count so each timed sample spans ≥ ~2 ms
            // (per-call times are recovered by dividing), sized off the
            // dispatched path so the slower scalar arm only gets a
            // wider window.
            round_trip();
            let t = std::time::Instant::now();
            round_trip();
            let est_ms = t.elapsed().as_secs_f64() * 1e3;
            let inner = ((2.0 / est_ms.max(1e-6)).ceil() as usize).clamp(1, 65536);
            let (s_simd, s_scalar, speedup) =
                ab_scalar(&format!("rfft_{n}x{n}_b{batch}"), repeats, None, || {
                    for _ in 0..inner {
                        round_trip();
                    }
                });
            entries.push(FftEntry {
                n,
                batch,
                simd_p50_ms: s_simd.p50_ms / inner as f64,
                scalar_p50_ms: s_scalar.p50_ms / inner as f64,
                speedup,
            });
        }
    }
    let overall_speedup = (entries
        .iter()
        .map(|e| e.speedup.max(1e-12).ln())
        .sum::<f64>()
        / entries.len() as f64)
        .exp();
    println!("fft A/B sweep: overall {overall_speedup:.2}x over scalar (geomean)");
    FftReport {
        isa,
        entries,
        overall_speedup,
    }
}

/// One cell of the layout A/B sweep: a conv(+ReLU(+pool)) chain run
/// fused over packed NCHWc and unfused over planar NCHW.
#[derive(Debug, Serialize)]
struct LayoutEntry {
    name: String,
    cfg: ConvConfig,
    /// Max-pool window fused after conv+ReLU, when the shape pools.
    pool_window: Option<usize>,
    /// Max-pool stride fused after conv+ReLU, when the shape pools.
    pool_stride: Option<usize>,
    /// Whether this entry gates: true for shapes whose channel counts
    /// fill the SIMD block. Remainder-heavy shapes (LeNet's 1- and
    /// 6-channel layers) are kept for honesty but never gate — their
    /// padded lanes do wasted work and planar can win.
    headline: bool,
    fused_p50_ms: f64,
    planar_p50_ms: f64,
    /// One-time input+filter packing cost. In a network, activations
    /// stay packed across adjacent blocked layers, so this is paid per
    /// chain boundary, not per layer — reported, not gated.
    pack_p50_ms: f64,
    /// `planar p50 / fused p50` for this cell.
    speedup: f64,
}

/// The NCHWc layout A/B report (`results/BENCH_layout.json`).
#[derive(Debug, Serialize)]
struct LayoutReport {
    /// The natively dispatched ISA ([`gcnn_tensor::simd::isa_name`]).
    isa: String,
    /// Inner channel-block width the packed path ran with.
    block: usize,
    entries: Vec<LayoutEntry>,
    /// Geometric mean of the headline-entry speedups — the number
    /// `bench_compare --layout` gates on.
    overall_speedup: f64,
}

/// A/B the fused packed conv path against the unfused planar one.
fn bench_layout(repeats: Repeats) -> LayoutReport {
    use gcnn_conv::layers::{PoolKind, PoolLayer, ReluLayer};
    use gcnn_conv::nchwc;
    use gcnn_tensor::workspace;

    let isa = gcnn_tensor::simd::isa_name().to_string();
    let block = gcnn_tensor::simd::preferred_block();
    println!("layout A/B sweep: isa = {isa}, channel block = {block}");

    struct Case {
        name: &'static str,
        cfg: ConvConfig,
        pool: Option<(usize, usize)>,
        headline: bool,
    }
    let mut vgg3 = ConvConfig::with_channels(8, 128, 28, 256, 3, 1);
    vgg3.pad = 1;
    let mut vgg4 = ConvConfig::with_channels(8, 256, 14, 256, 3, 1);
    vgg4.pad = 1;
    let mut alex3 = ConvConfig::with_channels(8, 192, 13, 384, 3, 1);
    alex3.pad = 1;
    let cases = [
        Case {
            name: "lenet_conv1",
            cfg: ConvConfig::with_channels(64, 1, 32, 6, 5, 1),
            pool: Some((2, 2)),
            headline: false,
        },
        Case {
            name: "lenet_conv2",
            cfg: ConvConfig::with_channels(64, 6, 14, 16, 5, 1),
            pool: Some((2, 2)),
            headline: false,
        },
        Case {
            name: "vgg3_like",
            cfg: vgg3,
            pool: None,
            headline: true,
        },
        Case {
            name: "vgg4_like",
            cfg: vgg4,
            pool: None,
            headline: true,
        },
        Case {
            name: "alexnet_conv3_like",
            cfg: alex3,
            pool: None,
            headline: true,
        },
    ];

    let mut entries = Vec::new();
    for case in &cases {
        let cfg = &case.cfg;
        let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 61);
        let w = xavier_filters(cfg.filter_shape(), 62);

        // Planar baseline: the exact layer sequence a planar network
        // executes — unrolling conv, then ReLU, then max-pool.
        let algo = algorithm_for(Strategy::Unrolling);
        let planar = time_wall(repeats, || {
            let y = algo.forward(cfg, &x, &w);
            let y = ReluLayer.forward(&y);
            let y = match case.pool {
                Some((pw, ps)) => PoolLayer::new(PoolKind::Max, pw, ps).forward(&y).output,
                None => y,
            };
            std::hint::black_box(&y);
        });

        // Fused packed path. Input and filters are prepacked: within a
        // network, activations stay packed across adjacent blocked
        // layers, so packing is a chain-boundary cost (timed separately
        // below, never folded into the kernel comparison).
        let mut pin = vec![0.0f32; nchwc::packed_input_len(cfg, block)];
        let mut pwb = vec![0.0f32; nchwc::packed_filter_len(cfg, block)];
        nchwc::pack_input(cfg, &x, block, &mut pin);
        nchwc::pack_filters(cfg, &w, block, &mut pwb);
        let out_len = match case.pool {
            Some((pw, ps)) => {
                let po = nchwc::pooled_output(cfg, pw, ps);
                cfg.batch * cfg.filters.div_ceil(block) * block * po * po
            }
            None => nchwc::packed_output_len(cfg, block),
        };
        let mut pout = vec![0.0f32; out_len];
        let fused_body = |pout: &mut [f32]| match case.pool {
            Some((pw, ps)) => nchwc::fused_conv_relu_pool(cfg, block, pw, ps, &pin, &pwb, pout),
            None => nchwc::fused_conv_relu(cfg, block, &pin, &pwb, pout, true),
        };
        // The zero-alloc contract is part of what ships: a warm fused
        // call must be entirely arena-served.
        fused_body(&mut pout);
        fused_body(&mut pout);
        let (_, fresh) = workspace::alloc_scope(|| fused_body(&mut pout));
        assert_eq!(
            fresh, 0,
            "{}: warm fused path allocated {fresh} fresh bytes",
            case.name
        );
        let fused = time_wall(repeats, || {
            fused_body(&mut pout);
            std::hint::black_box(&pout);
        });

        let pack = time_wall(repeats, || {
            nchwc::pack_input(cfg, &x, block, &mut pin);
            nchwc::pack_filters(cfg, &w, block, &mut pwb);
        });

        let sp = stats(&planar);
        let sf = stats(&fused);
        let sk = stats(&pack);
        let speedup = if sf.p50_ms > 0.0 {
            sp.p50_ms / sf.p50_ms
        } else {
            1.0
        };
        println!(
            "{:<20} planar {:>9} ms  fused {:>9} ms  pack {:>9} ms  {:>5.2}x{}",
            case.name,
            gcnn_bench::ms(sp.p50_ms),
            gcnn_bench::ms(sf.p50_ms),
            gcnn_bench::ms(sk.p50_ms),
            speedup,
            if case.headline { "  [headline]" } else { "" },
        );
        entries.push(LayoutEntry {
            name: case.name.to_string(),
            cfg: *cfg,
            pool_window: case.pool.map(|(pw, _)| pw),
            pool_stride: case.pool.map(|(_, ps)| ps),
            headline: case.headline,
            fused_p50_ms: sf.p50_ms,
            planar_p50_ms: sp.p50_ms,
            pack_p50_ms: sk.p50_ms,
            speedup,
        });
    }
    let headline: Vec<f64> = entries
        .iter()
        .filter(|e| e.headline)
        .map(|e| e.speedup)
        .collect();
    let overall_speedup = (headline.iter().map(|s| s.max(1e-12).ln()).sum::<f64>()
        / headline.len().max(1) as f64)
        .exp();
    println!("layout A/B sweep: headline fused {overall_speedup:.2}x over planar (geomean)");
    LayoutReport {
        isa,
        block,
        entries,
        overall_speedup,
    }
}

/// Time `body` under the native dispatch table, then with the table
/// pinned to scalar; returns the two sections and the p50 speedup.
fn ab_scalar(
    name: &str,
    repeats: Repeats,
    flops: Option<u64>,
    mut body: impl FnMut(),
) -> (Section, Section, f64) {
    let simd = time_wall(repeats, &mut body);
    gcnn_tensor::simd::set_force_scalar(true);
    let scalar = time_wall(repeats, &mut body);
    gcnn_tensor::simd::set_force_scalar(false);
    let s_simd = section(&format!("{name}_simd"), simd, flops, None);
    let s_scalar = section(&format!("{name}_scalar"), scalar, flops, None);
    let speedup = if s_simd.p50_ms > 0.0 {
        s_scalar.p50_ms / s_simd.p50_ms
    } else {
        1.0
    };
    (s_simd, s_scalar, speedup)
}

/// The SIMD A/B suite: the 256×256×256 SGEMM the acceptance gate tracks;
/// the FFT number is the geomean of the per-size sweep in `fft_report`
/// (the old single-cell aggregate hid size-dependent regressions).
fn bench_simd(repeats: Repeats, fft_report: &FftReport) -> SimdReport {
    let isa = gcnn_tensor::simd::isa_name().to_string();
    println!("simd A/B: native isa = {isa}");

    let (m, n, k) = (256usize, 256, 256);
    let a = uniform_tensor(gcnn_tensor::Shape4::new(1, 1, m, k), -1.0, 1.0, 31);
    let b = uniform_tensor(gcnn_tensor::Shape4::new(1, 1, k, n), -1.0, 1.0, 32);
    let mut c = vec![0.0f32; m * n];
    let (g_simd, g_scalar, sgemm_speedup) =
        ab_scalar("sgemm_256", repeats, Some(gemm_flops(m, n, k)), || {
            sgemm(
                Transpose::No,
                Transpose::No,
                m,
                n,
                k,
                1.0,
                a.as_slice(),
                k,
                b.as_slice(),
                n,
                0.0,
                &mut c,
                n,
            );
        });

    let rfft_speedup = fft_report.overall_speedup;
    println!("simd A/B: sgemm {sgemm_speedup:.2}x, rfft {rfft_speedup:.2}x over scalar");
    SimdReport {
        isa,
        sections: vec![g_simd, g_scalar],
        sgemm_speedup,
        rfft_speedup,
    }
}

/// One forward + full backward (data + filters) for one algorithm.
fn bench_algo(
    cfg: &ConvConfig,
    algo: &dyn gcnn_conv::ConvAlgorithm,
    tag: &str,
    repeats: Repeats,
) -> Vec<Section> {
    if let Err(err) = algo.supports(cfg) {
        return vec![skipped(&format!("conv_{tag}"), format!("{err:?}"))];
    }
    if repeats.reps == 0 {
        return vec![skipped(&format!("conv_{tag}"), "iters = 0".to_string())];
    }
    let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 21);
    let w = xavier_filters(cfg.filter_shape(), 22);
    let y = algo.forward(cfg, &x, &w);

    let fwd = time_wall(repeats, || {
        std::hint::black_box(algo.forward(cfg, &x, &w));
    });
    let bwd = time_wall(repeats, || {
        std::hint::black_box(algo.backward_data(cfg, &y, &w));
        std::hint::black_box(algo.backward_filters(cfg, &x, &y));
    });
    vec![
        section(
            &format!("conv_{tag}_fwd"),
            fwd,
            Some(cfg.forward_flops()),
            None,
        ),
        section(&format!("conv_{tag}_bwd"), bwd, None, None),
    ]
}

fn main() {
    let repeats = Repeats::new(
        env_usize("GCNN_PERF_WARMUP", 1),
        env_usize("GCNN_PERF_ITERS", 10),
    );
    // Direct is minutes per iteration: no warmup, few reps.
    let direct_repeats = Repeats::new(0, env_usize("GCNN_PERF_DIRECT_ITERS", 2));
    let cfg = ConvConfig::paper_base();
    println!(
        "perf_smoke: base config {:?} (output {}), {} iters after {} warmup",
        cfg,
        cfg.output(),
        repeats.reps,
        repeats.warmup
    );

    let mut sections = Vec::new();
    sections.push(bench_sgemm(&cfg, repeats));
    sections.push(bench_batched_fft(&cfg, repeats));
    for strat in [Strategy::Unrolling, Strategy::Fft] {
        let algo = algorithm_for(strat);
        let tag = format!("{strat:?}").to_lowercase();
        sections.extend(bench_algo(&cfg, algo.as_ref(), &tag, repeats));
    }
    // Winograd has no `Strategy` slot of its own (it rides the
    // transform-domain family) and F(2x2,3x3) needs k = 3, so it is
    // tracked at the 3x3 variant of the base config.
    let wcfg = ConvConfig { kernel: 3, ..cfg };
    let winograd = gcnn_conv::WinogradConv::new();
    sections.extend(bench_algo(&wcfg, &winograd, "winograd_3x3", repeats));
    {
        let algo = algorithm_for(Strategy::Direct);
        sections.extend(bench_algo(&cfg, algo.as_ref(), "direct", direct_repeats));
    }

    let report = Report {
        config: cfg,
        sections,
    };
    match gcnn_bench::write_json("BENCH_hotpaths", &report) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write BENCH_hotpaths.json: {e}"),
    }

    let fft_report = bench_fft_sweep(repeats);
    match gcnn_bench::write_json("BENCH_fft", &fft_report) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write BENCH_fft.json: {e}"),
    }

    let simd_report = bench_simd(repeats, &fft_report);
    match gcnn_bench::write_json("BENCH_simd", &simd_report) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write BENCH_simd.json: {e}"),
    }

    let layout_report = bench_layout(repeats);
    match gcnn_bench::write_json("BENCH_layout", &layout_report) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write BENCH_layout.json: {e}"),
    }
}
