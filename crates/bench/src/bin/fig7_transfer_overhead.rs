//! Fig. 7 — data-transfer overheads of different implementations over
//! the five Table I configurations.

#![forbid(unsafe_code)]

use gcnn_core::report::{pct, text_table};
use gcnn_core::transfer_overheads;
use gcnn_gpusim::DeviceSpec;

fn main() {
    let dev = DeviceSpec::k40c();
    println!("Fig. 7 — CPU↔GPU transfer share of total runtime over Table I\n");

    let rows = transfer_overheads(&dev);
    let header: Vec<String> = std::iter::once("impl".to_string())
        .chain(rows[0].fractions.iter().map(|(n, _)| n.clone()))
        .collect();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            std::iter::once(r.implementation.clone())
                .chain(r.fractions.iter().map(|(_, f)| match f {
                    Some(f) => pct(*f),
                    None => "—".to_string(),
                }))
                .collect()
        })
        .collect();
    println!("{}", text_table("transfer share", &header, &table_rows));

    println!("Paper headlines reproduced:");
    println!("  · cuDNN, Caffe, fbfft ≈ 0 % (prefetching/pinned/persistent buffers)");
    println!("  · Torch-cunn, cuda-convnet2, Theano-fft in the 1–15 % band");
    println!("  · Theano-CorrMM spikes past 60 % on Conv2 (host-staged panels)");

    match gcnn_bench::write_json("fig7_transfer_overhead", &rows) {
        Ok(path) => println!("\nraw data → {path}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
