//! Fig. 4 — runtime breakdowns of convolutional layers in different
//! implementations (hotspot kernels) at the representative configuration
//! `(64, 128, 64, 11, 1)`.

#![forbid(unsafe_code)]

use gcnn_conv::ConvConfig;
use gcnn_core::hotspot::all_hotspots;
use gcnn_core::report::pct;
use gcnn_gpusim::DeviceSpec;

fn main() {
    let cfg = ConvConfig::paper_base();
    let dev = DeviceSpec::k40c();
    println!("Fig. 4 — hotspot kernels per implementation at {cfg}\n");

    let reports = all_hotspots(&cfg, &dev);
    for r in &reports {
        println!("{}", r.implementation);
        for (kernel, share) in &r.kernel_shares {
            println!("  {:<32} {:>7}", kernel, pct(*share));
        }
        if r.transfer_share > 0.001 {
            println!(
                "  {:<32} {:>7}",
                "(CPU↔GPU transfer)",
                pct(r.transfer_share)
            );
        }
        println!();
    }

    println!("Paper headlines reproduced:");
    println!("  · GEMM dominates the explicit unrollers (paper: 87/83/80 % for");
    println!("    Caffe/Torch-cunn/Theano-CorrMM), im2col/col2im take the rest");
    println!("  · cuDNN: cuDNN_gemm + wgrad_alg0_engine carry nearly everything");
    println!("  · cuda-convnet2: filterActs / img_acts / conv_weight_acts");
    println!("  · fbfft: decimateInFrequency(+Inverse), Transpose, Cgemm");
    println!("  · Theano-fft: data preparation + transfers dominate");

    match gcnn_bench::write_json("fig4_hotspot_kernels", &reports) {
        Ok(path) => println!("\nraw data → {path}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
