//! bench_compare — diff two `BENCH_hotpaths.json` reports and fail on
//! regression. The CI bench job runs this after `perf_smoke`:
//!
//! ```text
//! bench_compare --baseline baseline.json [--current results/BENCH_hotpaths.json]
//!               [--tolerance 0.25] [--trace results/BENCH_trace.json]
//!               [--simd results/BENCH_simd.json] [--min-speedup 1.2]
//!               [--fft results/BENCH_fft.json] [--fft-min-speedup 2.0]
//!               [--layout results/BENCH_layout.json] [--layout-min-speedup 1.15]
//!               [--serve baseline_serve.json] [--serve-current results/BENCH_serve.json]
//!               [--serve-tolerance 0.35] [--serve-min-speedup 1.0]
//! ```
//!
//! A section whose p50 exceeds `baseline · (1 + tolerance)` fails, as
//! does a measured baseline section missing from the current report.
//! With `--trace`, a non-zero steady-state fresh-allocation count in
//! the trace report fails too. With `--simd`, the scalar-vs-SIMD
//! report must show the dispatched SGEMM kernel at least `--min-speedup`
//! times faster than scalar (skipped on scalar-only hosts). With
//! `--fft`, the per-size rfft sweep must show a geomean speedup of at
//! least `--fft-min-speedup` with no cell below its floor (also skipped
//! on scalar-only hosts). With `--layout`, the NCHWc layout A/B sweep
//! must show the fused packed conv path beating the unfused planar path
//! by `--layout-min-speedup` (geomean over headline entries, per-entry
//! floor 1.0×; also skipped on scalar-only hosts).
//! With `--serve`, a fresh `BENCH_serve.json` is
//! gated against the committed baseline: the batched speedup must stay
//! at or above `--serve-min-speedup`, and peak throughput / headline
//! p50 must stay within `--serve-tolerance` (wider than the kernel
//! tolerance — serving numbers come from a threaded closed loop).
//! With `--mtsim`, a fresh `BENCH_mtsim.json` (`--mtsim-current`) is
//! gated against the committed baseline: 2-tenant FIFO slowdown
//! ≥ 1.8×, partition over round-robin ≥ 1.15× on the occupancy-limited
//! workload, GM204 occupancy within 5% of maxDNN, and per-cell
//! throughput within `--mtsim-tolerance` of baseline (tight default —
//! the simulator is deterministic, so drift means the model changed).
//! Exit codes: 0 clean, 1 regression, 2 usage or I/O error.

#![forbid(unsafe_code)]

use gcnn_bench::compare::{
    diff_reports, fft_gate, layout_gate, mtsim_gate, serve_gate, simd_gate, steady_fresh_allocs,
};
use serde_json::Value;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: bench_compare --baseline <json> [--current <json>] \
         [--tolerance <frac>] [--trace <json>] [--simd <json>] \
         [--min-speedup <ratio>] [--fft <json>] [--fft-min-speedup <ratio>] \
         [--layout <json>] [--layout-min-speedup <ratio>] \
         [--serve <baseline json>] [--serve-current <json>] \
         [--serve-tolerance <frac>] [--serve-min-speedup <ratio>] \
         [--mtsim <baseline json>] [--mtsim-current <json>] \
         [--mtsim-tolerance <frac>]"
    );
    exit(2);
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_compare: cannot read {path}: {e}");
        exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("bench_compare: cannot parse {path}: {e:?}");
        exit(2);
    })
}

fn main() {
    let mut baseline = None;
    let mut current = "results/BENCH_hotpaths.json".to_string();
    let mut tolerance = 0.25f64;
    let mut trace = None;
    let mut simd = None;
    let mut min_speedup = 1.2f64;
    let mut fft = None;
    let mut fft_min_speedup = 2.0f64;
    let mut layout = None;
    let mut layout_min_speedup = 1.15f64;
    let mut serve = None;
    let mut serve_current = "results/BENCH_serve.json".to_string();
    let mut serve_tolerance = 0.35f64;
    let mut serve_min_speedup = 1.0f64;
    let mut mtsim = None;
    let mut mtsim_current = "results/BENCH_mtsim.json".to_string();
    let mut mtsim_tolerance = 0.10f64;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--baseline" => baseline = Some(value()),
            "--current" => current = value(),
            "--tolerance" => {
                tolerance = value().parse().unwrap_or_else(|_| usage());
                if tolerance < 0.0 {
                    usage();
                }
            }
            "--trace" => trace = Some(value()),
            "--simd" => simd = Some(value()),
            "--min-speedup" => {
                min_speedup = value().parse().unwrap_or_else(|_| usage());
                if min_speedup < 1.0 {
                    usage();
                }
            }
            "--fft" => fft = Some(value()),
            "--fft-min-speedup" => {
                fft_min_speedup = value().parse().unwrap_or_else(|_| usage());
                if fft_min_speedup < 1.0 {
                    usage();
                }
            }
            "--layout" => layout = Some(value()),
            "--layout-min-speedup" => {
                layout_min_speedup = value().parse().unwrap_or_else(|_| usage());
                if layout_min_speedup < 1.0 {
                    usage();
                }
            }
            "--serve" => serve = Some(value()),
            "--serve-current" => serve_current = value(),
            "--serve-tolerance" => {
                serve_tolerance = value().parse().unwrap_or_else(|_| usage());
                if serve_tolerance < 0.0 {
                    usage();
                }
            }
            "--serve-min-speedup" => {
                serve_min_speedup = value().parse().unwrap_or_else(|_| usage());
                if serve_min_speedup < 0.0 {
                    usage();
                }
            }
            "--mtsim" => mtsim = Some(value()),
            "--mtsim-current" => mtsim_current = value(),
            "--mtsim-tolerance" => {
                mtsim_tolerance = value().parse().unwrap_or_else(|_| usage());
                if mtsim_tolerance < 0.0 {
                    usage();
                }
            }
            _ => usage(),
        }
    }
    let Some(baseline) = baseline else { usage() };

    let diff = diff_reports(&load(&baseline), &load(&current), tolerance).unwrap_or_else(|e| {
        eprintln!("bench_compare: {e}");
        exit(2);
    });
    print!("{}", diff.render());
    let mut failed = diff.regressed();

    if let Some(trace_path) = trace {
        match steady_fresh_allocs(&load(&trace_path)) {
            Ok(0) => println!("steady-state allocations: 0 (ok)"),
            Ok(n) => {
                println!("steady-state allocations: {n} (REGRESSED — hot paths must not allocate)");
                failed = true;
            }
            Err(e) => {
                eprintln!("bench_compare: {e}");
                exit(2);
            }
        }
    }

    if let Some(simd_path) = simd {
        match simd_gate(&load(&simd_path), min_speedup) {
            Ok(gate) => {
                println!("{}", gate.render());
                failed |= !gate.passed();
            }
            Err(e) => {
                eprintln!("bench_compare: {e}");
                exit(2);
            }
        }
    }

    if let Some(fft_path) = fft {
        match fft_gate(&load(&fft_path), fft_min_speedup) {
            Ok(gate) => {
                println!("{}", gate.render());
                failed |= !gate.passed();
            }
            Err(e) => {
                eprintln!("bench_compare: {e}");
                exit(2);
            }
        }
    }

    if let Some(layout_path) = layout {
        match layout_gate(&load(&layout_path), layout_min_speedup) {
            Ok(gate) => {
                println!("{}", gate.render());
                failed |= !gate.passed();
            }
            Err(e) => {
                eprintln!("bench_compare: {e}");
                exit(2);
            }
        }
    }

    if let Some(serve_baseline) = serve {
        match serve_gate(
            &load(&serve_baseline),
            &load(&serve_current),
            serve_tolerance,
            serve_min_speedup,
        ) {
            Ok(gate) => {
                println!("{}", gate.render());
                failed |= !gate.passed();
            }
            Err(e) => {
                eprintln!("bench_compare: {e}");
                exit(2);
            }
        }
    }

    if let Some(mtsim_baseline) = mtsim {
        match mtsim_gate(
            &load(&mtsim_baseline),
            &load(&mtsim_current),
            mtsim_tolerance,
        ) {
            Ok(gate) => {
                println!("{}", gate.render());
                failed |= !gate.passed();
            }
            Err(e) => {
                eprintln!("bench_compare: {e}");
                exit(2);
            }
        }
    }

    if failed {
        println!("bench_compare: FAILED");
        exit(1);
    }
    println!("bench_compare: ok");
}
