//! serve_bench — closed-loop load generator for the `gcnn-serve`
//! inference service.
//!
//! Sweeps the two axes the serving layer exists to trade off: the
//! batch cap (`max_batch`, the paper's `b` axis applied at serving
//! time) and the offered load (total requests kept in flight across
//! all client connections). Each cell starts a fresh loopback server
//! with one worker per detected core minus the client side (on this
//! repo's 1-core CI container: exactly one), drives it with pipelining
//! clients for a fixed window, and records throughput plus the
//! server-side p50/p99 end-to-end latency into
//! `results/BENCH_serve.json` — the committed baseline that
//! `bench_compare --serve` gates against.
//!
//! The headline number is `batched_speedup`: throughput at the largest
//! batch cap over throughput at cap 1, both at the highest offered
//! load. Dynamic batching earns its latency budget only if this
//! exceeds 1, so `bench_compare` fails CI when it regresses below the
//! gate.
//!
//! `--smoke` runs a single short cell and asserts functional
//! correctness instead of recording numbers: every response must be
//! `Ok` and match a locally computed forward pass, and the batch-size
//! histogram must show at least one multi-request batch (proof the
//! coalescing path actually ran). Non-zero exit on any violation —
//! this is the CI `serve-smoke` job.
//!
//! Environment knobs:
//! * `GCNN_SERVE_MS` — measurement window per cell, ms (default 400;
//!   smoke default 250).
//! * `GCNN_SERVE_CONNS` — client connections (default 4).

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gcnn_autotune::timing::env_usize;
use gcnn_conv::Strategy;
use gcnn_models::Network;
use gcnn_serve::{BatchPolicy, Client, ServeConfig, Server, Status};
use gcnn_tensor::{Shape4, Tensor4};
use serde::Serialize;

/// Input geometry: LeNet-5 on 16×16 single-channel images — small
/// enough that a cell's window fits hundreds of batches on one core,
/// conv-shaped enough that batching amortizes real lowering work.
const SIZE: usize = 16;
const CLASSES: usize = 4;
const SEED: u64 = 42;

/// Per-request queue-delay budget. Small relative to a batch service
/// time so cap=1 cells are not penalized by idle waiting, large enough
/// that concurrent arrivals coalesce.
const MAX_DELAY: Duration = Duration::from_millis(2);

fn bench_net() -> Network {
    Network::lenet5(SIZE, CLASSES, Strategy::Unrolling, SEED)
}

fn image(seed: u64) -> Vec<f32> {
    (0..SIZE * SIZE)
        .map(|i| ((seed as usize * 31 + i * 7) % 97) as f32 / 97.0 - 0.5)
        .collect()
}

#[derive(Debug, Serialize)]
struct Cell {
    max_batch: usize,
    conns: usize,
    /// Requests kept in flight per connection (closed loop).
    depth: usize,
    /// conns × depth — the offered-load axis.
    offered_inflight: usize,
    window_ms: u64,
    completed: u64,
    shed: u64,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_batch: f64,
    batches_multi: u64,
}

#[derive(Debug, Serialize)]
struct Report {
    model: String,
    input: [usize; 3],
    workers: usize,
    max_delay_ms: u64,
    cells: Vec<Cell>,
    /// Throughput at the largest cap / throughput at cap 1, both at
    /// the highest offered load. The acceptance gate.
    batched_speedup: f64,
    cap1_throughput_rps: f64,
    capmax_throughput_rps: f64,
}

/// Drive one server configuration with closed-loop pipelining clients
/// for `window`; returns the cell record.
fn run_cell(max_batch: usize, conns: usize, depth: usize, window: Duration) -> Cell {
    // Admission must never bite at the measured loads: shed/resend
    // cycles would turn a throughput cell into an admission-control
    // cell. The overload path has its own integration tests.
    let policy = BatchPolicy::new(max_batch, MAX_DELAY)
        .with_queue_cap(conns * depth + max_batch.saturating_mul(4));
    let server = Server::start(ServeConfig::loopback(1, policy, (1, SIZE, SIZE)), |_| {
        bench_net()
    })
    .expect("bind loopback server");
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let clients: Vec<_> = (0..conns)
        .map(|conn| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let pixels = image(conn as u64);
                for _ in 0..depth {
                    client
                        .send(1, SIZE as u16, SIZE as u16, &pixels)
                        .expect("send");
                }
                let mut ok = 0u64;
                let mut inflight = depth;
                loop {
                    let resp = client.recv().expect("recv").expect("server closed mid-run");
                    if resp.status == Status::Ok {
                        ok += 1;
                    }
                    inflight -= 1;
                    if stop.load(Ordering::Relaxed) {
                        if inflight == 0 {
                            return ok;
                        }
                    } else {
                        client
                            .send(1, SIZE as u16, SIZE as u16, &pixels)
                            .expect("send");
                        inflight += 1;
                    }
                }
            })
        })
        .collect();

    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let mut completed = 0u64;
    for handle in clients {
        completed += handle.join().expect("client thread");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = server.stats();
    server.shutdown();

    Cell {
        max_batch,
        conns,
        depth,
        offered_inflight: conns * depth,
        window_ms: window.as_millis() as u64,
        completed,
        shed: stats.shed,
        throughput_rps: completed as f64 / elapsed,
        p50_ms: stats.p50_ms,
        p99_ms: stats.p99_ms,
        mean_batch: stats.mean_batch,
        batches_multi: stats.batches_multi,
    }
}

fn run_sweep(window: Duration, conns: usize) {
    let caps = [1usize, 4, 8];
    let depths = [1usize, 4];
    let mut cells = Vec::new();
    println!(
        "{:>9} {:>6} {:>9} {:>11} {:>9} {:>9} {:>11} {:>13}",
        "max_batch",
        "conns",
        "inflight",
        "thru r/s",
        "p50 ms",
        "p99 ms",
        "mean batch",
        "multi-batches"
    );
    for &cap in &caps {
        for &depth in &depths {
            let cell = run_cell(cap, conns, depth, window);
            println!(
                "{:>9} {:>6} {:>9} {:>11.0} {:>9.2} {:>9.2} {:>11.2} {:>13}",
                cell.max_batch,
                cell.conns,
                cell.offered_inflight,
                cell.throughput_rps,
                cell.p50_ms,
                cell.p99_ms,
                cell.mean_batch,
                cell.batches_multi
            );
            cells.push(cell);
        }
    }

    let max_cap = *caps.iter().max().expect("non-empty");
    let max_depth = *depths.iter().max().expect("non-empty");
    let at = |cap: usize| {
        cells
            .iter()
            .find(|c| c.max_batch == cap && c.depth == max_depth)
            .expect("swept cell")
            .throughput_rps
    };
    let cap1 = at(1);
    let capmax = at(max_cap);
    let report = Report {
        model: format!("lenet5-{SIZE}x{SIZE}-im2col"),
        input: [1, SIZE, SIZE],
        workers: 1,
        max_delay_ms: MAX_DELAY.as_millis() as u64,
        cells,
        batched_speedup: capmax / cap1,
        cap1_throughput_rps: cap1,
        capmax_throughput_rps: capmax,
    };
    println!(
        "\nbatched speedup (cap {max_cap} vs cap 1, {conns}x{max_depth} in flight): {:.2}x",
        report.batched_speedup
    );
    let path = gcnn_bench::write_json("BENCH_serve", &report).expect("write results");
    println!("wrote {path}");
}

/// The CI smoke: one short high-concurrency cell with functional
/// assertions. Exits non-zero on any violation.
fn run_smoke(window: Duration, conns: usize) {
    let net = bench_net();
    let policy = BatchPolicy::new(8, Duration::from_millis(5)).with_queue_cap(256);
    let server = Server::start(ServeConfig::loopback(1, policy, (1, SIZE, SIZE)), |_| {
        bench_net()
    })
    .expect("bind loopback server");
    let addr = server.local_addr();

    // Correctness probe: a served response must match the local
    // forward pass bit-for-bit-ish (both run the same f32 kernels).
    let probe = image(7);
    let expected = {
        let input =
            Tensor4::from_vec(Shape4::new(1, 1, SIZE, SIZE), probe.clone()).expect("probe shape");
        net.forward(&input).as_slice().to_vec()
    };
    let mut probe_client = Client::connect(addr).expect("connect probe");
    let resp = probe_client
        .infer(1, SIZE as u16, SIZE as u16, &probe)
        .expect("probe roundtrip");
    assert_eq!(resp.status, Status::Ok, "smoke: probe not served Ok");
    assert_eq!(resp.values.len(), CLASSES, "smoke: wrong logit count");
    for (got, want) in resp.values.iter().zip(&expected) {
        assert!(
            (got - want).abs() < 1e-5,
            "smoke: served logits diverge from local forward ({got} vs {want})"
        );
    }

    let stats = server.stats();
    assert_eq!(stats.bad_requests, 0, "smoke: spurious bad requests");
    server.shutdown();

    // Concurrent burst against a fresh server (run_cell starts its
    // own): every response Ok, and the batch histogram must prove
    // coalescing happened.
    let cell = run_cell(8, conns, 8, window);
    assert_eq!(cell.shed, 0, "smoke: unexpected load-shedding: {cell:?}");
    assert!(
        cell.completed >= (conns * 8) as u64,
        "smoke: burst barely ran: {cell:?}"
    );
    assert!(
        cell.batches_multi >= 1,
        "smoke: no multi-request batch formed — dynamic batching is not coalescing: {cell:?}"
    );
    println!(
        "serve smoke OK: {} responses, {} multi-batches (mean batch {:.2}), p99 {:.2} ms",
        cell.completed, cell.batches_multi, cell.mean_batch, cell.p99_ms
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let conns = env_usize("GCNN_SERVE_CONNS", 4);
    let window_ms = env_usize("GCNN_SERVE_MS", if smoke { 250 } else { 400 });
    let window = Duration::from_millis(window_ms as u64);
    if smoke {
        run_smoke(window, conns);
    } else {
        run_sweep(window, conns);
    }
}
