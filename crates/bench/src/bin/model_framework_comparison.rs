//! Extension experiment: whole-model framework comparison with a
//! per-layer oracle — the paper's "no single implementation is the best
//! for all scenarios" (§VI), cashed out at model granularity.

#![forbid(unsafe_code)]

use gcnn_core::compare_model;
use gcnn_core::report::text_table;
use gcnn_gpusim::DeviceSpec;
use gcnn_models::all_models;

fn main() {
    let dev = DeviceSpec::k40c();
    let batch = 32;
    println!("Whole-model conv time per framework (batch {batch}), plus the per-layer oracle\n");

    let mut dumps = Vec::new();
    for model in all_models() {
        let cmp = compare_model(&model, batch, &dev);

        let header: Vec<String> = ["framework", "total conv ms"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut rows: Vec<Vec<String>> = cmp
            .totals
            .iter()
            .map(|(n, t)| {
                vec![
                    n.clone(),
                    t.map(|t| format!("{t:.1}"))
                        .unwrap_or_else(|| "— (unsupported layer)".into()),
                ]
            })
            .collect();
        rows.push(vec![
            "ORACLE (best per layer)".into(),
            format!("{:.1}", cmp.oracle_ms()),
        ]);
        println!(
            "{}",
            text_table(&format!("=== {} ===", cmp.model), &header, &rows)
        );

        if let Some((best, t)) = cmp.best_single() {
            println!(
                "best single framework: {best} at {t:.1} ms; oracle saves {:.0}% using {} implementations",
                100.0 * (1.0 - cmp.oracle_ms() / t),
                cmp.oracle_diversity()
            );
        }
        // Show which layers switched away from the best single choice.
        let mut switches = 0;
        for choice in &cmp.oracle {
            if Some(choice.implementation.as_str()) != cmp.best_single().map(|(n, _)| n) {
                switches += 1;
            }
        }
        println!(
            "layers routed to a different implementation: {switches}/{}\n",
            cmp.oracle.len()
        );
        dumps.push(cmp);
    }

    match gcnn_bench::write_json("model_framework_comparison", &dumps) {
        Ok(path) => println!("raw data → {path}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
