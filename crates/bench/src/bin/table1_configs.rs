//! Table I — convolution configurations for benchmarking.

#![forbid(unsafe_code)]

use gcnn_conv::{table1_configs, TABLE1_NAMES};
use gcnn_core::report::text_table;

fn main() {
    println!("Table I — convolution configurations for benchmarking\n");
    let header: Vec<String> = [
        "layer",
        "(b, i, f, k, s)",
        "channels",
        "output",
        "fwd GFLOPs",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let rows: Vec<Vec<String>> = table1_configs()
        .iter()
        .zip(TABLE1_NAMES)
        .map(|(c, name)| {
            vec![
                name.to_string(),
                format!(
                    "({}, {}, {}, {}, {})",
                    c.batch, c.input, c.filters, c.kernel, c.stride
                ),
                c.channels.to_string(),
                format!("{0}×{0}", c.output()),
                format!("{:.1}", c.forward_flops() as f64 / 1e9),
            ]
        })
        .collect();
    println!("{}", text_table("", &header, &rows));
    println!("(channel counts follow convnet-benchmarks, the paper's source for these layers)");
}
