//! Regenerate every table and figure of the paper in one run, writing
//! the JSON data behind EXPERIMENTS.md into `results/`.

#![forbid(unsafe_code)]

use std::process::Command;

const BINARIES: [&str; 13] = [
    "table1_configs",
    "table2_resources",
    "fig2_model_breakdown",
    "fig3_runtime_sweeps",
    "fig4_hotspot_kernels",
    "fig5_memory_usage",
    "fig6_gpu_metrics",
    "fig7_transfer_overhead",
    "ablations",
    "device_sensitivity",
    "model_framework_comparison",
    "autotune_report",
    "export_trace",
];

fn main() {
    // Prefer already-built sibling binaries (same target directory);
    // fall back to `cargo run` so `cargo run --bin run_all` works from a
    // cold target directory too.
    let exe = std::env::current_exe().expect("current exe path");
    let bindir = exe.parent().expect("bin directory").to_path_buf();
    let mut failures = 0;
    for name in BINARIES {
        println!("\n{}\n=== {name} ===\n{}", "=".repeat(72), "=".repeat(72));
        let direct = bindir.join(name);
        let status = if direct.is_file() {
            Command::new(direct).status()
        } else {
            Command::new(env!("CARGO", "cargo"))
                .args([
                    "run",
                    "--quiet",
                    "--release",
                    "-p",
                    "gcnn-bench",
                    "--bin",
                    name,
                ])
                .status()
        }
        .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            eprintln!("!!! {name} exited with {status}");
            failures += 1;
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!(
        "\nAll {} experiments regenerated; JSON in ./results/.",
        BINARIES.len()
    );
}
