//! Extension experiment: how the paper's conclusions move across GPUs.
//!
//! The paper measures one device (Tesla K40c) and closes with "a deep
//! understanding of the algorithm and hardware characteristic is
//! extremely important". This binary re-runs the decisive comparisons
//! on three modeled devices — the K40c, one die of a Tesla K80 (double
//! register file, lower clock) and a Maxwell Titan X (more SMs, higher
//! clock, bigger shared memory) — to show which findings are
//! device-robust and which are K40-specific.

#![forbid(unsafe_code)]

use gcnn_conv::ConvConfig;
use gcnn_core::report::text_table;
use gcnn_frameworks::{all_implementations, implementation_by_name};
use gcnn_gpusim::{occupancy, DeviceSpec};

fn devices() -> Vec<DeviceSpec> {
    vec![
        DeviceSpec::k40c(),
        DeviceSpec::k80_single_die(),
        DeviceSpec::titan_x_maxwell(),
    ]
}

fn main() {
    base_config_ranking();
    kernel_crossover();
    cc2_occupancy_story();
}

/// Ranking of all seven implementations at the base configuration, per
/// device.
fn base_config_ranking() {
    println!("=== base configuration (64,128,64,11,1), per device ===\n");
    let cfg = ConvConfig::paper_base();
    let header: Vec<String> = std::iter::once("implementation".to_string())
        .chain(devices().iter().map(|d| d.name.clone()))
        .collect();
    let mut rows = Vec::new();
    for imp in all_implementations() {
        let mut row = vec![imp.name().to_string()];
        for dev in devices() {
            row.push(match imp.plan(&cfg).execute(&dev, 1) {
                Ok(r) => format!("{:.1} ms", r.total_ms()),
                Err(_) => "OOM".to_string(),
            });
        }
        rows.push(row);
    }
    println!("{}", text_table("", &header, &rows));
    println!("fbfft stays fastest on every device: its advantage is algorithmic");
    println!("(arithmetic complexity), not a K40 artifact.\n");
}

/// Where the cuDNN-vs-fbfft kernel crossover falls, per device.
fn kernel_crossover() {
    println!("=== cuDNN/fbfft crossover kernel size, per device ===\n");
    let cudnn = implementation_by_name("cuDNN").unwrap();
    let fbfft = implementation_by_name("fbfft").unwrap();
    for dev in devices() {
        let mut crossover = None;
        for k in (3..=15).step_by(2) {
            let cfg = ConvConfig::from_tuple(64, 128, 64, k, 1);
            let tc = cudnn.plan(&cfg).execute(&dev, 1).unwrap().total_ms();
            let tf = fbfft.plan(&cfg).execute(&dev, 1).unwrap().total_ms();
            if tf < tc {
                crossover = Some(k);
                break;
            }
        }
        match crossover {
            Some(k) => println!("  {:<24} fbfft takes over at k = {k}", dev.name),
            None => println!("  {:<24} cuDNN wins at every k ≤ 15", dev.name),
        }
    }
    println!("\nThe paper's k = 7 crossover is robust: both algorithms scale with");
    println!("the same device FLOP rate, so the ratio — and the crossover — moves");
    println!("only if the compute/bandwidth balance changes drastically.\n");
}

/// cuda-convnet2's register-starvation story on a double-register-file
/// device.
fn cc2_occupancy_story() {
    println!("=== cuda-convnet2 occupancy (116 regs/thread, 128-thread blocks) ===\n");
    for dev in devices() {
        let occ = occupancy(&dev, 116, 16 * 1024, 128);
        println!(
            "  {:<24} {:>2} resident warps → {:>5.1}% theoretical ({:?}-limited)",
            dev.name,
            occ.active_warps,
            occ.theoretical * 100.0,
            occ.limiter
        );
    }
    println!("\nOn Kepler parts the 16 KB blocks and 116-register threads cap the");
    println!("kernel below 20% occupancy (the paper's 14–22% band); the K80's");
    println!("doubled register file does not help because shared memory still");
    println!("binds. Maxwell's 96 KB shared memory releases that limit and the");
    println!("register file becomes the binding resource, at 25%.");
}
