//! Fig. 6 — GPU performance profiling: runtime plus five nvprof metrics
//! (achieved occupancy, warp execution efficiency, global load/store
//! efficiency, IPC, shared memory efficiency) of each implementation's
//! top kernels over the Table I configurations.

#![forbid(unsafe_code)]

use gcnn_core::gpuprofile::gpu_profile;
use gcnn_core::report::text_table;
use gcnn_gpusim::DeviceSpec;

fn main() {
    let dev = DeviceSpec::k40c();
    println!("Fig. 6 — runtime-weighted top-kernel metrics over Table I\n");

    let rows = gpu_profile(&dev);

    let header: Vec<String> = [
        "impl", "layer", "ms", "occ %", "ipc", "wee %", "gld %", "gst %", "shared %",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| match &r.metrics {
            Some(m) => vec![
                r.implementation.clone(),
                r.layer.clone(),
                gcnn_bench::ms(m.runtime_ms),
                format!("{:.1}", m.achieved_occupancy),
                format!("{:.2}", m.ipc),
                format!("{:.1}", m.warp_execution_efficiency),
                format!("{:.1}", m.gld_efficiency),
                format!("{:.1}", m.gst_efficiency),
                format!("{:.1}", m.shared_efficiency),
            ],
            None => vec![
                r.implementation.clone(),
                r.layer.clone(),
                "—".into(),
                "—".into(),
                "—".into(),
                "—".into(),
                "—".into(),
                "—".into(),
                "—".into(),
            ],
        })
        .collect();

    println!(
        "{}",
        text_table("per-implementation profiles", &header, &table_rows)
    );

    println!("Paper headlines reproduced:");
    println!("  · most implementations < 30 % achieved occupancy;");
    println!("    cuda-convnet2 lowest (paper: 14–22 %, register-bound),");
    println!("    Theano-fft highest (39–59 %) yet slowest");
    println!("  · gld efficiency low across the board (cuDNN top kernels at 0 %)");
    println!("  · shared efficiency: cuDNN > 100 % (broadcasts), Theano-fft 8–20 %");
    println!("  · WEE > 97 % everywhere except Theano-fft (66–81 %, divergence)");

    match gcnn_bench::write_json("fig6_gpu_metrics", &rows) {
        Ok(path) => println!("\nraw data → {path}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
