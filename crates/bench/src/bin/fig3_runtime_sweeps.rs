//! Fig. 3 — runtime comparison for seven convolutional implementations
//! with varying configurations (the five sweeps around the base tuple
//! `(64, 128, 64, 11, 1)`).

#![forbid(unsafe_code)]

use gcnn_core::report::render_comparison;
use gcnn_core::{paper_sweeps, runtime_comparison};
use gcnn_gpusim::DeviceSpec;

fn main() {
    let dev = DeviceSpec::k40c();
    println!("Fig. 3 — runtime of the seven implementations (ms per training iteration)");
    println!("('—' = shape unsupported, matching the paper's shape-limitation gaps)\n");

    let mut tables = Vec::new();
    for (panel, sweep) in paper_sweeps().iter().enumerate() {
        let t = runtime_comparison(sweep, &dev);
        println!("({})", (b'a' + panel as u8) as char);
        println!("{}", render_comparison(&t));
        if let Some((winner, ms)) = t.winner_at(t.values.len() / 2) {
            println!(
                "mid-sweep winner at {} = {}: {} ({:.1} ms)\n",
                t.axis,
                t.values[t.values.len() / 2],
                winner,
                ms
            );
        }
        tables.push(t);
    }

    println!("Paper headlines reproduced:");
    println!("  · fbfft fastest across batch/input sweeps (1.4–9.7×), Theano-fft slowest");
    println!("  · cuDNN fastest for k < 7, fbfft at k ≥ 7 and flat in k");
    println!("  · Theano-CorrMM edges cuDNN for f > 160 (c = 3 shapes)");
    println!("  · cuda-convnet2 shines only at batch multiples of 128");
    println!("  · stride > 1: FFT implementations drop out; cuDNN wins");

    match gcnn_bench::write_json("fig3_runtime_sweeps", &tables) {
        Ok(path) => println!("\nraw data → {path}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
