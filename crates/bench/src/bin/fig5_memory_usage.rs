//! Fig. 5 — peak GPU memory for the seven implementations over the five
//! sweeps.

#![forbid(unsafe_code)]

use gcnn_core::memprofile::memory_comparison;
use gcnn_core::paper_sweeps;
use gcnn_core::report::render_memory;

fn main() {
    println!("Fig. 5 — peak GPU memory (MB), seven implementations × five sweeps");
    println!("('—' = shape unsupported)\n");

    let mut tables = Vec::new();
    for (panel, sweep) in paper_sweeps().iter().enumerate() {
        let t = memory_comparison(sweep);
        println!("({})", (b'a' + panel as u8) as char);
        println!("{}", render_memory(&t));
        tables.push(t);
    }

    println!("Paper headlines reproduced:");
    println!("  · cuda-convnet2 most frugal everywhere (paper: 125–2076 MB)");
    println!("  · Torch-cunn the leanest unroller; cuDNN leanest at large kernels");
    println!("  · fbfft the most expensive (paper: up to 10866 MB), with");
    println!("    power-of-two jumps across input sizes (panel b)");
    println!("  · Theano-fft second-highest, jagged over kernel size (panel d)");

    match gcnn_bench::write_json("fig5_memory_usage", &tables) {
        Ok(path) => println!("\nraw data → {path}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
