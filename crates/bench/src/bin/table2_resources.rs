//! Table II — register numbers per thread and shared memory usage per
//! block of different implementations, plus the occupancy consequences
//! the paper derives from them (§V-C-1).

#![forbid(unsafe_code)]

use gcnn_core::report::text_table;
use gcnn_frameworks::all_implementations;
use gcnn_gpusim::occupancy::warps_by_registers;
use gcnn_gpusim::{occupancy, DeviceSpec};

fn main() {
    let dev = DeviceSpec::k40c();
    println!("Table II — hotspot-kernel resources and their occupancy consequences\n");

    let header: Vec<String> = [
        "impl",
        "regs/thread",
        "smem/block KB",
        "warps allowed by regs",
        "occupancy @128-thread blocks",
        "limiter",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let rows: Vec<Vec<String>> = all_implementations()
        .iter()
        .map(|imp| {
            let r = imp.resources();
            let warps = warps_by_registers(&dev, r.registers);
            let occ = occupancy(&dev, r.registers, r.shared_bytes(), 128);
            vec![
                imp.name().to_string(),
                r.registers.to_string(),
                format!("{:.1}", r.shared_kb),
                warps.to_string(),
                format!("{:.1}%", occ.theoretical * 100.0),
                format!("{:?}", occ.limiter),
            ]
        })
        .collect();

    println!("{}", text_table("", &header, &rows));
    println!("Paper §V-C-1 cross-check: cuda-convnet2's 116 regs/thread allow only");
    println!(
        "{} warps per SM (paper: \"theoretical active threads are only 564 (17 active \
         warps)\"), far below the device's 64.",
        warps_by_registers(&dev, 116)
    );
}
