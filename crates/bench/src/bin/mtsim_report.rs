//! mtsim_report — tenants × policy sweep of the multi-tenant GPU
//! simulator.
//!
//! Two workloads bracket the scheduling trade-off:
//!
//! * `cudnn_conv` — the cuDNN execution plan at the paper's base
//!   configuration: big grids that fill the K40c, the regime where
//!   time-sharing the whole device is the right call;
//! * `occlimited` — a small-grid kernel population that cannot fill 15
//!   SMs, the regime where the occupancy model predicts SM
//!   partitioning wins on aggregate throughput.
//!
//! Every (workload × policy × tenants) cell runs the deterministic
//! event-driven simulator and records aggregate throughput, mean
//! interference slowdown and p99 queueing into
//! `results/BENCH_mtsim.json` — the committed baseline that
//! `bench_compare --mtsim` gates against. Headline numbers:
//!
//! * `fifo2_slowdown` — worst per-stream slowdown across the 2-tenant
//!   FIFO cells (gate: ≥ 1.8×, contention must be modeled);
//! * `partition_over_rr_occlimited` — partition over round-robin
//!   aggregate throughput on the occupancy-limited workload at 2
//!   tenants (gate: ≥ 1.15×);
//! * `maxwell.rel_err` — GM204 occupancy model vs maxDNN's published
//!   25% register-limited figure (gate: ≤ 5%).
//!
//! `--smoke` runs the 2-tenant cells only and asserts the invariants
//! (conservation, the three headline gates) instead of writing the
//! report; non-zero exit on any violation — the CI `mtsim-smoke` job.

#![forbid(unsafe_code)]

use gcnn_conv::ConvConfig;
use gcnn_frameworks::{implementation_by_name, PlannedKernel};
use gcnn_gpusim::{occupancy, DeviceSpec, KernelDesc, LaunchConfig, OccupancyLimiter};
use gcnn_mtsim::{simulate, Arrival, SchedPolicy, SimConfig, SimReport, TenantSpec};
use serde::Serialize;
use std::process::exit;

/// Jobs each tenant submits per cell — enough for stable percentiles,
/// cheap because the simulator is analytical.
const JOBS: u32 = 8;
/// Round-robin service quantum for the sweep.
const RR_QUANTUM_US: f64 = 200.0;

#[derive(Debug, Serialize)]
struct Cell {
    workload: &'static str,
    policy: String,
    tenants: usize,
    jobs_per_tenant: u32,
    makespan_ms: f64,
    aggregate_throughput_jobs_per_s: f64,
    device_busy_fraction: f64,
    preemptions: u64,
    mean_slowdown: f64,
    worst_slowdown: f64,
    max_queue_p99_ms: f64,
    mean_sm_utilization: f64,
}

#[derive(Debug, Serialize)]
struct Maxwell {
    device: String,
    occupancy_model: f64,
    occupancy_published: f64,
    rel_err: f64,
    limiter: String,
}

#[derive(Debug, Serialize)]
struct Report {
    device: String,
    rr_quantum_us: f64,
    fifo2_slowdown: f64,
    partition_over_rr_occlimited: f64,
    maxwell: Maxwell,
    cells: Vec<Cell>,
}

/// The occupancy-limited population: a 16-block grid on a 15-SM part —
/// achieved occupancy, not ALU throughput, bounds it, so an SM
/// partition costs (almost) nothing.
fn occlimited_job() -> Vec<PlannedKernel> {
    let mut k = KernelDesc::new("occ_limited", LaunchConfig::new(16, 256));
    k.regs_per_thread = 64;
    k.flops = 2_000_000_000;
    k.compute_efficiency = 0.6;
    k.occupancy_needed = 0.5;
    vec![PlannedKernel::times(k, 6)]
}

/// The device-filling population: the cuDNN plan at the paper's base
/// convolution configuration.
fn cudnn_job() -> Vec<PlannedKernel> {
    let cfg = ConvConfig::paper_base();
    let imp = implementation_by_name("cuDNN").expect("registry has cuDNN");
    imp.supports(&cfg).expect("paper base supported");
    imp.plan(&cfg).kernels
}

fn tenants_of(kernels: &[PlannedKernel], n: usize) -> Vec<TenantSpec> {
    (0..n)
        .map(|i| {
            TenantSpec::from_kernels(
                &format!("t{i}"),
                kernels.to_vec(),
                Arrival::ClosedLoop,
                JOBS,
            )
        })
        .collect()
}

fn policies() -> [SchedPolicy; 3] {
    [
        SchedPolicy::Fifo,
        SchedPolicy::RoundRobin {
            quantum_us: RR_QUANTUM_US,
        },
        SchedPolicy::SmPartition,
    ]
}

fn cell(workload: &'static str, r: &SimReport, tenants: usize) -> Cell {
    let n = r.streams.len().max(1) as f64;
    Cell {
        workload,
        policy: r.policy.clone(),
        tenants,
        jobs_per_tenant: JOBS,
        makespan_ms: r.makespan_ms,
        aggregate_throughput_jobs_per_s: r.aggregate_throughput_jobs_per_s,
        device_busy_fraction: r.device_busy_fraction,
        preemptions: r.preemptions,
        mean_slowdown: r.streams.iter().map(|s| s.slowdown).sum::<f64>() / n,
        worst_slowdown: r.streams.iter().map(|s| s.slowdown).fold(0.0f64, f64::max),
        max_queue_p99_ms: r
            .streams
            .iter()
            .map(|s| s.queue_p99_ms)
            .fold(0.0f64, f64::max),
        mean_sm_utilization: r.streams.iter().map(|s| s.sm_utilization).sum::<f64>() / n,
    }
}

fn maxwell_validation() -> Maxwell {
    // maxDNN's convolution kernel: 256 threads/block at 128
    // registers/thread on GM204 → 25% theoretical occupancy,
    // register-limited (arXiv:1501.06633).
    const PUBLISHED: f64 = 0.25;
    let gm204 = DeviceSpec::gm204();
    let occ = occupancy(&gm204, 128, 0, 256);
    Maxwell {
        device: gm204.name.clone(),
        occupancy_model: occ.theoretical,
        occupancy_published: PUBLISHED,
        rel_err: (occ.theoretical - PUBLISHED).abs() / PUBLISHED,
        limiter: format!("{:?}", occ.limiter),
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("mtsim_report: SMOKE FAILED: {msg}");
    exit(1);
}

fn smoke() {
    let dev = DeviceSpec::k40c();
    for (workload, kernels) in [
        ("occlimited", occlimited_job()),
        ("cudnn_conv", cudnn_job()),
    ] {
        for policy in policies() {
            let r = simulate(&dev, &tenants_of(&kernels, 2), SimConfig::new(policy));
            for s in &r.streams {
                if s.jobs_completed != JOBS {
                    fail(&format!(
                        "{workload}/{}: stream {} completed {}/{JOBS} jobs",
                        r.policy, s.name, s.jobs_completed
                    ));
                }
                if s.slowdown < 1.0 - 1e-9 {
                    fail(&format!(
                        "{workload}/{}: stream {} beat its dedicated baseline",
                        r.policy, s.name
                    ));
                }
            }
            if policy == SchedPolicy::Fifo {
                for s in &r.streams {
                    if s.slowdown < 1.8 {
                        fail(&format!(
                            "{workload}/fifo: 2-tenant slowdown {:.2} below 1.8",
                            s.slowdown
                        ));
                    }
                }
            }
        }
        let rr = simulate(
            &dev,
            &tenants_of(&kernels, 2),
            SimConfig::new(SchedPolicy::RoundRobin {
                quantum_us: RR_QUANTUM_US,
            }),
        );
        let part = simulate(
            &dev,
            &tenants_of(&kernels, 2),
            SimConfig::new(SchedPolicy::SmPartition),
        );
        if workload == "occlimited"
            && part.aggregate_throughput_jobs_per_s < 1.15 * rr.aggregate_throughput_jobs_per_s
        {
            fail(&format!(
                "partition {:.2} jobs/s does not beat rr {:.2} jobs/s by 1.15x \
                 on the occupancy-limited workload",
                part.aggregate_throughput_jobs_per_s, rr.aggregate_throughput_jobs_per_s
            ));
        }
    }
    let mw = maxwell_validation();
    if mw.rel_err > 0.05 {
        fail(&format!(
            "GM204 occupancy {:.3} off maxDNN {:.2} by {:.1}%",
            mw.occupancy_model,
            mw.occupancy_published,
            mw.rel_err * 100.0
        ));
    }
    if mw.limiter != format!("{:?}", OccupancyLimiter::Registers) {
        fail(&format!(
            "GM204 maxDNN kernel limiter {} != Registers",
            mw.limiter
        ));
    }
    println!(
        "mtsim_report: smoke ok (2-tenant cells, maxwell err {:.1}%)",
        mw.rel_err * 100.0
    );
}

fn main() {
    let smoke_mode = std::env::args().skip(1).any(|a| a == "--smoke");
    if smoke_mode {
        smoke();
        return;
    }

    let dev = DeviceSpec::k40c();
    let mut cells = Vec::new();
    let mut fifo2_slowdown = f64::INFINITY;
    let mut occ2 = (0.0f64, 0.0f64); // (rr, partition) aggregate at 2 tenants

    for (workload, kernels) in [
        ("cudnn_conv", cudnn_job()),
        ("occlimited", occlimited_job()),
    ] {
        for n in [1usize, 2, 4] {
            for policy in policies() {
                let r = simulate(&dev, &tenants_of(&kernels, n), SimConfig::new(policy));
                let c = cell(workload, &r, n);
                if n == 2 && policy == SchedPolicy::Fifo {
                    // Worst (i.e. smallest) per-stream slowdown across
                    // both workloads: every stream must feel contention.
                    let min_s = r
                        .streams
                        .iter()
                        .map(|s| s.slowdown)
                        .fold(f64::INFINITY, f64::min);
                    fifo2_slowdown = fifo2_slowdown.min(min_s);
                }
                if workload == "occlimited" && n == 2 {
                    match policy {
                        SchedPolicy::RoundRobin { .. } => {
                            occ2.0 = c.aggregate_throughput_jobs_per_s
                        }
                        SchedPolicy::SmPartition => occ2.1 = c.aggregate_throughput_jobs_per_s,
                        SchedPolicy::Fifo => {}
                    }
                }
                println!(
                    "{workload:<12} {:>9} tenants {n}: {:>8.2} jobs/s, mean slowdown {:.2}x",
                    c.policy, c.aggregate_throughput_jobs_per_s, c.mean_slowdown
                );
                cells.push(c);
            }
        }
    }

    let report = Report {
        device: dev.name.clone(),
        rr_quantum_us: RR_QUANTUM_US,
        fifo2_slowdown,
        partition_over_rr_occlimited: occ2.1 / occ2.0.max(1e-12),
        maxwell: maxwell_validation(),
        cells,
    };
    match gcnn_bench::write_json("BENCH_mtsim", &report) {
        Ok(path) => println!(
            "wrote {path} (fifo2 {:.2}x, partition/rr {:.2}x, maxwell err {:.1}%)",
            report.fifo2_slowdown,
            report.partition_over_rr_occlimited,
            report.maxwell.rel_err * 100.0
        ),
        Err(e) => {
            eprintln!("mtsim_report: cannot write report: {e}");
            exit(2);
        }
    }
}
