//! Ablation studies over the design choices DESIGN.md §4.3 calls out:
//! each paper observation is driven by a specific modeled mechanism, and
//! these ablations switch the mechanisms off one at a time to show the
//! observation disappear.
//!
//! 1. Register pressure vs occupancy vs runtime (the §V-C-1 story).
//! 2. cuda-convnet2's 128-image tiling (the Fig. 3a batch dips).
//! 3. Theano-CorrMM's host-staged panels (the Fig. 7 Conv2 spike).
//! 4. What-if: Winograd-accelerated cuDNN at 3×3 (the post-paper
//!    optimization the conclusion points toward), including the real CPU
//!    algorithm from `gcnn-conv::winograd`.

#![forbid(unsafe_code)]

use gcnn_conv::{table1_configs, ConvConfig, WinogradConv};
use gcnn_core::report::text_table;
use gcnn_frameworks::cuda_convnet2::CudaConvnet2;
use gcnn_frameworks::cudnn::CuDnn;
use gcnn_frameworks::theano_corrmm::TheanoCorrMM;
use gcnn_frameworks::ConvImplementation;
use gcnn_gpusim::{occupancy, DeviceSpec, KernelDesc, LaunchConfig};

fn main() {
    let dev = DeviceSpec::k40c();
    ablation_registers(&dev);
    ablation_batch_tiles(&dev);
    ablation_host_staging(&dev);
    ablation_winograd(&dev);
}

/// Ablation 1 — sweep registers/thread for a fixed compute-bound kernel,
/// with the two latency profiles the paper contrasts: a thin kernel that
/// needs occupancy, and a cuda-convnet2-style ILP-rich kernel that
/// doesn't.
fn ablation_registers(dev: &DeviceSpec) {
    println!("=== ablation 1: register pressure → occupancy → runtime ===\n");
    let header: Vec<String> = [
        "regs/thread",
        "occupancy %",
        "thin kernel ms",
        "ILP-rich kernel ms",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for regs in [32u32, 64, 80, 96, 116, 160, 200] {
        let occ = occupancy(dev, regs, 8 * 1024, 128);
        let mut base = KernelDesc::new("probe", LaunchConfig::new(4096, 128));
        base.regs_per_thread = regs;
        base.smem_per_block = 8 * 1024;
        base.flops = 50_000_000_000;
        base.compute_efficiency = 0.6;

        let mut thin = base.clone();
        thin.occupancy_needed = 0.50;
        let mut rich = base;
        rich.occupancy_needed = 0.15; // register ILP hides latency

        rows.push(vec![
            regs.to_string(),
            format!("{:.1}", occ.theoretical * 100.0),
            format!(
                "{:.1}",
                gcnn_gpusim::timing::time_kernel(dev, &thin).time_ms
            ),
            format!(
                "{:.1}",
                gcnn_gpusim::timing::time_kernel(dev, &rich).time_ms
            ),
        ]);
    }
    println!("{}", text_table("", &header, &rows));
    println!("The thin kernel collapses as registers starve occupancy; the ILP-rich");
    println!("kernel (cuda-convnet2's profile) barely notices — §V-C-1's \"a higher");
    println!("occupancy does not mean a better performance\", inverted.\n");
}

/// Ablation 2 — cuda-convnet2 with and without its 128-image tiles.
fn ablation_batch_tiles(dev: &DeviceSpec) {
    println!("=== ablation 2: cuda-convnet2 batch tiling ===\n");
    let header: Vec<String> = [
        "batch",
        "with tiling (ms/img)",
        "tile efficiency",
        "flat model (ms/img)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for b in (32..=256).step_by(32) {
        let cfg = ConvConfig::from_tuple(b, 128, 64, 11, 1);
        let report = CudaConvnet2.plan(&cfg).execute(dev, 1).unwrap();
        let eff = CudaConvnet2::batch_tile_efficiency(b as u64);
        // Flat model: divide out the tile efficiency (what the curve
        // would look like if every batch were a perfect 128-multiple).
        let with = report.total_ms() / b as f64;
        rows.push(vec![
            b.to_string(),
            format!("{:.3}", with),
            format!("{:.2}", eff),
            format!("{:.3}", with * eff as f64),
        ]);
    }
    println!("{}", text_table("", &header, &rows));
    println!("The per-image dips at 128/256 vanish once tiling is divided out —");
    println!("Fig. 3a's \"performs well only at multiples of 128\" is purely the tile.\n");
}

/// Ablation 3 — Theano-CorrMM's Conv2 with the host staging removed.
fn ablation_host_staging(dev: &DeviceSpec) {
    println!("=== ablation 3: Theano-CorrMM host staging on Conv2 ===\n");
    let conv2 = table1_configs()[1];
    let stock = TheanoCorrMM.plan(&conv2);
    let mut patched = stock.clone();
    // Drop everything but the ordinary input upload.
    patched.transfers.truncate(1);

    let stock_r = stock.execute(dev, 1).unwrap();
    let patched_r = patched.execute(dev, 1).unwrap();
    println!(
        "stock:   total {:>6.1} ms, transfer share {:>5.1}%",
        stock_r.total_ms(),
        100.0 * stock_r.transfer_fraction()
    );
    println!(
        "patched: total {:>6.1} ms, transfer share {:>5.1}%",
        patched_r.total_ms(),
        100.0 * patched_r.transfer_fraction()
    );
    println!("Pinned, asynchronous staging (the paper's §V-D remedies) removes the");
    println!("Fig. 7 anomaly entirely.\n");
}

/// Ablation 4 — what-if: cuDNN with Winograd F(2,3) forward arithmetic
/// at the 3×3 layers (2.25× fewer multiplies), vs stock cuDNN and fbfft.
fn ablation_winograd(dev: &DeviceSpec) {
    println!("=== ablation 4: Winograd what-if at 3×3 layers ===\n");
    let header: Vec<String> = ["config", "cuDNN ms", "cuDNN+Winograd ms", "fbfft ms"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    let cases = [
        ("sweep k=3", ConvConfig::from_tuple(64, 128, 64, 3, 1)),
        ("Conv2", table1_configs()[1]),
        ("Conv5", table1_configs()[4]),
    ];
    for (label, cfg) in cases {
        let stock = CuDnn.plan(&cfg).execute(dev, 1).unwrap().total_ms();
        let mut wino_plan = CuDnn.plan(&cfg);
        for pk in &mut wino_plan.kernels {
            if pk.desc.name != "precomputed_convolve_sgemm" {
                pk.desc.flops = (pk.desc.flops as f64 / WinogradConv::MULTIPLY_REDUCTION) as u64;
                pk.desc.name = format!("winograd_{}", pk.desc.name);
            }
        }
        let wino = wino_plan.execute(dev, 1).unwrap().total_ms();
        let fbfft = gcnn_frameworks::fbfft::Fbfft
            .plan(&cfg)
            .execute(dev, 1)
            .unwrap()
            .total_ms();
        rows.push(vec![
            format!("{label} {cfg}"),
            format!("{stock:.1}"),
            format!("{wino:.1}"),
            format!("{fbfft:.1}"),
        ]);
    }
    println!("{}", text_table("", &header, &rows));
    println!("Winograd widens cuDNN's small-kernel lead over fbfft — the direction");
    println!("the field actually took after this paper (cuDNN v5, 2016). The real");
    println!("algorithm lives in gcnn-conv::winograd and is tested against the");
    println!("reference convolution.");
}
