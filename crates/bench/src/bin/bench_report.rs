//! bench_report — run an instrumented workload and write
//! `results/BENCH_trace.json`: the span tree and counters from the
//! metrics registry, the steady-state fresh-allocation count of the
//! arena-backed convolution round, and the most recent hotpath timings
//! (when `results/BENCH_hotpaths.json` exists).
//!
//! The workload is deliberately small — it exists to exercise every
//! instrumented path (network forward/backward per layer, all
//! convolution strategies, the batched FFT and its plan cache, the
//! im2col/GEMM pipeline), not to produce stable timings. Timings live
//! in `perf_smoke`; this report is about *structure*: which spans nest
//! where, how often the caches hit, and whether the steady state still
//! allocates nothing.

#![forbid(unsafe_code)]

use gcnn_autotune::timing::{stats, time_wall, Repeats, Stats};
use gcnn_conv::{ConvAlgorithm, ConvConfig, FftConv, Strategy, UnrollConv};
use gcnn_models::data::synthetic_digits;
use gcnn_models::Network;
use gcnn_tensor::init::uniform_tensor;
use gcnn_tensor::workspace;
use serde::Serialize;
use serde_json::Value;

#[derive(Serialize)]
struct TraceReport {
    /// Bump when the layout of this file changes incompatibly.
    schema_version: u32,
    workload: String,
    /// Arena pool misses during the second (post-warm-up) convolution
    /// round. The zero-allocation hot paths guarantee this is 0.
    steady_fresh_allocs: u64,
    /// Wall-clock summary of the steady conv round, via the shared
    /// warmup + trimmed-median util (`GCNN_TUNE_WARMUP`/`_REPS`
    /// override the 1/5 defaults).
    steady_round: Stats,
    /// Contents of `results/BENCH_hotpaths.json`, when present.
    hotpaths: Option<Value>,
    snapshot: gcnn_trace::Snapshot,
}

/// One forward + both backward passes per arena-backed strategy — the
/// same round `gcnn-conv`'s steady-state test proves allocation-free.
fn conv_round(cfg: &ConvConfig, x: &gcnn_tensor::Tensor4, w: &gcnn_tensor::Tensor4) {
    for algo in [&UnrollConv as &dyn ConvAlgorithm, &FftConv] {
        let y = algo.forward(cfg, x, w);
        let _gw = algo.backward_filters(cfg, x, &y);
        let _gx = algo.backward_data(cfg, &y, w);
    }
}

fn main() {
    if !gcnn_trace::enabled() {
        eprintln!("warning: trace feature disabled — snapshot will be empty");
    }

    let mut cfg = ConvConfig::with_channels(2, 3, 16, 4, 3, 1);
    cfg.pad = 1;
    let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 21);
    let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, 22);

    let data = synthetic_digits(16, 16, 4, 7);
    let (imgs, labels) = data.batch(0, 8);
    let mut nets: Vec<Network> = [Strategy::Direct, Strategy::Unrolling, Strategy::Fft]
        .into_iter()
        .map(|s| Network::lenet5(16, 4, s, 5))
        .collect();

    // Warm-up: populate the thread-local pools and plan caches, then
    // drop everything recorded so far so the snapshot reflects only the
    // steady-state pass.
    conv_round(&cfg, &x, &w);
    for net in &mut nets {
        net.train_batch(&imgs, &labels);
    }
    gcnn_trace::reset();

    // Counted region: the arena-backed round only, so the gate matches
    // exactly what the zero-allocation tests guarantee.
    let (_, steady) = workspace::alloc_scope(|| conv_round(&cfg, &x, &w));

    // Timed region: the same round through the shared timing util, so
    // this report and perf_smoke summarize wall clock identically.
    let steady_round = stats(&time_wall(Repeats::from_env(1, 5), || {
        conv_round(&cfg, &x, &w)
    }));

    // Span coverage: one more training batch per strategy (outside the
    // counted region — training legitimately allocates activations).
    for net in &mut nets {
        net.train_batch(&imgs, &labels);
    }

    gcnn_trace::gauge_set("workspace.steady_fresh_allocs", steady as f64);
    let snapshot = gcnn_trace::snapshot();
    print!("{}", gcnn_core::report::render_trace(&snapshot));
    println!("steady-state fresh allocations: {steady}");

    let hotpaths = std::fs::read_to_string("results/BENCH_hotpaths.json")
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok());
    if hotpaths.is_none() {
        eprintln!("note: results/BENCH_hotpaths.json not found — run perf_smoke to embed timings");
    }

    let report = TraceReport {
        schema_version: 1,
        workload: format!(
            "conv round (unrolling+fft) at {cfg}, then one LeNet-5 \
             training batch per strategy at 16x16"
        ),
        steady_fresh_allocs: steady,
        steady_round,
        hotpaths,
        snapshot,
    };
    let path = gcnn_bench::write_json("BENCH_trace", &report).expect("write BENCH_trace.json");
    println!("wrote {path}");
}
