//! autotune_report — tune a per-layer schedule for every zoo model with
//! `gcnn-autotune` and compare it against the single-best-framework and
//! oracle schedules of `model_framework_comparison`, writing
//! `results/autotune_schedule.json`.
//!
//! Each model is tuned twice: a **cold** pass (`Policy::Measure`, fresh
//! cache — every layer is measured), then the cache is saved, reloaded
//! from disk, and a **warm** pass re-tunes from the persisted file. The
//! binary exits non-zero if the warm pass measured anything, picked a
//! different schedule, or — the headline claim — if the tuned AlexNet
//! schedule is slower than the best single framework or more than 5%
//! off the oracle.
//!
//! `--smoke` runs the same cold/warm contract on tiny configurations
//! (for CI): a LeNet-5 `Network::tune` round-trip plus a handful of
//! small layer shapes, still failing on any cold/warm mismatch.
//!
//! Environment knobs: `GCNN_TUNE_WARMUP`, `GCNN_TUNE_REPS`,
//! `GCNN_TUNE_TIMEOUT_MS` (measurement), `GCNN_TUNE_CACHE` (cache file,
//! default `results/autotune_cache.json`).

#![forbid(unsafe_code)]

use gcnn_autotune::{
    MeasureParams, Policy, Selection, SelectionSource, SimSubstrate, Substrate, Tuner, TuningCache,
};
use gcnn_conv::ConvConfig;
use gcnn_core::compare_model;
use gcnn_gpusim::DeviceSpec;
use gcnn_models::layer::{walk, InstanceKind};
use gcnn_models::Network;
use gcnn_tensor::Shape4;
use serde::Serialize;
use std::path::{Path, PathBuf};

const BATCH: usize = 32;

#[derive(Debug, Serialize)]
struct LayerRow {
    layer: String,
    cfg: ConvConfig,
    implementation: String,
    strategy: gcnn_conv::Strategy,
    time_ms: f64,
    workspace_bytes: u64,
    cold_source: SelectionSource,
    warm_source: SelectionSource,
}

#[derive(Debug, Serialize)]
struct ModelRow {
    model: String,
    batch: usize,
    layers: Vec<LayerRow>,
    tuned_total_ms: f64,
    best_single: Option<(String, f64)>,
    oracle_total_ms: f64,
    /// tuned / oracle; 1.0 means the tuner recovered the oracle exactly.
    tuned_vs_oracle: f64,
    warm_identical: bool,
    warm_measurements: usize,
}

#[derive(Debug, Serialize)]
struct Report {
    schema_version: u32,
    device: String,
    cache_path: String,
    warmup: usize,
    reps: usize,
    models: Vec<ModelRow>,
}

fn cache_path(smoke: bool) -> PathBuf {
    if let Ok(p) = std::env::var("GCNN_TUNE_CACHE") {
        return PathBuf::from(p);
    }
    if smoke {
        std::env::temp_dir().join(format!("gcnn_autotune_smoke_{}.json", std::process::id()))
    } else {
        PathBuf::from("results/autotune_cache.json")
    }
}

/// Tune one pass over `configs`, returning each layer's selection.
fn tune_pass(
    tuner: &Tuner,
    sub: &dyn Substrate,
    cache: &mut TuningCache,
    configs: &[(String, ConvConfig)],
) -> Vec<(String, Selection)> {
    configs
        .iter()
        .filter_map(|(name, cfg)| {
            tuner
                .select(sub, cache, cfg, gcnn_autotune::Direction::Training)
                .map(|sel| (name.clone(), sel))
        })
        .collect()
}

/// Cold pass on a fresh cache, persist, reload, warm pass; returns the
/// model row plus whether the cold/warm contract held.
fn tune_model(
    model: &gcnn_models::layer::ModelSpec,
    sub: &SimSubstrate,
    tuner: &Tuner,
    path: &Path,
) -> (ModelRow, bool) {
    let configs: Vec<(String, ConvConfig)> = walk(model, BATCH)
        .into_iter()
        .filter(|inst| inst.kind == InstanceKind::Conv)
        .map(|inst| (inst.name.clone(), inst.conv.expect("conv instance")))
        .collect();

    let mut cache = TuningCache::new();
    let cold = tune_pass(tuner, sub, &mut cache, &configs);
    cache.save(path).expect("persist tuning cache");

    // Reload from disk: the warm pass must be answered entirely by the
    // persisted file.
    let mut reloaded = TuningCache::load(path);
    assert!(reloaded.degraded().is_none(), "fresh save must load clean");
    let before = gcnn_trace::snapshot();
    let warm = tune_pass(tuner, sub, &mut reloaded, &configs);
    let after = gcnn_trace::snapshot();

    let warm_measurements = warm
        .iter()
        .filter(|(_, sel)| sel.source != SelectionSource::Cache)
        .count();
    let warm_identical = cold.len() == warm.len()
        && cold
            .iter()
            .zip(&warm)
            .all(|((cn, cs), (wn, ws))| cn == wn && cs.implementation == ws.implementation);
    let mut contract_ok = warm_identical && warm_measurements == 0;

    if gcnn_trace::enabled() {
        // The counters must tell the same story as the structural check:
        // zero sweeps during the warm pass, one cache hit per layer.
        let sweeps =
            after.counter("autotune.measure.count") - before.counter("autotune.measure.count");
        let hits = after.counter("autotune.cache.hits") - before.counter("autotune.cache.hits");
        if sweeps != 0 || hits != cold.len() as u64 {
            eprintln!(
                "!!! {}: warm pass ran {sweeps} sweeps, {hits} cache hits (want 0 and {})",
                model.name,
                cold.len()
            );
            contract_ok = false;
        }
    }

    let cmp = compare_model(model, BATCH, &sub.dev);
    let tuned_total_ms: f64 = cold.iter().map(|(_, s)| s.time_ms).sum();
    let oracle_total_ms = cmp.oracle_ms();
    let layers = cold
        .iter()
        .zip(&warm)
        .map(|((name, c), (_, w))| LayerRow {
            layer: name.clone(),
            cfg: configs.iter().find(|(n, _)| n == name).unwrap().1,
            implementation: c.implementation.clone(),
            strategy: c.strategy,
            time_ms: c.time_ms,
            workspace_bytes: c.workspace_bytes,
            cold_source: c.source,
            warm_source: w.source,
        })
        .collect();

    let row = ModelRow {
        model: model.name.clone(),
        batch: BATCH,
        layers,
        tuned_total_ms,
        best_single: cmp.best_single().map(|(n, t)| (n.to_string(), t)),
        oracle_total_ms,
        tuned_vs_oracle: tuned_total_ms / oracle_total_ms,
        warm_identical,
        warm_measurements,
    };
    (row, contract_ok)
}

/// CI smoke: tiny shapes and a real `Network::tune` round-trip.
fn run_smoke(sub: &SimSubstrate, tuner: &Tuner, path: &Path) -> bool {
    let configs: Vec<(String, ConvConfig)> = [
        ConvConfig::with_channels(32, 3, 16, 16, 3, 1),
        ConvConfig::with_channels(32, 16, 14, 32, 5, 1),
        ConvConfig::with_channels(32, 8, 12, 16, 3, 2),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, cfg)| (format!("smoke{i}"), cfg))
    .collect();

    let mut cache = TuningCache::new();
    let cold = tune_pass(tuner, sub, &mut cache, &configs);
    cache.save(path).expect("persist smoke cache");
    let mut reloaded = TuningCache::load(path);
    let warm = tune_pass(tuner, sub, &mut reloaded, &configs);

    let mut ok = true;
    if cold.len() != warm.len() {
        eprintln!(
            "!!! smoke: cold tuned {} layers, warm {}",
            cold.len(),
            warm.len()
        );
        ok = false;
    }
    for ((name, c), (_, w)) in cold.iter().zip(&warm) {
        println!(
            "{name:<8} cold {:<14} ({:?})  warm {:<14} ({:?})",
            c.implementation, c.source, w.implementation, w.source
        );
        if c.implementation != w.implementation {
            eprintln!("!!! smoke: {name} winner changed cold→warm");
            ok = false;
        }
        if w.source != SelectionSource::Cache {
            eprintln!("!!! smoke: {name} warm pass was not a cache hit");
            ok = false;
        }
    }

    // End-to-end through the Network: tuned LeNet-5 must still run, and
    // a second tune from the same in-memory cache must agree.
    let mut net = Network::lenet5(16, 4, gcnn_conv::Strategy::Direct, 7);
    let input = Shape4::new(32, 1, 16, 16);
    let sched = net.tune(input, tuner, sub, &mut reloaded);
    let logits = net.forward(&gcnn_tensor::Tensor4::zeros(input));
    if logits.shape() != Shape4::new(32, 4, 1, 1) {
        eprintln!("!!! smoke: tuned network forward shape wrong");
        ok = false;
    }
    let mut net2 = Network::lenet5(16, 4, gcnn_conv::Strategy::Direct, 7);
    let sched2 = net2.tune(input, tuner, sub, &mut reloaded);
    if sched
        .iter()
        .map(|l| &l.implementation)
        .ne(sched2.iter().map(|l| &l.implementation))
    {
        eprintln!("!!! smoke: Network::tune schedule unstable across runs");
        ok = false;
    }
    std::fs::remove_file(path).ok();
    ok
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let params = MeasureParams::from_env();
    let tuner = Tuner::new(Policy::Measure).with_params(params);
    let sub = SimSubstrate::new(DeviceSpec::k40c());
    let path = cache_path(smoke);
    println!(
        "autotune_report: device {}, warmup {}, reps {}, cache {}",
        sub.fingerprint(),
        params.repeats.warmup,
        params.repeats.reps,
        path.display()
    );

    if smoke {
        if run_smoke(&sub, &tuner, &path) {
            println!("autotune smoke OK: warm cache reproduced every cold winner");
        } else {
            eprintln!("autotune smoke FAILED");
            std::process::exit(1);
        }
        return;
    }

    let mut rows = Vec::new();
    let mut failures = 0;
    for model in gcnn_models::all_models() {
        let (row, contract_ok) = tune_model(&model, &sub, &tuner, &path);
        println!(
            "{:<12} tuned {:>10} ms  best-single {:>10} ms ({})  oracle {:>10} ms  ratio {:.4}  warm {}",
            row.model,
            gcnn_bench::ms(row.tuned_total_ms),
            gcnn_bench::ms(row.best_single.as_ref().map(|(_, t)| *t).unwrap_or(f64::NAN)),
            row.best_single.as_ref().map(|(n, _)| n.as_str()).unwrap_or("-"),
            gcnn_bench::ms(row.oracle_total_ms),
            row.tuned_vs_oracle,
            if row.warm_identical { "identical" } else { "DIVERGED" },
        );
        if !contract_ok {
            eprintln!("!!! {}: cold/warm contract violated", row.model);
            failures += 1;
        }
        if let Some((name, best)) = &row.best_single {
            if row.tuned_total_ms > best + 1e-9 {
                eprintln!(
                    "!!! {}: tuned {} ms slower than {name} {} ms",
                    row.model, row.tuned_total_ms, best
                );
                failures += 1;
            }
        }
        if row.tuned_vs_oracle > 1.05 {
            eprintln!(
                "!!! {}: tuned schedule {:.1}% off oracle (budget 5%)",
                row.model,
                (row.tuned_vs_oracle - 1.0) * 100.0
            );
            failures += 1;
        }
        rows.push(row);
    }

    let report = Report {
        schema_version: 1,
        device: sub.fingerprint(),
        cache_path: path.display().to_string(),
        warmup: params.repeats.warmup,
        reps: params.repeats.reps,
        models: rows,
    };
    match gcnn_bench::write_json("autotune_schedule", &report) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => {
            eprintln!("failed to write autotune_schedule.json: {e}");
            failures += 1;
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
