//! Fig. 2 — runtime breakdown of typical real-life CNN models:
//! GoogLeNet, VGG, OverFeat and AlexNet.
//!
//! Paper result: convolutional layers consume 86 %, 89 %, 90 % and 94 %
//! of the respective models' training-iteration time.

#![forbid(unsafe_code)]

use gcnn_core::report::{pct, text_table};
use gcnn_frameworks::cudnn::CuDnn;
use gcnn_gpusim::DeviceSpec;
use gcnn_models::layer::InstanceKind;
use gcnn_models::{all_models, model_breakdown};

fn main() {
    let dev = DeviceSpec::k40c();
    let batch = 32;
    println!("Fig. 2 — runtime breakdown of real-life CNN models");
    println!("(batch {batch}, conv layers via the cuDNN model, 1 training iteration)\n");

    let kinds = [
        (InstanceKind::Conv, "Conv"),
        (InstanceKind::Pool, "Pool"),
        (InstanceKind::Relu, "ReLU"),
        (InstanceKind::Fc, "FC"),
        (InstanceKind::Concat, "Concat"),
        (InstanceKind::Softmax, "Softmax"),
    ];

    let header: Vec<String> = std::iter::once("model".to_string())
        .chain(kinds.iter().map(|(_, n)| n.to_string()))
        .chain(std::iter::once("total ms".to_string()))
        .collect();

    let mut rows = Vec::new();
    let mut dumps = Vec::new();
    for model in all_models() {
        let b = model_breakdown(&model, batch, &CuDnn, &dev);
        let mut row = vec![b.model.clone()];
        for (kind, _) in &kinds {
            row.push(pct(b.share(*kind)));
        }
        row.push(format!("{:.1}", b.total_ms()));
        rows.push(row);
        dumps.push(b);
    }
    println!(
        "{}",
        text_table("layer-type share of iteration time", &header, &rows)
    );
    println!("Paper: conv = 86% (GoogLeNet), 89% (VGG), 90% (OverFeat), 94% (AlexNet).");

    match gcnn_bench::write_json("fig2_model_breakdown", &dumps) {
        Ok(path) => println!("\nraw data → {path}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
