//! Export each implementation's modeled execution schedule at the base
//! configuration as a Chrome trace (`chrome://tracing` / Perfetto /
//! speedscope) — the visual counterpart of Fig. 4's hotspot shares.

#![forbid(unsafe_code)]

use gcnn_conv::ConvConfig;
use gcnn_frameworks::all_implementations;
use gcnn_gpusim::DeviceSpec;
use std::io::Write;

fn main() {
    let cfg = ConvConfig::paper_base();
    let dev = DeviceSpec::k40c();
    std::fs::create_dir_all("results").expect("create results dir");

    println!("Exporting per-implementation execution traces at {cfg}\n");
    for imp in all_implementations() {
        if imp.supports(&cfg).is_err() {
            continue;
        }
        let (report, timeline) = imp
            .plan(&cfg)
            .execute_traced(&dev, 1)
            .expect("base config fits");
        let slug = imp.name().to_lowercase().replace([' ', '-'], "_");
        let path = format!("results/trace_{slug}.json");
        let mut f = std::fs::File::create(&path).expect("create trace file");
        f.write_all(timeline.to_chrome_trace().as_bytes())
            .expect("write trace");
        println!(
            "  {:<15} {:>5} spans, {:>8.1} ms modeled → {path}",
            imp.name(),
            timeline.spans().len(),
            report.total_ms()
        );
    }
    println!("\nOpen any of these in chrome://tracing or https://ui.perfetto.dev.");
}
