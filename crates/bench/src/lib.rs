//! # gcnn-bench
//!
//! The benchmark harness: one binary per table/figure of Li et al.
//! (ICPP 2016), plus Criterion benches of the real CPU substrates.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig2_model_breakdown` | Fig. 2 — layer-type runtime breakdown of GoogLeNet/VGG/OverFeat/AlexNet |
//! | `fig3_runtime_sweeps` | Fig. 3 — runtime of the seven implementations over the five sweeps |
//! | `fig4_hotspot_kernels` | Fig. 4 — per-implementation hotspot kernels |
//! | `fig5_memory_usage` | Fig. 5 — peak memory over the five sweeps |
//! | `fig6_gpu_metrics` | Fig. 6 — runtime + five nvprof metrics over Table I |
//! | `fig7_transfer_overhead` | Fig. 7 — CPU↔GPU transfer share over Table I |
//! | `table1_configs` | Table I — the benchmark configurations |
//! | `table2_resources` | Table II — registers/shared memory + occupancy consequences |
//! | `run_all` | everything above, plus a JSON dump for EXPERIMENTS.md |
//!
//! Criterion benches (`cargo bench`) measure the *real* CPU substrates
//! (SGEMM, FFT, im2col, the three convolution strategies) — wall-clock
//! numbers for this repository's own kernels, complementing the modeled
//! GPU numbers the figure binaries report.

#![forbid(unsafe_code)]

pub mod compare;

use std::io::Write;
use std::path::Path;

/// Write a serializable result under `results/<name>.json` (best-effort
/// directory creation), returning the path written.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) -> std::io::Result<String> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    let s = serde_json::to_string_pretty(value).expect("serializable result");
    f.write_all(s.as_bytes())?;
    Ok(path.display().to_string())
}

/// Format milliseconds compactly.
pub fn ms(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.0}")
    } else if t >= 10.0 {
        format!("{t:.1}")
    } else {
        format!("{t:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(123.456), "123");
        assert_eq!(ms(12.345), "12.3");
        assert_eq!(ms(1.234), "1.23");
    }
}
