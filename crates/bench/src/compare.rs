//! Regression comparison of two `BENCH_hotpaths.json` reports, plus the
//! steady-state allocation gate over `BENCH_trace.json`.
//!
//! The CI bench job runs `perf_smoke`, then `bench_compare` against the
//! committed baseline: a section whose p50 grows by more than the
//! tolerance fails the build, as does a tracked section missing from
//! the current report, as does a non-zero steady-state fresh-allocation
//! count. p50 is the compared statistic — it is robust to the one-off
//! outliers that shared CI runners produce, which mean/p95 are not.

use serde_json::Value;

/// Verdict for one benchmark section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionStatus {
    /// Current p50 is lower than the baseline.
    Improved,
    /// Within the tolerance band.
    Within,
    /// Slower than baseline by more than the tolerance.
    Regressed,
    /// Present in the baseline but absent from the current report.
    Missing,
}

/// One row of the comparison: a section present in the baseline.
#[derive(Debug, Clone)]
pub struct SectionDiff {
    pub name: String,
    pub base_p50_ms: f64,
    /// `None` when the section is missing from the current report.
    pub cur_p50_ms: Option<f64>,
    pub status: SectionStatus,
}

impl SectionDiff {
    /// `current / baseline`, when both sides exist.
    pub fn ratio(&self) -> Option<f64> {
        self.cur_p50_ms.map(|c| c / self.base_p50_ms)
    }
}

/// Full comparison outcome.
#[derive(Debug, Clone)]
pub struct CompareReport {
    pub tolerance: f64,
    pub rows: Vec<SectionDiff>,
}

impl CompareReport {
    /// True when any section regressed or went missing.
    pub fn regressed(&self) -> bool {
        self.rows
            .iter()
            .any(|r| matches!(r.status, SectionStatus::Regressed | SectionStatus::Missing))
    }

    /// Plain-text table of the comparison.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<28} {:>12} {:>12} {:>8}  verdict (tolerance {:.0}%)\n",
            "section",
            "base p50",
            "cur p50",
            "ratio",
            self.tolerance * 100.0
        );
        for row in &self.rows {
            let (cur, ratio) = match (row.cur_p50_ms, row.ratio()) {
                (Some(c), Some(q)) => (crate::ms(c), format!("{q:.2}x")),
                _ => ("—".to_string(), "—".to_string()),
            };
            let verdict = match row.status {
                SectionStatus::Improved => "improved",
                SectionStatus::Within => "ok",
                SectionStatus::Regressed => "REGRESSED",
                SectionStatus::Missing => "MISSING",
            };
            out.push_str(&format!(
                "{:<28} {:>12} {:>12} {:>8}  {verdict}\n",
                row.name,
                crate::ms(row.base_p50_ms),
                cur,
                ratio,
            ));
        }
        out
    }
}

/// Extract `(name, p50_ms)` for every *measured* section (skipped
/// sections record `iters == 0` and carry no meaningful timings).
fn sections(report: &Value) -> Result<Vec<(String, f64)>, String> {
    let list = report
        .get("sections")
        .and_then(Value::as_array)
        .ok_or("report has no `sections` array")?;
    let mut out = Vec::with_capacity(list.len());
    for (i, s) in list.iter().enumerate() {
        let name = s
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("section {i}: missing `name`"))?;
        let iters = s.get("iters").and_then(Value::as_u64).unwrap_or(0);
        if iters == 0 {
            continue;
        }
        let p50 = s
            .get("p50_ms")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("section `{name}`: missing `p50_ms`"))?;
        out.push((name.to_string(), p50));
    }
    Ok(out)
}

/// Compare a current hotpath report against a baseline.
///
/// `tolerance` is the allowed fractional slowdown: 0.25 passes anything
/// up to 1.25× the baseline p50. Baseline sections with no measurements
/// are ignored; extra sections in the current report are ignored too
/// (adding a benchmark is not a regression).
pub fn diff_reports(
    baseline: &Value,
    current: &Value,
    tolerance: f64,
) -> Result<CompareReport, String> {
    assert!(tolerance >= 0.0, "negative tolerance");
    let base = sections(baseline)?;
    let cur = sections(current)?;
    let rows = base
        .into_iter()
        .map(|(name, base_p50)| {
            let cur_p50 = cur.iter().find(|(n, _)| *n == name).map(|(_, p)| *p);
            let status = match cur_p50 {
                None => SectionStatus::Missing,
                Some(c) if c > base_p50 * (1.0 + tolerance) => SectionStatus::Regressed,
                Some(c) if c < base_p50 => SectionStatus::Improved,
                Some(_) => SectionStatus::Within,
            };
            SectionDiff {
                name,
                base_p50_ms: base_p50,
                cur_p50_ms: cur_p50,
                status,
            }
        })
        .collect();
    Ok(CompareReport { tolerance, rows })
}

/// Steady-state fresh-allocation count from a `BENCH_trace.json`
/// report. Zero means the arena fully absorbed the workload after
/// warm-up — the invariant the zero-allocation hot paths guarantee.
pub fn steady_fresh_allocs(trace: &Value) -> Result<u64, String> {
    trace
        .get("steady_fresh_allocs")
        .and_then(Value::as_u64)
        .ok_or_else(|| "trace report has no `steady_fresh_allocs`".to_string())
}

/// Outcome of the SIMD dispatch gate over a `BENCH_simd.json` report.
#[derive(Debug, Clone)]
pub struct SimdGate {
    /// The ISA the report was produced under.
    pub isa: String,
    /// `scalar p50 / simd p50` of the SGEMM micro-bench.
    pub sgemm_speedup: f64,
    /// `scalar p50 / simd p50` of the batched rfft round-trip.
    pub rfft_speedup: f64,
    /// Human-readable reasons the gate failed; empty means pass.
    pub failures: Vec<String>,
}

impl SimdGate {
    /// True when the dispatched kernels met their speedup floors (or the
    /// host is scalar-only, where the gate is vacuous).
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line summary for CI logs.
    pub fn render(&self) -> String {
        if self.failures.is_empty() {
            format!(
                "simd gate: isa {} — sgemm {:.2}x, rfft {:.2}x over scalar: ok",
                self.isa, self.sgemm_speedup, self.rfft_speedup
            )
        } else {
            format!("simd gate: isa {} — {}", self.isa, self.failures.join("; "))
        }
    }
}

/// Gate a `BENCH_simd.json` report: on a SIMD-capable host the
/// dispatched SGEMM micro-kernel must beat scalar by at least
/// `min_sgemm_speedup` and the FFT path must not have *lost* throughput
/// (floor 0.9× — the butterflies are memory-bound, so parity is
/// acceptable; a real dispatch regression shows up well below it).
/// Scalar-only hosts pass trivially: there is no SIMD path to regress.
pub fn simd_gate(report: &Value, min_sgemm_speedup: f64) -> Result<SimdGate, String> {
    const MIN_RFFT_SPEEDUP: f64 = 0.9;
    let isa = report
        .get("isa")
        .and_then(Value::as_str)
        .ok_or("simd report has no `isa`")?
        .to_string();
    let field = |name: &str| {
        report
            .get(name)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("simd report has no `{name}`"))
    };
    let sgemm_speedup = field("sgemm_speedup")?;
    let rfft_speedup = field("rfft_speedup")?;
    let mut failures = Vec::new();
    if isa != "scalar" {
        if sgemm_speedup < min_sgemm_speedup {
            failures.push(format!(
                "sgemm speedup {sgemm_speedup:.2}x below floor {min_sgemm_speedup:.2}x"
            ));
        }
        if rfft_speedup < MIN_RFFT_SPEEDUP {
            failures.push(format!(
                "rfft speedup {rfft_speedup:.2}x below floor {MIN_RFFT_SPEEDUP:.2}x"
            ));
        }
    }
    Ok(SimdGate {
        isa,
        sgemm_speedup,
        rfft_speedup,
        failures,
    })
}

/// Outcome of the FFT speedup gate over a `BENCH_fft.json` report.
#[derive(Debug, Clone)]
pub struct FftGate {
    /// The ISA the report was produced under.
    pub isa: String,
    /// Geometric mean of the per-entry speedups.
    pub overall_speedup: f64,
    /// Human-readable reasons the gate failed; empty means pass.
    pub failures: Vec<String>,
}

impl FftGate {
    /// True when the sweep met its floors (or the host is scalar-only,
    /// where the gate is vacuous).
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line summary for CI logs.
    pub fn render(&self) -> String {
        if self.failures.is_empty() {
            format!(
                "fft gate: isa {} — {:.2}x over scalar (geomean): ok",
                self.isa, self.overall_speedup
            )
        } else {
            format!("fft gate: isa {} — {}", self.isa, self.failures.join("; "))
        }
    }
}

/// Gate a `BENCH_fft.json` sweep: on a SIMD-capable host the geometric
/// mean of the per-size×batch speedups must reach `min_overall_speedup`,
/// and no single cell may have *lost* throughput (floor 0.75× — small
/// single-plane transforms are latency-bound and noisy, but a genuine
/// dispatch regression lands far below that). Scalar-only hosts pass
/// trivially.
pub fn fft_gate(report: &Value, min_overall_speedup: f64) -> Result<FftGate, String> {
    const MIN_ENTRY_SPEEDUP: f64 = 0.75;
    let isa = report
        .get("isa")
        .and_then(Value::as_str)
        .ok_or("fft report has no `isa`")?
        .to_string();
    let overall_speedup = report
        .get("overall_speedup")
        .and_then(Value::as_f64)
        .ok_or("fft report has no `overall_speedup`")?;
    let entries = report
        .get("entries")
        .and_then(Value::as_array)
        .ok_or("fft report has no `entries` array")?;
    let mut failures = Vec::new();
    if isa != "scalar" {
        if overall_speedup < min_overall_speedup {
            failures.push(format!(
                "overall speedup {overall_speedup:.2}x below floor {min_overall_speedup:.2}x"
            ));
        }
        for (i, e) in entries.iter().enumerate() {
            let speedup = e
                .get("speedup")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("fft entry {i}: missing `speedup`"))?;
            if speedup < MIN_ENTRY_SPEEDUP {
                let n = e.get("n").and_then(Value::as_u64).unwrap_or(0);
                let batch = e.get("batch").and_then(Value::as_u64).unwrap_or(0);
                failures.push(format!(
                    "rfft {n}x{n} batch {batch}: {speedup:.2}x below per-cell floor \
                     {MIN_ENTRY_SPEEDUP:.2}x"
                ));
            }
        }
    }
    Ok(FftGate {
        isa,
        overall_speedup,
        failures,
    })
}

/// Outcome of the layout gate over a `BENCH_layout.json` report.
#[derive(Debug, Clone)]
pub struct LayoutGate {
    /// The ISA the report was produced under.
    pub isa: String,
    /// Geometric mean of the headline-entry speedups (fused NCHWc over
    /// the unfused planar path).
    pub overall_speedup: f64,
    /// Human-readable reasons the gate failed; empty means pass.
    pub failures: Vec<String>,
}

impl LayoutGate {
    /// True when the fused-layout win held up (or the host is
    /// scalar-only, where the gate is vacuous).
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line summary for CI logs.
    pub fn render(&self) -> String {
        if self.failures.is_empty() {
            format!(
                "layout gate: isa {} — fused nchwc {:.2}x over planar (geomean): ok",
                self.isa, self.overall_speedup
            )
        } else {
            format!(
                "layout gate: isa {} — {}",
                self.isa,
                self.failures.join("; ")
            )
        }
    }
}

/// Gate a `BENCH_layout.json` sweep: on a SIMD-capable host the
/// geometric mean of the *headline* entries (channel counts that fill
/// the SIMD block) must show the fused NCHWc path at least
/// `min_speedup` faster than the unfused planar path, and no headline
/// entry may have lost outright (floor 1.0×). Non-headline entries —
/// remainder-heavy shapes like LeNet's 1- and 6-channel layers, kept in
/// the report for honesty — are informational and never gate. Scalar
/// hosts pass trivially: without a vector block the packed layout is
/// pure overhead and the autotuner will not pick it.
pub fn layout_gate(report: &Value, min_speedup: f64) -> Result<LayoutGate, String> {
    const MIN_HEADLINE_SPEEDUP: f64 = 1.0;
    let isa = report
        .get("isa")
        .and_then(Value::as_str)
        .ok_or("layout report has no `isa`")?
        .to_string();
    let overall_speedup = report
        .get("overall_speedup")
        .and_then(Value::as_f64)
        .ok_or("layout report has no `overall_speedup`")?;
    let entries = report
        .get("entries")
        .and_then(Value::as_array)
        .ok_or("layout report has no `entries` array")?;
    let mut failures = Vec::new();
    if isa != "scalar" {
        if overall_speedup < min_speedup {
            failures.push(format!(
                "headline speedup {overall_speedup:.2}x below floor {min_speedup:.2}x"
            ));
        }
        for (i, e) in entries.iter().enumerate() {
            // The vendored `Value` has no `as_bool` helper.
            if !matches!(e.get("headline"), Some(Value::Bool(true))) {
                continue;
            }
            let speedup = e
                .get("speedup")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("layout entry {i}: missing `speedup`"))?;
            if speedup < MIN_HEADLINE_SPEEDUP {
                let name = e.get("name").and_then(Value::as_str).unwrap_or("?");
                failures.push(format!(
                    "{name}: {speedup:.2}x below per-entry floor {MIN_HEADLINE_SPEEDUP:.2}x"
                ));
            }
        }
    }
    Ok(LayoutGate {
        isa,
        overall_speedup,
        failures,
    })
}

/// Outcome of the serving gate over a pair of `BENCH_serve.json`
/// reports (committed baseline vs freshly measured).
#[derive(Debug, Clone)]
pub struct ServeGate {
    /// Current batched speedup (largest cap vs cap 1 at peak load).
    pub batched_speedup: f64,
    /// Current peak throughput / baseline peak throughput.
    pub throughput_ratio: f64,
    /// Current headline-cell p50 / baseline headline-cell p50.
    pub p50_ratio: f64,
    /// Human-readable reasons the gate failed; empty means pass.
    pub failures: Vec<String>,
}

impl ServeGate {
    /// True when serving throughput, latency and the batching win all
    /// held up.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line summary for CI logs.
    pub fn render(&self) -> String {
        if self.failures.is_empty() {
            format!(
                "serve gate: batched {:.2}x, throughput {:.2}x of baseline, p50 {:.2}x: ok",
                self.batched_speedup, self.throughput_ratio, self.p50_ratio
            )
        } else {
            format!("serve gate: {}", self.failures.join("; "))
        }
    }
}

/// The headline cell of a serve report: largest batch cap at the
/// highest offered load — the configuration `batched_speedup` is
/// computed from.
fn serve_headline_p50(report: &Value) -> Result<f64, String> {
    let cells = report
        .get("cells")
        .and_then(Value::as_array)
        .ok_or("serve report has no `cells` array")?;
    cells
        .iter()
        .max_by_key(|c| {
            (
                c.get("max_batch").and_then(Value::as_u64).unwrap_or(0),
                c.get("offered_inflight")
                    .and_then(Value::as_u64)
                    .unwrap_or(0),
            )
        })
        .and_then(|c| c.get("p50_ms").and_then(Value::as_f64))
        .ok_or_else(|| "serve report headline cell has no `p50_ms`".to_string())
}

/// Gate a freshly measured `BENCH_serve.json` against the committed
/// baseline. Three checks:
///
/// 1. the batching win survives: `batched_speedup ≥ min_speedup`
///    (throughput at the largest cap must beat cap 1 — the reason the
///    serving layer exists);
/// 2. peak throughput stays within `tolerance` of the baseline;
/// 3. headline-cell p50 latency stays within `tolerance`.
///
/// Serving numbers are wall-clock over a threaded closed loop, so the
/// tolerance is wider than the kernel gates' (CI default 0.35).
pub fn serve_gate(
    baseline: &Value,
    current: &Value,
    tolerance: f64,
    min_speedup: f64,
) -> Result<ServeGate, String> {
    let field = |report: &Value, name: &str| {
        report
            .get(name)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("serve report has no `{name}`"))
    };
    let batched_speedup = field(current, "batched_speedup")?;
    let base_thru = field(baseline, "capmax_throughput_rps")?;
    let cur_thru = field(current, "capmax_throughput_rps")?;
    let base_p50 = serve_headline_p50(baseline)?;
    let cur_p50 = serve_headline_p50(current)?;
    if base_thru <= 0.0 || base_p50 <= 0.0 {
        return Err("serve baseline has non-positive throughput or p50".to_string());
    }
    let throughput_ratio = cur_thru / base_thru;
    let p50_ratio = cur_p50 / base_p50;

    let mut failures = Vec::new();
    if batched_speedup < min_speedup {
        failures.push(format!(
            "batched speedup {batched_speedup:.2}x below floor {min_speedup:.2}x \
             — batching no longer beats single-image serving"
        ));
    }
    if throughput_ratio < 1.0 - tolerance {
        failures.push(format!(
            "peak throughput {cur_thru:.0} rps is {throughput_ratio:.2}x of baseline \
             {base_thru:.0} rps (floor {:.2}x)",
            1.0 - tolerance
        ));
    }
    if p50_ratio > 1.0 + tolerance {
        failures.push(format!(
            "headline p50 {cur_p50:.2} ms is {p50_ratio:.2}x of baseline {base_p50:.2} ms \
             (ceiling {:.2}x)",
            1.0 + tolerance
        ));
    }
    Ok(ServeGate {
        batched_speedup,
        throughput_ratio,
        p50_ratio,
        failures,
    })
}

/// Outcome of the multi-tenant simulator gate over a pair of
/// `BENCH_mtsim.json` reports (committed baseline vs freshly
/// generated).
#[derive(Debug, Clone)]
pub struct MtsimGate {
    /// Worst per-stream slowdown of the 2-tenant FIFO cells.
    pub fifo2_slowdown: f64,
    /// Partition aggregate throughput over round-robin's, on the
    /// occupancy-limited workload.
    pub partition_over_rr: f64,
    /// Relative error of the model's GM204 occupancy vs maxDNN's
    /// published figure.
    pub maxwell_rel_err: f64,
    /// Human-readable reasons the gate failed; empty means pass.
    pub failures: Vec<String>,
}

impl MtsimGate {
    /// True when the interference physics and the Maxwell validation
    /// all held, and no cell drifted beyond tolerance.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line summary for CI logs.
    pub fn render(&self) -> String {
        if self.failures.is_empty() {
            format!(
                "mtsim gate: fifo2 slowdown {:.2}x, partition/rr {:.2}x, \
                 maxwell err {:.1}%: ok",
                self.fifo2_slowdown,
                self.partition_over_rr,
                self.maxwell_rel_err * 100.0
            )
        } else {
            format!("mtsim gate: {}", self.failures.join("; "))
        }
    }
}

/// Gate a freshly generated `BENCH_mtsim.json` against the committed
/// baseline. Four checks:
///
/// 1. contention is real: each of two closed-loop FIFO tenants sees at
///    least 1.8× its dedicated latency (`fifo2_slowdown ≥ 1.8`);
/// 2. spatial sharing wins where the occupancy model says it must:
///    partition aggregate throughput beats round-robin by ≥ 1.15× on
///    the occupancy-limited workload;
/// 3. the Maxwell descriptor reproduces maxDNN's published occupancy
///    within 5%;
/// 4. no sweep cell's aggregate throughput drifted below
///    `baseline · (1 − tolerance)` (cells are matched on
///    workload/policy/tenants; a baseline cell missing from the
///    current report fails). The simulator is deterministic, so drift
///    means the *model* changed — refresh the baseline deliberately,
///    per EXPERIMENTS.md.
pub fn mtsim_gate(baseline: &Value, current: &Value, tolerance: f64) -> Result<MtsimGate, String> {
    const MIN_FIFO2_SLOWDOWN: f64 = 1.8;
    const MIN_PARTITION_OVER_RR: f64 = 1.15;
    const MAX_MAXWELL_REL_ERR: f64 = 0.05;
    let field = |report: &Value, name: &str| {
        report
            .get(name)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("mtsim report has no `{name}`"))
    };
    let fifo2_slowdown = field(current, "fifo2_slowdown")?;
    let partition_over_rr = field(current, "partition_over_rr_occlimited")?;
    let maxwell_rel_err = current
        .get("maxwell")
        .and_then(|m| m.get("rel_err"))
        .and_then(Value::as_f64)
        .ok_or("mtsim report has no `maxwell.rel_err`")?;

    let mut failures = Vec::new();
    if fifo2_slowdown < MIN_FIFO2_SLOWDOWN {
        failures.push(format!(
            "2-tenant FIFO slowdown {fifo2_slowdown:.2}x below floor \
             {MIN_FIFO2_SLOWDOWN:.2}x — interference model lost contention"
        ));
    }
    if partition_over_rr < MIN_PARTITION_OVER_RR {
        failures.push(format!(
            "partition/rr aggregate {partition_over_rr:.2}x below floor \
             {MIN_PARTITION_OVER_RR:.2}x on the occupancy-limited workload"
        ));
    }
    if maxwell_rel_err > MAX_MAXWELL_REL_ERR {
        failures.push(format!(
            "GM204 occupancy off maxDNN by {:.1}% (ceiling {:.0}%)",
            maxwell_rel_err * 100.0,
            MAX_MAXWELL_REL_ERR * 100.0
        ));
    }

    let cells = |report: &Value| -> Result<Vec<(String, f64)>, String> {
        let list = report
            .get("cells")
            .and_then(Value::as_array)
            .ok_or("mtsim report has no `cells` array")?;
        let mut out = Vec::with_capacity(list.len());
        for (i, c) in list.iter().enumerate() {
            let workload = c
                .get("workload")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("mtsim cell {i}: missing `workload`"))?;
            let policy = c
                .get("policy")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("mtsim cell {i}: missing `policy`"))?;
            let tenants = c
                .get("tenants")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("mtsim cell {i}: missing `tenants`"))?;
            let thru = c
                .get("aggregate_throughput_jobs_per_s")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("mtsim cell {i}: missing throughput"))?;
            out.push((format!("{workload}/{policy}/{tenants}"), thru));
        }
        Ok(out)
    };
    let base_cells = cells(baseline)?;
    let cur_cells = cells(current)?;
    for (key, base_thru) in &base_cells {
        match cur_cells.iter().find(|(k, _)| k == key) {
            None => failures.push(format!("cell {key} missing from current report")),
            Some((_, cur_thru)) if *cur_thru < base_thru * (1.0 - tolerance) => {
                failures.push(format!(
                    "cell {key}: throughput {cur_thru:.2} jobs/s is below baseline \
                     {base_thru:.2} − {:.0}%",
                    tolerance * 100.0
                ));
            }
            Some(_) => {}
        }
    }

    Ok(MtsimGate {
        fifo2_slowdown,
        partition_over_rr,
        maxwell_rel_err,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(entries: &[(&str, u64, f64)]) -> Value {
        let sections = entries
            .iter()
            .map(|(name, iters, p50)| {
                format!(r#"{{"name":"{name}","iters":{iters},"p50_ms":{p50}}}"#)
            })
            .collect::<Vec<_>>()
            .join(",");
        serde_json::from_str(&format!(r#"{{"sections":[{sections}]}}"#)).unwrap()
    }

    #[test]
    fn improvement_passes() {
        let base = report(&[("sgemm", 10, 100.0)]);
        let cur = report(&[("sgemm", 10, 60.0)]);
        let diff = diff_reports(&base, &cur, 0.25).unwrap();
        assert!(!diff.regressed());
        assert_eq!(diff.rows[0].status, SectionStatus::Improved);
        assert!((diff.rows[0].ratio().unwrap() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn within_tolerance_passes() {
        let base = report(&[("sgemm", 10, 100.0)]);
        let cur = report(&[("sgemm", 10, 120.0)]);
        let diff = diff_reports(&base, &cur, 0.25).unwrap();
        assert!(!diff.regressed());
        assert_eq!(diff.rows[0].status, SectionStatus::Within);
    }

    #[test]
    fn slowdown_beyond_tolerance_regresses() {
        let base = report(&[("sgemm", 10, 100.0), ("fft", 10, 50.0)]);
        let cur = report(&[("sgemm", 10, 130.0), ("fft", 10, 50.0)]);
        let diff = diff_reports(&base, &cur, 0.25).unwrap();
        assert!(diff.regressed());
        assert_eq!(diff.rows[0].status, SectionStatus::Regressed);
        assert_eq!(diff.rows[1].status, SectionStatus::Within);
        assert!(diff.render().contains("REGRESSED"));
    }

    #[test]
    fn missing_section_regresses() {
        let base = report(&[("sgemm", 10, 100.0), ("fft", 10, 50.0)]);
        let cur = report(&[("sgemm", 10, 100.0)]);
        let diff = diff_reports(&base, &cur, 0.25).unwrap();
        assert!(diff.regressed());
        assert_eq!(diff.rows[1].status, SectionStatus::Missing);
        assert_eq!(diff.rows[1].cur_p50_ms, None);
    }

    #[test]
    fn skipped_sections_are_ignored() {
        // A baseline section with iters == 0 (e.g. Direct skipped on a
        // small runner) must not count as missing later.
        let base = report(&[("direct", 0, 0.0), ("sgemm", 10, 100.0)]);
        let cur = report(&[("sgemm", 10, 100.0)]);
        let diff = diff_reports(&base, &cur, 0.25).unwrap();
        assert!(!diff.regressed());
        assert_eq!(diff.rows.len(), 1);
    }

    #[test]
    fn baseline_vs_itself_is_clean() {
        let base = report(&[("sgemm", 10, 100.0), ("fft", 10, 50.0)]);
        let diff = diff_reports(&base, &base, 0.0).unwrap();
        assert!(!diff.regressed());
        assert!(diff.rows.iter().all(|r| r.status == SectionStatus::Within));
    }

    #[test]
    fn malformed_report_errors() {
        let bad: Value = serde_json::from_str(r#"{"nope": 1}"#).unwrap();
        assert!(diff_reports(&bad, &bad, 0.25).is_err());
    }

    fn simd_report(isa: &str, sgemm: f64, rfft: f64) -> Value {
        serde_json::from_str(&format!(
            r#"{{"isa":"{isa}","sgemm_speedup":{sgemm},"rfft_speedup":{rfft}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn simd_gate_passes_healthy_report() {
        let gate = simd_gate(&simd_report("avx2+fma", 2.1, 1.3), 1.2).unwrap();
        assert!(gate.passed());
        assert!(gate.render().contains("ok"));
    }

    #[test]
    fn simd_gate_fails_slow_sgemm() {
        let gate = simd_gate(&simd_report("avx2+fma", 1.05, 1.3), 1.2).unwrap();
        assert!(!gate.passed());
        assert!(gate.render().contains("sgemm"));
    }

    #[test]
    fn simd_gate_fails_fft_throughput_loss() {
        let gate = simd_gate(&simd_report("neon", 1.8, 0.5), 1.2).unwrap();
        assert!(!gate.passed());
        assert!(gate.render().contains("rfft"));
    }

    #[test]
    fn simd_gate_is_vacuous_on_scalar_hosts() {
        // A scalar-only host legitimately reports ~1.0x everywhere.
        let gate = simd_gate(&simd_report("scalar", 1.0, 1.0), 1.2).unwrap();
        assert!(gate.passed());
    }

    #[test]
    fn simd_gate_rejects_malformed_report() {
        let bad: Value = serde_json::from_str(r#"{"isa":"avx2+fma"}"#).unwrap();
        assert!(simd_gate(&bad, 1.2).is_err());
        let no_isa: Value = serde_json::from_str(r#"{"sgemm_speedup":2.0}"#).unwrap();
        assert!(simd_gate(&no_isa, 1.2).is_err());
    }

    fn fft_report(isa: &str, overall: f64, cells: &[(u64, u64, f64)]) -> Value {
        let entries = cells
            .iter()
            .map(|(n, b, s)| format!(r#"{{"n":{n},"batch":{b},"speedup":{s}}}"#))
            .collect::<Vec<_>>()
            .join(",");
        serde_json::from_str(&format!(
            r#"{{"isa":"{isa}","overall_speedup":{overall},"entries":[{entries}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn fft_gate_passes_healthy_sweep() {
        let rep = fft_report("avx2+fma", 4.2, &[(16, 1, 1.8), (64, 32, 6.0)]);
        let gate = fft_gate(&rep, 2.0).unwrap();
        assert!(gate.passed());
        assert!(gate.render().contains("ok"));
    }

    #[test]
    fn fft_gate_fails_low_overall() {
        let rep = fft_report("avx2+fma", 1.4, &[(16, 1, 1.3), (64, 32, 1.5)]);
        let gate = fft_gate(&rep, 2.0).unwrap();
        assert!(!gate.passed());
        assert!(gate.render().contains("overall"));
    }

    #[test]
    fn fft_gate_fails_regressed_cell_despite_good_overall() {
        let rep = fft_report("avx2+fma", 3.0, &[(16, 1, 0.5), (64, 32, 9.0)]);
        let gate = fft_gate(&rep, 2.0).unwrap();
        assert!(!gate.passed());
        assert!(gate.render().contains("16x16 batch 1"));
    }

    #[test]
    fn fft_gate_is_vacuous_on_scalar_hosts() {
        let rep = fft_report("scalar", 1.0, &[(16, 1, 1.0)]);
        assert!(fft_gate(&rep, 2.0).unwrap().passed());
    }

    #[test]
    fn fft_gate_rejects_malformed_report() {
        let bad: Value = serde_json::from_str(r#"{"isa":"avx2+fma"}"#).unwrap();
        assert!(fft_gate(&bad, 2.0).is_err());
        let no_speedup: Value = serde_json::from_str(
            r#"{"isa":"avx2+fma","overall_speedup":3.0,"entries":[{"n":16,"batch":1}]}"#,
        )
        .unwrap();
        assert!(fft_gate(&no_speedup, 2.0).is_err());
    }

    fn layout_report(isa: &str, overall: f64, cells: &[(&str, bool, f64)]) -> Value {
        let entries = cells
            .iter()
            .map(|(name, headline, s)| {
                format!(r#"{{"name":"{name}","headline":{headline},"speedup":{s}}}"#)
            })
            .collect::<Vec<_>>()
            .join(",");
        serde_json::from_str(&format!(
            r#"{{"isa":"{isa}","overall_speedup":{overall},"entries":[{entries}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn layout_gate_passes_healthy_sweep() {
        let rep = layout_report(
            "avx2+fma",
            1.6,
            &[("vgg3_like", true, 1.7), ("lenet_conv1", false, 0.6)],
        );
        let gate = layout_gate(&rep, 1.15).unwrap();
        assert!(gate.passed(), "{:?}", gate.failures);
        assert!(gate.render().contains("ok"));
    }

    #[test]
    fn layout_gate_fails_low_overall() {
        let rep = layout_report("avx2+fma", 1.05, &[("vgg3_like", true, 1.05)]);
        let gate = layout_gate(&rep, 1.15).unwrap();
        assert!(!gate.passed());
        assert!(gate.render().contains("headline speedup"));
    }

    #[test]
    fn layout_gate_fails_losing_headline_entry_despite_good_overall() {
        let rep = layout_report(
            "avx2+fma",
            1.4,
            &[("vgg3_like", true, 2.1), ("alexnet_conv3", true, 0.9)],
        );
        let gate = layout_gate(&rep, 1.15).unwrap();
        assert!(!gate.passed());
        assert!(gate.render().contains("alexnet_conv3"));
    }

    #[test]
    fn layout_gate_ignores_non_headline_losses() {
        // Remainder-heavy shapes may legitimately lose to planar; they
        // are reported but never gate.
        let rep = layout_report(
            "avx2+fma",
            1.5,
            &[("vgg3_like", true, 1.5), ("lenet_conv1", false, 0.4)],
        );
        assert!(layout_gate(&rep, 1.15).unwrap().passed());
    }

    #[test]
    fn layout_gate_is_vacuous_on_scalar_hosts() {
        let rep = layout_report("scalar", 0.8, &[("vgg3_like", true, 0.8)]);
        assert!(layout_gate(&rep, 1.15).unwrap().passed());
    }

    #[test]
    fn layout_gate_rejects_malformed_report() {
        let bad: Value = serde_json::from_str(r#"{"isa":"avx2+fma"}"#).unwrap();
        assert!(layout_gate(&bad, 1.15).is_err());
        let no_speedup: Value = serde_json::from_str(
            r#"{"isa":"avx2+fma","overall_speedup":1.5,
                "entries":[{"name":"x","headline":true}]}"#,
        )
        .unwrap();
        assert!(layout_gate(&no_speedup, 1.15).is_err());
    }

    #[test]
    fn alloc_gate_reads_count() {
        let t: Value = serde_json::from_str(r#"{"steady_fresh_allocs": 3}"#).unwrap();
        assert_eq!(steady_fresh_allocs(&t).unwrap(), 3);
        let missing: Value = serde_json::from_str("{}").unwrap();
        assert!(steady_fresh_allocs(&missing).is_err());
    }

    fn serve_report(speedup: f64, capmax_thru: f64, cells: &[(u64, u64, f64)]) -> Value {
        let cells = cells
            .iter()
            .map(|(cap, inflight, p50)| {
                format!(r#"{{"max_batch":{cap},"offered_inflight":{inflight},"p50_ms":{p50}}}"#)
            })
            .collect::<Vec<_>>()
            .join(",");
        serde_json::from_str(&format!(
            r#"{{"batched_speedup":{speedup},"capmax_throughput_rps":{capmax_thru},
                 "cells":[{cells}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn serve_gate_passes_when_everything_holds() {
        let base = serve_report(1.5, 20_000.0, &[(1, 16, 0.8), (8, 16, 0.5)]);
        let cur = serve_report(1.6, 21_000.0, &[(1, 16, 0.7), (8, 16, 0.45)]);
        let gate = serve_gate(&base, &cur, 0.35, 1.0).unwrap();
        assert!(gate.passed(), "{:?}", gate.failures);
        assert!(gate.render().contains("ok"));
    }

    #[test]
    fn serve_gate_fails_when_batching_stops_winning() {
        let base = serve_report(1.5, 20_000.0, &[(8, 16, 0.5)]);
        let cur = serve_report(0.9, 21_000.0, &[(8, 16, 0.5)]);
        let gate = serve_gate(&base, &cur, 0.35, 1.0).unwrap();
        assert!(!gate.passed());
        assert!(gate.render().contains("batched speedup"));
    }

    #[test]
    fn serve_gate_fails_on_throughput_regression() {
        let base = serve_report(1.5, 20_000.0, &[(8, 16, 0.5)]);
        let cur = serve_report(1.5, 10_000.0, &[(8, 16, 0.5)]);
        let gate = serve_gate(&base, &cur, 0.35, 1.0).unwrap();
        assert!(!gate.passed());
        assert!(gate.render().contains("peak throughput"));
    }

    #[test]
    fn serve_gate_fails_on_p50_regression_of_headline_cell() {
        // The headline cell is the largest (cap, inflight) pair; the
        // low-load cells may regress freely.
        let base = serve_report(1.5, 20_000.0, &[(1, 4, 0.1), (8, 16, 0.5)]);
        let cur = serve_report(1.5, 20_000.0, &[(1, 4, 9.9), (8, 16, 0.5)]);
        assert!(serve_gate(&base, &cur, 0.35, 1.0).unwrap().passed());
        let cur_bad = serve_report(1.5, 20_000.0, &[(1, 4, 0.1), (8, 16, 1.5)]);
        let gate = serve_gate(&base, &cur_bad, 0.35, 1.0).unwrap();
        assert!(!gate.passed());
        assert!(gate.render().contains("headline p50"));
    }

    #[test]
    fn serve_gate_tolerance_is_honored() {
        let base = serve_report(1.5, 20_000.0, &[(8, 16, 0.5)]);
        // 30% worse on both axes: inside a 0.35 tolerance, outside 0.2.
        let cur = serve_report(1.2, 14_000.0, &[(8, 16, 0.65)]);
        assert!(serve_gate(&base, &cur, 0.35, 1.0).unwrap().passed());
        assert!(!serve_gate(&base, &cur, 0.2, 1.0).unwrap().passed());
    }

    fn mtsim_report(
        fifo2: f64,
        part_rr: f64,
        rel_err: f64,
        cells: &[(&str, &str, u64, f64)],
    ) -> Value {
        let cells = cells
            .iter()
            .map(|(w, p, n, thru)| {
                format!(
                    r#"{{"workload":"{w}","policy":"{p}","tenants":{n},
                        "aggregate_throughput_jobs_per_s":{thru}}}"#
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        serde_json::from_str(&format!(
            r#"{{"fifo2_slowdown":{fifo2},"partition_over_rr_occlimited":{part_rr},
                 "maxwell":{{"rel_err":{rel_err}}},"cells":[{cells}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn mtsim_gate_passes_healthy_report() {
        let rep = mtsim_report(2.0, 1.8, 0.0, &[("occ", "fifo", 2, 100.0)]);
        let gate = mtsim_gate(&rep, &rep, 0.1).unwrap();
        assert!(gate.passed(), "{:?}", gate.failures);
        assert!(gate.render().contains("ok"));
    }

    #[test]
    fn mtsim_gate_fails_weak_interference() {
        let base = mtsim_report(2.0, 1.8, 0.0, &[]);
        let cur = mtsim_report(1.4, 1.8, 0.0, &[]);
        let gate = mtsim_gate(&base, &cur, 0.1).unwrap();
        assert!(!gate.passed());
        assert!(gate.render().contains("FIFO slowdown"));
    }

    #[test]
    fn mtsim_gate_fails_when_partition_stops_winning() {
        let base = mtsim_report(2.0, 1.8, 0.0, &[]);
        let cur = mtsim_report(2.0, 1.0, 0.0, &[]);
        let gate = mtsim_gate(&base, &cur, 0.1).unwrap();
        assert!(!gate.passed());
        assert!(gate.render().contains("partition/rr"));
    }

    #[test]
    fn mtsim_gate_fails_maxwell_drift() {
        let base = mtsim_report(2.0, 1.8, 0.0, &[]);
        let cur = mtsim_report(2.0, 1.8, 0.08, &[]);
        let gate = mtsim_gate(&base, &cur, 0.1).unwrap();
        assert!(!gate.passed());
        assert!(gate.render().contains("maxDNN"));
    }

    #[test]
    fn mtsim_gate_fails_cell_throughput_drift_and_missing_cells() {
        let base = mtsim_report(
            2.0,
            1.8,
            0.0,
            &[("occ", "fifo", 2, 100.0), ("occ", "rr", 2, 90.0)],
        );
        let slow = mtsim_report(
            2.0,
            1.8,
            0.0,
            &[("occ", "fifo", 2, 80.0), ("occ", "rr", 2, 90.0)],
        );
        let gate = mtsim_gate(&base, &slow, 0.1).unwrap();
        assert!(!gate.passed());
        assert!(gate.render().contains("occ/fifo/2"));

        let missing = mtsim_report(2.0, 1.8, 0.0, &[("occ", "fifo", 2, 100.0)]);
        let gate = mtsim_gate(&base, &missing, 0.1).unwrap();
        assert!(!gate.passed());
        assert!(gate.render().contains("missing"));
    }

    #[test]
    fn mtsim_gate_tolerance_is_honored() {
        let base = mtsim_report(2.0, 1.8, 0.0, &[("occ", "fifo", 2, 100.0)]);
        let cur = mtsim_report(2.0, 1.8, 0.0, &[("occ", "fifo", 2, 92.0)]);
        assert!(mtsim_gate(&base, &cur, 0.1).unwrap().passed());
        assert!(!mtsim_gate(&base, &cur, 0.05).unwrap().passed());
    }

    #[test]
    fn mtsim_gate_rejects_malformed_reports() {
        let good = mtsim_report(2.0, 1.8, 0.0, &[("occ", "fifo", 2, 100.0)]);
        let no_headline: Value =
            serde_json::from_str(r#"{"partition_over_rr_occlimited":1.8}"#).unwrap();
        assert!(mtsim_gate(&good, &no_headline, 0.1).is_err());
        let no_cells: Value = serde_json::from_str(
            r#"{"fifo2_slowdown":2.0,"partition_over_rr_occlimited":1.8,
                "maxwell":{"rel_err":0.0}}"#,
        )
        .unwrap();
        assert!(mtsim_gate(&no_cells, &good, 0.1).is_err());
    }

    #[test]
    fn serve_gate_rejects_malformed_reports() {
        let good = serve_report(1.5, 20_000.0, &[(8, 16, 0.5)]);
        let no_cells: Value =
            serde_json::from_str(r#"{"batched_speedup":1.5,"capmax_throughput_rps":1.0}"#).unwrap();
        assert!(serve_gate(&good, &no_cells, 0.35, 1.0).is_err());
        assert!(serve_gate(&no_cells, &good, 0.35, 1.0).is_err());
        let zero_base = serve_report(1.5, 0.0, &[(8, 16, 0.5)]);
        assert!(serve_gate(&zero_base, &good, 0.35, 1.0).is_err());
    }
}
