//! Criterion bench of the real FFT substrate (DIT vs DIF schedules and
//! 2-D transforms).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gcnn_fft::dif::dif_fft_inplace;
use gcnn_fft::dit::fft_inplace;
use gcnn_fft::{fft_flops, Direction, Fft2dPlan, FftPlan};
use gcnn_tensor::Complex32;
use std::hint::black_box;

fn signal(n: usize) -> Vec<Complex32> {
    (0..n)
        .map(|i| Complex32::new((i as f32 * 0.37).sin(), (i as f32 * 0.91).cos()))
        .collect()
}

fn bench_fft_1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_1d");
    for &n in &[256usize, 1024, 4096] {
        let plan = FftPlan::new(n);
        let base = signal(n);
        group.throughput(Throughput::Elements(fft_flops(n)));
        group.bench_with_input(BenchmarkId::new("dit", n), &n, |bench, _| {
            let mut buf = base.clone();
            bench.iter(|| {
                fft_inplace(black_box(&mut buf), &plan, Direction::Forward);
            });
        });
        group.bench_with_input(BenchmarkId::new("dif", n), &n, |bench, _| {
            let mut buf = base.clone();
            bench.iter(|| {
                dif_fft_inplace(black_box(&mut buf), &plan, Direction::Forward);
            });
        });
    }
    group.finish();
}

fn bench_fft_2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_2d");
    for &n in &[32usize, 64, 128] {
        let plan = Fft2dPlan::new(n, n);
        let plane: Vec<f32> = (0..n * n).map(|i| ((i * 37) % 23) as f32 - 11.0).collect();
        group.throughput(Throughput::Elements(2 * n as u64 * fft_flops(n)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(plan.forward_real(black_box(&plane))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft_1d, bench_fft_2d);
criterion_main!(benches);
