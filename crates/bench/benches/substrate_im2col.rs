//! Criterion bench of the im2col/col2im unrolling primitives — the
//! `im2col_gpu_kernel`/`col2im_gpu_kernel` hotspots of the paper's
//! Fig. 4, as real CPU kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gcnn_tensor::im2col::{col2im, im2col, ConvGeometry};
use gcnn_tensor::Matrix;
use std::hint::black_box;

fn bench_im2col(c: &mut Criterion) {
    let mut group = c.benchmark_group("im2col");
    for &(i, k) in &[(32usize, 3usize), (64, 5), (128, 11)] {
        let geom = ConvGeometry {
            in_h: i,
            in_w: i,
            channels: 3,
            kernel: k,
            stride: 1,
            pad: 0,
        };
        let image: Vec<f32> = (0..3 * i * i).map(|x| (x % 17) as f32).collect();
        let mut cols = Matrix::zeros(geom.col_rows(), geom.col_cols());
        group.throughput(Throughput::Bytes(
            (geom.col_rows() * geom.col_cols() * 4) as u64,
        ));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("i{i}_k{k}")),
            &geom,
            |b, geom| {
                b.iter(|| im2col(black_box(&image), geom, black_box(&mut cols)));
            },
        );
    }
    group.finish();
}

fn bench_col2im(c: &mut Criterion) {
    let geom = ConvGeometry {
        in_h: 64,
        in_w: 64,
        channels: 3,
        kernel: 5,
        stride: 1,
        pad: 0,
    };
    let cols = Matrix::from_fn(geom.col_rows(), geom.col_cols(), |r, c| {
        ((r * 31 + c) % 13) as f32
    });
    let mut image = vec![0.0f32; 3 * 64 * 64];
    c.bench_function("col2im_i64_k5", |b| {
        b.iter(|| col2im(black_box(&cols), &geom, black_box(&mut image)));
    });
}

criterion_group!(benches, bench_im2col, bench_col2im);
criterion_main!(benches);
