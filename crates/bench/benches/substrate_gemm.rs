//! Criterion bench of the real SGEMM/CGEMM substrate (the "cuBLAS" this
//! repository built from scratch). These are CPU wall-clock numbers for
//! the library's own kernels, not modeled GPU numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gcnn_gemm::{cgemm, gemm_flops, sgemm, Transpose};
use gcnn_tensor::Complex32;
use std::hint::black_box;

fn lcg_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
        .collect()
}

fn bench_sgemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("sgemm");
    for &n in &[64usize, 128, 256, 512] {
        let a = lcg_vec(n * n, 1);
        let b = lcg_vec(n * n, 2);
        let mut out = vec![0.0f32; n * n];
        group.throughput(Throughput::Elements(gemm_flops(n, n, n)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| {
                sgemm(
                    Transpose::No,
                    Transpose::No,
                    n,
                    n,
                    n,
                    1.0,
                    black_box(&a),
                    n,
                    black_box(&b),
                    n,
                    0.0,
                    &mut out,
                    n,
                );
            });
        });
    }
    group.finish();
}

fn bench_sgemm_conv_shape(c: &mut Criterion) {
    // The Caffe forward GEMM at the paper's base config:
    // [64 × 363] · [363 × 13924] per image.
    let (m, k, n) = (64usize, 363usize, 13924usize);
    let a = lcg_vec(m * k, 3);
    let b = lcg_vec(k * n, 4);
    let mut out = vec![0.0f32; m * n];
    let mut group = c.benchmark_group("sgemm_conv_shape");
    group.throughput(Throughput::Elements(gemm_flops(m, n, k)));
    group.bench_function("caffe_fwd_base", |bench| {
        bench.iter(|| {
            sgemm(
                Transpose::No,
                Transpose::No,
                m,
                n,
                k,
                1.0,
                black_box(&a),
                k,
                black_box(&b),
                n,
                0.0,
                &mut out,
                n,
            );
        });
    });
    group.finish();
}

fn bench_cgemm(c: &mut Criterion) {
    let n = 96usize;
    let a: Vec<Complex32> = lcg_vec(n * n, 5)
        .into_iter()
        .zip(lcg_vec(n * n, 6))
        .map(|(re, im)| Complex32::new(re, im))
        .collect();
    let b = a.clone();
    let mut out = vec![Complex32::ZERO; n * n];
    c.bench_function("cgemm_96", |bench| {
        bench.iter(|| {
            cgemm(
                false,
                false,
                n,
                n,
                n,
                Complex32::ONE,
                black_box(&a),
                n,
                black_box(&b),
                n,
                Complex32::ZERO,
                &mut out,
                n,
            );
        });
    });
}

criterion_group!(benches, bench_sgemm, bench_sgemm_conv_shape, bench_cgemm);
criterion_main!(benches);
