//! Criterion bench of the three real convolution strategies on CPU —
//! the paper's strategy comparison, executed rather than modeled.
//!
//! The paper's arithmetic-complexity argument shows up directly: the
//! FFT strategy's time is flat in kernel size while direct/unrolling
//! grow with k².

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gcnn_conv::{ConvAlgorithm, ConvConfig, DirectConv, FftConv, UnrollConv, WinogradConv};
use gcnn_tensor::init::uniform_tensor;
use std::hint::black_box;

fn bench_forward_strategies(c: &mut Criterion) {
    // Scaled-down base configuration (CPU-friendly): the relative
    // ordering across strategies is what matters.
    let cfg = ConvConfig::with_channels(4, 3, 64, 16, 11, 1);
    let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 1);
    let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, 2);

    let mut group = c.benchmark_group("conv_forward");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cfg.forward_flops()));
    group.bench_function("direct", |b| {
        b.iter(|| black_box(DirectConv.forward(&cfg, black_box(&x), black_box(&w))))
    });
    group.bench_function("unrolling", |b| {
        b.iter(|| black_box(UnrollConv.forward(&cfg, black_box(&x), black_box(&w))))
    });
    group.bench_function("fft", |b| {
        b.iter(|| black_box(FftConv.forward(&cfg, black_box(&x), black_box(&w))))
    });
    group.finish();
}

fn bench_fft_flat_in_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_fft_vs_kernel_size");
    group.sample_size(10);
    for &k in &[3usize, 7, 11] {
        let cfg = ConvConfig::with_channels(2, 3, 64, 8, k, 1);
        let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 3);
        let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, 4);
        group.bench_with_input(BenchmarkId::new("fft", k), &k, |b, _| {
            b.iter(|| black_box(FftConv.forward(&cfg, black_box(&x), black_box(&w))))
        });
        group.bench_with_input(BenchmarkId::new("unrolling", k), &k, |b, _| {
            b.iter(|| black_box(UnrollConv.forward(&cfg, black_box(&x), black_box(&w))))
        });
    }
    group.finish();
}

fn bench_backward_passes(c: &mut Criterion) {
    let cfg = ConvConfig::with_channels(2, 3, 32, 8, 5, 1);
    let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 5);
    let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, 6);
    let g = uniform_tensor(cfg.output_shape(), -1.0, 1.0, 7);

    let mut group = c.benchmark_group("conv_backward");
    group.sample_size(10);
    group.bench_function("unrolling_data", |b| {
        b.iter(|| black_box(UnrollConv.backward_data(&cfg, black_box(&g), black_box(&w))))
    });
    group.bench_function("unrolling_filters", |b| {
        b.iter(|| black_box(UnrollConv.backward_filters(&cfg, black_box(&x), black_box(&g))))
    });
    group.finish();
}

fn bench_winograd_vs_unrolling(c: &mut Criterion) {
    // The post-paper optimization: Winograd F(2,3) at 3×3/stride-1 —
    // 2.25× fewer multiplies than direct/im2col.
    let cfg = ConvConfig::with_channels(4, 8, 32, 16, 3, 1);
    let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 8);
    let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, 9);

    let mut group = c.benchmark_group("conv_winograd_3x3");
    group.sample_size(20);
    group.throughput(Throughput::Elements(cfg.forward_flops()));
    group.bench_function("winograd", |b| {
        b.iter(|| black_box(WinogradConv.forward(&cfg, black_box(&x), black_box(&w))))
    });
    group.bench_function("unrolling", |b| {
        b.iter(|| black_box(UnrollConv.forward(&cfg, black_box(&x), black_box(&w))))
    });
    group.bench_function("direct", |b| {
        b.iter(|| black_box(DirectConv.forward(&cfg, black_box(&x), black_box(&w))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_forward_strategies,
    bench_fft_flat_in_kernel,
    bench_backward_passes,
    bench_winograd_vs_unrolling
);
criterion_main!(benches);
