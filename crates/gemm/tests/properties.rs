//! Property-based tests pinning the optimized GEMM to the reference.

use gcnn_gemm::blocking::BlockSizes;
use gcnn_gemm::naive::sgemm_ref;
use gcnn_gemm::sgemm::sgemm_blocked;
use gcnn_gemm::Transpose;
use gcnn_tensor::workspace;
use proptest::prelude::*;
use rayon::ThreadPoolBuilder;

/// Deterministic pseudo-random vector from a seed (keeps case sizes
/// independent of proptest's value trees).
fn lcg_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) * 4.0 - 2.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_matches_reference(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        ta in any::<bool>(),
        tb in any::<bool>(),
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
        tiny in any::<bool>(),
        seed in 0u64..10_000,
    ) {
        let (ar, ac) = if ta { (k, m) } else { (m, k) };
        let (br, bc) = if tb { (n, k) } else { (k, n) };
        let a = lcg_vec(ar * ac, seed);
        let b = lcg_vec(br * bc, seed + 1);
        let c0: Vec<f32> = (0..m * n).map(|i| (i % 11) as f32 - 5.0).collect();

        let blocks = if tiny { BlockSizes::tiny() } else { BlockSizes::default_sizes() };
        let transa = if ta { Transpose::Yes } else { Transpose::No };
        let transb = if tb { Transpose::Yes } else { Transpose::No };

        let mut c_opt = c0.clone();
        sgemm_blocked(transa, transb, m, n, k, alpha, &a, ac, &b, bc, beta, &mut c_opt, n, blocks);
        let mut c_ref = c0;
        sgemm_ref(ta, tb, m, n, k, alpha, &a, ac, &b, bc, beta, &mut c_ref, n);

        let tol = 1e-3 * (k as f32).sqrt() * alpha.abs().max(1.0);
        for (i, (x, y)) in c_opt.iter().zip(&c_ref).enumerate() {
            prop_assert!((x - y).abs() <= tol, "elem {i}: {x} vs {y}");
        }
    }

    /// GEMM is linear in alpha: gemm(2a) == 2 * gemm(a) when beta = 0.
    #[test]
    fn linear_in_alpha(m in 1usize..16, n in 1usize..16, k in 1usize..16, alpha in -2.0f32..2.0) {
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 13) % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 17) % 5) as f32 - 2.0).collect();

        let mut c1 = vec![0.0f32; m * n];
        sgemm_blocked(Transpose::No, Transpose::No, m, n, k, alpha, &a, k, &b, n, 0.0, &mut c1, n, BlockSizes::tiny());
        let mut c2 = vec![0.0f32; m * n];
        sgemm_blocked(Transpose::No, Transpose::No, m, n, k, 2.0 * alpha, &a, k, &b, n, 0.0, &mut c2, n, BlockSizes::tiny());

        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((2.0 * x - y).abs() < 1e-3 * x.abs().max(1.0));
        }
    }

    /// The 2-D-tiled driver must be oblivious to pool width: the same
    /// problem solved under pools of 1, 2, and `max` threads (and under
    /// both tiny and default block sizes) matches the reference. Tile
    /// boundaries shift with the grid decomposition, so this pins both
    /// the task-splitting arithmetic and the disjointness of the fused
    /// writeback.
    #[test]
    fn blocked_matches_reference_across_pools(
        m in 1usize..48,
        n in 1usize..48,
        k in 1usize..32,
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
        seed in 0u64..10_000,
    ) {
        let a = lcg_vec(m * k, seed);
        let b = lcg_vec(k * n, seed + 1);
        let c0: Vec<f32> = (0..m * n).map(|i| (i % 7) as f32 - 3.0).collect();

        let mut c_ref = c0.clone();
        sgemm_ref(false, false, m, n, k, alpha, &a, k, &b, n, beta, &mut c_ref, n);
        let tol = 1e-3 * (k as f32).sqrt() * alpha.abs().max(1.0);

        let max_threads = rayon::current_num_threads().max(4);
        for threads in [1, 2, max_threads] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            for blocks in [BlockSizes::tiny(), BlockSizes::default_sizes()] {
                let mut c_opt = c0.clone();
                pool.install(|| {
                    sgemm_blocked(
                        Transpose::No, Transpose::No, m, n, k,
                        alpha, &a, k, &b, n, beta, &mut c_opt, n, blocks,
                    )
                });
                for (i, (x, y)) in c_opt.iter().zip(&c_ref).enumerate() {
                    prop_assert!(
                        (x - y).abs() <= tol,
                        "threads={threads} blocks={blocks:?} elem {i}: {x} vs {y}"
                    );
                }
            }
        }
    }

    /// (A·B)ᵀ == Bᵀ·Aᵀ.
    #[test]
    fn transpose_identity(m in 1usize..12, n in 1usize..12, k in 1usize..12) {
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 31) % 9) as f32 - 4.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 23) % 11) as f32 - 5.0).collect();

        let mut ab = vec![0.0f32; m * n];
        sgemm_blocked(Transpose::No, Transpose::No, m, n, k, 1.0, &a, k, &b, n, 0.0, &mut ab, n, BlockSizes::tiny());

        // Bᵀ·Aᵀ computed with transpose flags on the stored (untransposed) buffers.
        let mut btat = vec![0.0f32; n * m];
        sgemm_blocked(Transpose::Yes, Transpose::Yes, n, m, k, 1.0, &b, n, &a, k, 0.0, &mut btat, m, BlockSizes::tiny());

        for i in 0..m {
            for j in 0..n {
                prop_assert!((ab[i * n + j] - btat[j * m + i]).abs() < 1e-3);
            }
        }
    }
}

/// The second of two identical GEMM calls must run entirely out of the
/// workspace arena: zero fresh pool allocations.
#[test]
fn repeated_sgemm_is_steady_state_allocation_free() {
    let m = 48;
    let n = 200;
    let k = 96;
    let a = lcg_vec(m * k, 3);
    let b = lcg_vec(k * n, 4);
    let mut c = vec![0.0f32; m * n];
    let blocks = BlockSizes::default_sizes();

    let run = |c: &mut [f32]| {
        sgemm_blocked(
            Transpose::No,
            Transpose::No,
            m,
            n,
            k,
            1.0,
            &a,
            k,
            &b,
            n,
            0.0,
            c,
            n,
            blocks,
        )
    };

    run(&mut c); // warm the thread-local pools
    let (_, misses) = workspace::alloc_scope(|| run(&mut c));
    assert_eq!(
        misses, 0,
        "second identical GEMM call took {misses} fresh allocations"
    );
}
