//! Debug-build precondition tests for the GEMM micro-kernel: short
//! packed strips or a wrong-sized accumulator must trip the
//! `debug_assert!` guards before the kernel touches memory. Gated on
//! `debug_assertions` because release CI compiles the asserts away.

#![cfg(debug_assertions)]

use gcnn_gemm::blocking::{MR, NR};
use gcnn_gemm::kernel::microkernel;

#[test]
#[should_panic]
fn microkernel_rejects_short_a_strip() {
    let kc = 4;
    let a = vec![0.0f32; kc * MR - 1];
    let b = vec![0.0f32; kc * NR];
    let mut acc = vec![0.0f32; MR * NR];
    microkernel(kc, 1.0, &a, &b, &mut acc);
}

#[test]
#[should_panic]
fn microkernel_rejects_short_b_strip() {
    let kc = 4;
    let a = vec![0.0f32; kc * MR];
    let b = vec![0.0f32; kc * NR - 1];
    let mut acc = vec![0.0f32; MR * NR];
    microkernel(kc, 1.0, &a, &b, &mut acc);
}

#[test]
#[should_panic]
fn microkernel_rejects_wrong_accumulator_size() {
    let kc = 4;
    let a = vec![0.0f32; kc * MR];
    let b = vec![0.0f32; kc * NR];
    let mut acc = vec![0.0f32; MR * NR - 1];
    microkernel(kc, 1.0, &a, &b, &mut acc);
}
