//! SIMD kernels vs the scalar oracle.
//!
//! The dispatched micro-kernels ([`gcnn_gemm::kernel::microkernel`], the
//! cgemm inner loop, the full blocked driver) must agree with the scalar
//! reference on randomized shapes, including remainder tiles
//! (`m_eff < MR`, `n_eff < NR`) and non-contiguous `ldc`. Tolerances are
//! stated in ulps where the comparison is elementwise: FMA contraction
//! and reassociated accumulation legally perturb the last bits, and the
//! divergence grows with the reduction depth `k` — so the budget is
//! `max(small_abs, ulps(~2k + 16))` rather than a flat epsilon.
//!
//! Both dispatch paths are exercised: these tests run the *native* table
//! (SIMD on capable hosts) against directly-invoked scalar bodies, and
//! CI re-runs the entire suite under `GCNN_FORCE_SCALAR=1`, where the
//! same assertions pin the scalar-vs-scalar identity.

use gcnn_gemm::blocking::{BlockSizes, MR, NR};
use gcnn_gemm::kernel::{microkernel, microkernel_scalar, writeback_tile};
use gcnn_gemm::naive::{cgemm_ref, sgemm_ref};
use gcnn_gemm::{cgemm, sgemm::sgemm_blocked, Transpose};
use gcnn_tensor::Complex32;
use proptest::prelude::*;

/// Distance in units-in-the-last-place between two finite f32s.
fn ulp_diff(a: f32, b: f32) -> u32 {
    if a == b {
        return 0;
    }
    // Map the sign-magnitude bit pattern onto a monotone integer line.
    fn key(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        (if bits < 0 {
            i32::MIN.wrapping_sub(bits)
        } else {
            bits
        }) as i64
    }
    (key(a) - key(b)).unsigned_abs().min(u32::MAX as u64) as u32
}

/// Elementwise closeness for reassociated/FMA'd reductions of depth `k`:
/// pass on a small absolute slack (subtractive cancellation near zero)
/// or an ulp budget that scales with the reduction depth.
fn close(a: f32, b: f32, k: usize) -> bool {
    (a - b).abs() <= 1e-5 * (k as f32).sqrt().max(1.0) || ulp_diff(a, b) <= 2 * k as u32 + 16
}

fn lcg_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
        .collect()
}

fn lcg_cvec(len: usize, seed: u64) -> Vec<Complex32> {
    let raw = lcg_vec(2 * len, seed);
    raw.chunks(2).map(|p| Complex32::new(p[0], p[1])).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The dispatched micro-kernel equals the scalar oracle on full and
    /// zero-padded strips (packing pads partial tiles with zeros, so a
    /// random prefix of zeros per group is exactly the remainder case).
    #[test]
    fn microkernel_matches_oracle(
        kc in 1usize..64,
        pad_rows in 0usize..MR,
        pad_cols in 0usize..NR,
        alpha in -2.0f32..2.0,
        seed in 0u64..1u64 << 32,
    ) {
        let mut a = lcg_vec(kc * MR, seed);
        let mut b = lcg_vec(kc * NR, seed ^ 0xdead);
        // Zero the padded tail of each group, as pack_a/pack_b would for
        // an (MR - pad_rows) × (NR - pad_cols) edge tile.
        for p in 0..kc {
            for r in MR - pad_rows..MR {
                a[p * MR + r] = 0.0;
            }
            for c in NR - pad_cols..NR {
                b[p * NR + c] = 0.0;
            }
        }
        let init = lcg_vec(MR * NR, seed ^ 0xbeef);
        let mut acc = init.clone();
        let mut oracle = init;
        microkernel(kc, alpha, &a, &b, &mut acc);
        microkernel_scalar(kc, alpha, &a, &b, &mut oracle);
        for (i, (&x, &y)) in acc.iter().zip(&oracle).enumerate() {
            prop_assert!(close(x, y, kc), "elem {i}: {x} vs {y} ({} ulp)", ulp_diff(x, y));
        }
    }

    /// `writeback_tile` with a partial tile and non-contiguous ldc only
    /// touches the `m_eff × n_eff` window and adds exactly the
    /// accumulator values.
    #[test]
    fn writeback_remainder_tiles(
        m_eff in 1usize..=MR,
        n_eff in 1usize..=NR,
        ldc_pad in 0usize..5,
        row0 in 0usize..3,
        col0 in 0usize..3,
        seed in 0u64..1u64 << 32,
    ) {
        let ldc = col0 + n_eff + ldc_pad;
        let rows = row0 + m_eff + 1;
        let acc = lcg_vec(MR * NR, seed);
        let before = lcg_vec(rows * ldc, seed ^ 0xabc);
        let mut c = before.clone();
        writeback_tile(&acc, &mut c, ldc, row0, col0, m_eff, n_eff);
        for r in 0..rows {
            for col in 0..ldc {
                let inside = (row0..row0 + m_eff).contains(&r)
                    && (col0..col0 + n_eff).contains(&col);
                let want = if inside {
                    before[r * ldc + col] + acc[(r - row0) * NR + (col - col0)]
                } else {
                    before[r * ldc + col]
                };
                prop_assert!(
                    close(c[r * ldc + col], want, 1),
                    "({r},{col}): {} vs {want}", c[r * ldc + col]
                );
            }
        }
    }

    /// Full blocked SGEMM under the native dispatch table vs the naive
    /// reference, over shapes that force remainder tiles on every edge
    /// and a non-contiguous C (`ldc > n`).
    #[test]
    fn sgemm_matches_reference(
        m in 1usize..48,
        n in 1usize..48,
        k in 1usize..48,
        ldc_pad in 0usize..4,
        alpha in -1.5f32..1.5,
        beta in -1.0f32..1.0,
        tiny in any::<bool>(),
        seed in 0u64..1u64 << 32,
    ) {
        let ldc = n + ldc_pad;
        let a = lcg_vec(m * k, seed);
        let b = lcg_vec(k * n, seed ^ 0x11);
        let c0 = lcg_vec(m * ldc, seed ^ 0x22);
        let blocks = if tiny { BlockSizes::tiny() } else { BlockSizes::default_sizes() };

        let mut c_simd = c0.clone();
        sgemm_blocked(
            Transpose::No, Transpose::No, m, n, k, alpha,
            &a, k, &b, n, beta, &mut c_simd, ldc, blocks,
        );
        let mut c_ref = c0.clone();
        sgemm_ref(false, false, m, n, k, alpha, &a, k, &b, n, beta, &mut c_ref, ldc);

        for i in 0..m {
            for j in 0..n {
                let (x, y) = (c_simd[i * ldc + j], c_ref[i * ldc + j]);
                prop_assert!(close(x, y, k), "({i},{j}): {x} vs {y} ({} ulp)", ulp_diff(x, y));
            }
            // The ldc gutter is beta-scaled by neither path.
            for j in n..ldc {
                prop_assert_eq!(c_simd[i * ldc + j], c0[i * ldc + j]);
            }
        }
    }

    /// Complex GEMM (AVX2 interleaved MAC on capable hosts) vs the naive
    /// reference, across both conjugation flags and vector-tail widths.
    #[test]
    fn cgemm_matches_reference(
        m in 1usize..12,
        n in 1usize..40,
        k in 1usize..24,
        conj_a in any::<bool>(),
        conj_b in any::<bool>(),
        seed in 0u64..1u64 << 32,
    ) {
        let a = lcg_cvec(m * k, seed);
        let b = lcg_cvec(k * n, seed ^ 0x33);
        let c0 = lcg_cvec(m * n, seed ^ 0x44);
        let alpha = Complex32::new(1.25, -0.5);
        let beta = Complex32::new(0.5, 0.25);

        let mut c_simd = c0.clone();
        cgemm(conj_a, conj_b, m, n, k, alpha, &a, k, &b, n, beta, &mut c_simd, n);

        // Reference on pre-conjugated operands (cgemm_ref has no flags).
        let ar: Vec<Complex32> = if conj_a { a.iter().map(|z| z.conj()).collect() } else { a };
        let br: Vec<Complex32> = if conj_b { b.iter().map(|z| z.conj()).collect() } else { b };
        let mut c_ref = c0;
        cgemm_ref(m, n, k, alpha, &ar, k, &br, n, beta, &mut c_ref, n);

        for (i, (x, y)) in c_simd.iter().zip(&c_ref).enumerate() {
            prop_assert!(
                close(x.re, y.re, 2 * k) && close(x.im, y.im, 2 * k),
                "elem {i}: {x} vs {y}"
            );
        }
    }
}

/// The honored override: with the table forced scalar, the dispatched
/// micro-kernel is bit-identical to the directly-called scalar body.
#[test]
fn forced_scalar_dispatch_is_bit_identical() {
    let kc = 19;
    let a = lcg_vec(kc * MR, 7);
    let b = lcg_vec(kc * NR, 8);
    // Restore the state we found (isa() is already Scalar when the env
    // forced it — or on a genuinely scalar host, where re-forcing is a
    // no-op), so a GCNN_FORCE_SCALAR=1 run stays forced afterwards.
    let was_scalar = gcnn_tensor::simd::isa() == gcnn_tensor::simd::Isa::Scalar;
    gcnn_tensor::simd::set_force_scalar(true);
    let mut acc = vec![0.5; MR * NR];
    microkernel(kc, 1.5, &a, &b, &mut acc);
    gcnn_tensor::simd::set_force_scalar(was_scalar);
    let mut oracle = vec![0.5; MR * NR];
    microkernel_scalar(kc, 1.5, &a, &b, &mut oracle);
    assert_eq!(acc, oracle);
}
