//! Batched GEMM over independent problem instances.
//!
//! The unrolling convolution does one GEMM per image of the mini-batch
//! (Caffe-style) and the FFT convolution does one complex GEMM per
//! frequency bin; both are embarrassingly parallel across instances.

use crate::sgemm::{sgemm, Transpose};
use gcnn_tensor::Complex32;
use rayon::prelude::*;

/// Geometry shared by every instance of a batched real GEMM.
#[derive(Debug, Clone, Copy)]
pub struct BatchedGemmDesc {
    /// Transpose flag for A.
    pub transa: Transpose,
    /// Transpose flag for B.
    pub transb: Transpose,
    /// Rows of `op(A)` and C.
    pub m: usize,
    /// Columns of `op(B)` and C.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Scale on the product.
    pub alpha: f32,
    /// Scale on the existing C.
    pub beta: f32,
}

/// Run `desc` over equal-size strided batches: instance `i` uses
/// `a[i·stride_a ..]`, `b[i·stride_b ..]`, `c[i·stride_c ..]`.
///
/// Instances run in parallel; C strides must be at least `m·n` so the
/// output chunks are disjoint.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn batched_sgemm(
    desc: &BatchedGemmDesc,
    batch: usize,
    a: &[f32],
    stride_a: usize,
    b: &[f32],
    stride_b: usize,
    c: &mut [f32],
    stride_c: usize,
) {
    assert!(
        stride_c >= desc.m * desc.n || batch <= 1,
        "batched_sgemm: C stride {stride_c} smaller than one output ({}x{})",
        desc.m,
        desc.n
    );
    let (ar, ac) = match desc.transa {
        Transpose::No => (desc.m, desc.k),
        Transpose::Yes => (desc.k, desc.m),
    };
    let (br, bc) = match desc.transb {
        Transpose::No => (desc.k, desc.n),
        Transpose::Yes => (desc.n, desc.k),
    };
    let _ = (ar, br);

    c.par_chunks_mut(stride_c.max(1))
        .take(batch)
        .enumerate()
        .for_each(|(i, cchunk)| {
            let abase = &a[i * stride_a..i * stride_a + ar * ac];
            let bbase = &b[i * stride_b..i * stride_b + br * bc];
            sgemm(
                desc.transa,
                desc.transb,
                desc.m,
                desc.n,
                desc.k,
                desc.alpha,
                abase,
                ac,
                bbase,
                bc,
                desc.beta,
                &mut cchunk[..desc.m * desc.n],
                desc.n,
            );
        });
}

/// Batched complex GEMM: one `m×k · k×n` product per instance, instances
/// in parallel. Used per frequency bin by the FFT convolution.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn batched_cgemm(
    conj_a: bool,
    conj_b: bool,
    m: usize,
    n: usize,
    k: usize,
    batch: usize,
    a: &[Complex32],
    stride_a: usize,
    b: &[Complex32],
    stride_b: usize,
    c: &mut [Complex32],
    stride_c: usize,
) {
    assert!(
        stride_c >= m * n || batch <= 1,
        "batched_cgemm: C stride too small"
    );
    c.par_chunks_mut(stride_c.max(1))
        .take(batch)
        .enumerate()
        .for_each(|(i, cchunk)| {
            crate::cgemm::cgemm(
                conj_a,
                conj_b,
                m,
                n,
                k,
                Complex32::ONE,
                &a[i * stride_a..i * stride_a + m * k],
                k,
                &b[i * stride_b..i * stride_b + k * n],
                n,
                Complex32::ZERO,
                &mut cchunk[..m * n],
                n,
            );
        });
}

/// Batched **split-complex** GEMM: one `m×k · k×n` product per instance
/// with every operand a pair of re/im f32 planes, instances in parallel.
/// The frequency-domain stage of the batch-major FFT convolution calls
/// this once per bin group — the split layout the lane transforms emit
/// flows straight in, never materializing interleaved `Complex32`.
/// Overwrite semantics (see [`crate::cgemm::cgemm_split`]).
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn batched_cgemm_split(
    conj_a: bool,
    conj_b: bool,
    m: usize,
    n: usize,
    k: usize,
    batch: usize,
    a_re: &[f32],
    a_im: &[f32],
    stride_a: usize,
    b_re: &[f32],
    b_im: &[f32],
    stride_b: usize,
    c_re: &mut [f32],
    c_im: &mut [f32],
    stride_c: usize,
) {
    assert!(
        stride_c >= m * n || batch <= 1,
        "batched_cgemm_split: C stride too small"
    );
    c_re.par_chunks_mut(stride_c.max(1))
        .zip(c_im.par_chunks_mut(stride_c.max(1)))
        .take(batch)
        .enumerate()
        .for_each(|(i, (cre, cim))| {
            crate::cgemm::cgemm_split(
                conj_a,
                conj_b,
                m,
                n,
                k,
                &a_re[i * stride_a..i * stride_a + m * k],
                &a_im[i * stride_a..i * stride_a + m * k],
                k,
                &b_re[i * stride_b..i * stride_b + k * n],
                &b_im[i * stride_b..i * stride_b + k * n],
                n,
                &mut cre[..m * n],
                &mut cim[..m * n],
                n,
            );
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{cgemm_ref, sgemm_ref};

    #[test]
    fn batched_matches_loop_of_references() {
        let desc = BatchedGemmDesc {
            transa: Transpose::No,
            transb: Transpose::No,
            m: 5,
            n: 4,
            k: 3,
            alpha: 1.0,
            beta: 0.0,
        };
        let batch = 6;
        let a: Vec<f32> = (0..batch * 15).map(|i| (i % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..batch * 12).map(|i| (i % 5) as f32 - 2.0).collect();
        let mut c = vec![0.0f32; batch * 20];
        batched_sgemm(&desc, batch, &a, 15, &b, 12, &mut c, 20);

        for i in 0..batch {
            let mut c_ref = vec![0.0f32; 20];
            sgemm_ref(
                false,
                false,
                5,
                4,
                3,
                1.0,
                &a[i * 15..],
                3,
                &b[i * 12..],
                4,
                0.0,
                &mut c_ref,
                4,
            );
            assert_eq!(&c[i * 20..(i + 1) * 20], &c_ref[..]);
        }
    }

    #[test]
    fn batched_cgemm_matches_reference() {
        let (m, n, k, batch) = (3, 2, 4, 5);
        let a: Vec<Complex32> = (0..batch * m * k)
            .map(|i| Complex32::new((i % 5) as f32 - 2.0, (i % 3) as f32))
            .collect();
        let b: Vec<Complex32> = (0..batch * k * n)
            .map(|i| Complex32::new((i % 4) as f32, (i % 7) as f32 - 3.0))
            .collect();
        let mut c = vec![Complex32::ZERO; batch * m * n];
        batched_cgemm(
            false,
            false,
            m,
            n,
            k,
            batch,
            &a,
            m * k,
            &b,
            k * n,
            &mut c,
            m * n,
        );

        for i in 0..batch {
            let mut c_ref = vec![Complex32::ZERO; m * n];
            cgemm_ref(
                m,
                n,
                k,
                Complex32::ONE,
                &a[i * m * k..],
                k,
                &b[i * k * n..],
                n,
                Complex32::ZERO,
                &mut c_ref,
                n,
            );
            for (x, y) in c[i * m * n..(i + 1) * m * n].iter().zip(&c_ref) {
                assert!((*x - *y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn batched_cgemm_split_matches_interleaved() {
        let (m, n, k, batch) = (3, 37, 4, 5);
        let a: Vec<Complex32> = (0..batch * m * k)
            .map(|i| Complex32::new((i % 5) as f32 - 2.0, (i % 3) as f32))
            .collect();
        let b: Vec<Complex32> = (0..batch * k * n)
            .map(|i| Complex32::new((i % 4) as f32, (i % 7) as f32 - 3.0))
            .collect();
        let (a_re, a_im): (Vec<f32>, Vec<f32>) = a.iter().map(|z| (z.re, z.im)).unzip();
        let (b_re, b_im): (Vec<f32>, Vec<f32>) = b.iter().map(|z| (z.re, z.im)).unzip();

        for (conj_a, conj_b) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut c = vec![Complex32::ZERO; batch * m * n];
            batched_cgemm(
                conj_a,
                conj_b,
                m,
                n,
                k,
                batch,
                &a,
                m * k,
                &b,
                k * n,
                &mut c,
                m * n,
            );
            let mut c_re = vec![f32::NAN; batch * m * n];
            let mut c_im = vec![f32::NAN; batch * m * n];
            batched_cgemm_split(
                conj_a,
                conj_b,
                m,
                n,
                k,
                batch,
                &a_re,
                &a_im,
                m * k,
                &b_re,
                &b_im,
                k * n,
                &mut c_re,
                &mut c_im,
                m * n,
            );
            for (i, z) in c.iter().enumerate() {
                assert!(
                    (c_re[i] - z.re).abs() < 1e-4 && (c_im[i] - z.im).abs() < 1e-4,
                    "conj ({conj_a},{conj_b}) elem {i}: ({},{}) vs {z:?}",
                    c_re[i],
                    c_im[i]
                );
            }
        }
    }

    #[test]
    fn single_instance_allows_tight_stride() {
        let desc = BatchedGemmDesc {
            transa: Transpose::No,
            transb: Transpose::No,
            m: 2,
            n: 2,
            k: 2,
            alpha: 1.0,
            beta: 0.0,
        };
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0f32; 4];
        batched_sgemm(&desc, 1, &a, 0, &b, 0, &mut c, 4);
        assert_eq!(c, b);
    }
}
