//! Operand packing for the blocked GEMM.
//!
//! Packing copies a block of A (resp. a panel of B) into a contiguous
//! buffer laid out exactly in the order the micro-kernel consumes it,
//! zero-padding partial tiles so the micro-kernel never branches on
//! edges. This mirrors what cuBLAS/cuDNN do in shared memory on the GPU
//! (paper §V-A: cuDNN's unrolling and GEMM are "optimized by using shared
//! memory and tiled matrix multiplication").

use crate::blocking::{MR, NR};

/// A read-only view of a (possibly transposed) row-major operand.
///
/// `at(i, j)` yields element `(i, j)` of the *logical* matrix, i.e. after
/// the transpose flag has been applied.
#[derive(Clone, Copy)]
pub struct OperandView<'a> {
    data: &'a [f32],
    /// Leading dimension (row stride) of the *stored* matrix.
    ld: usize,
    transposed: bool,
}

impl<'a> OperandView<'a> {
    /// Wrap a row-major buffer with leading dimension `ld`; when
    /// `transposed`, logical `(i, j)` reads stored `(j, i)`.
    pub fn new(data: &'a [f32], ld: usize, transposed: bool) -> Self {
        OperandView {
            data,
            ld,
            transposed,
        }
    }

    /// Element of the logical matrix.
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> f32 {
        if self.transposed {
            self.data[j * self.ld + i]
        } else {
            self.data[i * self.ld + j]
        }
    }
}

/// Pack an `mc_eff × kc_eff` block of A (starting at logical row `i0`,
/// column `p0`) into strips of [`MR`] rows: the buffer holds, for each
/// strip, `kc_eff` groups of `MR` consecutive values (one per row),
/// zero-padded when the strip exceeds the matrix edge.
///
/// Buffer length must be `ceil(mc_eff / MR) * MR * kc_eff`.
pub fn pack_a(
    a: &OperandView<'_>,
    i0: usize,
    p0: usize,
    mc_eff: usize,
    kc_eff: usize,
    buf: &mut [f32],
) {
    let strips = mc_eff.div_ceil(MR);
    debug_assert_eq!(buf.len(), strips * MR * kc_eff, "pack_a: buffer size");
    let mut out = 0;
    for s in 0..strips {
        let row_base = s * MR;
        for p in 0..kc_eff {
            for r in 0..MR {
                let i = row_base + r;
                buf[out] = if i < mc_eff {
                    a.at(i0 + i, p0 + p)
                } else {
                    0.0
                };
                out += 1;
            }
        }
    }
}

/// Pack a `kc_eff × nc_eff` panel of B (starting at logical row `p0`,
/// column `j0`) into strips of [`NR`] columns: for each strip, `kc_eff`
/// groups of `NR` consecutive values (one per column), zero-padded on the
/// right edge.
///
/// Buffer length must be `ceil(nc_eff / NR) * NR * kc_eff`.
pub fn pack_b(
    b: &OperandView<'_>,
    p0: usize,
    j0: usize,
    kc_eff: usize,
    nc_eff: usize,
    buf: &mut [f32],
) {
    let strips = nc_eff.div_ceil(NR);
    debug_assert_eq!(buf.len(), strips * NR * kc_eff, "pack_b: buffer size");
    let mut out = 0;
    for s in 0..strips {
        let col_base = s * NR;
        for p in 0..kc_eff {
            for c in 0..NR {
                let j = col_base + c;
                buf[out] = if j < nc_eff {
                    b.at(p0 + p, j0 + j)
                } else {
                    0.0
                };
                out += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_view_transpose() {
        // Stored 2x3 row-major: [1 2 3; 4 5 6].
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let v = OperandView::new(&data, 3, false);
        assert_eq!(v.at(1, 2), 6.0);
        let vt = OperandView::new(&data, 3, true); // logical 3x2
        assert_eq!(vt.at(2, 1), 6.0);
        assert_eq!(vt.at(0, 1), 4.0);
    }

    /// An `MR`- (or `NR`-) length group whose first entries are `head`
    /// and the rest zero padding.
    fn padded(head: &[f32], group: usize) -> Vec<f32> {
        let mut v = head.to_vec();
        v.resize(group, 0.0);
        v
    }

    #[test]
    fn pack_a_layout_and_padding() {
        // 3x2 logical block: one strip, rows 3..MR padded.
        let data: Vec<f32> = (1..=6).map(|x| x as f32).collect(); // 3x2
        let a = OperandView::new(&data, 2, false);
        let mut buf = vec![-1.0; MR * 2];
        pack_a(&a, 0, 0, 3, 2, &mut buf);
        // k=0 group: column 0 of the block = [1, 3, 5, 0, …]
        assert_eq!(buf[..MR], padded(&[1.0, 3.0, 5.0], MR));
        // k=1 group: column 1 of the block = [2, 4, 6, 0, …]
        assert_eq!(buf[MR..2 * MR], padded(&[2.0, 4.0, 6.0], MR));
    }

    #[test]
    fn pack_b_layout_and_padding() {
        // 2x3 logical panel: one strip, cols 3..NR padded.
        let data: Vec<f32> = (1..=6).map(|x| x as f32).collect(); // 2x3
        let b = OperandView::new(&data, 3, false);
        let mut buf = vec![-1.0; NR * 2];
        pack_b(&b, 0, 0, 2, 3, &mut buf);
        // p=0 group: row 0 = [1, 2, 3, 0, …]
        assert_eq!(buf[..NR], padded(&[1.0, 2.0, 3.0], NR));
        assert_eq!(buf[NR..2 * NR], padded(&[4.0, 5.0, 6.0], NR));
    }

    #[test]
    fn pack_a_subblock_offsets() {
        // A 4x4 matrix, pack the 2x2 block at (2, 1).
        let data: Vec<f32> = (0..16).map(|x| x as f32).collect();
        let a = OperandView::new(&data, 4, false);
        let mut buf = vec![0.0; MR * 2];
        pack_a(&a, 2, 1, 2, 2, &mut buf);
        assert_eq!(buf[0], 9.0); // (2,1)
        assert_eq!(buf[1], 13.0); // (3,1)
        assert_eq!(buf[MR], 10.0); // (2,2)
    }
}
