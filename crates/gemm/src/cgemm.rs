//! Complex GEMM — the Fourier-domain product of the FFT convolution
//! strategy.
//!
//! fbfft's hotspot profile (paper Fig. 4f) shows its runtime split
//! between FFT transforms, layout transposes and "Cgemm" — a batched
//! complex matrix product, one `[f×c]·[c×b]` GEMM per frequency bin.
//! This module provides that product on the CPU, blocked over k and
//! parallelized by the caller over bins.

use gcnn_tensor::Complex32;

/// `C ← alpha·opa(A)·opb(B) + beta·C` for complex row-major matrices.
///
/// `conj_a`/`conj_b` conjugate the operand elementwise (no transpose) —
/// exactly the variant the backward FFT-convolution passes need, where
/// correlation in the spatial domain is conjugation in the Fourier
/// domain.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn cgemm(
    conj_a: bool,
    conj_b: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: Complex32,
    a: &[Complex32],
    lda: usize,
    b: &[Complex32],
    ldb: usize,
    beta: Complex32,
    c: &mut [Complex32],
    ldc: usize,
) {
    // Scale C by beta first, then accumulate the product.
    if beta != Complex32::ONE {
        for i in 0..m {
            for v in &mut c[i * ldc..i * ldc + n] {
                *v = beta * *v;
            }
        }
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    #[cfg(target_arch = "x86_64")]
    if gcnn_tensor::simd::isa() == gcnn_tensor::simd::Isa::Avx2Fma {
        // SAFETY: reached only after runtime AVX2+FMA detection; the
        // operand-extent preconditions are debug-asserted inside.
        unsafe { cgemm_rows_avx2(conj_a, conj_b, m, n, k, alpha, a, lda, b, ldb, c, ldc) };
        return;
    }

    // Dispatch once on the conjugation flags so the kernel instantiates
    // with compile-time constants and the per-element `if`s fold away.
    match (conj_a, conj_b) {
        (false, false) => cgemm_kernel::<false, false>(m, n, k, alpha, a, lda, b, ldb, c, ldc),
        (false, true) => cgemm_kernel::<false, true>(m, n, k, alpha, a, lda, b, ldb, c, ldc),
        (true, false) => cgemm_kernel::<true, false>(m, n, k, alpha, a, lda, b, ldb, c, ldc),
        (true, true) => cgemm_kernel::<true, true>(m, n, k, alpha, a, lda, b, ldb, c, ldc),
    }
}

/// The monomorphized scalar body of [`cgemm`] (product accumulation only
/// — `beta` is already applied by the caller): `CONJ_A`/`CONJ_B` are
/// const so conjugation costs nothing on the `(false, false)` forward
/// path. Also the property-test oracle for the AVX2 path.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
fn cgemm_kernel<const CONJ_A: bool, const CONJ_B: bool>(
    m: usize,
    n: usize,
    k: usize,
    alpha: Complex32,
    a: &[Complex32],
    lda: usize,
    b: &[Complex32],
    ldb: usize,
    c: &mut [Complex32],
    ldc: usize,
) {
    // Register-tile over 4 columns at a time; complex FMA in the inner
    // loop. Operand conjugation is folded into the load.
    const JT: usize = 4;
    for i in 0..m {
        let arow = &a[i * lda..i * lda + k];
        let mut j0 = 0;
        while j0 + JT <= n {
            let mut acc = [Complex32::ZERO; JT];
            for (p, &araw) in arow.iter().enumerate() {
                let av = if CONJ_A { araw.conj() } else { araw };
                let brow = &b[p * ldb + j0..p * ldb + j0 + JT];
                for (t, acc_t) in acc.iter_mut().enumerate() {
                    let bv = if CONJ_B { brow[t].conj() } else { brow[t] };
                    *acc_t = acc_t.mul_add(av, bv);
                }
            }
            for (t, &v) in acc.iter().enumerate() {
                c[i * ldc + j0 + t] += alpha * v;
            }
            j0 += JT;
        }
        for j in j0..n {
            let mut acc = Complex32::ZERO;
            for (p, &araw) in arow.iter().enumerate() {
                let av = if CONJ_A { araw.conj() } else { araw };
                let bv = if CONJ_B {
                    b[p * ldb + j].conj()
                } else {
                    b[p * ldb + j]
                };
                acc = acc.mul_add(av, bv);
            }
            c[i * ldc + j] += alpha * acc;
        }
    }
}

/// AVX2+FMA body of [`cgemm`]: interleaved complex MAC over row tiles of
/// 16 bins (four ymm accumulators of 4 complex each). Per `p` it
/// broadcasts `a.re`/`±a.im` once and runs the classic
/// `addsub(fmadd(re, b, acc), im·swap(b))` complex-FMA pattern;
/// conjugation of B is an odd-lane sign flip folded into the load.
/// `beta` is already applied by the caller.
///
/// # Safety
/// Caller must have verified AVX2 and FMA at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)] // BLAS-style signature
unsafe fn cgemm_rows_avx2(
    conj_a: bool,
    conj_b: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: Complex32,
    a: &[Complex32],
    lda: usize,
    b: &[Complex32],
    ldb: usize,
    c: &mut [Complex32],
    ldc: usize,
) {
    use std::arch::x86_64::*;
    // 4 complex bins per 256-bit vector, 4 vectors per j-tile.
    const LANES: usize = 4;
    const JT: usize = 4 * LANES;

    debug_assert!(
        m == 0 || a.len() >= (m - 1) * lda + k,
        "cgemm_rows_avx2: A short"
    );
    debug_assert!(
        k == 0 || b.len() >= (k - 1) * ldb + n,
        "cgemm_rows_avx2: B short"
    );
    debug_assert!(
        m == 0 || c.len() >= (m - 1) * ldc + n,
        "cgemm_rows_avx2: C short"
    );
    // SAFETY: reached only after runtime AVX2+FMA detection. Viewing
    // B/C as interleaved f32 is sound because Complex32 is `#[repr(C)]
    // { re: f32, im: f32 }` with size 8 and align 4 (const-asserted
    // next to the type) — every complex index `q` maps to f32 offsets
    // `2q` and `2q + 1`. The vector loop touches complex columns
    // `[j0, j0 + JT)` of rows `p < k` (B) and `i < m` (C) only while
    // `j0 + JT <= n`, and the scalar tail writes through the same raw
    // C pointer, so no `&mut c` borrow coexists with the raw stores.
    unsafe {
        // Flips the sign of the imaginary (odd) lanes → conjugates 4
        // packed Complex32.
        let conj_mask = _mm256_setr_ps(0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0);
        let bp = b.as_ptr() as *const f32;
        let cp = c.as_mut_ptr() as *mut f32;
        let alre = _mm256_set1_ps(alpha.re);
        let alim = _mm256_set1_ps(alpha.im);

        for i in 0..m {
            let arow = &a[i * lda..i * lda + k];
            let crow = cp.add(2 * i * ldc);
            let mut j0 = 0;
            while j0 + JT <= n {
                let mut acc = [_mm256_setzero_ps(); LANES];
                for (p, &araw) in arow.iter().enumerate() {
                    let are = _mm256_set1_ps(araw.re);
                    let aim = _mm256_set1_ps(if conj_a { -araw.im } else { araw.im });
                    let brow = bp.add(2 * (p * ldb + j0));
                    for (t, acc_t) in acc.iter_mut().enumerate() {
                        let mut bv = _mm256_loadu_ps(brow.add(8 * t));
                        if conj_b {
                            bv = _mm256_xor_ps(bv, conj_mask);
                        }
                        // acc.re += ar·br − ai·bi ; acc.im += ar·bi + ai·br
                        let bswap = _mm256_permute_ps(bv, 0b1011_0001);
                        *acc_t = _mm256_addsub_ps(
                            _mm256_fmadd_ps(are, bv, *acc_t),
                            _mm256_mul_ps(aim, bswap),
                        );
                    }
                }
                // c += alpha · acc, same complex-FMA pattern with alpha.
                for (t, &v) in acc.iter().enumerate() {
                    let cptr = crow.add(2 * j0 + 8 * t);
                    let cv = _mm256_loadu_ps(cptr);
                    let vswap = _mm256_permute_ps(v, 0b1011_0001);
                    let out =
                        _mm256_addsub_ps(_mm256_fmadd_ps(alre, v, cv), _mm256_mul_ps(alim, vswap));
                    _mm256_storeu_ps(cptr, out);
                }
                j0 += JT;
            }
            // Scalar tail columns, written through the same raw pointer
            // the vector loop uses so no fresh `&mut c` borrow is
            // created.
            for j in j0..n {
                let mut acc = Complex32::ZERO;
                for (p, &araw) in arow.iter().enumerate() {
                    let av = if conj_a { araw.conj() } else { araw };
                    let bv = if conj_b {
                        b[p * ldb + j].conj()
                    } else {
                        b[p * ldb + j]
                    };
                    acc = acc.mul_add(av, bv);
                }
                let slot = crow.add(2 * j) as *mut Complex32;
                *slot += alpha * acc;
            }
        }
    }
}

/// `C ← opa(A)·opb(B)` for **split-complex** row-major matrices: every
/// operand is a pair of f32 planes (`re`, `im`) sharing one leading
/// dimension. Overwrite semantics (the batched frequency-domain product
/// always runs with `alpha = 1, beta = 0`).
///
/// This is the split-complex CGEMM row kernel of the fbfft-style
/// pipeline: per k-step the AVX2 body broadcasts `a.re`/`a.im` and runs
/// four FMAs per vector of bins — no `permute`, no `addsub`, no
/// interleaved loads. Conjugation is a sign flip folded into the
/// broadcast (`conj_a`) or a bitwise xor on the imaginary plane
/// (`conj_b`), never a shuffle.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn cgemm_split(
    conj_a: bool,
    conj_b: bool,
    m: usize,
    n: usize,
    k: usize,
    a_re: &[f32],
    a_im: &[f32],
    lda: usize,
    b_re: &[f32],
    b_im: &[f32],
    ldb: usize,
    c_re: &mut [f32],
    c_im: &mut [f32],
    ldc: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // Empty sum: the product is zero.
        for i in 0..m {
            c_re[i * ldc..i * ldc + n].fill(0.0);
            c_im[i * ldc..i * ldc + n].fill(0.0);
        }
        return;
    }

    #[cfg(target_arch = "x86_64")]
    if gcnn_tensor::simd::isa() == gcnn_tensor::simd::Isa::Avx2Fma {
        // SAFETY: reached only after runtime AVX2+FMA detection; the
        // operand-extent preconditions are debug-asserted inside.
        unsafe {
            cgemm_split_rows_avx2(
                conj_a, conj_b, m, n, k, a_re, a_im, lda, b_re, b_im, ldb, c_re, c_im, ldc,
            )
        };
        return;
    }

    match (conj_a, conj_b) {
        (false, false) => cgemm_split_kernel::<false, false>(
            m, n, k, a_re, a_im, lda, b_re, b_im, ldb, c_re, c_im, ldc,
        ),
        (false, true) => cgemm_split_kernel::<false, true>(
            m, n, k, a_re, a_im, lda, b_re, b_im, ldb, c_re, c_im, ldc,
        ),
        (true, false) => cgemm_split_kernel::<true, false>(
            m, n, k, a_re, a_im, lda, b_re, b_im, ldb, c_re, c_im, ldc,
        ),
        (true, true) => cgemm_split_kernel::<true, true>(
            m, n, k, a_re, a_im, lda, b_re, b_im, ldb, c_re, c_im, ldc,
        ),
    }
}

/// Monomorphized scalar body of [`cgemm_split`] — the fallback and the
/// property-test oracle, doing the same per-element [`Complex32`]
/// arithmetic as the interleaved scalar kernel.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
fn cgemm_split_kernel<const CONJ_A: bool, const CONJ_B: bool>(
    m: usize,
    n: usize,
    k: usize,
    a_re: &[f32],
    a_im: &[f32],
    lda: usize,
    b_re: &[f32],
    b_im: &[f32],
    ldb: usize,
    c_re: &mut [f32],
    c_im: &mut [f32],
    ldc: usize,
) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = Complex32::ZERO;
            for p in 0..k {
                let ai = a_im[i * lda + p];
                let av = Complex32::new(a_re[i * lda + p], if CONJ_A { -ai } else { ai });
                let bi = b_im[p * ldb + j];
                let bv = Complex32::new(b_re[p * ldb + j], if CONJ_B { -bi } else { bi });
                acc = acc.mul_add(av, bv);
            }
            c_re[i * ldc + j] = acc.re;
            c_im[i * ldc + j] = acc.im;
        }
    }
}

/// AVX2+FMA body of [`cgemm_split`]: row tiles of 32 bins (four ymm per
/// plane, eight independent FMA chains). Per k-step it broadcasts
/// `a.re`/`±a.im` and issues `c_re += ar·br − ai·bi`,
/// `c_im += ar·bi + ai·br` — four FMAs per eight complex bins and zero
/// shuffles.
///
/// # Safety
/// Caller must have verified AVX2 and FMA at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)] // BLAS-style signature
unsafe fn cgemm_split_rows_avx2(
    conj_a: bool,
    conj_b: bool,
    m: usize,
    n: usize,
    k: usize,
    a_re: &[f32],
    a_im: &[f32],
    lda: usize,
    b_re: &[f32],
    b_im: &[f32],
    ldb: usize,
    c_re: &mut [f32],
    c_im: &mut [f32],
    ldc: usize,
) {
    use std::arch::x86_64::*;
    const LANES: usize = 8;
    const VECS: usize = 4;
    const JT: usize = VECS * LANES;

    debug_assert!(
        a_re.len() >= (m - 1) * lda + k && a_im.len() >= (m - 1) * lda + k,
        "cgemm_split_rows_avx2: A short"
    );
    debug_assert!(
        b_re.len() >= (k - 1) * ldb + n && b_im.len() >= (k - 1) * ldb + n,
        "cgemm_split_rows_avx2: B short"
    );
    debug_assert!(
        c_re.len() >= (m - 1) * ldc + n && c_im.len() >= (m - 1) * ldc + n,
        "cgemm_split_rows_avx2: C short"
    );
    // SAFETY: reached only after runtime AVX2+FMA detection. All loads
    // and stores go through raw pointers derived from the plane slices:
    // the vector loop touches columns `[j0, j0 + JT)` of B rows `p < k`
    // and C row `i < m` only while `j0 + JT <= n`, covered by the
    // extent debug-asserts above; the scalar tail uses safe indexing on
    // the same formulas after the final raw-pointer store of the tile.
    unsafe {
        let neg0 = _mm256_set1_ps(-0.0);
        let brp = b_re.as_ptr();
        let bip = b_im.as_ptr();
        let crp = c_re.as_mut_ptr();
        let cip = c_im.as_mut_ptr();

        for i in 0..m {
            let mut j0 = 0;
            while j0 + JT <= n {
                let mut acc_re = [_mm256_setzero_ps(); VECS];
                let mut acc_im = [_mm256_setzero_ps(); VECS];
                for p in 0..k {
                    let ar = _mm256_set1_ps(a_re[i * lda + p]);
                    let aim_s = a_im[i * lda + p];
                    let ai = _mm256_set1_ps(if conj_a { -aim_s } else { aim_s });
                    let brow = brp.add(p * ldb + j0);
                    let birow = bip.add(p * ldb + j0);
                    for t in 0..VECS {
                        let br = _mm256_loadu_ps(brow.add(LANES * t));
                        let mut bi = _mm256_loadu_ps(birow.add(LANES * t));
                        if conj_b {
                            bi = _mm256_xor_ps(bi, neg0);
                        }
                        acc_re[t] = _mm256_fmadd_ps(ar, br, acc_re[t]);
                        acc_re[t] = _mm256_fnmadd_ps(ai, bi, acc_re[t]);
                        acc_im[t] = _mm256_fmadd_ps(ar, bi, acc_im[t]);
                        acc_im[t] = _mm256_fmadd_ps(ai, br, acc_im[t]);
                    }
                }
                for t in 0..VECS {
                    _mm256_storeu_ps(crp.add(i * ldc + j0 + LANES * t), acc_re[t]);
                    _mm256_storeu_ps(cip.add(i * ldc + j0 + LANES * t), acc_im[t]);
                }
                j0 += JT;
            }
            for j in j0..n {
                let mut acc = Complex32::ZERO;
                for p in 0..k {
                    let aim_s = a_im[i * lda + p];
                    let av = Complex32::new(a_re[i * lda + p], if conj_a { -aim_s } else { aim_s });
                    let bim_s = b_im[p * ldb + j];
                    let bv = Complex32::new(b_re[p * ldb + j], if conj_b { -bim_s } else { bim_s });
                    acc = acc.mul_add(av, bv);
                }
                c_re[i * ldc + j] = acc.re;
                c_im[i * ldc + j] = acc.im;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::cgemm_ref;

    fn rand_cvec(len: usize, seed: u64) -> Vec<Complex32> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..len)
            .map(|_| {
                let mut next = || {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
                };
                Complex32::new(next(), next())
            })
            .collect()
    }

    #[test]
    fn matches_reference() {
        for (m, n, k) in [(1, 1, 1), (3, 5, 7), (8, 8, 8), (13, 6, 9), (4, 17, 2)] {
            let a = rand_cvec(m * k, 1);
            let b = rand_cvec(k * n, 2);
            let c0 = rand_cvec(m * n, 3);
            let alpha = Complex32::new(1.5, -0.5);
            let beta = Complex32::new(0.25, 0.75);

            let mut c_opt = c0.clone();
            cgemm(
                false, false, m, n, k, alpha, &a, k, &b, n, beta, &mut c_opt, n,
            );
            let mut c_ref = c0;
            cgemm_ref(m, n, k, alpha, &a, k, &b, n, beta, &mut c_ref, n);

            for (x, y) in c_opt.iter().zip(&c_ref) {
                assert!((*x - *y).abs() < 1e-4, "({m},{n},{k}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn conjugation_flags() {
        let a = rand_cvec(6, 4);
        let b = rand_cvec(6, 5);
        let (m, n, k) = (2, 2, 3);

        // conj via flag == conj applied manually then plain cgemm.
        let mut c_flag = vec![Complex32::ZERO; 4];
        cgemm(
            true,
            true,
            m,
            n,
            k,
            Complex32::ONE,
            &a,
            k,
            &b,
            n,
            Complex32::ZERO,
            &mut c_flag,
            n,
        );

        let ac: Vec<_> = a.iter().map(|z| z.conj()).collect();
        let bc: Vec<_> = b.iter().map(|z| z.conj()).collect();
        let mut c_manual = vec![Complex32::ZERO; 4];
        cgemm_ref(
            m,
            n,
            k,
            Complex32::ONE,
            &ac,
            k,
            &bc,
            n,
            Complex32::ZERO,
            &mut c_manual,
            n,
        );

        for (x, y) in c_flag.iter().zip(&c_manual) {
            assert!((*x - *y).abs() < 1e-5);
        }
    }

    #[test]
    fn split_matches_reference_all_conj() {
        // Sizes straddle the 32-bin AVX2 j-tile to exercise the scalar
        // tail (n = 1, 31, 33, 40) and the full-tile path (n = 64).
        for (m, n, k) in [(1, 1, 1), (3, 31, 7), (2, 33, 4), (5, 40, 3), (4, 64, 6)] {
            let a = rand_cvec(m * k, 11);
            let b = rand_cvec(k * n, 12);
            let (a_re, a_im): (Vec<f32>, Vec<f32>) = a.iter().map(|z| (z.re, z.im)).unzip();
            let (b_re, b_im): (Vec<f32>, Vec<f32>) = b.iter().map(|z| (z.re, z.im)).unzip();

            for (conj_a, conj_b) in [(false, false), (false, true), (true, false), (true, true)] {
                let aj: Vec<_> = a
                    .iter()
                    .map(|z| if conj_a { z.conj() } else { *z })
                    .collect();
                let bj: Vec<_> = b
                    .iter()
                    .map(|z| if conj_b { z.conj() } else { *z })
                    .collect();
                let mut c_ref = vec![Complex32::ZERO; m * n];
                cgemm_ref(
                    m,
                    n,
                    k,
                    Complex32::ONE,
                    &aj,
                    k,
                    &bj,
                    n,
                    Complex32::ZERO,
                    &mut c_ref,
                    n,
                );

                // NaN prefill proves overwrite semantics.
                let mut c_re = vec![f32::NAN; m * n];
                let mut c_im = vec![f32::NAN; m * n];
                cgemm_split(
                    conj_a, conj_b, m, n, k, &a_re, &a_im, k, &b_re, &b_im, n, &mut c_re,
                    &mut c_im, n,
                );
                for (i, z) in c_ref.iter().enumerate() {
                    assert!(
                        (c_re[i] - z.re).abs() < 1e-4 && (c_im[i] - z.im).abs() < 1e-4,
                        "({m},{n},{k}) conj ({conj_a},{conj_b}) elem {i}: \
                         ({},{}) vs {z:?}",
                        c_re[i],
                        c_im[i]
                    );
                }
            }
        }
    }

    #[test]
    fn split_k_zero_zeroes_output() {
        let mut c_re = vec![f32::NAN; 6];
        let mut c_im = vec![f32::NAN; 6];
        cgemm_split(
            false,
            false,
            2,
            3,
            0,
            &[],
            &[],
            1,
            &[],
            &[],
            3,
            &mut c_re,
            &mut c_im,
            3,
        );
        assert!(c_re.iter().chain(c_im.iter()).all(|&x| x == 0.0));
    }

    #[test]
    fn split_respects_leading_dimensions() {
        // ldc > n: the gap columns must stay untouched.
        let (m, n, k, ldc) = (2usize, 3usize, 2usize, 5usize);
        let a = rand_cvec(m * k, 21);
        let b = rand_cvec(k * n, 22);
        let (a_re, a_im): (Vec<f32>, Vec<f32>) = a.iter().map(|z| (z.re, z.im)).unzip();
        let (b_re, b_im): (Vec<f32>, Vec<f32>) = b.iter().map(|z| (z.re, z.im)).unzip();
        let mut c_re = vec![7.0f32; m * ldc];
        let mut c_im = vec![7.0f32; m * ldc];
        cgemm_split(
            false, false, m, n, k, &a_re, &a_im, k, &b_re, &b_im, n, &mut c_re, &mut c_im, ldc,
        );
        let mut c_ref = vec![Complex32::ZERO; m * n];
        cgemm_ref(
            m,
            n,
            k,
            Complex32::ONE,
            &a,
            k,
            &b,
            n,
            Complex32::ZERO,
            &mut c_ref,
            n,
        );
        for i in 0..m {
            for j in 0..n {
                let z = c_ref[i * n + j];
                assert!((c_re[i * ldc + j] - z.re).abs() < 1e-4);
                assert!((c_im[i * ldc + j] - z.im).abs() < 1e-4);
            }
            for j in n..ldc {
                assert_eq!(c_re[i * ldc + j], 7.0, "gap column clobbered");
                assert_eq!(c_im[i * ldc + j], 7.0, "gap column clobbered");
            }
        }
    }

    #[test]
    fn beta_only_when_k_zero() {
        let mut c = vec![Complex32::new(2.0, 2.0); 4];
        cgemm(
            false,
            false,
            2,
            2,
            0,
            Complex32::ONE,
            &[],
            1,
            &[],
            1,
            Complex32::new(0.5, 0.0),
            &mut c,
            2,
        );
        assert!(c
            .iter()
            .all(|z| (*z - Complex32::new(1.0, 1.0)).abs() < 1e-6));
    }
}
