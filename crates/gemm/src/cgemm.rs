//! Complex GEMM — the Fourier-domain product of the FFT convolution
//! strategy.
//!
//! fbfft's hotspot profile (paper Fig. 4f) shows its runtime split
//! between FFT transforms, layout transposes and "Cgemm" — a batched
//! complex matrix product, one `[f×c]·[c×b]` GEMM per frequency bin.
//! This module provides that product on the CPU, blocked over k and
//! parallelized by the caller over bins.

use gcnn_tensor::Complex32;

/// `C ← alpha·opa(A)·opb(B) + beta·C` for complex row-major matrices.
///
/// `conj_a`/`conj_b` conjugate the operand elementwise (no transpose) —
/// exactly the variant the backward FFT-convolution passes need, where
/// correlation in the spatial domain is conjugation in the Fourier
/// domain.
#[allow(clippy::too_many_arguments)]
pub fn cgemm(
    conj_a: bool,
    conj_b: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: Complex32,
    a: &[Complex32],
    lda: usize,
    b: &[Complex32],
    ldb: usize,
    beta: Complex32,
    c: &mut [Complex32],
    ldc: usize,
) {
    // Dispatch once on the conjugation flags so the kernel instantiates
    // with compile-time constants and the per-element `if`s fold away.
    match (conj_a, conj_b) {
        (false, false) => {
            cgemm_kernel::<false, false>(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
        }
        (false, true) => cgemm_kernel::<false, true>(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc),
        (true, false) => cgemm_kernel::<true, false>(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc),
        (true, true) => cgemm_kernel::<true, true>(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc),
    }
}

/// The monomorphized body of [`cgemm`]: `CONJ_A`/`CONJ_B` are const so
/// conjugation costs nothing on the `(false, false)` forward path.
#[allow(clippy::too_many_arguments)]
fn cgemm_kernel<const CONJ_A: bool, const CONJ_B: bool>(
    m: usize,
    n: usize,
    k: usize,
    alpha: Complex32,
    a: &[Complex32],
    lda: usize,
    b: &[Complex32],
    ldb: usize,
    beta: Complex32,
    c: &mut [Complex32],
    ldc: usize,
) {
    // Scale C by beta first, then accumulate the product.
    if beta != Complex32::ONE {
        for i in 0..m {
            for v in &mut c[i * ldc..i * ldc + n] {
                *v = beta * *v;
            }
        }
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    // Register-tile over 4 columns at a time; complex FMA in the inner
    // loop. Operand conjugation is folded into the load.
    const JT: usize = 4;
    for i in 0..m {
        let arow = &a[i * lda..i * lda + k];
        let mut j0 = 0;
        while j0 + JT <= n {
            let mut acc = [Complex32::ZERO; JT];
            for (p, &araw) in arow.iter().enumerate() {
                let av = if CONJ_A { araw.conj() } else { araw };
                let brow = &b[p * ldb + j0..p * ldb + j0 + JT];
                for (t, acc_t) in acc.iter_mut().enumerate() {
                    let bv = if CONJ_B { brow[t].conj() } else { brow[t] };
                    *acc_t = acc_t.mul_add(av, bv);
                }
            }
            for (t, &v) in acc.iter().enumerate() {
                c[i * ldc + j0 + t] += alpha * v;
            }
            j0 += JT;
        }
        for j in j0..n {
            let mut acc = Complex32::ZERO;
            for (p, &araw) in arow.iter().enumerate() {
                let av = if CONJ_A { araw.conj() } else { araw };
                let bv = if CONJ_B {
                    b[p * ldb + j].conj()
                } else {
                    b[p * ldb + j]
                };
                acc = acc.mul_add(av, bv);
            }
            c[i * ldc + j] += alpha * acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::cgemm_ref;

    fn rand_cvec(len: usize, seed: u64) -> Vec<Complex32> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..len)
            .map(|_| {
                let mut next = || {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
                };
                Complex32::new(next(), next())
            })
            .collect()
    }

    #[test]
    fn matches_reference() {
        for (m, n, k) in [(1, 1, 1), (3, 5, 7), (8, 8, 8), (13, 6, 9), (4, 17, 2)] {
            let a = rand_cvec(m * k, 1);
            let b = rand_cvec(k * n, 2);
            let c0 = rand_cvec(m * n, 3);
            let alpha = Complex32::new(1.5, -0.5);
            let beta = Complex32::new(0.25, 0.75);

            let mut c_opt = c0.clone();
            cgemm(
                false, false, m, n, k, alpha, &a, k, &b, n, beta, &mut c_opt, n,
            );
            let mut c_ref = c0;
            cgemm_ref(m, n, k, alpha, &a, k, &b, n, beta, &mut c_ref, n);

            for (x, y) in c_opt.iter().zip(&c_ref) {
                assert!((*x - *y).abs() < 1e-4, "({m},{n},{k}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn conjugation_flags() {
        let a = rand_cvec(6, 4);
        let b = rand_cvec(6, 5);
        let (m, n, k) = (2, 2, 3);

        // conj via flag == conj applied manually then plain cgemm.
        let mut c_flag = vec![Complex32::ZERO; 4];
        cgemm(
            true,
            true,
            m,
            n,
            k,
            Complex32::ONE,
            &a,
            k,
            &b,
            n,
            Complex32::ZERO,
            &mut c_flag,
            n,
        );

        let ac: Vec<_> = a.iter().map(|z| z.conj()).collect();
        let bc: Vec<_> = b.iter().map(|z| z.conj()).collect();
        let mut c_manual = vec![Complex32::ZERO; 4];
        cgemm_ref(
            m,
            n,
            k,
            Complex32::ONE,
            &ac,
            k,
            &bc,
            n,
            Complex32::ZERO,
            &mut c_manual,
            n,
        );

        for (x, y) in c_flag.iter().zip(&c_manual) {
            assert!((*x - *y).abs() < 1e-5);
        }
    }

    #[test]
    fn beta_only_when_k_zero() {
        let mut c = vec![Complex32::new(2.0, 2.0); 4];
        cgemm(
            false,
            false,
            2,
            2,
            0,
            Complex32::ONE,
            &[],
            1,
            &[],
            1,
            Complex32::new(0.5, 0.0),
            &mut c,
            2,
        );
        assert!(c
            .iter()
            .all(|z| (*z - Complex32::new(1.0, 1.0)).abs() < 1e-6));
    }
}
