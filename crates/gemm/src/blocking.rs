//! Cache-blocking parameters for the BLIS-style GEMM.
//!
//! The register micro-tile is sized per ISA: the AVX2+FMA kernel holds a
//! 6×16 tile in twelve 256-bit accumulators (plus two B loads and one A
//! broadcast — 15 of 16 ymm registers), while NEON and the scalar
//! fallback use the original 8×8 tile (sixteen 128-bit accumulators on
//! AArch64). The constants are resolved at compile time from the target
//! architecture; runtime dispatch then only chooses *which kernel body*
//! fills that fixed tile shape, so the packing layout stays ISA-agnostic.

/// Register micro-tile height (rows of C computed per micro-kernel call).
pub const MR: usize = if cfg!(target_arch = "x86_64") { 6 } else { 8 };
/// Register micro-tile width (columns of C computed per micro-kernel
/// call).
pub const NR: usize = if cfg!(target_arch = "x86_64") { 16 } else { 8 };

/// Cache-level blocking sizes.
///
/// The three loops of a blocked GEMM walk `N` in `nc` strips (panel of B
/// kept streaming), `K` in `kc` slabs (packed B panel sized for L3/L2)
/// and `M` in `mc` blocks (packed A block sized for L2/L1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSizes {
    /// `M`-dimension block (rows of A packed at once). Multiple of [`MR`].
    pub mc: usize,
    /// `K`-dimension block (shared inner dimension per packing pass).
    pub kc: usize,
    /// `N`-dimension block (columns of B packed at once). Multiple of
    /// [`NR`].
    pub nc: usize,
}

impl BlockSizes {
    /// Sizes tuned for typical x86 cache hierarchies; good defaults for
    /// every matrix in this workspace. `mc`/`nc` round the nominal
    /// 128/1024 targets down to the nearest [`MR`]/[`NR`] multiple so the
    /// packing invariants hold for every ISA's tile shape.
    pub const fn default_sizes() -> Self {
        BlockSizes {
            mc: (128 / MR) * MR,
            kc: 256,
            nc: (1024 / NR) * NR,
        }
    }

    /// Small blocks used by tests to force many partial tiles.
    pub const fn tiny() -> Self {
        BlockSizes {
            mc: MR * 2,
            kc: 7,
            nc: NR * 2,
        }
    }

    /// Validate the invariants the packing code relies on.
    pub fn validate(&self) -> bool {
        self.mc > 0 && self.kc > 0 && self.nc > 0 && self.mc % MR == 0 && self.nc % NR == 0
    }
}

impl Default for BlockSizes {
    fn default() -> Self {
        Self::default_sizes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(BlockSizes::default_sizes().validate());
        assert!(BlockSizes::tiny().validate());
    }

    #[test]
    fn tile_matches_arch() {
        if cfg!(target_arch = "x86_64") {
            assert_eq!((MR, NR), (6, 16));
        } else {
            assert_eq!((MR, NR), (8, 8));
        }
    }

    #[test]
    fn invalid_blocks_detected() {
        assert!(!BlockSizes {
            mc: 0,
            kc: 1,
            nc: NR
        }
        .validate());
        assert!(!BlockSizes {
            mc: MR + 1,
            kc: 1,
            nc: NR
        }
        .validate());
        assert!(!BlockSizes {
            mc: MR,
            kc: 1,
            nc: NR + 1
        }
        .validate());
    }
}
