//! The blocked, packed, parallel SGEMM driver.
//!
//! The driver tiles C on a 2-D `(it, jt)` macro-tile grid of
//! `mc × nc` tiles and parallelizes over the *flat* tile index, so both
//! tall-skinny and short-wide products expose enough tasks to fill a
//! pool (the im2col product is `64 × 891136` — row-only chunking yields
//! a single task, column tiles yield hundreds). Each task checks its
//! packing buffers and a C-tile accumulator out of the thread-local
//! [`gcnn_tensor::workspace`] arena, so steady-state calls perform no
//! heap allocation, and writes C exactly once: the k-slab loop
//! accumulates into the resident tile and the final pass fuses the
//! `beta` scale with the writeback (the previous driver swept C once
//! for `beta` and then read-modified-wrote it once per k-slab).

use crate::blocking::{BlockSizes, MR, NR};
use crate::kernel::{microkernel, writeback_tile};
use crate::pack::{pack_a, pack_b, OperandView};
use gcnn_tensor::{workspace, Matrix};
use rayon::prelude::*;

/// Raw C base pointer smuggled into the parallel tile loop. Safety rests
/// on the tile grid: each `(it, jt)` task touches only rows
/// `it·mc..` × columns `jt·nc..` of C, and tiles are pairwise disjoint.
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
// SAFETY: the pointer is only ever offset into pairwise-disjoint
// `(it, jt)` C tiles (see the writeback below), so concurrent tasks
// never alias a byte of C.
unsafe impl Send for SendPtr {}
// SAFETY: same disjoint-tile argument as `Send` — shared references to
// the wrapper only hand out tile-local raw offsets.
unsafe impl Sync for SendPtr {}

/// Transpose flag for a GEMM operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the stored operand.
    Yes,
}

impl Transpose {
    fn flag(self) -> bool {
        matches!(self, Transpose::Yes)
    }
}

/// `C ← alpha·op(A)·op(B) + beta·C` with default block sizes.
///
/// All matrices are row-major; `lda`/`ldb`/`ldc` are the *stored* leading
/// dimensions. `op(A)` is logically `m×k` and `op(B)` is `k×n`.
///
/// ```
/// use gcnn_gemm::{sgemm, Transpose};
///
/// // C(2×2) = A(2×3) · B(3×2)
/// let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
/// let b = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
/// let mut c = [0.0f32; 4];
/// sgemm(Transpose::No, Transpose::No, 2, 2, 3,
///       1.0, &a, 3, &b, 2, 0.0, &mut c, 2);
/// assert_eq!(c, [4.0, 5.0, 10.0, 11.0]);
/// ```
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn sgemm(
    transa: Transpose,
    transb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    sgemm_blocked(
        transa,
        transb,
        m,
        n,
        k,
        alpha,
        a,
        lda,
        b,
        ldb,
        beta,
        c,
        ldc,
        BlockSizes::default_sizes(),
    );
}

/// [`sgemm`] with explicit block sizes (exposed so tests can force edge
/// tiles and benches can sweep blocking).
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn sgemm_blocked(
    transa: Transpose,
    transb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
    blocks: BlockSizes,
) {
    assert!(blocks.validate(), "sgemm: invalid block sizes {blocks:?}");
    assert!(ldc >= n, "sgemm: ldc {ldc} < n {n}");
    assert!(c.len() >= m.saturating_sub(1) * ldc + n || m == 0 || n == 0);

    let _span = gcnn_trace::span("gemm.sgemm");
    sgemm_calls().inc();

    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || alpha == 0.0 {
        // The product contributes nothing: C ← beta·C, parallel over rows.
        c.par_chunks_mut(ldc)
            .take(m)
            .for_each(|row| scale_row(&mut row[..n], beta));
        return;
    }

    let av = OperandView::new(a, lda, transa.flag());
    let bv = OperandView::new(b, ldb, transb.flag());

    // 2-D macro-tile grid over C, flattened so rayon sees every tile as
    // one task regardless of the matrix aspect ratio.
    let n_it = m.div_ceil(blocks.mc);
    let n_jt = n.div_ceil(blocks.nc);
    macro_tiles().add((n_it * n_jt) as u64);
    let cbase = SendPtr(c.as_mut_ptr());

    (0..n_it * n_jt).into_par_iter().for_each(|t| {
        let i0 = (t / n_jt) * blocks.mc;
        let j0 = (t % n_jt) * blocks.nc;
        let mc_eff = blocks.mc.min(m - i0);
        let nc_eff = blocks.nc.min(n - j0);
        let a_strips = mc_eff.div_ceil(MR);
        let b_strips = nc_eff.div_ceil(NR);

        // Per-thread scratch from the workspace arena: packing buffers
        // sized for the *full* kc so every k-slab reuses one checkout,
        // plus the resident C-tile accumulator. Zero heap allocation
        // once the thread's pool is warm.
        let mut abuf = workspace::take_f32(a_strips * MR * blocks.kc);
        let mut bbuf = workspace::take_f32(b_strips * NR * blocks.kc);
        let mut ctile = workspace::take_f32_zeroed(mc_eff * nc_eff);

        let mut acc = [0.0f32; MR * NR];
        for p0 in (0..k).step_by(blocks.kc) {
            let kc_eff = blocks.kc.min(k - p0);
            let apanel = &mut abuf[..a_strips * MR * kc_eff];
            pack_a(&av, i0, p0, mc_eff, kc_eff, apanel);
            let bpanel = &mut bbuf[..b_strips * NR * kc_eff];
            pack_b(&bv, p0, j0, kc_eff, nc_eff, bpanel);

            for sa in 0..a_strips {
                let arow = sa * MR;
                let m_eff = MR.min(mc_eff - arow);
                let astrip = &apanel[sa * MR * kc_eff..(sa + 1) * MR * kc_eff];
                for sb in 0..b_strips {
                    let bcol = sb * NR;
                    let n_eff = NR.min(nc_eff - bcol);
                    let bstrip = &bpanel[sb * NR * kc_eff..(sb + 1) * NR * kc_eff];
                    acc.iter_mut().for_each(|x| *x = 0.0);
                    microkernel(kc_eff, alpha, astrip, bstrip, &mut acc);
                    writeback_tile(&acc, &mut ctile, nc_eff, arow, bcol, m_eff, n_eff);
                }
            }
        }

        // Fused beta-scale + writeback: the only pass over this C tile.
        // The row base pointer is hoisted and advanced by ldc per row;
        // the row ops dispatch through the SIMD table.
        // (The previous version advanced a hoisted row pointer by `ldc`
        // after every row; past the tile's last row that lands beyond
        // one-past-the-end of C whenever `j0 > 0`, which `ptr::add` is
        // not allowed to compute. Offsetting per row from the base stays
        // in bounds for every row actually written.)
        let tile_base = i0 * ldc + j0;
        for i in 0..mc_eff {
            // SAFETY: row `i0 + i <= m − 1` and `j0 + nc_eff <= n <=
            // ldc`, so `[tile_base + i·ldc, + nc_eff)` lies inside C
            // (whose length covers `(m−1)·ldc + n`, asserted at entry).
            // Tiles partition C, so the segment is owned exclusively by
            // this tile task and no `&mut c` borrow coexists with it
            // inside the parallel loop.
            let crow =
                unsafe { std::slice::from_raw_parts_mut(cbase.0.add(tile_base + i * ldc), nc_eff) };
            let trow = &ctile[i * nc_eff..(i + 1) * nc_eff];
            if beta == 0.0 {
                crow.copy_from_slice(trow);
            } else if beta == 1.0 {
                gcnn_tensor::simd::add_assign(crow, trow);
            } else {
                gcnn_tensor::simd::scale_add(beta, crow, trow);
            }
        }
    });
}

/// Cached `gemm.sgemm_calls` counter: one tick per [`sgemm_blocked`].
fn sgemm_calls() -> &'static gcnn_trace::Counter {
    static C: std::sync::OnceLock<gcnn_trace::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| gcnn_trace::counter("gemm.sgemm_calls"))
}

/// Cached `gemm.macro_tiles` counter: macro-tile tasks scheduled on the
/// 2-D `(it, jt)` grid — the unit of GEMM parallelism, so tiles ÷ calls
/// is the mean task fan-out the pool sees.
fn macro_tiles() -> &'static gcnn_trace::Counter {
    static C: std::sync::OnceLock<gcnn_trace::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| gcnn_trace::counter("gemm.macro_tiles"))
}

/// `row ← beta·row`, honoring the BLAS convention that `beta == 0`
/// overwrites (so pre-existing NaN/Inf never propagates).
fn scale_row(row: &mut [f32], beta: f32) {
    if beta == 0.0 {
        row.fill(0.0);
    } else if beta != 1.0 {
        for v in row {
            *v *= beta;
        }
    }
}

/// Matrix-level convenience wrapper: returns `op(A)·op(B)` as a new
/// [`Matrix`].
pub fn sgemm_mat(transa: Transpose, a: &Matrix, transb: Transpose, b: &Matrix) -> Matrix {
    let (m, ka) = match transa {
        Transpose::No => (a.rows(), a.cols()),
        Transpose::Yes => (a.cols(), a.rows()),
    };
    let (kb, n) = match transb {
        Transpose::No => (b.rows(), b.cols()),
        Transpose::Yes => (b.cols(), b.rows()),
    };
    assert_eq!(ka, kb, "sgemm_mat: inner dimensions {ka} vs {kb}");
    let mut c = Matrix::zeros(m, n);
    sgemm(
        transa,
        transb,
        m,
        n,
        ka,
        1.0,
        a.as_slice(),
        a.cols(),
        b.as_slice(),
        b.cols(),
        0.0,
        c.as_mut_slice(),
        n,
    );
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::sgemm_ref;

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
            })
            .collect()
    }

    #[allow(clippy::too_many_arguments)] // BLAS-style signature
    fn check(
        transa: Transpose,
        transb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        beta: f32,
        blocks: BlockSizes,
    ) {
        let (ar, ac) = match transa {
            Transpose::No => (m, k),
            Transpose::Yes => (k, m),
        };
        let (br, bc) = match transb {
            Transpose::No => (k, n),
            Transpose::Yes => (n, k),
        };
        let a = rand_vec(ar * ac, 1);
        let b = rand_vec(br * bc, 2);
        let c0 = rand_vec(m * n, 3);

        let mut c_opt = c0.clone();
        sgemm_blocked(
            transa, transb, m, n, k, alpha, &a, ac, &b, bc, beta, &mut c_opt, n, blocks,
        );
        let mut c_ref = c0;
        sgemm_ref(
            transa.flag(),
            transb.flag(),
            m,
            n,
            k,
            alpha,
            &a,
            ac,
            &b,
            bc,
            beta,
            &mut c_ref,
            n,
        );
        let max_diff = c_opt
            .iter()
            .zip(&c_ref)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff < 1e-3 * (k as f32).sqrt(),
            "({m},{n},{k}) ta={transa:?} tb={transb:?}: diff {max_diff}"
        );
    }

    #[test]
    fn matches_reference_square() {
        check(
            Transpose::No,
            Transpose::No,
            64,
            64,
            64,
            1.0,
            0.0,
            BlockSizes::default_sizes(),
        );
    }

    #[test]
    fn matches_reference_rectangular() {
        check(
            Transpose::No,
            Transpose::No,
            37,
            53,
            29,
            1.5,
            0.5,
            BlockSizes::default_sizes(),
        );
    }

    #[test]
    fn matches_reference_tiny_blocks() {
        // Tiny blocks force every edge-tile path.
        check(
            Transpose::No,
            Transpose::No,
            33,
            19,
            23,
            -0.5,
            2.0,
            BlockSizes::tiny(),
        );
    }

    #[test]
    fn matches_reference_transposed_a() {
        check(
            Transpose::Yes,
            Transpose::No,
            40,
            24,
            56,
            1.0,
            0.0,
            BlockSizes::tiny(),
        );
    }

    #[test]
    fn matches_reference_transposed_b() {
        check(
            Transpose::No,
            Transpose::Yes,
            24,
            40,
            56,
            1.0,
            1.0,
            BlockSizes::tiny(),
        );
    }

    #[test]
    fn matches_reference_both_transposed() {
        check(
            Transpose::Yes,
            Transpose::Yes,
            31,
            17,
            13,
            2.0,
            0.0,
            BlockSizes::tiny(),
        );
    }

    #[test]
    fn dimension_one_edge_cases() {
        for (m, n, k) in [(1, 1, 1), (1, 64, 64), (64, 1, 64), (64, 64, 1)] {
            check(
                Transpose::No,
                Transpose::No,
                m,
                n,
                k,
                1.0,
                0.0,
                BlockSizes::default_sizes(),
            );
        }
    }

    #[test]
    fn zero_k_scales_by_beta_only() {
        let mut c = vec![2.0; 4];
        sgemm(
            Transpose::No,
            Transpose::No,
            2,
            2,
            0,
            1.0,
            &[],
            1,
            &[],
            1,
            0.5,
            &mut c,
            2,
        );
        assert_eq!(c, vec![1.0; 4]);
    }

    #[test]
    fn alpha_zero_skips_product() {
        let a = vec![f32::NAN; 4];
        let b = vec![f32::NAN; 4];
        let mut c = vec![3.0; 4];
        sgemm(
            Transpose::No,
            Transpose::No,
            2,
            2,
            2,
            0.0,
            &a,
            2,
            &b,
            2,
            1.0,
            &mut c,
            2,
        );
        assert_eq!(c, vec![3.0; 4]);
    }

    #[test]
    fn sgemm_mat_identity() {
        let i = Matrix::identity(5);
        let m = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32);
        let p = sgemm_mat(Transpose::No, &i, Transpose::No, &m);
        assert_eq!(p, m);
    }

    #[test]
    fn sgemm_mat_transpose_shapes() {
        let a = Matrix::from_fn(3, 5, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(3, 4, |r, c| (r * c) as f32);
        let p = sgemm_mat(Transpose::Yes, &a, Transpose::No, &b); // 5x4
        assert_eq!(p.rows(), 5);
        assert_eq!(p.cols(), 4);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn sgemm_mat_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        sgemm_mat(Transpose::No, &a, Transpose::No, &b);
    }
}
