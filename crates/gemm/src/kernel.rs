//! The register-tile micro-kernel.

use crate::blocking::{MR, NR};

/// Compute an `MR×NR` product of one packed-A strip and one packed-B
/// strip, accumulating `alpha · A·B` into the accumulator `acc`
/// (row-major `MR×NR`).
///
/// `a_strip` holds `kc` groups of `MR` values (one column of the strip
/// per group); `b_strip` holds `kc` groups of `NR` values (one row of the
/// strip per group). Both are produced zero-padded by `pack`, so the
/// kernel is branch-free.
#[inline(always)]
pub fn microkernel(kc: usize, alpha: f32, a_strip: &[f32], b_strip: &[f32], acc: &mut [f32]) {
    debug_assert!(a_strip.len() >= kc * MR);
    debug_assert!(b_strip.len() >= kc * NR);
    debug_assert_eq!(acc.len(), MR * NR);

    // Local accumulator keeps the hot values in registers; the compiler
    // vectorizes the NR-wide inner loop.
    let mut local = [[0.0f32; NR]; MR];
    for p in 0..kc {
        let av = &a_strip[p * MR..p * MR + MR];
        let bv = &b_strip[p * NR..p * NR + NR];
        for (i, &ai) in av.iter().enumerate() {
            let row = &mut local[i];
            for (j, &bj) in bv.iter().enumerate() {
                row[j] += ai * bj;
            }
        }
    }
    for i in 0..MR {
        for j in 0..NR {
            acc[i * NR + j] += alpha * local[i][j];
        }
    }
}

/// Write the valid `m_eff × n_eff` corner of a full `MR×NR` accumulator
/// tile into C at `(row0, col0)` (C row-major with leading dimension
/// `ldc`), adding to what is already there.
#[inline]
pub fn writeback_tile(
    acc: &[f32],
    c: &mut [f32],
    ldc: usize,
    row0: usize,
    col0: usize,
    m_eff: usize,
    n_eff: usize,
) {
    debug_assert_eq!(acc.len(), MR * NR);
    for i in 0..m_eff {
        let crow = &mut c[(row0 + i) * ldc + col0..(row0 + i) * ldc + col0 + n_eff];
        let arow = &acc[i * NR..i * NR + n_eff];
        for (cv, av) in crow.iter_mut().zip(arow) {
            *cv += av;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microkernel_matches_reference() {
        let kc = 5;
        let a: Vec<f32> = (0..kc * MR).map(|i| (i % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..kc * NR).map(|i| (i % 5) as f32 - 2.0).collect();
        let mut acc = vec![0.0; MR * NR];
        microkernel(kc, 2.0, &a, &b, &mut acc);

        for i in 0..MR {
            for j in 0..NR {
                let expect: f32 = (0..kc).map(|p| a[p * MR + i] * b[p * NR + j]).sum();
                assert!(
                    (acc[i * NR + j] - 2.0 * expect).abs() < 1e-5,
                    "tile ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn microkernel_accumulates() {
        let kc = 1;
        let a = vec![1.0; MR];
        let b = vec![1.0; NR];
        let mut acc = vec![10.0; MR * NR];
        microkernel(kc, 1.0, &a, &b, &mut acc);
        assert!(acc.iter().all(|&v| (v - 11.0).abs() < 1e-6));
    }

    #[test]
    fn writeback_partial_tile() {
        let acc: Vec<f32> = (0..MR * NR).map(|i| i as f32).collect();
        let mut c = vec![100.0; 4 * 10];
        writeback_tile(&acc, &mut c, 10, 1, 2, 2, 3);
        // Rows 1..3, cols 2..5 updated.
        assert_eq!(c[10 + 2], 100.0 + acc[0]);
        assert_eq!(c[2 * 10 + 4], 100.0 + acc[NR + 2]);
        // Untouched corner.
        assert_eq!(c[0], 100.0);
        assert_eq!(c[3 * 10 + 2], 100.0);
    }
}
