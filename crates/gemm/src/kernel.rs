//! The register-tile micro-kernel.
//!
//! Three bodies compute the same `MR×NR` packed-strip product:
//!
//! * [`microkernel_scalar`] — portable, autovectorized; the fallback and
//!   the oracle the SIMD paths are property-tested against
//!   (`tests/simd_vs_scalar.rs`).
//! * an AVX2+FMA body (x86-64, 6×16 tile in twelve ymm accumulators),
//! * a NEON body (AArch64, 8×8 tile in sixteen q-register accumulators).
//!
//! [`microkernel`] selects among them per call through the process-wide
//! dispatch table ([`gcnn_tensor::simd::isa`]); the SIMD bodies are
//! `#[target_feature]` functions only ever reached after the matching
//! runtime feature detection.

use crate::blocking::{MR, NR};
use gcnn_tensor::simd::{self, Isa};

/// Compute an `MR×NR` product of one packed-A strip and one packed-B
/// strip, accumulating `alpha · A·B` into the accumulator `acc`
/// (row-major `MR×NR`).
///
/// `a_strip` holds `kc` groups of `MR` values (one column of the strip
/// per group); `b_strip` holds `kc` groups of `NR` values (one row of the
/// strip per group). Both are produced zero-padded by `pack`, so the
/// kernel is branch-free.
#[inline]
pub fn microkernel(kc: usize, alpha: f32, a_strip: &[f32], b_strip: &[f32], acc: &mut [f32]) {
    debug_assert!(a_strip.len() >= kc * MR);
    debug_assert!(b_strip.len() >= kc * NR);
    debug_assert_eq!(acc.len(), MR * NR);
    match simd::isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2Fma` is only selected after runtime AVX2+FMA
        // detection; strip/acc lengths are debug-asserted above and
        // guaranteed by `pack` and the blocked driver.
        Isa::Avx2Fma => unsafe { microkernel_avx2(kc, alpha, a_strip, b_strip, acc) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: `Neon` is only selected on AArch64, where NEON is a
        // baseline feature; same length guarantees as above.
        Isa::Neon => unsafe { microkernel_neon(kc, alpha, a_strip, b_strip, acc) },
        _ => microkernel_scalar(kc, alpha, a_strip, b_strip, acc),
    }
}

/// Portable body of [`microkernel`] — the always-available fallback and
/// the property-test oracle for the SIMD paths.
#[inline(always)]
pub fn microkernel_scalar(
    kc: usize,
    alpha: f32,
    a_strip: &[f32],
    b_strip: &[f32],
    acc: &mut [f32],
) {
    debug_assert!(a_strip.len() >= kc * MR);
    debug_assert!(b_strip.len() >= kc * NR);
    debug_assert_eq!(acc.len(), MR * NR);

    // Local accumulator keeps the hot values in registers; the compiler
    // vectorizes the NR-wide inner loop.
    let mut local = [[0.0f32; NR]; MR];
    for p in 0..kc {
        let av = &a_strip[p * MR..p * MR + MR];
        let bv = &b_strip[p * NR..p * NR + NR];
        for (i, &ai) in av.iter().enumerate() {
            let row = &mut local[i];
            for (j, &bj) in bv.iter().enumerate() {
                row[j] += ai * bj;
            }
        }
    }
    for i in 0..MR {
        for j in 0..NR {
            acc[i * NR + j] += alpha * local[i][j];
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{MR, NR};
    use std::arch::x86_64::*;

    // The 6×16 register tile below is written for exactly this shape.
    const _: () = assert!(MR == 6 && NR == 16, "AVX2 microkernel expects 6x16");

    /// AVX2+FMA body: a 6×16 tile held in twelve ymm accumulators
    /// (two 8-lane halves per row), two B loads and six A broadcasts per
    /// `p` — 12 FMAs per iteration with no loop-carried memory traffic.
    ///
    /// # Safety
    /// Caller must have verified AVX2 and FMA at runtime and must pass
    /// `a_strip.len() >= kc·MR`, `b_strip.len() >= kc·NR`,
    /// `acc.len() == MR·NR` (the dispatch wrapper debug-asserts these).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn microkernel_avx2(
        kc: usize,
        alpha: f32,
        a_strip: &[f32],
        b_strip: &[f32],
        acc: &mut [f32],
    ) {
        debug_assert!(a_strip.len() >= kc * MR, "microkernel_avx2: A strip short");
        debug_assert!(b_strip.len() >= kc * NR, "microkernel_avx2: B strip short");
        debug_assert_eq!(acc.len(), MR * NR, "microkernel_avx2: acc size");
        // SAFETY: reached only after runtime AVX2+FMA detection. Loads
        // stay in bounds: per `p < kc` the B loads cover
        // `[p·NR, p·NR + 16) ⊆ [0, kc·NR)` (NR == 16) and the A reads
        // `[p·MR, p·MR + MR) ⊆ [0, kc·MR)`; the writeback touches
        // `[i·NR, i·NR + 16)` for `i < MR`, within `acc`'s MR·NR floats.
        unsafe {
            let ap = a_strip.as_ptr();
            let bp = b_strip.as_ptr();
            let mut lo = [_mm256_setzero_ps(); MR];
            let mut hi = [_mm256_setzero_ps(); MR];
            for p in 0..kc {
                let b0 = _mm256_loadu_ps(bp.add(p * NR));
                let b1 = _mm256_loadu_ps(bp.add(p * NR + 8));
                let arow = ap.add(p * MR);
                for i in 0..MR {
                    let av = _mm256_broadcast_ss(&*arow.add(i));
                    lo[i] = _mm256_fmadd_ps(av, b0, lo[i]);
                    hi[i] = _mm256_fmadd_ps(av, b1, hi[i]);
                }
            }
            // acc += alpha * local, fused per 8-lane half.
            let av = _mm256_set1_ps(alpha);
            let cp = acc.as_mut_ptr();
            for i in 0..MR {
                let c0 = cp.add(i * NR);
                let c1 = cp.add(i * NR + 8);
                _mm256_storeu_ps(c0, _mm256_fmadd_ps(av, lo[i], _mm256_loadu_ps(c0)));
                _mm256_storeu_ps(c1, _mm256_fmadd_ps(av, hi[i], _mm256_loadu_ps(c1)));
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
use x86::microkernel_avx2;

#[cfg(target_arch = "aarch64")]
mod arm {
    use super::{MR, NR};
    use std::arch::aarch64::*;

    const _: () = assert!(MR == 8 && NR == 8, "NEON microkernel expects 8x8");

    /// NEON body: an 8×8 tile held in sixteen q-register accumulators
    /// (two 4-lane halves per row); A columns are loaded as two vectors
    /// and broadcast lane-wise via `vfmaq_laneq_f32`.
    ///
    /// # Safety
    /// Caller must be on an AArch64 host and must pass
    /// `a_strip.len() >= kc·MR`, `b_strip.len() >= kc·NR`,
    /// `acc.len() == MR·NR` (the dispatch wrapper debug-asserts these).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn microkernel_neon(
        kc: usize,
        alpha: f32,
        a_strip: &[f32],
        b_strip: &[f32],
        acc: &mut [f32],
    ) {
        debug_assert!(a_strip.len() >= kc * MR, "microkernel_neon: A strip short");
        debug_assert!(b_strip.len() >= kc * NR, "microkernel_neon: B strip short");
        debug_assert_eq!(acc.len(), MR * NR, "microkernel_neon: acc size");
        // SAFETY: NEON is an AArch64 baseline feature. Per `p < kc` the
        // B loads cover `[p·NR, p·NR + 8) ⊆ [0, kc·NR)` (NR == 8) and
        // the A loads `[p·MR, p·MR + 8) ⊆ [0, kc·MR)` (MR == 8); the
        // writeback touches `[i·NR, i·NR + 8)` for `i < MR`, within
        // `acc`'s MR·NR floats.
        unsafe {
            let ap = a_strip.as_ptr();
            let bp = b_strip.as_ptr();
            let mut lo = [vdupq_n_f32(0.0); MR];
            let mut hi = [vdupq_n_f32(0.0); MR];
            for p in 0..kc {
                let b0 = vld1q_f32(bp.add(p * NR));
                let b1 = vld1q_f32(bp.add(p * NR + 4));
                let a0 = vld1q_f32(ap.add(p * MR));
                let a1 = vld1q_f32(ap.add(p * MR + 4));
                lo[0] = vfmaq_laneq_f32(lo[0], b0, a0, 0);
                hi[0] = vfmaq_laneq_f32(hi[0], b1, a0, 0);
                lo[1] = vfmaq_laneq_f32(lo[1], b0, a0, 1);
                hi[1] = vfmaq_laneq_f32(hi[1], b1, a0, 1);
                lo[2] = vfmaq_laneq_f32(lo[2], b0, a0, 2);
                hi[2] = vfmaq_laneq_f32(hi[2], b1, a0, 2);
                lo[3] = vfmaq_laneq_f32(lo[3], b0, a0, 3);
                hi[3] = vfmaq_laneq_f32(hi[3], b1, a0, 3);
                lo[4] = vfmaq_laneq_f32(lo[4], b0, a1, 0);
                hi[4] = vfmaq_laneq_f32(hi[4], b1, a1, 0);
                lo[5] = vfmaq_laneq_f32(lo[5], b0, a1, 1);
                hi[5] = vfmaq_laneq_f32(hi[5], b1, a1, 1);
                lo[6] = vfmaq_laneq_f32(lo[6], b0, a1, 2);
                hi[6] = vfmaq_laneq_f32(hi[6], b1, a1, 2);
                lo[7] = vfmaq_laneq_f32(lo[7], b0, a1, 3);
                hi[7] = vfmaq_laneq_f32(hi[7], b1, a1, 3);
            }
            let av = vdupq_n_f32(alpha);
            let cp = acc.as_mut_ptr();
            for i in 0..MR {
                let c0 = cp.add(i * NR);
                let c1 = cp.add(i * NR + 4);
                vst1q_f32(c0, vfmaq_f32(vld1q_f32(c0), av, lo[i]));
                vst1q_f32(c1, vfmaq_f32(vld1q_f32(c1), av, hi[i]));
            }
        }
    }
}

#[cfg(target_arch = "aarch64")]
use arm::microkernel_neon;

/// Write the valid `m_eff × n_eff` corner of a full `MR×NR` accumulator
/// tile into C at `(row0, col0)` (C row-major with leading dimension
/// `ldc`), adding to what is already there. The row base index is hoisted
/// and advanced by `ldc` per row; the row add dispatches through the
/// SIMD table.
#[inline]
pub fn writeback_tile(
    acc: &[f32],
    c: &mut [f32],
    ldc: usize,
    row0: usize,
    col0: usize,
    m_eff: usize,
    n_eff: usize,
) {
    debug_assert_eq!(acc.len(), MR * NR);
    let mut base = row0 * ldc + col0;
    for i in 0..m_eff {
        gcnn_tensor::simd::add_assign(&mut c[base..base + n_eff], &acc[i * NR..i * NR + n_eff]);
        base += ldc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microkernel_matches_reference() {
        let kc = 5;
        let a: Vec<f32> = (0..kc * MR).map(|i| (i % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..kc * NR).map(|i| (i % 5) as f32 - 2.0).collect();
        let mut acc = vec![0.0; MR * NR];
        microkernel(kc, 2.0, &a, &b, &mut acc);

        for i in 0..MR {
            for j in 0..NR {
                let expect: f32 = (0..kc).map(|p| a[p * MR + i] * b[p * NR + j]).sum();
                assert!(
                    (acc[i * NR + j] - 2.0 * expect).abs() < 1e-5,
                    "tile ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn microkernel_accumulates() {
        let kc = 1;
        let a = vec![1.0; MR];
        let b = vec![1.0; NR];
        let mut acc = vec![10.0; MR * NR];
        microkernel(kc, 1.0, &a, &b, &mut acc);
        assert!(acc.iter().all(|&v| (v - 11.0).abs() < 1e-6));
    }

    #[test]
    fn dispatched_kernel_matches_scalar_oracle() {
        let kc = 37;
        let a: Vec<f32> = (0..kc * MR).map(|i| ((i * 31 % 17) as f32) - 8.0).collect();
        let b: Vec<f32> = (0..kc * NR)
            .map(|i| ((i * 13 % 23) as f32) - 11.0)
            .collect();
        let mut acc = vec![1.0; MR * NR];
        let mut oracle = vec![1.0; MR * NR];
        microkernel(kc, 1.25, &a, &b, &mut acc);
        microkernel_scalar(kc, 1.25, &a, &b, &mut oracle);
        for (i, (&x, &y)) in acc.iter().zip(&oracle).enumerate() {
            // FMA vs separate rounding: allow a tiny absolute slack.
            assert!((x - y).abs() <= 1e-3, "elem {i}: {x} vs {y}");
        }
    }

    #[test]
    fn writeback_partial_tile() {
        let acc: Vec<f32> = (0..MR * NR).map(|i| i as f32).collect();
        let mut c = vec![100.0; 4 * 20];
        writeback_tile(&acc, &mut c, 20, 1, 2, 2, 3);
        // Rows 1..3, cols 2..5 updated.
        assert_eq!(c[20 + 2], 100.0 + acc[0]);
        assert_eq!(c[2 * 20 + 4], 100.0 + acc[NR + 2]);
        // Untouched corner.
        assert_eq!(c[0], 100.0);
        assert_eq!(c[3 * 20 + 2], 100.0);
    }
}
