//! Trivially-correct reference GEMMs the optimized paths are tested
//! against.

use gcnn_tensor::Complex32;

/// Reference real GEMM: `C ← alpha·op(A)·op(B) + beta·C`, all matrices
/// row-major with the given leading dimensions, `op` controlled by the
/// transpose flags.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn sgemm_ref(
    transa: bool,
    transb: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                let av = if transa {
                    a[p * lda + i]
                } else {
                    a[i * lda + p]
                };
                let bv = if transb {
                    b[j * ldb + p]
                } else {
                    b[p * ldb + j]
                };
                acc += av * bv;
            }
            c[i * ldc + j] = alpha * acc + beta * c[i * ldc + j];
        }
    }
}

/// Reference complex GEMM: `C ← alpha·A·B + beta·C` (no transpose
/// variants; the FFT path conjugates operands explicitly instead).
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn cgemm_ref(
    m: usize,
    n: usize,
    k: usize,
    alpha: Complex32,
    a: &[Complex32],
    lda: usize,
    b: &[Complex32],
    ldb: usize,
    beta: Complex32,
    c: &mut [Complex32],
    ldc: usize,
) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = Complex32::ZERO;
            for p in 0..k {
                acc = acc.mul_add(a[i * lda + p], b[p * ldb + j]);
            }
            c[i * ldc + j] = alpha * acc + beta * c[i * ldc + j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_matrix() {
        // I(2) * [[1,2],[3,4]] = same.
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let mut c = [0.0; 4];
        sgemm_ref(false, false, 2, 2, 2, 1.0, &a, 2, &b, 2, 0.0, &mut c, 2);
        assert_eq!(c, b);
    }

    #[test]
    fn transpose_flags() {
        // A = [[1,2],[3,4]] (2x2). A^T * A = [[10,14],[14,20]].
        let a = [1.0, 2.0, 3.0, 4.0];
        let mut c = [0.0; 4];
        sgemm_ref(true, false, 2, 2, 2, 1.0, &a, 2, &a, 2, 0.0, &mut c, 2);
        assert_eq!(c, [10.0, 14.0, 14.0, 20.0]);

        // A * A^T = [[5,11],[11,25]].
        let mut c = [0.0; 4];
        sgemm_ref(false, true, 2, 2, 2, 1.0, &a, 2, &a, 2, 0.0, &mut c, 2);
        assert_eq!(c, [5.0, 11.0, 11.0, 25.0]);
    }

    #[test]
    fn alpha_beta() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [1.0, 1.0, 1.0, 1.0];
        let mut c = [10.0, 10.0, 10.0, 10.0];
        sgemm_ref(false, false, 2, 2, 2, 2.0, &a, 2, &b, 2, 0.5, &mut c, 2);
        assert_eq!(c, [7.0, 7.0, 7.0, 7.0]);
    }

    #[test]
    fn cgemm_i_squared() {
        // [i] * [i] = [-1]
        let i = Complex32::I;
        let a = [i];
        let b = [i];
        let mut c = [Complex32::ZERO];
        cgemm_ref(
            1,
            1,
            1,
            Complex32::ONE,
            &a,
            1,
            &b,
            1,
            Complex32::ZERO,
            &mut c,
            1,
        );
        assert_eq!(c[0], Complex32::new(-1.0, 0.0));
    }
}
