//! # gcnn-gemm
//!
//! A from-scratch, cache-blocked, packed, multi-threaded GEMM — the
//! "cuBLAS" substrate of the gcnn workspace.
//!
//! The paper (Li et al., ICPP 2016) finds that *"GEMM operations are the
//! essence of convolutional layers"* (§V-A): the unrolling-based
//! implementations (Caffe, Torch-cunn, Theano-CorrMM, cuDNN) spend
//! 80–87 % of their convolutional-layer runtime in SGEMM kernels, and
//! fbfft's Fourier-domain product is a complex GEMM ("Cgemm"). This crate
//! provides both, implemented the way a high-performance BLAS is:
//!
//! * [`sgemm`] — single-precision real GEMM with BLIS-style `MC/KC/NC`
//!   cache blocking, `MR×NR` register micro-tiles, explicit operand
//!   packing, and rayon parallelism over row blocks.
//! * [`cgemm`] — complex GEMM over [`Complex32`], used per frequency bin
//!   by the FFT convolution strategy.
//! * [`naive`] — trivially-correct reference implementations every
//!   optimized path is tested against.
//!
//! [`Complex32`]: gcnn_tensor::Complex32

pub mod batched;
pub mod blocking;
pub mod cgemm;
pub mod kernel;
pub mod naive;
pub mod pack;
pub mod sgemm;

pub use batched::{batched_cgemm_split, batched_sgemm, BatchedGemmDesc};
pub use blocking::BlockSizes;
pub use cgemm::{cgemm, cgemm_split};
pub use sgemm::{sgemm, sgemm_mat, Transpose};

/// FLOP count of a real `m×k · k×n` GEMM (one multiply + one add per
/// inner-loop step) — the quantity GPU kernel plans report to the
/// simulator.
pub const fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * (m as u64) * (n as u64) * (k as u64)
}

/// FLOP count of a complex `m×k · k×n` GEMM: each complex multiply-add is
/// 4 real multiplies + 4 real adds.
pub const fn cgemm_flops(m: usize, n: usize, k: usize) -> u64 {
    8 * (m as u64) * (n as u64) * (k as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_counts() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
        assert_eq!(cgemm_flops(2, 3, 4), 192);
    }
}
