//! The length-prefixed binary wire protocol.
//!
//! Every frame is a little-endian `u32` payload length followed by the
//! payload. One TCP connection carries any number of frames in each
//! direction; clients may pipeline requests, and responses come back in
//! *completion* order (batches finish when they finish), so every
//! request carries a client-chosen `id` that its response echoes.
//!
//! ```text
//! request  := len:u32 | id:u64 | c:u16 | h:u16 | w:u16 | pixels:f32*(c·h·w)
//! response := len:u32 | id:u64 | status:u8 | values:f32*
//! ```
//!
//! `status` is [`Status`]: `Ok` carries the logits, `Shed` means the
//! admission controller rejected the request under overload (retry with
//! backoff), `BadRequest` means the image dimensions did not match the
//! model the server is running. Frames above [`MAX_FRAME_BYTES`] are
//! rejected without buffering, bounding what a misbehaving peer can
//! make either side allocate.

use std::fmt;
use std::io::{self, Read, Write};

/// Upper bound on one frame's payload, requests and responses alike.
/// 16 MiB fits a 2048×2048 three-channel image with header to spare.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Response verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Inference ran; the payload carries one logit vector.
    Ok,
    /// Load-shed by admission control; the payload is empty.
    Shed,
    /// Malformed or wrong-shape request; the payload is empty.
    BadRequest,
}

impl Status {
    fn to_byte(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Shed => 1,
            Status::BadRequest => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(Status::Ok),
            1 => Ok(Status::Shed),
            2 => Ok(Status::BadRequest),
            other => Err(WireError::Malformed(format!("unknown status byte {other}"))),
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Status::Ok => "ok",
            Status::Shed => "shed",
            Status::BadRequest => "bad-request",
        })
    }
}

/// One inference request: a single `c×h×w` image.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen id, echoed verbatim in the response.
    pub id: u64,
    pub c: u16,
    pub h: u16,
    pub w: u16,
    /// Row-major CHW pixels; length must be `c · h · w`.
    pub pixels: Vec<f32>,
}

/// One inference response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's id.
    pub id: u64,
    pub status: Status,
    /// Logits for `Ok`, empty otherwise.
    pub values: Vec<f32>,
}

/// Protocol failure.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket error (including mid-frame disconnect).
    Io(io::Error),
    /// Structurally invalid frame.
    Malformed(String),
    /// Declared payload length above [`MAX_FRAME_BYTES`].
    TooLarge(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
            WireError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds cap {MAX_FRAME_BYTES}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

const REQ_HEADER: usize = 8 + 2 + 2 + 2; // id + c + h + w
const RESP_HEADER: usize = 8 + 1; // id + status

/// Write one request frame.
pub fn write_request(w: &mut impl Write, req: &Request) -> Result<(), WireError> {
    let n = req.c as usize * req.h as usize * req.w as usize;
    if req.pixels.len() != n {
        return Err(WireError::Malformed(format!(
            "request {}: {}x{}x{} needs {n} pixels, got {}",
            req.id,
            req.c,
            req.h,
            req.w,
            req.pixels.len()
        )));
    }
    let len = REQ_HEADER + 4 * n;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::TooLarge(len));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&req.id.to_le_bytes())?;
    w.write_all(&req.c.to_le_bytes())?;
    w.write_all(&req.h.to_le_bytes())?;
    w.write_all(&req.w.to_le_bytes())?;
    for p in &req.pixels {
        w.write_all(&p.to_le_bytes())?;
    }
    Ok(())
}

/// Write one response frame.
pub fn write_response(w: &mut impl Write, resp: &Response) -> Result<(), WireError> {
    let len = RESP_HEADER + 4 * resp.values.len();
    if len > MAX_FRAME_BYTES {
        return Err(WireError::TooLarge(len));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&resp.id.to_le_bytes())?;
    w.write_all(&[resp.status.to_byte()])?;
    for v in &resp.values {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Read one frame payload. `Ok(None)` is a clean end-of-stream: the
/// peer closed the connection *between* frames. A close mid-frame is an
/// [`WireError::Io`] with `UnexpectedEof`.
fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    // Hand-rolled first read so a clean EOF at the frame boundary is
    // distinguishable from a truncated length prefix.
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(WireError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside a frame header",
            )));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

fn f32s_from(bytes: &[u8]) -> Result<Vec<f32>, WireError> {
    if bytes.len() % 4 != 0 {
        return Err(WireError::Malformed(format!(
            "f32 payload of {} bytes is not a multiple of 4",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Read one request frame; `Ok(None)` on clean end-of-stream.
pub fn read_request(r: &mut impl Read) -> Result<Option<Request>, WireError> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    if payload.len() < REQ_HEADER {
        return Err(WireError::Malformed(format!(
            "request frame of {} bytes is shorter than its header",
            payload.len()
        )));
    }
    let id = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let c = u16::from_le_bytes([payload[8], payload[9]]);
    let h = u16::from_le_bytes([payload[10], payload[11]]);
    let w = u16::from_le_bytes([payload[12], payload[13]]);
    let pixels = f32s_from(&payload[REQ_HEADER..])?;
    let expected = c as usize * h as usize * w as usize;
    if pixels.len() != expected {
        return Err(WireError::Malformed(format!(
            "request {id}: {c}x{h}x{w} needs {expected} pixels, got {}",
            pixels.len()
        )));
    }
    Ok(Some(Request {
        id,
        c,
        h,
        w,
        pixels,
    }))
}

/// Read one response frame; `Ok(None)` on clean end-of-stream.
pub fn read_response(r: &mut impl Read) -> Result<Option<Response>, WireError> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    if payload.len() < RESP_HEADER {
        return Err(WireError::Malformed(format!(
            "response frame of {} bytes is shorter than its header",
            payload.len()
        )));
    }
    let id = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let status = Status::from_byte(payload[8])?;
    let values = f32s_from(&payload[RESP_HEADER..])?;
    Ok(Some(Response { id, status, values }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn req(id: u64, c: u16, h: u16, w: u16) -> Request {
        let n = c as usize * h as usize * w as usize;
        Request {
            id,
            c,
            h,
            w,
            pixels: (0..n).map(|i| i as f32 * 0.5 - 1.0).collect(),
        }
    }

    #[test]
    fn request_roundtrip() {
        let mut buf = Vec::new();
        let r1 = req(42, 1, 4, 4);
        let r2 = req(u64::MAX, 3, 2, 5);
        write_request(&mut buf, &r1).unwrap();
        write_request(&mut buf, &r2).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_request(&mut cur).unwrap(), Some(r1));
        assert_eq!(read_request(&mut cur).unwrap(), Some(r2));
        assert_eq!(read_request(&mut cur).unwrap(), None, "clean EOF");
    }

    #[test]
    fn response_roundtrip_all_statuses() {
        let mut buf = Vec::new();
        let ok = Response {
            id: 7,
            status: Status::Ok,
            values: vec![0.25, -1.5, 3.0],
        };
        let shed = Response {
            id: 8,
            status: Status::Shed,
            values: vec![],
        };
        let bad = Response {
            id: 9,
            status: Status::BadRequest,
            values: vec![],
        };
        for r in [&ok, &shed, &bad] {
            write_response(&mut buf, r).unwrap();
        }
        let mut cur = Cursor::new(buf);
        assert_eq!(read_response(&mut cur).unwrap(), Some(ok));
        assert_eq!(read_response(&mut cur).unwrap(), Some(shed));
        assert_eq!(read_response(&mut cur).unwrap(), Some(bad));
        assert_eq!(read_response(&mut cur).unwrap(), None);
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut buf = Vec::new();
        write_request(&mut buf, &req(1, 1, 2, 2)).unwrap();
        buf.truncate(buf.len() - 3); // cut inside the pixel payload
        let mut cur = Cursor::new(buf);
        assert!(matches!(
            read_request(&mut cur),
            Err(WireError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof
        ));
    }

    #[test]
    fn truncated_header_is_an_error() {
        let mut cur = Cursor::new(vec![5u8, 0]); // two of four length bytes
        assert!(matches!(read_request(&mut cur), Err(WireError::Io(_))));
    }

    #[test]
    fn oversized_frame_is_rejected_without_buffering() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        let mut cur = Cursor::new(buf);
        assert!(matches!(
            read_request(&mut cur),
            Err(WireError::TooLarge(_))
        ));
    }

    #[test]
    fn pixel_count_mismatch_is_rejected_on_both_sides() {
        let mut bad = req(1, 2, 2, 2);
        bad.pixels.pop();
        let mut buf = Vec::new();
        assert!(matches!(
            write_request(&mut buf, &bad),
            Err(WireError::Malformed(_))
        ));

        // Hand-craft a frame whose dims disagree with its payload.
        let mut frame = Vec::new();
        let payload_len = REQ_HEADER + 4; // one pixel
        frame.extend_from_slice(&(payload_len as u32).to_le_bytes());
        frame.extend_from_slice(&1u64.to_le_bytes());
        frame.extend_from_slice(&2u16.to_le_bytes()); // c
        frame.extend_from_slice(&2u16.to_le_bytes()); // h
        frame.extend_from_slice(&2u16.to_le_bytes()); // w — needs 8 pixels
        frame.extend_from_slice(&1.0f32.to_le_bytes());
        let mut cur = Cursor::new(frame);
        assert!(matches!(
            read_request(&mut cur),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_status_byte_is_rejected() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&(RESP_HEADER as u32).to_le_bytes());
        frame.extend_from_slice(&1u64.to_le_bytes());
        frame.push(9); // bogus status
        let mut cur = Cursor::new(frame);
        assert!(matches!(
            read_response(&mut cur),
            Err(WireError::Malformed(_))
        ));
    }
}
