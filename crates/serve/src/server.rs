//! The TCP inference server.
//!
//! No async runtime and no epoll: the workspace's zero-dependency bias
//! means plain blocking sockets and threads, which at serving batch
//! sizes is not the bottleneck — one reader thread per connection does
//! nothing but parse frames and push jobs, and all real work happens on
//! the fixed worker pool. The moving parts:
//!
//! * **accept loop** (1 thread) — accepts connections until shutdown.
//! * **connection reader** (1/conn) — parses request frames, validates
//!   the image shape, and offers jobs to the shared [`Batcher`] under
//!   the `serve.enqueue` span. Shape mismatches and load-sheds are
//!   answered immediately without touching the queue's latency budget.
//! * **connection writer** (1/conn) — serializes responses from an
//!   mpsc channel; workers and the reader both hold senders, so frames
//!   from different batches never interleave mid-frame.
//! * **worker** (configurable) — owns its `Network`, its arena-backed
//!   [`Workspace`] and a per-batch-size tensor cache, so steady-state
//!   serving allocates nothing in the conv/GEMM/FFT hot paths and the
//!   first batch of each size warms every cache below it. Workers pop
//!   ready batches (`serve.batch_form`), run inference
//!   (`serve.infer`) and hand responses to the connection writers.
//!
//! [`Server::shutdown`] drains: admission flips to load-shed, workers
//! finish everything already admitted (popping partial batches without
//! waiting out the delay budget), and only then do the threads join —
//! an in-flight request never sees a dropped channel.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gcnn_autotune::{CpuSubstrate, Direction, Tuner, TuningCache};
use gcnn_models::{Network, TunedLayer};
use gcnn_tensor::{Shape4, Tensor4, Workspace};

use crate::batcher::{BatchPolicy, Batcher};
use crate::metrics::{ServeMetrics, ServeStats};
use crate::protocol::{read_request, write_response, Response, Status, WireError};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick (tests, benches).
    pub addr: String,
    /// Worker threads; each owns one `Network` replica.
    pub workers: usize,
    /// Batching and admission policy.
    pub policy: BatchPolicy,
    /// The `(c, h, w)` image shape every request must carry.
    pub input: (usize, usize, usize),
    /// Pre-serving autotune pass. When set, every worker's network is
    /// tuned for `Direction::Forward` at the policy's `max_batch`
    /// before any thread spawns, so the first real batch already runs
    /// each layer's winning strategy. All workers share one tuning
    /// cache: the first replica pays the measurement cost, the rest
    /// boot from warm cache hits.
    pub tune: Option<Tuner>,
}

impl ServeConfig {
    /// Loopback server on an OS-assigned port.
    pub fn loopback(workers: usize, policy: BatchPolicy, input: (usize, usize, usize)) -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            policy,
            input,
            tune: None,
        }
    }

    /// Enable the forward autotune pass with the given tuner.
    pub fn with_tuning(mut self, tuner: Tuner) -> Self {
        self.tune = Some(tuner);
        self
    }
}

/// One admitted request, queued for a worker.
struct Job {
    id: u64,
    pixels: Vec<f32>,
    enqueued: Instant,
    reply: mpsc::Sender<Response>,
}

/// State shared by readers, workers and the accept loop.
struct Shared {
    batcher: Mutex<Batcher<Job>>,
    /// Signaled on every offer and at shutdown.
    available: Condvar,
    metrics: ServeMetrics,
    /// Set under the batcher lock; once true, admission sheds and
    /// workers exit as soon as the queue is drained.
    stop: AtomicBool,
    input: (usize, usize, usize),
}

/// A running inference server. Dropping it shuts it down (draining
/// admitted requests); call [`Server::shutdown`] to do so explicitly.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// Per-worker schedules from the pre-serving autotune pass; empty
    /// vectors when [`ServeConfig::tune`] was `None`.
    tuning: Vec<Vec<TunedLayer>>,
}

impl Server {
    /// Bind and start serving. `factory(i)` builds worker `i`'s network
    /// replica on the caller's thread (so it may borrow freely); the
    /// replicas are then moved into the worker threads, which is why
    /// `Network: Send` is a tested invariant of `gcnn-models`.
    pub fn start(
        cfg: ServeConfig,
        mut factory: impl FnMut(usize) -> Network,
    ) -> std::io::Result<Server> {
        assert!(cfg.workers > 0, "Server::start: need at least one worker");
        let (c, h, w) = cfg.input;
        assert!(
            c > 0
                && h > 0
                && w > 0
                && c <= u16::MAX as usize
                && h <= u16::MAX as usize
                && w <= u16::MAX as usize,
            "Server::start: input dims must fit the wire protocol's u16 fields"
        );
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            batcher: Mutex::new(Batcher::new(cfg.policy)),
            available: Condvar::new(),
            metrics: ServeMetrics::new(),
            stop: AtomicBool::new(false),
            input: cfg.input,
        });

        // Build — and, with `cfg.tune`, autotune — every replica on
        // the caller's thread before any worker spawns. One cache is
        // threaded through all replicas: identical layer shapes mean
        // worker 0's measurements answer everyone else's lookups.
        let mut tuning: Vec<Vec<TunedLayer>> = Vec::with_capacity(cfg.workers);
        let substrate = CpuSubstrate::new();
        let mut cache = TuningCache::new();
        let nets: Vec<Network> = (0..cfg.workers)
            .map(|i| {
                let mut net = factory(i);
                if let Some(tuner) = &cfg.tune {
                    let _span = gcnn_trace::span("serve.tune");
                    tuning.push(net.tune_for(
                        Shape4::new(cfg.policy.max_batch, c, h, w),
                        tuner,
                        &substrate,
                        &mut cache,
                        Direction::Forward,
                    ));
                } else {
                    tuning.push(Vec::new());
                }
                net
            })
            .collect();

        let workers = nets
            .into_iter()
            .enumerate()
            .map(|(i, net)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gcnn-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &net))
                    .expect("spawn worker thread")
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gcnn-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn accept thread")
        };

        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers,
            tuning,
        })
    }

    /// Per-worker tuning schedules from the pre-serving autotune pass,
    /// in worker order. All empty when tuning was not configured. The
    /// `source` on each entry tells whether that worker measured or hit
    /// the shared cache warmed by an earlier replica.
    pub fn tune_report(&self) -> &[Vec<TunedLayer>] {
        &self.tuning
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current metrics aggregate.
    pub fn stats(&self) -> ServeStats {
        self.shared.metrics.snapshot()
    }

    /// Pending requests in the batch queue right now.
    pub fn queue_depth(&self) -> usize {
        self.shared.batcher.lock().expect("batcher poisoned").len()
    }

    /// Stop accepting, drain every admitted request, join all threads.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        {
            // Set under the lock: a worker deciding whether to sleep
            // either sees `stop` or is already waiting when the
            // notify_all below lands — no missed-wakeup window.
            let _guard = self.shared.batcher.lock().expect("batcher poisoned");
            self.shared.stop.store(true, Ordering::SeqCst);
        }
        self.shared.available.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() || !self.workers.is_empty() {
            self.shutdown_in_place();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return; // the shutdown wake-up connection, or a late client
        }
        let shared = Arc::clone(shared);
        // Reader threads are not joined at shutdown: they exit when
        // their client closes, and everything they can still do once
        // `stop` is set is answer with load-sheds.
        let _ = std::thread::Builder::new()
            .name("gcnn-serve-conn".to_string())
            .spawn(move || connection_loop(stream, &shared));
    }
}

/// Per-connection reader: parse frames, validate, enqueue.
fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    stream.set_nodelay(true).ok();
    let peer_writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<Response>();
    let writer = std::thread::Builder::new()
        .name("gcnn-serve-conn-writer".to_string())
        .spawn(move || {
            let mut out = BufWriter::new(peer_writer);
            // Ends when every sender (reader + queued jobs) is dropped.
            while let Ok(resp) = rx.recv() {
                if write_response(&mut out, &resp).is_err() {
                    return;
                }
                use std::io::Write;
                if out.flush().is_err() {
                    return;
                }
            }
        })
        .expect("spawn connection writer");

    let mut reader = BufReader::new(stream);
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => break, // clean close
            Err(WireError::Io(_)) => break,
            Err(_) => {
                // Structurally broken frame: the stream offset is no
                // longer trustworthy, so answer and hang up.
                let _ = tx.send(Response {
                    id: 0,
                    status: Status::BadRequest,
                    values: Vec::new(),
                });
                shared.metrics.record_bad_request();
                break;
            }
        };
        let dims = (req.c as usize, req.h as usize, req.w as usize);
        if dims != shared.input {
            shared.metrics.record_bad_request();
            let _ = tx.send(Response {
                id: req.id,
                status: Status::BadRequest,
                values: Vec::new(),
            });
            continue;
        }
        let _span = gcnn_trace::span("serve.enqueue");
        let job = Job {
            id: req.id,
            pixels: req.pixels,
            enqueued: Instant::now(),
            reply: tx.clone(),
        };
        let admitted = {
            let mut batcher = shared.batcher.lock().expect("batcher poisoned");
            if shared.stop.load(Ordering::SeqCst) {
                Err(job)
            } else {
                let now = job.enqueued;
                let result = batcher.offer(job, now);
                if result.is_ok() {
                    shared.metrics.record_enqueue(batcher.len());
                }
                result
            }
        };
        match admitted {
            Ok(()) => shared.available.notify_one(),
            Err(job) => {
                shared.metrics.record_shed();
                let _ = tx.send(Response {
                    id: job.id,
                    status: Status::Shed,
                    values: Vec::new(),
                });
            }
        }
    }
    drop(tx);
    let _ = writer.join();
}

/// How long an idle worker sleeps between shutdown checks; a fresh
/// offer's notify wakes it immediately, this only bounds staleness.
const IDLE_TICK: Duration = Duration::from_millis(50);

fn worker_loop(shared: &Arc<Shared>, net: &Network) {
    let (c, h, w) = shared.input;
    let max_batch = {
        let batcher = shared.batcher.lock().expect("batcher poisoned");
        batcher.policy().max_batch
    };
    let mut ws = Workspace::new();
    let mut batch: Vec<(Job, Instant)> = Vec::with_capacity(max_batch);
    // One input tensor per batch size, built on first use: a steady
    // stream of full batches touches exactly one and never reallocates.
    let mut inputs: Vec<Option<Tensor4>> = (0..=max_batch).map(|_| None).collect();

    loop {
        // Pop a batch, or sleep until one can become ready.
        {
            let mut batcher = shared.batcher.lock().expect("batcher poisoned");
            loop {
                let now = Instant::now();
                let stopping = shared.stop.load(Ordering::SeqCst);
                if batcher.ready(now) || (stopping && !batcher.is_empty()) {
                    batcher.pop_batch_into(&mut batch);
                    break;
                }
                if stopping {
                    return; // drained
                }
                let timeout = match batcher.oldest_deadline() {
                    Some(deadline) => deadline.saturating_duration_since(now),
                    None => IDLE_TICK,
                };
                let (guard, _) = shared
                    .available
                    .wait_timeout(batcher, timeout)
                    .expect("batcher poisoned");
                batcher = guard;
            }
        }
        if batch.is_empty() {
            continue;
        }

        let b = batch.len();
        let logits = {
            let _form = gcnn_trace::span("serve.batch_form");
            shared.metrics.record_batch(b);
            let tensor = inputs[b].get_or_insert_with(|| Tensor4::zeros(Shape4::new(b, c, h, w)));
            for (i, (job, _)) in batch.iter().enumerate() {
                tensor.image_mut(i).copy_from_slice(&job.pixels);
            }
            drop(_form);
            let _infer = gcnn_trace::span("serve.infer");
            net.infer_ws(inputs[b].as_ref().expect("just inserted"), &mut ws)
        };

        send_responses(&batch, &logits, &shared.metrics);
        batch.clear();
    }
}

/// Marshal one inference batch back to the per-connection reply
/// channels and record completion latencies.
// AUDIT: cold-path — `Response` owns its logits (they cross a channel to
// the connection thread and outlive the shared batch tensor), so one
// copy per response is inherent to the wire protocol, not a leak of the
// zero-alloc inference path.
fn send_responses(batch: &[(Job, Instant)], logits: &Tensor4, metrics: &ServeMetrics) {
    let out_len = logits.shape().image_len();
    let done = Instant::now();
    for (i, (job, _)) in batch.iter().enumerate() {
        let values = logits.image(i)[..out_len].to_vec();
        metrics.record_completion(done.duration_since(job.enqueued).as_secs_f64() * 1e3);
        let _ = job.reply.send(Response {
            id: job.id,
            status: Status::Ok,
            values,
        });
    }
}
