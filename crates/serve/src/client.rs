//! A minimal blocking client for the serving protocol.
//!
//! One TCP connection, pipelining allowed: [`Client::send`] writes a
//! request frame without waiting, [`Client::recv`] reads the next
//! response frame in completion order (the server answers batches as
//! they finish, so ids are the pairing key, not position).
//! [`Client::infer`] is the convenience send+recv round trip for tests
//! and low-rate callers.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};

use crate::protocol::{read_response, write_request, Request, Response, WireError};

/// A blocking connection to a [`Server`](crate::Server).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connect to `addr`.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            next_id: 0,
        })
    }

    /// Write one request frame (auto-assigned id, returned) without
    /// waiting for the response — the pipelining path load generators
    /// use to keep many requests in flight per connection.
    // AUDIT: cold-path — client-side request marshalling in the load-generator
    // harness; the server's worker loop never executes this.
    pub fn send(&mut self, c: u16, h: u16, w: u16, pixels: &[f32]) -> Result<u64, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        let req = Request {
            id,
            c,
            h,
            w,
            pixels: pixels.to_vec(),
        };
        write_request(&mut self.writer, &req)?;
        self.writer.flush()?;
        Ok(id)
    }

    /// Read the next response frame, in server completion order.
    /// `Ok(None)` means the server closed the connection cleanly.
    pub fn recv(&mut self) -> Result<Option<Response>, WireError> {
        read_response(&mut self.reader)
    }

    /// Blocking round trip: send one request, wait for its response.
    /// Only valid when no other request is in flight on this
    /// connection (the response read is matched by id and this asserts
    /// it got the right one).
    pub fn infer(&mut self, c: u16, h: u16, w: u16, pixels: &[f32]) -> Result<Response, WireError> {
        let id = self.send(c, h, w, pixels)?;
        match self.recv()? {
            Some(resp) => {
                assert_eq!(
                    resp.id, id,
                    "Client::infer with requests already in flight — use send/recv"
                );
                Ok(resp)
            }
            None => Err(WireError::Malformed(
                "server closed connection before responding".to_string(),
            )),
        }
    }
}
