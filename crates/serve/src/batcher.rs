//! The dynamic-batching state machine.
//!
//! [`Batcher`] is the deterministic core of the service: a bounded FIFO
//! of pending requests plus the two-knob coalescing policy the paper's
//! batch-size sweep motivates — `max_batch` (the batch cap `b`) and
//! `max_delay` (the queue-latency budget). It is deliberately free of
//! threads, sockets and clocks: every method takes the current
//! [`Instant`] as an argument, so the property tests drive it through
//! arbitrary virtual schedules and the server wraps it in a
//! `Mutex`/`Condvar` pair without changing its semantics.
//!
//! ## States
//!
//! ```text
//!            offer()                 len == max_batch
//!  Empty ───────────────▶ Filling ─────────────────────▶ Ready
//!    ▲                       │        or oldest age            │
//!    │                       │        ≥ max_delay              │
//!    │                       ▼                                 │
//!    │                   (offer at queue_cap ⇒ load-shed)      │
//!    └────────────────────────── pop_batch_into() ◀────────────┘
//! ```
//!
//! * **Empty** — no pending requests; workers sleep on the condvar.
//! * **Filling** — a batch is forming. The *oldest* request's deadline
//!   (`enqueued + max_delay`) bounds how long it may form: a worker
//!   sleeps until that deadline at the latest.
//! * **Ready** — the batch cap is reached or the deadline passed;
//!   [`Batcher::pop_batch_into`] hands the FIFO prefix to a worker.
//!
//! Admission control is part of the same state machine: an
//! [`Batcher::offer`] beyond `queue_cap` is rejected immediately
//! (load-shed) rather than queued, so overload degrades into fast
//! `Shed` responses instead of unbounded memory growth and blown
//! latency budgets.
//!
//! ## Latency bound
//!
//! With workers that pop whenever the batcher is ready, an *admitted*
//! request with `queue_cap ≤ max_batch` waits at most
//! `max_delay + S`, where `S` is one batch-formation window (the time a
//! worker spends assembling + serving one batch): the request's own
//! deadline fires after `max_delay`, and the pop it triggers can be
//! delayed by at most the batch currently in service. The property
//! suite (`tests/batcher_props.rs`) checks exactly this bound under
//! random arrival schedules, policies and service times.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// The two-knob coalescing policy plus the admission bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest batch a single pop may form (the paper's `b` axis).
    pub max_batch: usize,
    /// Queue-delay budget: the oldest pending request never waits
    /// longer than this before its batch becomes ready.
    pub max_delay: Duration,
    /// Admission bound: offers beyond this many pending requests are
    /// load-shed. `usize::MAX` disables shedding.
    pub queue_cap: usize,
}

impl BatchPolicy {
    /// A policy with an admission bound of four full batches — enough
    /// headroom to keep workers busy, small enough that shed responses
    /// return before the client's own timeout fires.
    pub fn new(max_batch: usize, max_delay: Duration) -> Self {
        assert!(max_batch > 0, "BatchPolicy: max_batch must be positive");
        BatchPolicy {
            max_batch,
            max_delay,
            queue_cap: max_batch.saturating_mul(4),
        }
    }

    /// The same policy with an explicit admission bound.
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "BatchPolicy: queue_cap must be positive");
        self.queue_cap = cap;
        self
    }
}

/// The batch-forming FIFO. Generic over the queued item so the property
/// tests can run it on bare ids while the server queues whole jobs.
#[derive(Debug)]
pub struct Batcher<T> {
    queue: VecDeque<(T, Instant)>,
    policy: BatchPolicy,
    accepted: u64,
    shed: u64,
}

impl<T> Batcher<T> {
    /// An empty batcher under `policy`.
    pub fn new(policy: BatchPolicy) -> Self {
        assert!(policy.max_batch > 0 && policy.queue_cap > 0);
        Batcher {
            queue: VecDeque::with_capacity(policy.queue_cap.min(1024)),
            policy,
            accepted: 0,
            shed: 0,
        }
    }

    /// The policy this batcher runs.
    #[inline]
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Pending requests.
    #[inline]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total requests admitted so far.
    #[inline]
    pub fn accepted_count(&self) -> u64 {
        self.accepted
    }

    /// Total requests load-shed so far.
    #[inline]
    pub fn shed_count(&self) -> u64 {
        self.shed
    }

    /// Admit `item` at time `now`, or return it when the queue is at
    /// its admission bound (the caller turns that into a `Shed`
    /// response). FIFO order is arrival order; `now` is recorded as the
    /// enqueue time that [`Batcher::oldest_deadline`] derives from.
    pub fn offer(&mut self, item: T, now: Instant) -> Result<(), T> {
        if self.queue.len() >= self.policy.queue_cap {
            self.shed += 1;
            return Err(item);
        }
        self.queue.push_back((item, now));
        self.accepted += 1;
        Ok(())
    }

    /// The instant the oldest pending request's delay budget expires —
    /// the latest moment a worker may keep sleeping. `None` when empty.
    pub fn oldest_deadline(&self) -> Option<Instant> {
        self.queue
            .front()
            .map(|(_, enqueued)| *enqueued + self.policy.max_delay)
    }

    /// True when a batch should be popped now: the cap is reached, or
    /// the oldest request has exhausted its delay budget.
    pub fn ready(&self, now: Instant) -> bool {
        if self.queue.len() >= self.policy.max_batch {
            return true;
        }
        match self.oldest_deadline() {
            Some(deadline) => now >= deadline,
            None => false,
        }
    }

    /// Move the FIFO prefix (up to `max_batch` items) into `out`,
    /// clearing it first, and return the batch size. Arrival order is
    /// preserved — both across pops and within each batch — which is
    /// what makes request→response pairing an invariant rather than a
    /// bookkeeping exercise. The caller decides *when* (normally only
    /// once [`Batcher::ready`], or unconditionally while draining at
    /// shutdown); popping is never blocked on readiness here.
    pub fn pop_batch_into(&mut self, out: &mut Vec<(T, Instant)>) -> usize {
        out.clear();
        while out.len() < self.policy.max_batch {
            match self.queue.pop_front() {
                Some(item) => out.push(item),
                None => break,
            }
        }
        out.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(max_batch: usize, delay_ms: u64, cap: usize) -> BatchPolicy {
        BatchPolicy::new(max_batch, Duration::from_millis(delay_ms)).with_queue_cap(cap)
    }

    #[test]
    fn empty_is_never_ready() {
        let b: Batcher<u32> = Batcher::new(policy(4, 10, 16));
        assert!(!b.ready(Instant::now()));
        assert_eq!(b.oldest_deadline(), None);
        assert!(b.is_empty());
    }

    #[test]
    fn full_batch_is_ready_immediately() {
        let mut b = Batcher::new(policy(2, 1_000, 16));
        let t0 = Instant::now();
        b.offer(1u32, t0).unwrap();
        assert!(!b.ready(t0), "one request under a 1s budget: keep filling");
        b.offer(2u32, t0).unwrap();
        assert!(b.ready(t0), "cap reached: ready regardless of deadline");
    }

    #[test]
    fn deadline_makes_partial_batch_ready() {
        let mut b = Batcher::new(policy(8, 10, 16));
        let t0 = Instant::now();
        b.offer(7u32, t0).unwrap();
        assert!(!b.ready(t0));
        assert_eq!(b.oldest_deadline(), Some(t0 + Duration::from_millis(10)));
        assert!(b.ready(t0 + Duration::from_millis(10)));
        assert!(b.ready(t0 + Duration::from_millis(11)));
    }

    #[test]
    fn offer_sheds_at_queue_cap() {
        let mut b = Batcher::new(policy(4, 10, 2));
        let t0 = Instant::now();
        assert!(b.offer(1u32, t0).is_ok());
        assert!(b.offer(2u32, t0).is_ok());
        assert_eq!(b.offer(3u32, t0), Err(3));
        assert_eq!(b.accepted_count(), 2);
        assert_eq!(b.shed_count(), 1);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn pop_preserves_fifo_and_respects_cap() {
        let mut b = Batcher::new(policy(3, 10, 16));
        let t0 = Instant::now();
        for i in 0u32..5 {
            b.offer(i, t0).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(b.pop_batch_into(&mut out), 3);
        assert_eq!(out.iter().map(|(i, _)| *i).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(b.pop_batch_into(&mut out), 2);
        assert_eq!(out.iter().map(|(i, _)| *i).collect::<Vec<_>>(), [3, 4]);
        assert_eq!(b.pop_batch_into(&mut out), 0);
        assert!(b.is_empty());
    }

    #[test]
    fn pop_clears_stale_output() {
        let mut b = Batcher::new(policy(4, 10, 16));
        let t0 = Instant::now();
        b.offer(9u32, t0).unwrap();
        let mut out = vec![(1u32, t0), (2, t0), (3, t0)];
        assert_eq!(b.pop_batch_into(&mut out), 1);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn default_queue_cap_is_four_batches() {
        let p = BatchPolicy::new(8, Duration::from_millis(5));
        assert_eq!(p.queue_cap, 32);
    }
}
