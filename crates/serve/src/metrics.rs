//! Serving metrics: request counters, a batch-size histogram and
//! end-to-end latency percentiles.
//!
//! Everything here is double-reported: once into process-local atomics
//! that [`ServeMetrics::snapshot`] turns into a [`ServeStats`] (what
//! `serve_bench` records and the smoke gate asserts on), and once into
//! the global `gcnn-trace` registry under dotted `serve.*` names, so
//! `bench_report`'s span tree shows the serving layer next to the
//! kernels it drives. Latency is end-to-end from admission to response
//! hand-off, accumulated in a fixed-size ring so a long soak never
//! grows memory; p50/p99 are computed on snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Batch-size histogram bucket upper bounds (inclusive); the last
/// bucket is open-ended. Powers of two because the interesting caps are.
const BUCKET_BOUNDS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Dotted trace-counter name per bucket, parallel to [`BUCKET_BOUNDS`]
/// plus the open-ended tail.
const BUCKET_NAMES: [&str; 8] = [
    "serve.batch.size_1",
    "serve.batch.size_2",
    "serve.batch.size_4",
    "serve.batch.size_8",
    "serve.batch.size_16",
    "serve.batch.size_32",
    "serve.batch.size_64",
    "serve.batch.size_more",
];

/// Capacity of the latency ring: at 10k req/s this still spans several
/// seconds of steady state, and the ring keeps the *most recent* window
/// rather than the start-up transient.
const LATENCY_RING: usize = 1 << 16;

/// Shared metric sinks for one server instance.
#[derive(Debug)]
pub struct ServeMetrics {
    accepted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    bad_requests: AtomicU64,
    batches: AtomicU64,
    batches_multi: AtomicU64,
    batch_images: AtomicU64,
    batch_hist: [AtomicU64; 8],
    max_batch_seen: AtomicU64,
    latency_count: AtomicU64,
    latencies_ms: Mutex<Vec<f64>>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Fresh, all-zero metrics.
    // AUDIT: cold-path — the metrics registry is constructed once at server
    // startup (and per reset in tests), never per request.
    pub fn new() -> Self {
        ServeMetrics {
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batches_multi: AtomicU64::new(0),
            batch_images: AtomicU64::new(0),
            batch_hist: Default::default(),
            max_batch_seen: AtomicU64::new(0),
            latency_count: AtomicU64::new(0),
            latencies_ms: Mutex::new(Vec::new()),
        }
    }

    /// One request admitted into the queue (depth reported as a gauge).
    pub fn record_enqueue(&self, queue_depth: usize) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        gcnn_trace::counter_inc("serve.requests");
        gcnn_trace::gauge_set("serve.queue_depth", queue_depth as f64);
    }

    /// One request rejected by admission control.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        gcnn_trace::counter_inc("serve.shed");
    }

    /// One structurally valid request with the wrong image shape.
    pub fn record_bad_request(&self) {
        self.bad_requests.fetch_add(1, Ordering::Relaxed);
        gcnn_trace::counter_inc("serve.bad_requests");
    }

    /// One batch formed, of `size` images.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_images.fetch_add(size as u64, Ordering::Relaxed);
        if size > 1 {
            self.batches_multi.fetch_add(1, Ordering::Relaxed);
        }
        self.max_batch_seen
            .fetch_max(size as u64, Ordering::Relaxed);
        let bucket = BUCKET_BOUNDS
            .iter()
            .position(|&b| size <= b)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.batch_hist[bucket].fetch_add(1, Ordering::Relaxed);
        gcnn_trace::counter_inc(BUCKET_NAMES[bucket]);
    }

    /// One response delivered after `latency_ms` end-to-end.
    pub fn record_completion(&self, latency_ms: f64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let n = self.latency_count.fetch_add(1, Ordering::Relaxed) as usize;
        let mut ring = self.latencies_ms.lock().expect("latency ring poisoned");
        if ring.len() < LATENCY_RING {
            ring.push(latency_ms);
        } else {
            ring[n % LATENCY_RING] = latency_ms;
        }
    }

    /// Aggregate view; also pushes the p50/p99 accumulators out as
    /// trace gauges so an `export_trace` snapshot carries them.
    pub fn snapshot(&self) -> ServeStats {
        let mut lat = self
            .latencies_ms
            .lock()
            .expect("latency ring poisoned")
            .clone();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let p50_ms = percentile(&lat, 0.50);
        let p99_ms = percentile(&lat, 0.99);
        gcnn_trace::gauge_set("serve.latency_p50_ms", p50_ms);
        gcnn_trace::gauge_set("serve.latency_p99_ms", p99_ms);
        let batches = self.batches.load(Ordering::Relaxed);
        let images = self.batch_images.load(Ordering::Relaxed);
        ServeStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            batches,
            batches_multi: self.batches_multi.load(Ordering::Relaxed),
            mean_batch: if batches == 0 {
                0.0
            } else {
                images as f64 / batches as f64
            },
            max_batch_seen: self.max_batch_seen.load(Ordering::Relaxed) as usize,
            batch_hist: self
                .batch_hist
                .iter()
                .zip(BUCKET_NAMES)
                .map(|(c, name)| (name, c.load(Ordering::Relaxed)))
                .collect(),
            p50_ms,
            p99_ms,
        }
    }
}

/// Point-in-time aggregate of one server's metrics.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub accepted: u64,
    /// Responses delivered with [`Status::Ok`](crate::Status::Ok).
    pub completed: u64,
    /// Requests rejected by admission control.
    pub shed: u64,
    /// Requests with the wrong image shape.
    pub bad_requests: u64,
    /// Batches formed.
    pub batches: u64,
    /// Batches of more than one image — the smoke gate's evidence that
    /// dynamic batching actually coalesced concurrent requests.
    pub batches_multi: u64,
    /// Mean images per batch.
    pub mean_batch: f64,
    /// Largest batch formed.
    pub max_batch_seen: usize,
    /// `(bucket name, count)` pairs, `serve.batch.size_*`.
    pub batch_hist: Vec<(&'static str, u64)>,
    /// Median end-to-end latency over the retained window, ms.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency, ms.
    pub p99_ms: f64,
}

/// Nearest-rank percentile of an ascending-sorted slice; 0 when empty.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "percentile out of range");
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn batch_histogram_buckets() {
        let m = ServeMetrics::new();
        for size in [1, 1, 2, 3, 8, 9, 64, 65, 1000] {
            m.record_batch(size);
        }
        let s = m.snapshot();
        let count = |name: &str| {
            s.batch_hist
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, c)| *c)
                .unwrap()
        };
        assert_eq!(count("serve.batch.size_1"), 2);
        assert_eq!(count("serve.batch.size_2"), 1);
        assert_eq!(count("serve.batch.size_4"), 1); // size 3
        assert_eq!(count("serve.batch.size_8"), 1);
        assert_eq!(count("serve.batch.size_16"), 1); // size 9
        assert_eq!(count("serve.batch.size_64"), 1);
        assert_eq!(count("serve.batch.size_more"), 2); // 65, 1000
        assert_eq!(s.batches, 9);
        assert_eq!(s.batches_multi, 7);
        assert_eq!(s.max_batch_seen, 1000);
        let expected_mean = (1 + 1 + 2 + 3 + 8 + 9 + 64 + 65 + 1000) as f64 / 9.0;
        assert!((s.mean_batch - expected_mean).abs() < 1e-12);
    }

    #[test]
    fn latency_ring_overwrites_oldest() {
        let m = ServeMetrics::new();
        // Overfill the ring: the retained window must be the tail.
        for i in 0..(LATENCY_RING + 10) {
            m.record_completion(i as f64);
        }
        let s = m.snapshot();
        assert_eq!(s.completed, (LATENCY_RING + 10) as u64);
        // The smallest surviving sample is ≥ 10 (0..9 were overwritten).
        assert!(s.p50_ms >= 10.0);
    }

    #[test]
    fn counters_accumulate() {
        let m = ServeMetrics::new();
        m.record_enqueue(1);
        m.record_enqueue(2);
        m.record_shed();
        m.record_bad_request();
        m.record_completion(1.0);
        let s = m.snapshot();
        assert_eq!(s.accepted, 2);
        assert_eq!(s.shed, 1);
        assert_eq!(s.bad_requests, 1);
        assert_eq!(s.completed, 1);
    }
}
