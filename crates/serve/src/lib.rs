//! gcnn-serve: an inference service over the workspace's CNN stack.
//!
//! The paper's central observation is that throughput on every
//! substrate is a strong function of batch size `b` — single-image
//! inference leaves most of the arithmetic intensity of the conv
//! lowerings on the table. This crate turns that observation into a
//! serving-side mechanism: concurrent single-image requests arrive
//! over a length-prefixed binary protocol, a deterministic
//! [`Batcher`] coalesces them into mini-batches under a two-knob
//! policy (`max_batch`, `max_delay`), and a worker pool runs them
//! through per-worker `Network` replicas with arena-backed workspaces
//! so the steady state allocates nothing in the kernel hot paths.
//!
//! Layering, bottom to top:
//!
//! * [`batcher`] — the clock-free batching state machine (property
//!   tested under virtual time in `tests/batcher_props.rs`).
//! * [`protocol`] — the wire format and its framing errors.
//! * [`metrics`] — serve-side counters, the batch-size histogram and
//!   latency percentiles, mirrored into `gcnn-trace` as `serve.*`.
//! * [`server`] — std-TCP accept/reader/writer threads around the
//!   batcher, plus the draining shutdown path.
//! * [`client`] — a small blocking client used by tests and
//!   `serve_bench`.
//!
//! Everything is std-only: no async runtime, no new dependencies.

#![forbid(unsafe_code)]

pub mod batcher;
pub mod client;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use batcher::{BatchPolicy, Batcher};
pub use client::Client;
pub use metrics::{percentile, ServeMetrics, ServeStats};
pub use protocol::{Request, Response, Status, WireError};
pub use server::{ServeConfig, Server};
