//! End-to-end tests over a real loopback socket: correctness of the
//! request→response pairing under concurrency, admission control under
//! overload, shape validation, and the draining shutdown guarantee.

use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::Duration;

use gcnn_conv::Strategy;
use gcnn_models::Network;
use gcnn_serve::{BatchPolicy, Client, ServeConfig, Server, Status};

const SIZE: usize = 16;
const CLASSES: usize = 4;

fn test_net() -> Network {
    Network::lenet5(SIZE, CLASSES, Strategy::Direct, 42)
}

fn start(workers: usize, policy: BatchPolicy) -> Server {
    Server::start(
        ServeConfig::loopback(workers, policy, (1, SIZE, SIZE)),
        |_| test_net(),
    )
    .expect("bind loopback")
}

/// A deterministic per-request image so responses can be checked
/// against a local forward pass.
fn image(seed: u64) -> Vec<f32> {
    (0..SIZE * SIZE)
        .map(|i| ((seed as usize * 31 + i * 7) % 97) as f32 / 97.0 - 0.5)
        .collect()
}

fn local_logits(net: &Network, pixels: &[f32]) -> Vec<f32> {
    use gcnn_tensor::{Shape4, Tensor4};
    let input = Tensor4::from_vec(Shape4::new(1, 1, SIZE, SIZE), pixels.to_vec())
        .expect("shape matches pixel count");
    net.forward(&input).as_slice().to_vec()
}

#[test]
fn single_request_roundtrip_matches_local_forward() {
    let server = start(1, BatchPolicy::new(4, Duration::from_millis(2)));
    let mut client = Client::connect(server.local_addr()).unwrap();
    let net = test_net();

    let pixels = image(7);
    let resp = client
        .infer(1, SIZE as u16, SIZE as u16, &pixels)
        .expect("roundtrip");
    assert_eq!(resp.status, Status::Ok);
    let expected = local_logits(&net, &pixels);
    assert_eq!(resp.values.len(), CLASSES);
    for (got, want) in resp.values.iter().zip(&expected) {
        assert!(
            (got - want).abs() < 1e-5,
            "served logits diverge from local forward: {got} vs {want}"
        );
    }
    server.shutdown();
}

#[test]
fn pipelined_requests_pair_by_id_and_batch() {
    // One worker + a generous delay budget force coalescing: with 8
    // requests in flight and max_batch 8, at least one multi-request
    // batch must form.
    let server = start(1, BatchPolicy::new(8, Duration::from_millis(50)));
    let mut client = Client::connect(server.local_addr()).unwrap();
    let net = test_net();

    let n = 8u64;
    let mut ids = Vec::new();
    for seed in 0..n {
        ids.push(
            client
                .send(1, SIZE as u16, SIZE as u16, &image(seed))
                .unwrap(),
        );
    }
    for _ in 0..n {
        let resp = client.recv().unwrap().expect("response before close");
        assert_eq!(resp.status, Status::Ok);
        // id k carried image(k); check the pairing survived batching.
        let expected = local_logits(&net, &image(resp.id));
        for (got, want) in resp.values.iter().zip(&expected) {
            assert!((got - want).abs() < 1e-5, "id {} mispaired", resp.id);
        }
    }
    let stats = server.stats();
    assert_eq!(stats.completed, n);
    assert!(
        stats.batches_multi >= 1,
        "8 pipelined requests under a 50ms budget formed no multi-batch: {stats:?}"
    );
    server.shutdown();
}

#[test]
fn wrong_shape_is_rejected_without_queueing() {
    let server = start(1, BatchPolicy::new(4, Duration::from_millis(2)));
    let mut client = Client::connect(server.local_addr()).unwrap();

    let pixels = vec![0.0f32; 8 * 8];
    let resp = client.infer(1, 8, 8, &pixels).expect("roundtrip");
    assert_eq!(resp.status, Status::BadRequest);
    assert!(resp.values.is_empty());

    // The connection stays usable for well-formed requests.
    let resp = client
        .infer(1, SIZE as u16, SIZE as u16, &image(1))
        .unwrap();
    assert_eq!(resp.status, Status::Ok);

    let stats = server.stats();
    assert_eq!(stats.bad_requests, 1);
    assert_eq!(stats.accepted, 1);
    server.shutdown();
}

#[test]
fn overload_sheds_instead_of_queueing_unboundedly() {
    // queue_cap 2 with a long delay budget and one worker: a burst of
    // 16 pipelined requests must see some Shed responses, and every
    // request gets exactly one answer.
    let policy = BatchPolicy::new(2, Duration::from_millis(200)).with_queue_cap(2);
    let server = start(1, policy);
    let mut client = Client::connect(server.local_addr()).unwrap();

    let n = 16u64;
    for seed in 0..n {
        client
            .send(1, SIZE as u16, SIZE as u16, &image(seed))
            .unwrap();
    }
    let mut ok = 0u64;
    let mut shed = 0u64;
    for _ in 0..n {
        let resp = client.recv().unwrap().expect("every request is answered");
        match resp.status {
            Status::Ok => ok += 1,
            Status::Shed => shed += 1,
            Status::BadRequest => panic!("well-formed request marked bad"),
        }
    }
    assert_eq!(ok + shed, n);
    assert!(ok >= 2, "admitted requests must still complete, got {ok}");
    let stats = server.stats();
    assert_eq!(stats.completed, ok);
    assert_eq!(stats.shed, shed);
    server.shutdown();
}

#[test]
fn shutdown_drains_inflight_requests() {
    // A long delay budget means requests sit in the queue when
    // shutdown lands; drain semantics require they still complete.
    let server = start(1, BatchPolicy::new(32, Duration::from_secs(5)));
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();

    let n = 6u64;
    for seed in 0..n {
        client
            .send(1, SIZE as u16, SIZE as u16, &image(seed))
            .unwrap();
    }
    // Wait until all n are admitted (readers run on their own thread).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.queue_depth() < n as usize {
        assert!(
            std::time::Instant::now() < deadline,
            "requests never reached the queue"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // Receive on a helper thread so shutdown and recv can overlap.
    let (tx, rx) = mpsc::channel();
    let reader = std::thread::spawn(move || {
        for _ in 0..n {
            let resp = client.recv().unwrap().expect("drained response");
            tx.send(resp.status).unwrap();
        }
    });
    server.shutdown();
    reader.join().expect("reader thread");
    let mut ok = 0;
    while let Ok(status) = rx.try_recv() {
        assert_eq!(status, Status::Ok, "in-flight request dropped at shutdown");
        ok += 1;
    }
    assert_eq!(ok, n, "all queued requests must drain before shutdown");
}

#[test]
fn post_shutdown_connects_are_refused_or_shed() {
    let server = start(1, BatchPolicy::new(4, Duration::from_millis(2)));
    let addr: SocketAddr = server.local_addr();
    server.shutdown();
    // After shutdown the listener is gone; a connect either fails or
    // (if it races the accept-thread teardown) is closed immediately.
    if let Ok(mut client) = Client::connect(addr) {
        match client.infer(1, SIZE as u16, SIZE as u16, &image(0)) {
            Ok(resp) => assert_ne!(resp.status, Status::Ok),
            Err(_) => {} // connection reset: fine
        }
    }
}

/// The pre-serving autotune pass: with `ServeConfig::tune` set, every
/// worker replica is tuned for `Direction::Forward` before its thread
/// spawns, and the replicas share one cache — worker 0 measures, every
/// later worker boots entirely from warm cache hits. Serving answers
/// stay correct under whatever strategies the tuner picked.
#[test]
fn tuned_workers_warm_one_shared_cache_before_serving() {
    use gcnn_autotune::{MeasureParams, Policy, Repeats, SelectionSource, Tuner};

    let tuner = Tuner::new(Policy::Measure).with_params(MeasureParams {
        repeats: Repeats::new(1, 2),
        timeout_ms: None,
    });
    let cfg = ServeConfig::loopback(
        2,
        BatchPolicy::new(4, Duration::from_millis(2)),
        (1, SIZE, SIZE),
    )
    .with_tuning(tuner);
    let server = Server::start(cfg, |_| test_net()).expect("bind loopback");

    let report = server.tune_report();
    assert_eq!(report.len(), 2, "one schedule per worker");
    assert!(!report[0].is_empty(), "LeNet-5 has conv layers to tune");
    assert!(
        report[0]
            .iter()
            .all(|l| l.source == SelectionSource::Measured),
        "worker 0 must pay the measurement cost: {:?}",
        report[0]
    );
    assert_eq!(report[0].len(), report[1].len());
    assert!(
        report[1].iter().all(|l| l.source == SelectionSource::Cache),
        "worker 1 must boot from the cache worker 0 warmed: {:?}",
        report[1]
    );

    // Tuning may have swapped conv strategies; different algorithms
    // agree to float error, so compare against the untuned forward at
    // a tolerance that admits strategy-level reassociation.
    let mut client = Client::connect(server.local_addr()).unwrap();
    let net = test_net();
    let pixels = image(11);
    let resp = client
        .infer(1, SIZE as u16, SIZE as u16, &pixels)
        .expect("roundtrip");
    assert_eq!(resp.status, Status::Ok);
    let expected = local_logits(&net, &pixels);
    assert_eq!(resp.values.len(), CLASSES);
    for (got, want) in resp.values.iter().zip(&expected) {
        assert!(
            (got - want).abs() < 1e-3,
            "tuned serving diverged from reference forward: {got} vs {want}"
        );
    }
    server.shutdown();
}

#[test]
fn multiple_workers_serve_concurrent_connections() {
    let server = start(2, BatchPolicy::new(4, Duration::from_millis(5)));
    let addr = server.local_addr();
    let net = test_net();

    let handles: Vec<_> = (0..4u64)
        .map(|conn| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut out = Vec::new();
                for seed in 0..4u64 {
                    let pixels = image(conn * 100 + seed);
                    let resp = client.infer(1, SIZE as u16, SIZE as u16, &pixels).unwrap();
                    assert_eq!(resp.status, Status::Ok);
                    out.push((conn * 100 + seed, resp.values));
                }
                out
            })
        })
        .collect();
    for handle in handles {
        for (seed, values) in handle.join().expect("client thread") {
            let expected = local_logits(&net, &image(seed));
            for (got, want) in values.iter().zip(&expected) {
                assert!((got - want).abs() < 1e-5, "seed {seed} mispaired");
            }
        }
    }
    assert_eq!(server.stats().completed, 16);
    server.shutdown();
}
