//! Property tests for the batching state machine, driven under virtual
//! time: a simulated single worker with a fixed service time `S` runs
//! random arrival schedules against random policies, and we check the
//! invariants the server relies on:
//!
//! 1. **Order** — responses preserve arrival order (FIFO across and
//!    within batches), so request→response pairing is structural.
//! 2. **Cap** — no batch ever exceeds `max_batch`.
//! 3. **Latency bound** — with `queue_cap ≤ max_batch`, every admitted
//!    request is *popped* within `max_delay + S` of its arrival: its
//!    own deadline fires after `max_delay`, and the worker can be busy
//!    with at most one in-service batch when it does.
//! 4. **Accounting** — admitted + shed = offered, and shed only ever
//!    happens with the queue at its cap.
//!
//! Time is a plain `Instant` base plus microsecond offsets; nothing
//! here sleeps or touches a clock, so the suite is deterministic and
//! fast enough for proptest's default shrinking to be useful.

use std::time::{Duration, Instant};

use gcnn_serve::{BatchPolicy, Batcher};
use proptest::prelude::*;

/// One simulated run: a single worker that pops whenever the batcher is
/// ready and then serves for `service_us`. Returns, per admitted
/// request, `(arrival, pop_time)` in arrival order, plus the batch
/// sizes formed.
fn simulate(
    arrivals_us: &[u64],
    policy: BatchPolicy,
    service_us: u64,
) -> (Vec<(Instant, Instant)>, Vec<usize>, u64) {
    let base = Instant::now(); // never awaited; just an origin
    let at = |us: u64| base + Duration::from_micros(us);

    let mut batcher: Batcher<usize> = Batcher::new(policy);
    let mut popped: Vec<(usize, Instant)> = Vec::new(); // (id, pop time)
    let mut arrivals_of: Vec<Instant> = Vec::new();
    let mut batch_sizes = Vec::new();
    let mut shed = 0u64;
    // The worker is free again at this virtual time.
    let mut worker_free = at(0);
    let mut out = Vec::new();

    // The worker pops every batch that becomes ready no later than
    // `now` (or everything, when flushing at end of schedule). It acts
    // at the later of the batch's ready time and its own free time —
    // exactly the real worker's wait_timeout/pop loop, minus the clock.
    let mut worker_pops =
        |batcher: &mut Batcher<usize>, now: Instant, flush: bool, worker_free: &mut Instant| loop {
            if batcher.is_empty() {
                return;
            }
            let act = if batcher.len() >= batcher.policy().max_batch {
                // Ready the moment it filled; the worker acts as soon
                // as it is free.
                *worker_free
            } else {
                batcher
                    .oldest_deadline()
                    .expect("non-empty")
                    .max(*worker_free)
            };
            if act > now && !flush {
                return; // the next arrival happens first
            }
            batcher.pop_batch_into(&mut out);
            batch_sizes.push(out.len());
            for (id, _) in &out {
                popped.push((*id, act));
            }
            *worker_free = act + Duration::from_micros(service_us);
        };

    let mut next_id = 0usize;
    for &arr in arrivals_us {
        let now = at(arr);
        // Let the worker catch up on everything that became ready
        // strictly before this arrival.
        worker_pops(&mut batcher, now, false, &mut worker_free);
        arrivals_of.push(now);
        match batcher.offer(next_id, now) {
            Ok(()) => {}
            Err(_) => shed += 1,
        }
        next_id += 1;
        // A full batch may have just formed; serve it if the worker is
        // free by now.
        worker_pops(&mut batcher, now, false, &mut worker_free);
    }
    // Drain whatever is left (flush ignores "now").
    worker_pops(&mut batcher, at(u64::MAX / 2), true, &mut worker_free);

    // Arrival order == id order here; assert the pop stream itself is
    // in id order (the FIFO property), then report per-request
    // (arrival, pop) pairs.
    let ids: Vec<usize> = popped.iter().map(|(id, _)| *id).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "pop stream must preserve arrival order");

    (
        popped
            .into_iter()
            .map(|(id, pop)| (arrivals_of[id], pop))
            .collect(),
        batch_sizes,
        shed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Invariants 1, 2 and 4 under arbitrary schedules and policies.
    #[test]
    fn order_cap_and_accounting(
        gaps_us in proptest::collection::vec(0u64..5_000, 1..120),
        max_batch in 1usize..16,
        max_delay_us in 1u64..10_000,
        cap_batches in 1usize..5,
        service_us in 0u64..8_000,
    ) {
        let policy = BatchPolicy::new(max_batch, Duration::from_micros(max_delay_us))
            .with_queue_cap(max_batch * cap_batches);
        let mut arrivals = Vec::with_capacity(gaps_us.len());
        let mut t = 0u64;
        for g in &gaps_us {
            t += g;
            arrivals.push(t);
        }
        let (served, batch_sizes, shed) = simulate(&arrivals, policy, service_us);

        // Cap: no batch exceeds max_batch, none is empty.
        for &b in &batch_sizes {
            prop_assert!(b >= 1 && b <= max_batch, "batch of {b} under cap {max_batch}");
        }
        // Accounting: every offered request is served or shed, once.
        prop_assert_eq!(served.len() as u64 + shed, arrivals.len() as u64);
        // Images served == sum of batch sizes.
        prop_assert_eq!(batch_sizes.iter().sum::<usize>(), served.len());
    }

    /// Invariant 3: the latency bound `max_delay + S` holds whenever
    /// the queue cap does not exceed the batch cap (so an admitted
    /// request is always in the *next* batch to form).
    #[test]
    fn admitted_wait_is_bounded_by_delay_plus_service(
        gaps_us in proptest::collection::vec(0u64..5_000, 1..120),
        max_batch in 1usize..16,
        max_delay_us in 1u64..10_000,
        service_us in 0u64..8_000,
    ) {
        let policy = BatchPolicy::new(max_batch, Duration::from_micros(max_delay_us))
            .with_queue_cap(max_batch);
        let mut arrivals = Vec::with_capacity(gaps_us.len());
        let mut t = 0u64;
        for g in &gaps_us {
            t += g;
            arrivals.push(t);
        }
        let (served, _, _) = simulate(&arrivals, policy, service_us);

        let bound = Duration::from_micros(max_delay_us + service_us);
        for (i, (arrival, pop)) in served.iter().enumerate() {
            let waited = pop.duration_since(*arrival);
            prop_assert!(
                waited <= bound,
                "request {i} waited {waited:?}, bound {bound:?} \
                 (max_delay {max_delay_us}us + service {service_us}us)"
            );
        }
    }

    /// Shedding only happens at the cap; under an infinite cap nothing
    /// is ever shed.
    #[test]
    fn uncapped_queue_never_sheds(
        gaps_us in proptest::collection::vec(0u64..1_000, 1..80),
        max_batch in 1usize..8,
        max_delay_us in 1u64..5_000,
        service_us in 0u64..5_000,
    ) {
        let policy = BatchPolicy::new(max_batch, Duration::from_micros(max_delay_us))
            .with_queue_cap(usize::MAX);
        let mut arrivals = Vec::with_capacity(gaps_us.len());
        let mut t = 0u64;
        for g in &gaps_us {
            t += g;
            arrivals.push(t);
        }
        let (served, _, shed) = simulate(&arrivals, policy, service_us);
        prop_assert_eq!(shed, 0);
        prop_assert_eq!(served.len(), arrivals.len());
    }
}
