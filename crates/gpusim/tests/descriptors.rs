//! Descriptor subsystem acceptance tests:
//!
//! * golden-file round trip — the shipped `k40c.toml` must reproduce
//!   the hard-coded [`DeviceSpec::k40c`] field-for-field, so the text
//!   format cannot drift from the constructor the paper's figures were
//!   validated on;
//! * Maxwell validation — the `gm204.toml` descriptor must reproduce
//!   maxDNN's (arXiv:1501.06633) published platform numbers: 4612
//!   GFLOP/s peak, and 25 % register-limited occupancy for the
//!   Maxas-derived 256-thread / 128-register convolution kernel,
//!   within 5 %;
//! * malformed-input error paths, including property tests over
//!   randomly corrupted descriptor fixtures: corruption must surface
//!   as a typed [`DescriptorError`], never as a silently-absurd spec.

use gcnn_gpusim::descriptor::{
    parse_descriptor, DescriptorError, GM204_DESCRIPTOR, K40C_DESCRIPTOR,
};
use gcnn_gpusim::{device_table, lookup_device, occupancy, DeviceSpec, OccupancyLimiter};
use proptest::prelude::*;

#[test]
fn k40c_descriptor_round_trips_field_for_field() {
    let parsed = parse_descriptor(K40C_DESCRIPTOR).expect("golden descriptor parses");
    let golden = DeviceSpec::k40c();
    // PartialEq covers every field, but assert a few individually so a
    // mismatch names the field instead of dumping two structs.
    assert_eq!(parsed.name, golden.name);
    assert_eq!(parsed.sm_count, golden.sm_count);
    assert_eq!(parsed.registers_per_sm, golden.registers_per_sm);
    assert_eq!(parsed.shared_mem_per_sm, golden.shared_mem_per_sm);
    assert_eq!(parsed.global_mem_bytes, golden.global_mem_bytes);
    assert!((parsed.mem_bandwidth_gbs - golden.mem_bandwidth_gbs).abs() < f64::EPSILON);
    assert_eq!(parsed, golden);
}

#[test]
fn gm204_descriptor_round_trips_through_the_shorthand() {
    let parsed = parse_descriptor(GM204_DESCRIPTOR).expect("gm204 descriptor parses");
    assert_eq!(parsed, DeviceSpec::gm204());
    parsed.validate().expect("shipped descriptor validates");
}

#[test]
fn device_table_entries_all_parse_and_validate() {
    let table = device_table();
    assert!(table.len() >= 2, "need K40c plus at least one Maxwell");
    for (key, text) in table {
        let spec = parse_descriptor(text)
            .unwrap_or_else(|e| panic!("shipped descriptor `{key}` rejected: {e}"));
        spec.validate()
            .unwrap_or_else(|v| panic!("shipped descriptor `{key}` invalid: {v:?}"));
        assert_eq!(lookup_device(key).as_ref(), Some(&spec));
    }
}

/// maxDNN's platform headline: "the GTX980 has a peak of 4612 GFLOPS".
#[test]
fn gm204_peak_flops_matches_maxdnn() {
    let gm204 = DeviceSpec::gm204();
    let gflops = gm204.peak_flops() / 1e9;
    assert!(
        (gflops - 4612.0).abs() / 4612.0 < 0.05,
        "GM204 peak {gflops} GFLOP/s drifted from maxDNN's published 4612"
    );
}

/// maxDNN's convolution kernel inherits the Maxas SGEMM shape: 256
/// threads per block at 128 registers per thread. On GM204's 64 K
/// register file that admits 65536/4096 = 16 warps -> 2 resident
/// 8-warp blocks -> 25 % theoretical occupancy, register-limited —
/// the published low-occupancy / high-ILP operating point the paper
/// reports 96.3 % computational efficiency at. The occupancy model
/// must land within 5 % of that figure.
#[test]
fn gm204_occupancy_matches_maxdnn_within_5_percent() {
    const MAXDNN_PUBLISHED_OCCUPANCY: f64 = 0.25;
    let gm204 = DeviceSpec::gm204();
    let occ = occupancy(&gm204, 128, 0, 256);
    assert_eq!(occ.limiter, OccupancyLimiter::Registers);
    assert_eq!(occ.blocks_per_sm, 2);
    assert_eq!(occ.active_warps, 16);
    let rel_err = (occ.theoretical - MAXDNN_PUBLISHED_OCCUPANCY).abs() / MAXDNN_PUBLISHED_OCCUPANCY;
    assert!(
        rel_err < 0.05,
        "model occupancy {} vs maxDNN published {MAXDNN_PUBLISHED_OCCUPANCY} (rel err {rel_err})",
        occ.theoretical
    );
}

/// Maxwell raised the resident-block cap to 32: a tiny-block kernel
/// that was block-limited at 16 on Kepler doubles its residency.
#[test]
fn gm204_block_cap_doubles_keplers() {
    let occ_kepler = occupancy(&DeviceSpec::k40c(), 8, 0, 32);
    let occ_maxwell = occupancy(&DeviceSpec::gm204(), 8, 0, 32);
    assert_eq!(occ_kepler.blocks_per_sm, 16);
    assert_eq!(occ_maxwell.blocks_per_sm, 32);
}

#[test]
fn validator_rejects_inconsistent_specs() {
    let mut spec = DeviceSpec::k40c();
    spec.shared_mem_per_block = spec.shared_mem_per_sm + 1;
    let violations = spec.validate().unwrap_err();
    assert!(
        violations
            .iter()
            .any(|m| m.contains("shared_mem_per_block")),
        "{violations:?}"
    );

    let mut spec = DeviceSpec::k40c();
    spec.max_threads_per_block = 4096; // above max_threads_per_sm
    assert!(spec.validate().is_err());

    let mut spec = DeviceSpec::k40c();
    spec.mem_bandwidth_gbs = 0.0;
    assert!(spec.validate().is_err());

    let mut spec = DeviceSpec::k40c();
    spec.mem_bandwidth_gbs = f64::NAN;
    assert!(spec.validate().is_err());

    let mut spec = DeviceSpec::k40c();
    spec.registers_per_sm = 1024; // cannot hold one 255-register warp
    assert!(spec.validate().is_err());
}

#[test]
fn validator_reports_every_violation_not_just_the_first() {
    let mut spec = DeviceSpec::k40c();
    spec.sm_count = 0;
    spec.warp_size = 0;
    spec.mem_bandwidth_gbs = -1.0;
    let violations = spec.validate().unwrap_err();
    assert!(violations.len() >= 3, "{violations:?}");
}

// ---------------------------------------------------------------------------
// Property tests: corrupt descriptor fixtures
// ---------------------------------------------------------------------------

/// Zeroing any numeric field of a valid descriptor must yield a typed
/// error (missing/invalid/bad-value), never an accepted spec: every
/// numeric field of the schema is load-bearing for some model.
fn corrupt_numeric_line(descriptor: &str, line_idx: usize, replacement: &str) -> String {
    descriptor
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == line_idx {
                let key = l.split('=').next().unwrap_or("").trim();
                format!("{key} = {replacement}")
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Indices of assignment lines carrying numeric values.
fn numeric_line_indices(descriptor: &str) -> Vec<usize> {
    descriptor
        .lines()
        .enumerate()
        .filter(|(_, l)| {
            let t = l.trim();
            !t.starts_with('#') && t.contains('=') && !t.contains('"')
        })
        .map(|(i, _)| i)
        .collect()
}

proptest! {
    #[test]
    fn corrupting_any_numeric_field_to_zero_is_rejected(
        pick in 0usize..22,
        descriptor_choice in 0usize..2,
    ) {
        let descriptor = if descriptor_choice == 0 { K40C_DESCRIPTOR } else { GM204_DESCRIPTOR };
        let lines = numeric_line_indices(descriptor);
        let idx = lines[pick % lines.len()];
        let corrupted = corrupt_numeric_line(descriptor, idx, "0");
        match parse_descriptor(&corrupted) {
            // Zero is invalid for every field except the two fixed
            // overheads, which legitimately may be zero.
            Ok(spec) => {
                prop_assert!(
                    descriptor.lines().nth(idx).unwrap().contains("_us"),
                    "zeroed `{}` was accepted",
                    descriptor.lines().nth(idx).unwrap()
                );
                prop_assert!(spec.validate().is_ok());
            }
            Err(DescriptorError::Invalid(v)) => prop_assert!(!v.is_empty()),
            Err(_) => {}
        }
    }

    #[test]
    fn corrupting_any_numeric_field_to_garbage_is_rejected(
        pick in 0usize..22,
        garbage_pick in 0usize..6,
    ) {
        const GARBAGE: [&str; 6] = ["xyzzy", "-", "12abc", "1.2.3", "0x10", "NaNarama"];
        let garbage = GARBAGE[garbage_pick];
        let lines = numeric_line_indices(K40C_DESCRIPTOR);
        let idx = lines[pick % lines.len()];
        let corrupted = corrupt_numeric_line(K40C_DESCRIPTOR, idx, garbage);
        prop_assert!(
            matches!(parse_descriptor(&corrupted), Err(DescriptorError::BadValue { .. })),
            "garbage value `{garbage}` must be a BadValue error"
        );
    }

    #[test]
    fn deleting_any_assignment_reports_it_missing(pick in 0usize..23) {
        let lines: Vec<usize> = K40C_DESCRIPTOR
            .lines()
            .enumerate()
            .filter(|(_, l)| {
                let t = l.trim();
                !t.starts_with('#') && t.contains('=')
            })
            .map(|(i, _)| i)
            .collect();
        let idx = lines[pick % lines.len()];
        let text = K40C_DESCRIPTOR
            .lines()
            .enumerate()
            .filter(|(i, _)| *i != idx)
            .map(|(_, l)| l)
            .collect::<Vec<_>>()
            .join("\n");
        let key = K40C_DESCRIPTOR
            .lines()
            .nth(idx)
            .unwrap()
            .split('=')
            .next()
            .unwrap()
            .trim()
            .to_string();
        match parse_descriptor(&text) {
            Err(DescriptorError::MissingKeys(keys)) => prop_assert_eq!(keys, vec![key]),
            other => prop_assert!(false, "expected MissingKeys for `{}`, got {:?}", key, other),
        }
    }

    #[test]
    fn truncated_descriptors_never_panic_or_validate(cut in 1usize..600) {
        let text: String = K40C_DESCRIPTOR.chars().take(cut).collect();
        // Any prefix must either fail cleanly or — when the cut lands
        // exactly on a line boundary early enough — report missing keys.
        if let Ok(spec) = parse_descriptor(&text) {
            // Only the full descriptor has all 24 keys.
            prop_assert_eq!(spec, DeviceSpec::k40c());
        }
    }
}
