//! Property-based tests for the GPU performance model: the mechanisms
//! must be monotone and bounded the way real hardware is.

use gcnn_gpusim::timing::time_kernel;
use gcnn_gpusim::{occupancy, AccessPattern, DeviceSpec, KernelDesc, LaunchConfig};
use proptest::prelude::*;

fn dev() -> DeviceSpec {
    DeviceSpec::k40c()
}

fn block_sizes() -> impl Strategy<Value = u32> {
    prop_oneof![
        Just(32u32),
        Just(64),
        Just(128),
        Just(256),
        Just(512),
        Just(1024)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Occupancy never exceeds device limits and never reports zero
    /// resident blocks for a feasible kernel.
    #[test]
    fn occupancy_bounded(regs in 0u32..200, smem_kb in 0u32..48, block in block_sizes()) {
        let d = dev();
        // Skip infeasible combinations (a single block that can't fit).
        let warps_per_block = block.div_ceil(d.warp_size);
        let regs_per_warp = ((regs * 32).div_ceil(256) * 256).max(1);
        prop_assume!(regs == 0 || d.registers_per_sm / regs_per_warp >= warps_per_block);

        let occ = occupancy(&d, regs, smem_kb * 1024, block);
        prop_assert!(occ.blocks_per_sm >= 1);
        prop_assert!(occ.active_warps <= d.max_warps_per_sm);
        prop_assert!(occ.blocks_per_sm <= d.max_blocks_per_sm);
        prop_assert!(occ.theoretical > 0.0 && occ.theoretical <= 1.0);
    }

    /// More registers never increase occupancy (same block/smem).
    #[test]
    fn occupancy_monotone_in_registers(r1 in 1u32..120, extra in 1u32..80, block in block_sizes()) {
        let d = dev();
        let r2 = r1 + extra;
        let warps_per_block = block.div_ceil(d.warp_size);
        let fits = |r: u32| d.registers_per_sm / (((r * 32).div_ceil(256) * 256).max(1)) >= warps_per_block;
        prop_assume!(fits(r1) && fits(r2));
        let o1 = occupancy(&d, r1, 0, block);
        let o2 = occupancy(&d, r2, 0, block);
        prop_assert!(o2.active_warps <= o1.active_warps);
    }

    /// More shared memory per block never increases occupancy.
    #[test]
    fn occupancy_monotone_in_smem(s1 in 1u32..24, extra in 1u32..24, block in block_sizes()) {
        let d = dev();
        let o1 = occupancy(&d, 32, s1 * 1024, block);
        let o2 = occupancy(&d, 32, (s1 + extra) * 1024, block);
        prop_assert!(o2.active_warps <= o1.active_warps);
    }

    /// Runtime is monotone in FLOPs (all else equal).
    #[test]
    fn time_monotone_in_flops(flops in 1u64..1_000_000_000, scale in 2u64..10) {
        let mut k = KernelDesc::new("t", LaunchConfig::new(1024, 256));
        k.flops = flops;
        let t1 = time_kernel(&dev(), &k).time_ms;
        k.flops = flops * scale;
        let t2 = time_kernel(&dev(), &k).time_ms;
        prop_assert!(t2 >= t1);
    }

    /// Runtime is monotone in memory traffic.
    #[test]
    fn time_monotone_in_bytes(bytes in 1u64..1_000_000_000, scale in 2u64..10) {
        let mut k = KernelDesc::new("t", LaunchConfig::new(1024, 256));
        k.gmem_load_bytes = bytes;
        let t1 = time_kernel(&dev(), &k).time_ms;
        k.gmem_load_bytes = bytes * scale;
        let t2 = time_kernel(&dev(), &k).time_ms;
        prop_assert!(t2 >= t1);
    }

    /// Worse coalescing never speeds a kernel up, and the reported gld
    /// metric is the pattern's efficiency regardless of size.
    #[test]
    fn coalescing_never_helps(bytes in 1_000u64..100_000_000, stride in 1u32..64) {
        let mut k = KernelDesc::new("t", LaunchConfig::new(1024, 256));
        k.gmem_load_bytes = bytes;
        k.load_pattern = AccessPattern::Coalesced;
        let good = time_kernel(&dev(), &k);
        k.load_pattern = AccessPattern::Strided { stride_words: stride };
        let bad = time_kernel(&dev(), &k);
        prop_assert!(bad.time_ms >= good.time_ms);
        prop_assert!(bad.metrics.gld_efficiency <= good.metrics.gld_efficiency + 1e-9);
    }

    /// Metrics stay in their physical ranges for arbitrary kernels.
    #[test]
    fn metrics_physical_ranges(
        flops in 0u64..10_000_000_000,
        loads in 0u64..1_000_000_000,
        stores in 0u64..1_000_000_000,
        regs in 1u32..200,
        wee in 0.2f32..1.0,
        grid in 1u32..100_000,
        block in block_sizes(),
    ) {
        let d = dev();
        let warps_per_block = block.div_ceil(d.warp_size);
        let fits = d.registers_per_sm / (((regs * 32).div_ceil(256) * 256).max(1)) >= warps_per_block;
        prop_assume!(fits);
        let mut k = KernelDesc::new("t", LaunchConfig::new(grid, block));
        k.flops = flops;
        k.gmem_load_bytes = loads;
        k.gmem_store_bytes = stores;
        k.regs_per_thread = regs;
        k.warp_efficiency = wee;
        let r = time_kernel(&d, &k);
        prop_assert!(r.time_ms > 0.0);
        let m = &r.metrics;
        prop_assert!((0.0..=100.0).contains(&m.achieved_occupancy));
        prop_assert!((0.0..=100.0).contains(&m.gld_efficiency));
        prop_assert!((0.0..=100.0).contains(&m.gst_efficiency));
        prop_assert!((0.0..=100.0).contains(&m.warp_execution_efficiency));
        prop_assert!(m.ipc >= 0.0 && m.ipc < 16.0);
        prop_assert!(m.flop_efficiency <= 100.0 + 1e-9);
    }
}
