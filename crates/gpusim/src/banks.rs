//! Shared-memory bank-conflict model.
//!
//! Paper §V-C-3: *"Shared memory is divided into banks on GPUs and bank
//! conflict (or broadcast) occurs when multiple threads in a warp
//! simultaneously access the same bank. When a bank conflict occurs, the
//! accesses to the same bank are serialized […] A low shared efficiency
//! implies that there are bank conflicts during kernel execution."*
//!
//! The conflict degree of a warp accessing words at stride `s` over `B`
//! banks is `gcd(s, B)` (each of the `B/gcd` distinct banks serves
//! `gcd` lanes serially); a stride of 0 is a broadcast served in one
//! cycle for all lanes, which is why nvprof can report shared efficiency
//! **above 100 %** — the paper observes >130 % for cuDNN.

use crate::device::DeviceSpec;
use crate::kernel::SharedAccessDesc;

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Number of serialized shared-memory cycles one warp access needs:
/// 1 = conflict-free, `n` = n-way conflict.
pub fn conflict_degree(dev: &DeviceSpec, stride_words: u32) -> u32 {
    if stride_words == 0 {
        1 // broadcast
    } else {
        gcd(stride_words, dev.shared_banks)
    }
}

/// The nvprof `shared_efficiency` metric: requested / required shared
/// throughput.
///
/// * conflict-free unit stride → 100 %
/// * n-way conflict → 100/n %
/// * broadcast component → each broadcast access serves the whole warp
///   with one fetch, crediting up to `warp_size×` — mixing broadcasts
///   into the stream pushes the metric above 100 %.
pub fn shared_efficiency(dev: &DeviceSpec, access: &SharedAccessDesc) -> f64 {
    if access.bytes == 0 {
        return 1.0;
    }
    let degree = conflict_degree(dev, access.bank_stride_words) as f64;
    let strided_eff = 1.0 / degree;
    let broadcast_eff = dev.warp_size as f64; // one fetch serves 32 lanes
    let f = access.broadcast_fraction.clamp(0.0, 1.0) as f64;
    f * broadcast_eff + (1.0 - f) * strided_eff
}

/// Serialized shared-memory traffic in bytes: useful bytes inflated by
/// the conflict degree (broadcast fraction deflates it).
pub fn serialized_bytes(dev: &DeviceSpec, access: &SharedAccessDesc) -> u64 {
    if access.bytes == 0 {
        return 0;
    }
    let eff = shared_efficiency(dev, access);
    (access.bytes as f64 / eff).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::k40c()
    }

    fn acc(bytes: u64, stride: u32, broadcast: f32) -> SharedAccessDesc {
        SharedAccessDesc {
            bytes,
            bank_stride_words: stride,
            broadcast_fraction: broadcast,
        }
    }

    #[test]
    fn unit_stride_is_conflict_free() {
        assert_eq!(conflict_degree(&dev(), 1), 1);
        assert!((shared_efficiency(&dev(), &acc(100, 1, 0.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn odd_strides_are_conflict_free() {
        for s in [3u32, 5, 7, 9, 17, 31] {
            assert_eq!(conflict_degree(&dev(), s), 1, "stride {s}");
        }
    }

    #[test]
    fn power_of_two_strides_conflict() {
        assert_eq!(conflict_degree(&dev(), 2), 2);
        assert_eq!(conflict_degree(&dev(), 8), 8);
        assert_eq!(conflict_degree(&dev(), 32), 32);
        assert_eq!(conflict_degree(&dev(), 64), 32);
    }

    #[test]
    fn broadcast_exceeds_full_efficiency() {
        // 20 % broadcast mix on an otherwise conflict-free stream gives
        // 0.2·32 + 0.8·1 = 7.2 — the >100 % regime the paper sees in
        // cuDNN.
        let e = shared_efficiency(&dev(), &acc(100, 1, 0.2));
        assert!(e > 1.0, "{e}");
    }

    #[test]
    fn conflicted_stream_degrades() {
        // 8-way conflict → 12.5 %, matching Theano-fft's 8–20 % band.
        let e = shared_efficiency(&dev(), &acc(100, 8, 0.0));
        assert!((e - 0.125).abs() < 1e-12);
    }

    #[test]
    fn serialized_bytes_scale_with_conflicts() {
        assert_eq!(serialized_bytes(&dev(), &acc(1000, 2, 0.0)), 2000);
        assert_eq!(serialized_bytes(&dev(), &acc(1000, 1, 0.0)), 1000);
        assert_eq!(serialized_bytes(&dev(), &acc(0, 32, 0.0)), 0);
    }

    #[test]
    fn gcd_helper() {
        assert_eq!(gcd(32, 8), 8);
        assert_eq!(gcd(7, 32), 1);
        assert_eq!(gcd(0, 5), 5);
    }
}
