//! GPU device descriptions.

use serde::{Deserialize, Serialize};

/// Static description of a GPU, in the terms the occupancy and timing
/// models consume.
///
/// [`DeviceSpec::k40c`] reproduces the paper's experimental platform
/// (§III-A) plus the Kepler GK110B allocation granularities from the
/// CUDA occupancy calculator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// CUDA cores per SM.
    pub cores_per_sm: u32,
    /// Core clock in MHz.
    pub clock_mhz: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Maximum registers one thread may use.
    pub max_registers_per_thread: u32,
    /// Register allocation granularity (registers per warp are rounded
    /// up to a multiple of this).
    pub register_alloc_granularity: u32,
    /// Shared memory per SM, bytes.
    pub shared_mem_per_sm: u32,
    /// Maximum shared memory per block, bytes.
    pub shared_mem_per_block: u32,
    /// Shared-memory allocation granularity, bytes.
    pub shared_alloc_granularity: u32,
    /// Number of shared-memory banks.
    pub shared_banks: u32,
    /// Shared-memory bank width in bytes.
    pub shared_bank_bytes: u32,
    /// Device (global) memory capacity, bytes.
    pub global_mem_bytes: u64,
    /// Peak global-memory bandwidth, GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Global-memory transaction size, bytes.
    pub transaction_bytes: u32,
    /// Effective PCIe bandwidth for pinned host memory, GB/s.
    pub pcie_pinned_gbs: f64,
    /// Effective PCIe bandwidth for pageable host memory, GB/s.
    pub pcie_pageable_gbs: f64,
    /// Fixed cost of one kernel launch, microseconds.
    pub launch_overhead_us: f64,
    /// Fixed latency of one PCIe transfer, microseconds.
    pub transfer_latency_us: f64,
}

impl DeviceSpec {
    /// The paper's Tesla K40c (§III-A): *"15 Streaming Multiprocessors,
    /// each SM with 192 processing units […] maximum core clock rate of
    /// 745 MHz. Therefore, all the 2880 CUDA cores provide a peak
    /// single-precision floating point performance of 4.29 TFLOPS. Each
    /// SM has 256 KB register files and 48 KB on-chip memory. The card is
    /// also equipped with 12 GB device memory and has 288 GB/s peak
    /// memory bandwidth."*
    pub fn k40c() -> Self {
        DeviceSpec {
            name: "Tesla K40c".to_string(),
            sm_count: 15,
            cores_per_sm: 192,
            clock_mhz: 745,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 16,
            max_threads_per_block: 1024,
            registers_per_sm: 65_536,
            max_registers_per_thread: 255,
            register_alloc_granularity: 256,
            shared_mem_per_sm: 48 * 1024,
            shared_mem_per_block: 48 * 1024,
            shared_alloc_granularity: 256,
            shared_banks: 32,
            shared_bank_bytes: 4,
            global_mem_bytes: 12 * 1024 * 1024 * 1024,
            mem_bandwidth_gbs: 288.0,
            transaction_bytes: 128,
            pcie_pinned_gbs: 10.0,
            pcie_pageable_gbs: 6.0,
            launch_overhead_us: 5.0,
            transfer_latency_us: 10.0,
        }
    }

    /// One GK210 die of a Tesla K80 (the K40's dual-die sibling): 13
    /// SMs at a lower clock but a doubled register file per SM.
    pub fn k80_single_die() -> Self {
        DeviceSpec {
            name: "Tesla K80 (one die)".to_string(),
            sm_count: 13,
            clock_mhz: 562,
            registers_per_sm: 131_072,
            mem_bandwidth_gbs: 240.0,
            ..Self::k40c()
        }
    }

    /// GeForce GTX Titan X (Maxwell GM200): more, smaller SMs at a
    /// higher clock, 96 KB shared per SM (48 KB per block), 336 GB/s.
    pub fn titan_x_maxwell() -> Self {
        DeviceSpec {
            name: "GTX Titan X (Maxwell)".to_string(),
            sm_count: 24,
            cores_per_sm: 128,
            clock_mhz: 1000,
            max_blocks_per_sm: 32,
            shared_mem_per_sm: 96 * 1024,
            global_mem_bytes: 12 * 1024 * 1024 * 1024,
            mem_bandwidth_gbs: 336.0,
            ..Self::k40c()
        }
    }

    /// GeForce GTX 980 (Maxwell GM204) — the platform maxDNN
    /// (arXiv:1501.06633) published its occupancy/efficiency numbers
    /// on. Shorthand for parsing the shipped `gm204` descriptor; the
    /// two are pinned equal by `tests/descriptors.rs`.
    pub fn gm204() -> Self {
        crate::descriptor::parse_descriptor(crate::descriptor::GM204_DESCRIPTOR)
            .expect("shipped gm204 descriptor parses and validates (pinned by test)")
    }

    /// Check the spec's internal consistency, returning every violated
    /// invariant (empty `Err` never happens — an invalid spec names at
    /// least one violation).
    ///
    /// The occupancy, timing and transfer models divide by most of
    /// these fields; a descriptor that types zero SMs or a per-block
    /// shared-memory limit above the per-SM capacity must be rejected
    /// at construction, not discovered as a NaN three models later.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut v = Vec::new();
        let positive = [
            ("sm_count", self.sm_count),
            ("cores_per_sm", self.cores_per_sm),
            ("clock_mhz", self.clock_mhz),
            ("warp_size", self.warp_size),
            ("max_threads_per_sm", self.max_threads_per_sm),
            ("max_warps_per_sm", self.max_warps_per_sm),
            ("max_blocks_per_sm", self.max_blocks_per_sm),
            ("max_threads_per_block", self.max_threads_per_block),
            ("registers_per_sm", self.registers_per_sm),
            ("max_registers_per_thread", self.max_registers_per_thread),
            (
                "register_alloc_granularity",
                self.register_alloc_granularity,
            ),
            ("shared_mem_per_sm", self.shared_mem_per_sm),
            ("shared_mem_per_block", self.shared_mem_per_block),
            ("shared_alloc_granularity", self.shared_alloc_granularity),
            ("shared_banks", self.shared_banks),
            ("shared_bank_bytes", self.shared_bank_bytes),
            ("transaction_bytes", self.transaction_bytes),
        ];
        for (name, value) in positive {
            if value == 0 {
                v.push(format!("{name} must be > 0"));
            }
        }
        if self.name.trim().is_empty() {
            v.push("name must be non-empty".to_string());
        }
        if self.global_mem_bytes == 0 {
            v.push("global_mem_bytes must be > 0".to_string());
        }
        let finite_positive = [
            ("mem_bandwidth_gbs", self.mem_bandwidth_gbs),
            ("pcie_pinned_gbs", self.pcie_pinned_gbs),
            ("pcie_pageable_gbs", self.pcie_pageable_gbs),
        ];
        for (name, value) in finite_positive {
            if !(value.is_finite() && value > 0.0) {
                v.push(format!("{name} must be finite and > 0"));
            }
        }
        for (name, value) in [
            ("launch_overhead_us", self.launch_overhead_us),
            ("transfer_latency_us", self.transfer_latency_us),
        ] {
            if !(value.is_finite() && value >= 0.0) {
                v.push(format!("{name} must be finite and >= 0"));
            }
        }
        // Cross-field consistency: the limits the occupancy model
        // combines must admit at least one maximal block.
        if self.warp_size > 0
            && self.max_warps_per_sm > 0
            && self.max_warps_per_sm * self.warp_size > self.max_threads_per_sm
        {
            v.push(format!(
                "max_warps_per_sm ({}) x warp_size ({}) exceeds max_threads_per_sm ({})",
                self.max_warps_per_sm, self.warp_size, self.max_threads_per_sm
            ));
        }
        if self.max_threads_per_block > self.max_threads_per_sm {
            v.push(format!(
                "max_threads_per_block ({}) exceeds max_threads_per_sm ({})",
                self.max_threads_per_block, self.max_threads_per_sm
            ));
        }
        if self.max_threads_per_block < self.warp_size {
            v.push(format!(
                "max_threads_per_block ({}) below warp_size ({})",
                self.max_threads_per_block, self.warp_size
            ));
        }
        if self.shared_mem_per_block > self.shared_mem_per_sm {
            v.push(format!(
                "shared_mem_per_block ({}) exceeds shared_mem_per_sm ({})",
                self.shared_mem_per_block, self.shared_mem_per_sm
            ));
        }
        if self.max_registers_per_thread > 0
            && self.warp_size > 0
            && u64::from(self.max_registers_per_thread) * u64::from(self.warp_size)
                > u64::from(self.registers_per_sm)
        {
            v.push(format!(
                "register file ({}) cannot hold one warp at max_registers_per_thread ({})",
                self.registers_per_sm, self.max_registers_per_thread
            ));
        }
        if v.is_empty() {
            Ok(())
        } else {
            Err(v)
        }
    }

    /// Total CUDA cores.
    pub fn total_cores(&self) -> u32 {
        self.sm_count * self.cores_per_sm
    }

    /// Peak single-precision throughput in FLOP/s (2 FLOPs per core per
    /// cycle — fused multiply-add).
    pub fn peak_flops(&self) -> f64 {
        2.0 * self.total_cores() as f64 * self.clock_mhz as f64 * 1e6
    }

    /// Peak global-memory bandwidth in bytes/s.
    pub fn mem_bandwidth_bytes(&self) -> f64 {
        self.mem_bandwidth_gbs * 1e9
    }

    /// Aggregate shared-memory bandwidth in bytes/s (all SMs, all banks,
    /// one bank-width word per bank per cycle).
    pub fn shared_bandwidth_bytes(&self) -> f64 {
        self.sm_count as f64
            * self.shared_banks as f64
            * self.shared_bank_bytes as f64
            * self.clock_mhz as f64
            * 1e6
    }

    /// Clock period in seconds.
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / (self.clock_mhz as f64 * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40c_matches_paper_headline_numbers() {
        let d = DeviceSpec::k40c();
        assert_eq!(d.total_cores(), 2880);
        // Paper: "peak single-precision floating point performance of
        // 4.29 TFLOPS".
        let tflops = d.peak_flops() / 1e12;
        assert!((tflops - 4.29).abs() < 0.01, "got {tflops}");
        assert_eq!(d.global_mem_bytes, 12 * 1024 * 1024 * 1024);
        assert!((d.mem_bandwidth_gbs - 288.0).abs() < f64::EPSILON);
        // "256KB register files" = 65536 × 4-byte registers.
        assert_eq!(d.registers_per_sm * 4, 256 * 1024);
        assert_eq!(d.shared_mem_per_sm, 48 * 1024);
    }

    #[test]
    fn device_zoo_headline_flops() {
        // K80 (one die): 2 × 13 × 192 × 562 MHz ≈ 2.8 TFLOP/s.
        let k80 = DeviceSpec::k80_single_die();
        assert!((k80.peak_flops() / 1e12 - 2.8).abs() < 0.1);
        assert_eq!(
            k80.registers_per_sm,
            2 * DeviceSpec::k40c().registers_per_sm
        );
        // Titan X: 2 × 3072 × 1000 MHz ≈ 6.1 TFLOP/s.
        let tx = DeviceSpec::titan_x_maxwell();
        assert_eq!(tx.total_cores(), 3072);
        assert!((tx.peak_flops() / 1e12 - 6.14).abs() < 0.1);
        assert!(tx.mem_bandwidth_gbs > k80.mem_bandwidth_gbs);
    }

    #[test]
    fn derived_quantities_positive() {
        let d = DeviceSpec::k40c();
        assert!(d.mem_bandwidth_bytes() > 1e11);
        assert!(d.shared_bandwidth_bytes() > d.mem_bandwidth_bytes());
        assert!(d.cycle_seconds() > 0.0 && d.cycle_seconds() < 1e-8);
    }
}
