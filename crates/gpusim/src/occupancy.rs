//! The CUDA occupancy calculation.
//!
//! Paper §V-C-1: *"Occupancy is limited by three potential factors:
//! register usage, shared memory usage and block size."* This module
//! computes theoretical occupancy under all four CUDA limits (those
//! three plus the resident-block cap) with Kepler allocation
//! granularities, and reports which limit bound.

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Which resource capped the number of resident blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OccupancyLimiter {
    /// The 64-warps-per-SM ceiling.
    Warps,
    /// The register file.
    Registers,
    /// Shared memory.
    SharedMemory,
    /// The 16-resident-blocks ceiling.
    Blocks,
}

/// Result of the occupancy calculation for one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident warps per SM.
    pub active_warps: u32,
    /// `active_warps / max_warps_per_sm`.
    pub theoretical: f64,
    /// The binding resource.
    pub limiter: OccupancyLimiter,
}

fn div_round_up(a: u32, b: u32) -> u32 {
    a.div_ceil(b)
}

fn round_up_to(value: u32, granularity: u32) -> u32 {
    div_round_up(value, granularity) * granularity
}

/// Warps per SM the register file alone permits — the §V-C-1 headline
/// quantity (116 regs/thread on a K40c → 17 warps, "far less than
/// device maximum active threads 2048 (64 active warps)").
pub fn warps_by_registers(dev: &DeviceSpec, regs_per_thread: u32) -> u32 {
    if regs_per_thread == 0 {
        return dev.max_warps_per_sm;
    }
    let regs_per_warp = round_up_to(
        regs_per_thread * dev.warp_size,
        dev.register_alloc_granularity,
    );
    (dev.registers_per_sm / regs_per_warp).min(dev.max_warps_per_sm)
}

/// Compute theoretical occupancy for a kernel with the given per-thread
/// register count, per-block shared memory and block size.
///
/// # Panics
/// Panics if `block_threads` is zero or exceeds the device block limit,
/// or if a single block can never fit (registers or shared memory).
pub fn occupancy(
    dev: &DeviceSpec,
    regs_per_thread: u32,
    smem_per_block: u32,
    block_threads: u32,
) -> Occupancy {
    assert!(block_threads > 0, "occupancy: zero block size");
    assert!(
        block_threads <= dev.max_threads_per_block,
        "occupancy: block {} exceeds device max {}",
        block_threads,
        dev.max_threads_per_block
    );

    let warps_per_block = div_round_up(block_threads, dev.warp_size);

    // Warp limit.
    let blocks_by_warps = dev.max_warps_per_sm / warps_per_block;

    // Register limit (Kepler allocates registers per warp, rounded up to
    // the allocation granularity).
    let blocks_by_regs = if regs_per_thread == 0 {
        u32::MAX
    } else {
        let regs_per_warp = round_up_to(
            regs_per_thread * dev.warp_size,
            dev.register_alloc_granularity,
        );
        let warps_by_regs = dev.registers_per_sm / regs_per_warp;
        assert!(
            warps_by_regs >= warps_per_block,
            "occupancy: one block needs {} warps but registers allow only {}",
            warps_per_block,
            warps_by_regs
        );
        warps_by_regs / warps_per_block
    };

    // Shared-memory limit.
    let blocks_by_smem = if smem_per_block == 0 {
        u32::MAX
    } else {
        let smem = round_up_to(smem_per_block, dev.shared_alloc_granularity);
        assert!(
            smem <= dev.shared_mem_per_block,
            "occupancy: block shared memory {} exceeds device limit {}",
            smem,
            dev.shared_mem_per_block
        );
        dev.shared_mem_per_sm / smem
    };

    let candidates = [
        (blocks_by_warps, OccupancyLimiter::Warps),
        (blocks_by_regs, OccupancyLimiter::Registers),
        (blocks_by_smem, OccupancyLimiter::SharedMemory),
        (dev.max_blocks_per_sm, OccupancyLimiter::Blocks),
    ];
    let (blocks, limiter) = candidates
        .into_iter()
        .min_by_key(|(b, _)| *b)
        .expect("non-empty candidate list");

    let active_warps = (blocks * warps_per_block).min(dev.max_warps_per_sm);
    Occupancy {
        blocks_per_sm: blocks,
        active_warps,
        theoretical: active_warps as f64 / dev.max_warps_per_sm as f64,
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k40() -> DeviceSpec {
        DeviceSpec::k40c()
    }

    /// Paper §V-C-1: cuda-convnet2 uses 116 registers per thread; "the
    /// theoretical active threads are only 564 (17 active warps), which
    /// is far less than device maximum active threads 2048".
    #[test]
    fn paper_cuda_convnet2_register_example() {
        // 116 regs × 32 = 3712 → rounded to 3840 → 65536/3840 = 17 warps
        // permitted by the register file (the paper's "17 active warps").
        assert_eq!(warps_by_registers(&k40(), 116), 17);
        // With cuda-convnet2's 128-thread filterActs blocks (4 warps),
        // block quantization lands at 4 blocks × 4 warps = 16 resident
        // warps — 25 % theoretical, matching the paper's 14–22 %
        // achieved-occupancy band.
        let occ = occupancy(&k40(), 116, 0, 128);
        assert_eq!(occ.active_warps, 16);
        assert_eq!(occ.limiter, OccupancyLimiter::Registers);
        assert!((occ.theoretical - 0.25).abs() < 1e-9);
    }

    #[test]
    fn unconstrained_kernel_hits_warp_limit() {
        // 32 regs/thread, no smem, 256-thread blocks: 65536/(32·32)=64
        // warps by regs, warp cap 64 → full occupancy, warp-limited.
        let occ = occupancy(&k40(), 32, 0, 256);
        assert_eq!(occ.active_warps, 64);
        assert!((occ.theoretical - 1.0).abs() < 1e-9);
        assert_eq!(occ.limiter, OccupancyLimiter::Warps);
    }

    #[test]
    fn shared_memory_limits() {
        // 16 KB per block → 3 blocks/SM (48 KB total); 256-thread blocks
        // → 24 warps.
        let occ = occupancy(&k40(), 16, 16 * 1024, 256);
        assert_eq!(occ.blocks_per_sm, 3);
        assert_eq!(occ.active_warps, 24);
        assert_eq!(occ.limiter, OccupancyLimiter::SharedMemory);
    }

    #[test]
    fn block_count_limit_binds_small_blocks() {
        // 32-thread blocks, trivial resources: 16-block cap → 16 warps.
        let occ = occupancy(&k40(), 8, 0, 32);
        assert_eq!(occ.blocks_per_sm, 16);
        assert_eq!(occ.active_warps, 16);
        assert_eq!(occ.limiter, OccupancyLimiter::Blocks);
    }

    #[test]
    fn register_granularity_rounds_up() {
        // 65 regs × 32 = 2080 → rounds to 2304; 65536/2304 = 28 warps.
        // Without granularity it would be 31.
        let occ = occupancy(&k40(), 65, 0, 32);
        assert!(occ.active_warps <= 28, "granularity ignored: {occ:?}");
    }

    #[test]
    fn partial_warp_blocks_round_up() {
        // 48-thread blocks occupy 2 warps of residency.
        let occ = occupancy(&k40(), 8, 0, 48);
        assert_eq!(occ.blocks_per_sm, 16); // block-limited
        assert_eq!(occ.active_warps, 32);
    }

    #[test]
    #[should_panic(expected = "exceeds device max")]
    fn rejects_oversized_block() {
        occupancy(&k40(), 8, 0, 2048);
    }

    #[test]
    #[should_panic(expected = "zero block size")]
    fn rejects_zero_block() {
        occupancy(&k40(), 8, 0, 0);
    }

    #[test]
    fn theano_fft_tiny_registers_high_theoretical() {
        // Theano-fft's Table II profile: 2 regs/thread, 4.5 KB smem.
        // With 128-thread blocks: smem allows 10 blocks (46 KB), warps
        // allow 16 → smem-limited at 40 warps = 62.5 % theoretical.
        let occ = occupancy(&k40(), 2, 4608, 128);
        assert_eq!(occ.limiter, OccupancyLimiter::SharedMemory);
        assert_eq!(occ.active_warps, 40);
    }
}
