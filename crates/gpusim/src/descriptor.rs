//! Data-driven device descriptors.
//!
//! [`DeviceSpec`] construction was originally hard-coded (one Rust
//! constructor per device); growing the simulator past the paper's
//! single K40c means new device generations must be *data*, not code.
//! This module parses a TOML-ish text format — `key = value` lines,
//! `#` comments, quoted strings, integers with optional `_` separators,
//! floats — using std only, per the workspace's no-new-deps rule.
//!
//! Every parsed spec passes [`DeviceSpec::validate`] before it is
//! returned, so a descriptor that types nonsense (zero SMs, a
//! per-block shared-memory limit above the per-SM capacity, negative
//! bandwidth) is a [`DescriptorError`], never a silently-absurd model.
//!
//! The shipped descriptors live under `crates/gpusim/descriptors/` and
//! are embedded at compile time; [`device_table`] exposes them by key.
//! `k40c` is the golden file — parsing it must equal
//! [`DeviceSpec::k40c`] field-for-field (a round-trip test pins this) —
//! and `gm204` is the Maxwell generation validated against maxDNN's
//! published occupancy/efficiency numbers (arXiv:1501.06633).

use crate::device::DeviceSpec;
use std::collections::BTreeMap;
use std::fmt;

/// The embedded Tesla K40c descriptor (the paper's platform).
pub const K40C_DESCRIPTOR: &str = include_str!("../descriptors/k40c.toml");

/// The embedded GTX 980 (Maxwell GM204) descriptor (maxDNN's platform).
pub const GM204_DESCRIPTOR: &str = include_str!("../descriptors/gm204.toml");

/// Why a descriptor failed to parse or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DescriptorError {
    /// A line that is neither blank, a comment, nor `key = value`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The same key assigned twice.
    DuplicateKey {
        /// 1-based line number of the second assignment.
        line: usize,
        /// The repeated key.
        key: String,
    },
    /// A key the schema does not know.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// The unrecognized key.
        key: String,
    },
    /// A value that does not parse as its field's type.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The key whose value was rejected.
        key: String,
        /// What was expected.
        expected: &'static str,
    },
    /// Required fields absent from the descriptor.
    MissingKeys(Vec<String>),
    /// The parsed spec violated a [`DeviceSpec::validate`] invariant.
    Invalid(Vec<String>),
}

impl fmt::Display for DescriptorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DescriptorError::Malformed { line, message } => {
                write!(f, "line {line}: {message}")
            }
            DescriptorError::DuplicateKey { line, key } => {
                write!(f, "line {line}: duplicate key `{key}`")
            }
            DescriptorError::UnknownKey { line, key } => {
                write!(f, "line {line}: unknown key `{key}`")
            }
            DescriptorError::BadValue {
                line,
                key,
                expected,
            } => {
                write!(f, "line {line}: `{key}` expects {expected}")
            }
            DescriptorError::MissingKeys(keys) => {
                write!(f, "missing required keys: {}", keys.join(", "))
            }
            DescriptorError::Invalid(violations) => {
                write!(
                    f,
                    "descriptor violates invariants: {}",
                    violations.join("; ")
                )
            }
        }
    }
}

impl std::error::Error for DescriptorError {}

/// One parsed `key = value` assignment, pre-typing.
enum RawValue {
    /// A quoted string.
    Str(String),
    /// A bare numeric token (typed per-field as u32/u64/f64 later).
    Num(String),
}

/// Split descriptor text into `key -> (line, raw value)` assignments.
fn parse_assignments(text: &str) -> Result<BTreeMap<String, (usize, RawValue)>, DescriptorError> {
    let mut map = BTreeMap::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(DescriptorError::Malformed {
                line: line_no,
                message: format!("expected `key = value`, got `{line}`"),
            });
        };
        let key = key.trim();
        let value = value.trim();
        if key.is_empty()
            || !key
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            return Err(DescriptorError::Malformed {
                line: line_no,
                message: format!("bad key `{key}` (lowercase snake_case required)"),
            });
        }
        if value.is_empty() {
            return Err(DescriptorError::Malformed {
                line: line_no,
                message: format!("`{key}` has no value"),
            });
        }
        let raw = if let Some(inner) = value.strip_prefix('"') {
            let Some(inner) = inner.strip_suffix('"') else {
                return Err(DescriptorError::Malformed {
                    line: line_no,
                    message: format!("`{key}`: unterminated string"),
                });
            };
            RawValue::Str(inner.to_string())
        } else {
            RawValue::Num(value.to_string())
        };
        if map.insert(key.to_string(), (line_no, raw)).is_some() {
            return Err(DescriptorError::DuplicateKey {
                line: line_no,
                key: key.to_string(),
            });
        }
    }
    Ok(map)
}

/// Drop a trailing `# comment`, respecting `"…"` string values (a `#`
/// inside quotes is part of the name).
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// All schema keys, in the order the error message lists missing ones.
const KEYS: &[&str] = &[
    "name",
    "sm_count",
    "cores_per_sm",
    "clock_mhz",
    "warp_size",
    "max_threads_per_sm",
    "max_warps_per_sm",
    "max_blocks_per_sm",
    "max_threads_per_block",
    "registers_per_sm",
    "max_registers_per_thread",
    "register_alloc_granularity",
    "shared_mem_per_sm",
    "shared_mem_per_block",
    "shared_alloc_granularity",
    "shared_banks",
    "shared_bank_bytes",
    "global_mem_bytes",
    "mem_bandwidth_gbs",
    "transaction_bytes",
    "pcie_pinned_gbs",
    "pcie_pageable_gbs",
    "launch_overhead_us",
    "transfer_latency_us",
];

/// Typed accessors over the raw assignment map; every `take_*` removes
/// the key so leftovers can be reported as unknown.
struct Fields {
    map: BTreeMap<String, (usize, RawValue)>,
    missing: Vec<String>,
}

impl Fields {
    fn take(&mut self, key: &str) -> Option<(usize, RawValue)> {
        let v = self.map.remove(key);
        if v.is_none() {
            self.missing.push(key.to_string());
        }
        v
    }

    fn string(&mut self, key: &str) -> Result<String, DescriptorError> {
        match self.take(key) {
            Some((_, RawValue::Str(s))) => Ok(s),
            Some((line, RawValue::Num(_))) => Err(DescriptorError::BadValue {
                line,
                key: key.to_string(),
                expected: "a quoted string",
            }),
            None => Ok(String::new()), // reported via `missing`
        }
    }

    fn u64(&mut self, key: &str) -> Result<u64, DescriptorError> {
        match self.take(key) {
            Some((line, RawValue::Num(n))) => {
                let cleaned: String = n.chars().filter(|c| *c != '_').collect();
                cleaned.parse().map_err(|_| DescriptorError::BadValue {
                    line,
                    key: key.to_string(),
                    expected: "an unsigned integer",
                })
            }
            Some((line, RawValue::Str(_))) => Err(DescriptorError::BadValue {
                line,
                key: key.to_string(),
                expected: "an unsigned integer",
            }),
            None => Ok(0),
        }
    }

    fn u32(&mut self, key: &str) -> Result<u32, DescriptorError> {
        match self.take(key) {
            Some((line, RawValue::Num(n))) => {
                let cleaned: String = n.chars().filter(|c| *c != '_').collect();
                cleaned.parse().map_err(|_| DescriptorError::BadValue {
                    line,
                    key: key.to_string(),
                    expected: "an unsigned 32-bit integer",
                })
            }
            Some((line, RawValue::Str(_))) => Err(DescriptorError::BadValue {
                line,
                key: key.to_string(),
                expected: "an unsigned 32-bit integer",
            }),
            None => Ok(0),
        }
    }

    fn f64(&mut self, key: &str) -> Result<f64, DescriptorError> {
        match self.take(key) {
            Some((line, RawValue::Num(n))) => {
                let cleaned: String = n.chars().filter(|c| *c != '_').collect();
                cleaned.parse().map_err(|_| DescriptorError::BadValue {
                    line,
                    key: key.to_string(),
                    expected: "a number",
                })
            }
            Some((line, RawValue::Str(_))) => Err(DescriptorError::BadValue {
                line,
                key: key.to_string(),
                expected: "a number",
            }),
            None => Ok(0.0),
        }
    }
}

/// Parse a descriptor into a validated [`DeviceSpec`].
pub fn parse_descriptor(text: &str) -> Result<DeviceSpec, DescriptorError> {
    let map = parse_assignments(text)?;
    let mut fields = Fields {
        map,
        missing: Vec::new(),
    };
    let spec = DeviceSpec {
        name: fields.string("name")?,
        sm_count: fields.u32("sm_count")?,
        cores_per_sm: fields.u32("cores_per_sm")?,
        clock_mhz: fields.u32("clock_mhz")?,
        warp_size: fields.u32("warp_size")?,
        max_threads_per_sm: fields.u32("max_threads_per_sm")?,
        max_warps_per_sm: fields.u32("max_warps_per_sm")?,
        max_blocks_per_sm: fields.u32("max_blocks_per_sm")?,
        max_threads_per_block: fields.u32("max_threads_per_block")?,
        registers_per_sm: fields.u32("registers_per_sm")?,
        max_registers_per_thread: fields.u32("max_registers_per_thread")?,
        register_alloc_granularity: fields.u32("register_alloc_granularity")?,
        shared_mem_per_sm: fields.u32("shared_mem_per_sm")?,
        shared_mem_per_block: fields.u32("shared_mem_per_block")?,
        shared_alloc_granularity: fields.u32("shared_alloc_granularity")?,
        shared_banks: fields.u32("shared_banks")?,
        shared_bank_bytes: fields.u32("shared_bank_bytes")?,
        global_mem_bytes: fields.u64("global_mem_bytes")?,
        mem_bandwidth_gbs: fields.f64("mem_bandwidth_gbs")?,
        transaction_bytes: fields.u32("transaction_bytes")?,
        pcie_pinned_gbs: fields.f64("pcie_pinned_gbs")?,
        pcie_pageable_gbs: fields.f64("pcie_pageable_gbs")?,
        launch_overhead_us: fields.f64("launch_overhead_us")?,
        transfer_latency_us: fields.f64("transfer_latency_us")?,
    };
    if !fields.missing.is_empty() {
        return Err(DescriptorError::MissingKeys(fields.missing));
    }
    if let Some((key, (line, _))) = fields.map.into_iter().next() {
        debug_assert!(!KEYS.contains(&key.as_str()), "typed accessor missed {key}");
        return Err(DescriptorError::UnknownKey { line, key });
    }
    spec.validate().map_err(DescriptorError::Invalid)?;
    Ok(spec)
}

/// The shipped device table: `(key, descriptor text)` pairs. Every
/// entry parses and validates (pinned by tests); [`lookup_device`]
/// resolves a key to its spec.
pub fn device_table() -> &'static [(&'static str, &'static str)] {
    &[("k40c", K40C_DESCRIPTOR), ("gm204", GM204_DESCRIPTOR)]
}

/// Parse the shipped descriptor registered under `key` (`"k40c"`,
/// `"gm204"`), or `None` for an unknown key.
pub fn lookup_device(key: &str) -> Option<DeviceSpec> {
    device_table()
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(key))
        .map(|(_, text)| {
            parse_descriptor(text).expect("shipped descriptors parse and validate (pinned by test)")
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_k40c_descriptor_is_the_golden_spec() {
        let parsed = parse_descriptor(K40C_DESCRIPTOR).expect("k40c descriptor parses");
        assert_eq!(parsed, DeviceSpec::k40c());
    }

    #[test]
    fn shipped_gm204_descriptor_parses_and_validates() {
        let gm204 = parse_descriptor(GM204_DESCRIPTOR).expect("gm204 descriptor parses");
        assert_eq!(gm204.sm_count, 16);
        assert_eq!(gm204.total_cores(), 2048);
        // maxDNN: "the GTX980 has a peak of 4612 GFLOPS".
        assert!((gm204.peak_flops() / 1e9 - 4612.0).abs() < 10.0);
    }

    #[test]
    fn lookup_is_case_insensitive_and_total() {
        assert!(lookup_device("K40C").is_some());
        assert!(lookup_device("gm204").is_some());
        assert!(lookup_device("h100").is_none());
    }

    #[test]
    fn comments_blank_lines_and_separators_are_cosmetic() {
        let text = K40C_DESCRIPTOR
            .lines()
            .filter(|l| !l.trim_start().starts_with('#'))
            .map(|l| {
                let l = strip_comment(l).trim();
                // Strip `_` digit separators from the value side only.
                match l.split_once('=') {
                    Some((k, v)) => format!("{k}= {}", v.trim().replace('_', "")),
                    None => l.to_string(),
                }
            })
            .collect::<Vec<_>>()
            .join("\n\n");
        assert_eq!(parse_descriptor(&text).unwrap(), DeviceSpec::k40c());
    }

    #[test]
    fn hash_inside_string_value_is_not_a_comment() {
        let text = K40C_DESCRIPTOR.replace("\"Tesla K40c\"", "\"Tesla #1 K40c\"");
        assert_eq!(parse_descriptor(&text).unwrap().name, "Tesla #1 K40c");
    }

    #[test]
    fn missing_key_is_reported_by_name() {
        let text = K40C_DESCRIPTOR.replace("sm_count = 15", "");
        match parse_descriptor(&text) {
            Err(DescriptorError::MissingKeys(keys)) => {
                assert_eq!(keys, vec!["sm_count".to_string()])
            }
            other => panic!("expected MissingKeys, got {other:?}"),
        }
    }

    #[test]
    fn unknown_key_is_rejected() {
        let text = format!("{K40C_DESCRIPTOR}\ntensor_cores = 99\n");
        match parse_descriptor(&text) {
            Err(DescriptorError::UnknownKey { key, .. }) => assert_eq!(key, "tensor_cores"),
            other => panic!("expected UnknownKey, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_key_is_rejected() {
        let text = format!("{K40C_DESCRIPTOR}\nsm_count = 16\n");
        assert!(matches!(
            parse_descriptor(&text),
            Err(DescriptorError::DuplicateKey { .. })
        ));
    }

    #[test]
    fn type_mismatches_are_rejected() {
        let quoted = K40C_DESCRIPTOR.replace("sm_count = 15", "sm_count = \"fifteen\"");
        assert!(matches!(
            parse_descriptor(&quoted),
            Err(DescriptorError::BadValue { .. })
        ));
        let bare_name = K40C_DESCRIPTOR.replace("name = \"Tesla K40c\"", "name = K40c");
        assert!(matches!(
            parse_descriptor(&bare_name),
            Err(DescriptorError::BadValue { .. })
        ));
        let fractional = K40C_DESCRIPTOR.replace("sm_count = 15", "sm_count = 15.5");
        assert!(matches!(
            parse_descriptor(&fractional),
            Err(DescriptorError::BadValue { .. })
        ));
    }

    #[test]
    fn structurally_broken_lines_are_rejected() {
        for bad in ["just words", "= 5", "sm_count =", "Name = \"x\""] {
            let text = format!("{K40C_DESCRIPTOR}\n{bad}\n");
            assert!(
                matches!(
                    parse_descriptor(&text),
                    Err(DescriptorError::Malformed { .. })
                        | Err(DescriptorError::DuplicateKey { .. })
                ),
                "`{bad}` must be rejected"
            );
        }
    }

    #[test]
    fn invalid_specs_fail_validation_not_silently() {
        let zero_sms = K40C_DESCRIPTOR.replace("sm_count = 15", "sm_count = 0");
        match parse_descriptor(&zero_sms) {
            Err(DescriptorError::Invalid(v)) => {
                assert!(v.iter().any(|m| m.contains("sm_count")), "{v:?}")
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn error_display_names_the_line() {
        let text = "sm_count = yes\n";
        let err = parse_descriptor(text).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }
}
