//! Host↔device PCIe transfer model.
//!
//! Paper §V-D: *"The data transfer overhead between CPU and GPU can be
//! crucial to the performance"*, and the remedies it lists — pinned
//! memory, asynchronous (overlapped) transfers, batching small copies —
//! are exactly the knobs this model exposes.

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Direction of a copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferDirection {
    /// Host → device (inputs, filters).
    HostToDevice,
    /// Device → host (results, gradients).
    DeviceToHost,
}

/// One host↔device copy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transfer {
    /// Direction of the copy.
    pub direction: TransferDirection,
    /// Payload size, bytes.
    pub bytes: u64,
    /// Whether the host buffer is page-locked (pinned) — roughly
    /// doubles effective bandwidth.
    pub pinned: bool,
    /// Fraction of the copy hidden behind concurrent kernel execution
    /// (Caffe's prefetch thread achieves ≈1.0; synchronous Theano copies
    /// 0.0).
    pub overlap: f32,
}

impl Transfer {
    /// A synchronous pageable copy.
    pub fn sync(direction: TransferDirection, bytes: u64) -> Self {
        Transfer {
            direction,
            bytes,
            pinned: false,
            overlap: 0.0,
        }
    }

    /// A pinned, fully-overlapped (prefetched) copy.
    pub fn prefetched(direction: TransferDirection, bytes: u64) -> Self {
        Transfer {
            direction,
            bytes,
            pinned: true,
            overlap: 1.0,
        }
    }

    /// Raw wire time of the copy, milliseconds.
    pub fn wire_time_ms(&self, dev: &DeviceSpec) -> f64 {
        let bw = if self.pinned {
            dev.pcie_pinned_gbs
        } else {
            dev.pcie_pageable_gbs
        } * 1e9;
        (self.bytes as f64 / bw + dev.transfer_latency_us * 1e-6) * 1e3
    }

    /// Time visible on the critical path (wire time minus the overlapped
    /// fraction), milliseconds.
    pub fn visible_time_ms(&self, dev: &DeviceSpec) -> f64 {
        self.wire_time_ms(dev) * (1.0 - self.overlap.clamp(0.0, 1.0)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::k40c()
    }

    #[test]
    fn pinned_beats_pageable() {
        let pageable = Transfer::sync(TransferDirection::HostToDevice, 1 << 30);
        let mut pinned = pageable;
        pinned.pinned = true;
        assert!(pinned.wire_time_ms(&dev()) < pageable.wire_time_ms(&dev()));
    }

    #[test]
    fn bandwidth_model_magnitude() {
        // 1 GB pageable at 6 GB/s ≈ 167 ms.
        let t = Transfer::sync(TransferDirection::HostToDevice, 1_000_000_000);
        assert!((t.wire_time_ms(&dev()) - 166.7).abs() < 5.0);
    }

    #[test]
    fn full_overlap_hides_everything() {
        let t = Transfer::prefetched(TransferDirection::HostToDevice, 1 << 30);
        assert!(t.wire_time_ms(&dev()) > 50.0);
        assert_eq!(t.visible_time_ms(&dev()), 0.0);
    }

    #[test]
    fn partial_overlap_scales_linearly() {
        let mut t = Transfer::sync(TransferDirection::DeviceToHost, 1 << 28);
        let full = t.visible_time_ms(&dev());
        t.overlap = 0.75;
        assert!((t.visible_time_ms(&dev()) - full * 0.25).abs() < 1e-9);
    }

    #[test]
    fn latency_floor_for_small_copies() {
        let t = Transfer::sync(TransferDirection::HostToDevice, 4);
        // Dominated by the 10 µs latency.
        assert!(t.wire_time_ms(&dev()) >= 0.01);
    }
}
