//! Kernel launch descriptions — the interface between framework models
//! and the timing engine.

use serde::{Deserialize, Serialize};

/// Grid/block geometry of a launch (flattened to 1-D counts; the models
//  only need totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub grid_blocks: u32,
    /// Threads per block.
    pub block_threads: u32,
}

impl LaunchConfig {
    /// Create a launch geometry.
    pub const fn new(grid_blocks: u32, block_threads: u32) -> Self {
        LaunchConfig {
            grid_blocks,
            block_threads,
        }
    }

    /// Total threads in the grid.
    pub const fn total_threads(&self) -> u64 {
        self.grid_blocks as u64 * self.block_threads as u64
    }
}

/// Global-memory access pattern of a kernel's loads or stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Consecutive lanes touch consecutive words — 100 % efficiency.
    Coalesced,
    /// Consecutive lanes step by `stride_words` 4-byte words
    /// (`stride_words == 0` is a broadcast).
    Strided {
        /// Word stride between lanes.
        stride_words: u32,
    },
    /// Every lane touches an unrelated cache line.
    Random,
    /// Coalesced but misaligned to the 128-byte transaction boundary.
    Unaligned,
}

/// Shared-memory traffic of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharedAccessDesc {
    /// Useful bytes read + written through shared memory over the whole
    /// launch.
    pub bytes: u64,
    /// Word stride between consecutive lanes (bank-conflict driver):
    /// odd = conflict-free, powers of two conflict, 0 = broadcast.
    pub bank_stride_words: u32,
    /// Fraction of accesses that are warp-wide broadcasts (pushes the
    /// nvprof shared-efficiency metric above 100 %).
    pub broadcast_fraction: f32,
}

impl SharedAccessDesc {
    /// No shared-memory traffic.
    pub const fn none() -> Self {
        SharedAccessDesc {
            bytes: 0,
            bank_stride_words: 1,
            broadcast_fraction: 0.0,
        }
    }

    /// Conflict-free traffic of `bytes`.
    pub const fn clean(bytes: u64) -> Self {
        SharedAccessDesc {
            bytes,
            bank_stride_words: 1,
            broadcast_fraction: 0.0,
        }
    }
}

/// Full description of one kernel launch — everything the occupancy,
/// coalescing, bank and timing models need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Kernel name as it would appear in nvprof (e.g.
    /// `im2col_gpu_kernel`, `cuDNN_gemm`, `decimateInFrequency`).
    pub name: String,
    /// Grid/block geometry.
    pub launch: LaunchConfig,
    /// Registers per thread (Table II of the paper for the framework
    /// hotspot kernels).
    pub regs_per_thread: u32,
    /// Static + dynamic shared memory per block, bytes.
    pub smem_per_block: u32,
    /// Useful floating-point operations over the whole launch.
    pub flops: u64,
    /// Useful global-memory bytes loaded.
    pub gmem_load_bytes: u64,
    /// Load access pattern.
    pub load_pattern: AccessPattern,
    /// Fraction of loads served by the L2/texture cache (never reaching
    /// DRAM). Tiled GEMMs re-reading resident panels sit near 0.75;
    /// streaming kernels at 0. Affects the memory roof only — the
    /// gld-efficiency *metric* is a request-level property and stays
    /// pattern-derived, which is how nvprof can report terrible
    /// efficiency for kernels that are nonetheless fast (paper §V-C-2).
    pub load_cached_fraction: f32,
    /// Useful global-memory bytes stored.
    pub gmem_store_bytes: u64,
    /// Store access pattern.
    pub store_pattern: AccessPattern,
    /// Shared-memory traffic.
    pub shared: SharedAccessDesc,
    /// Fraction of warp lanes doing useful work (branch divergence):
    /// the nvprof warp-execution-efficiency metric, 0–1.
    pub warp_efficiency: f32,
    /// Fraction of peak ALU throughput the instruction mix can sustain
    /// once latency is hidden (FMA density, ILP quality). cuBLAS-class
    /// kernels reach ~0.6–0.75; naive kernels much less.
    pub compute_efficiency: f32,
    /// Occupancy (as a fraction of max warps) this kernel needs to fully
    /// hide latency. Register-rich kernels with high ILP need less
    /// (cuda-convnet2); thin kernels need more.
    pub occupancy_needed: f32,
    /// Fraction of launched lanes that map to real work (tile
    /// quantization: e.g. cuda-convnet2's 128-image tiles waste lanes
    /// when the batch is not a multiple of 128).
    pub lane_utilization: f32,
}

impl KernelDesc {
    /// A baseline descriptor with sane defaults; framework models tweak
    /// the fields they care about.
    pub fn new(name: impl Into<String>, launch: LaunchConfig) -> Self {
        KernelDesc {
            name: name.into(),
            launch,
            regs_per_thread: 32,
            smem_per_block: 0,
            flops: 0,
            gmem_load_bytes: 0,
            load_pattern: AccessPattern::Coalesced,
            load_cached_fraction: 0.0,
            gmem_store_bytes: 0,
            store_pattern: AccessPattern::Coalesced,
            shared: SharedAccessDesc::none(),
            warp_efficiency: 1.0,
            compute_efficiency: 0.5,
            occupancy_needed: 0.25,
            lane_utilization: 1.0,
        }
    }

    /// Arithmetic intensity in FLOPs per useful global byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = (self.gmem_load_bytes + self.gmem_store_bytes).max(1);
        self.flops as f64 / bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_totals() {
        let l = LaunchConfig::new(100, 256);
        assert_eq!(l.total_threads(), 25_600);
    }

    #[test]
    fn defaults_are_sane() {
        let k = KernelDesc::new("test", LaunchConfig::new(1, 32));
        assert_eq!(k.warp_efficiency, 1.0);
        assert_eq!(k.lane_utilization, 1.0);
        assert!(k.compute_efficiency > 0.0 && k.compute_efficiency <= 1.0);
    }

    #[test]
    fn arithmetic_intensity_guards_zero_bytes() {
        let mut k = KernelDesc::new("t", LaunchConfig::new(1, 32));
        k.flops = 1000;
        assert_eq!(k.arithmetic_intensity(), 1000.0);
        k.gmem_load_bytes = 500;
        assert_eq!(k.arithmetic_intensity(), 2.0);
    }
}
