//! The nvprof-style metric set.
//!
//! Paper §III-B / §V-C: the study profiles five metrics — *achieved
//! occupancy*, *ipc*, *warp execution efficiency*, *global load/store
//! efficiency* and *shared memory efficiency* — for the top kernels of
//! every implementation. [`KernelMetrics`] is one kernel's row of that
//! table.

use serde::{Deserialize, Serialize};

/// Metrics computed for one kernel launch (or aggregated over launches).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelMetrics {
    /// Wall-clock time, milliseconds.
    pub runtime_ms: f64,
    /// Ratio of average active warps per active cycle to the SM maximum
    /// (percent).
    pub achieved_occupancy: f64,
    /// Warp instructions executed per cycle per SM.
    pub ipc: f64,
    /// Ratio of active threads per warp to the warp width (percent).
    pub warp_execution_efficiency: f64,
    /// Requested / required global load throughput (percent). Zero when
    /// the kernel issues no global loads — the paper observes exactly
    /// this for cuDNN's shared-memory-resident kernels.
    pub gld_efficiency: f64,
    /// Requested / required global store throughput (percent).
    pub gst_efficiency: f64,
    /// Requested / required shared throughput (percent; may exceed 100
    /// under broadcasts).
    pub shared_efficiency: f64,
    /// Achieved fraction of device peak FLOP/s (percent).
    pub flop_efficiency: f64,
}

impl KernelMetrics {
    /// An all-zero metric row (identity for weighted aggregation).
    pub fn zero() -> Self {
        KernelMetrics {
            runtime_ms: 0.0,
            achieved_occupancy: 0.0,
            ipc: 0.0,
            warp_execution_efficiency: 0.0,
            gld_efficiency: 0.0,
            gst_efficiency: 0.0,
            shared_efficiency: 0.0,
            flop_efficiency: 0.0,
        }
    }

    /// Runtime-weighted average of metric rows — the aggregation the
    /// paper applies to each implementation's top kernels (§V-C: "take a
    /// weighted average of those top kernels […] The weight of each
    /// kernel is determined by the percentage of its runtime").
    pub fn weighted_average(rows: &[(f64, KernelMetrics)]) -> KernelMetrics {
        let total: f64 = rows.iter().map(|(w, _)| *w).sum();
        if total <= 0.0 {
            return KernelMetrics::zero();
        }
        let mut out = KernelMetrics::zero();
        for (w, m) in rows {
            let f = w / total;
            out.achieved_occupancy += f * m.achieved_occupancy;
            out.ipc += f * m.ipc;
            out.warp_execution_efficiency += f * m.warp_execution_efficiency;
            out.gld_efficiency += f * m.gld_efficiency;
            out.gst_efficiency += f * m.gst_efficiency;
            out.shared_efficiency += f * m.shared_efficiency;
            out.flop_efficiency += f * m.flop_efficiency;
            out.runtime_ms += m.runtime_ms;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(occ: f64) -> KernelMetrics {
        KernelMetrics {
            runtime_ms: 1.0,
            achieved_occupancy: occ,
            ipc: occ / 10.0,
            warp_execution_efficiency: 100.0,
            gld_efficiency: 50.0,
            gst_efficiency: 50.0,
            shared_efficiency: 100.0,
            flop_efficiency: 10.0,
        }
    }

    #[test]
    fn weighted_average_weights_by_runtime() {
        let rows = [(3.0, row(10.0)), (1.0, row(50.0))];
        let avg = KernelMetrics::weighted_average(&rows);
        assert!((avg.achieved_occupancy - 20.0).abs() < 1e-9);
        assert!((avg.runtime_ms - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_rows_give_zero() {
        let avg = KernelMetrics::weighted_average(&[]);
        assert_eq!(avg.achieved_occupancy, 0.0);
    }

    #[test]
    fn single_row_is_identity() {
        let avg = KernelMetrics::weighted_average(&[(5.0, row(33.0))]);
        assert!((avg.achieved_occupancy - 33.0).abs() < 1e-9);
    }
}
