//! # gcnn-gpusim
//!
//! An analytical performance model of a Kepler-class GPU — the
//! substitute substrate for the Tesla K40c on which Li et al. (ICPP
//! 2016) ran their measurements (see DESIGN.md §1 for the substitution
//! argument).
//!
//! The paper explains every observation it makes through a small set of
//! hardware mechanisms; this crate implements those mechanisms as
//! deterministic, unit-testable models:
//!
//! * [`device`] — the machine description ([`DeviceSpec::k40c`] carries
//!   the paper's §III-A numbers: 15 SMs × 192 cores @ 745 MHz,
//!   4.29 TFLOP/s, 12 GB @ 288 GB/s, 64 K registers + 48 KB shared per
//!   SM), plus [`DeviceSpec::validate`], the invariant checker every
//!   parsed descriptor passes through.
//! * [`descriptor`] — data-driven device construction: a TOML-ish text
//!   format parsed with std only, the shipped `k40c`/`gm204` device
//!   table, and the golden-file contract tying the `k40c` descriptor
//!   to [`DeviceSpec::k40c`] field-for-field. The Maxwell entry is
//!   validated against maxDNN's published occupancy figures.
//! * [`occupancy`] — the CUDA occupancy calculation (warp, register,
//!   shared-memory and block limits with Kepler allocation
//!   granularities); reproduces §V-C-1's "116 registers/thread → ~17
//!   active warps" arithmetic.
//! * [`coalescing`] — global-memory transaction efficiency as a function
//!   of the access pattern (`gld_efficiency`/`gst_efficiency`).
//! * [`banks`] — shared-memory bank-conflict degrees
//!   (`shared_efficiency`, including the >100 % broadcast regime the
//!   paper observes for cuDNN).
//! * [`timing`] — a latency-aware roofline that turns a kernel's
//!   resource usage into milliseconds and the paper's five metrics.
//! * [`memory`] — a device-memory allocator that tracks peak usage
//!   (Fig. 5) and raises OOM.
//! * [`transfer`] — a PCIe model for host↔device copies (Fig. 7),
//!   including pinned vs. pageable bandwidth and async overlap.
//! * [`profiler`] — an nvprof-style session that records kernel
//!   launches and produces runtime-weighted top-kernel metric
//!   aggregates exactly as §V-C describes.

#![forbid(unsafe_code)]

pub mod banks;
pub mod coalescing;
pub mod descriptor;
pub mod device;
pub mod kernel;
pub mod memory;
pub mod metrics;
pub mod occupancy;
pub mod profiler;
pub mod timeline;
pub mod timing;
pub mod transfer;

pub use descriptor::{device_table, lookup_device, parse_descriptor, DescriptorError};
pub use device::DeviceSpec;
pub use kernel::{AccessPattern, KernelDesc, LaunchConfig, SharedAccessDesc};
pub use memory::{MemoryTracker, OomError};
pub use metrics::KernelMetrics;
pub use occupancy::{occupancy, Occupancy, OccupancyLimiter};
pub use profiler::{ProfileReport, ProfilerSession};
pub use timeline::{Span, SpanKind, Timeline};
pub use transfer::{Transfer, TransferDirection};
