//! The latency-aware roofline timing model.
//!
//! Paper §V-C: *"The essence of GPU performance lies in whether the
//! problem can be computed in a high degree of parallel and whether the
//! limited resources on GPUs are allocated reasonably."* The model here
//! follows that causal chain:
//!
//! 1. Occupancy (from register/shared/block limits) bounds how much
//!    latency the SM can hide; a kernel that achieves less occupancy
//!    than it *needs* (its `occupancy_needed`, lower for high-ILP
//!    register-rich kernels à la cuda-convnet2) runs proportionally
//!    slower.
//! 2. Compute time = FLOPs over de-rated peak (instruction-mix
//!    efficiency × warp execution efficiency × lane/tile utilization ×
//!    latency hiding).
//! 3. Memory time = bus bytes (inflated by coalescing inefficiency)
//!    over de-rated bandwidth.
//! 4. Shared-memory time = conflict-serialized bytes over shared
//!    bandwidth.
//! 5. Kernel time = max of the three (they overlap on real hardware) +
//!    launch overhead, times a tail factor for partially-filled last
//!    waves.

use crate::banks;
use crate::coalescing;
use crate::device::DeviceSpec;
use crate::kernel::KernelDesc;
use crate::metrics::KernelMetrics;
use crate::occupancy::{occupancy, Occupancy};
use serde::{Deserialize, Serialize};

/// Output of [`time_kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingResult {
    /// Estimated wall-clock time of the launch, milliseconds.
    pub time_ms: f64,
    /// The occupancy calculation backing it.
    pub occupancy: Occupancy,
    /// The nvprof-style metric row.
    pub metrics: KernelMetrics,
    /// Which roof bound the kernel.
    pub bound: Bound,
}

/// The binding resource of a kernel's runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// ALU throughput.
    Compute,
    /// Global-memory bandwidth.
    Memory,
    /// Shared-memory bandwidth (bank conflicts).
    Shared,
    /// Launch overhead dominates (tiny kernel).
    Overhead,
}

/// Estimate the runtime and metrics of one kernel launch.
pub fn time_kernel(dev: &DeviceSpec, k: &KernelDesc) -> TimingResult {
    let occ = occupancy(
        dev,
        k.regs_per_thread,
        k.smem_per_block,
        k.launch.block_threads,
    );

    // Wave analysis: how many rounds of resident blocks the grid takes,
    // and how full the average round is.
    let blocks_per_wave = (occ.blocks_per_sm * dev.sm_count).max(1);
    let waves = k.launch.grid_blocks.div_ceil(blocks_per_wave).max(1);
    let wave_utilization = k.launch.grid_blocks as f64 / (waves as f64 * blocks_per_wave as f64);

    // Achieved occupancy: theoretical, discounted by how full the waves
    // actually are (partial tail waves leave SMs idle).
    let achieved_occ = (occ.theoretical * wave_utilization).clamp(0.0, 1.0);

    // Latency hiding: a kernel needing `occupancy_needed` to cover its
    // latency gets full speed at or above it, proportional below.
    let hide = (achieved_occ / k.occupancy_needed.max(0.01) as f64).min(1.0);

    let wee = k.warp_efficiency.clamp(0.01, 1.0) as f64;
    let lane = k.lane_utilization.clamp(0.01, 1.0) as f64;

    // --- Compute roof ---
    let eff_flops =
        dev.peak_flops() * k.compute_efficiency.clamp(0.01, 1.0) as f64 * wee * lane * hide;
    let t_compute = k.flops as f64 / eff_flops.max(1.0);

    // --- Global-memory roof ---
    // Loads served by L2 never reach DRAM; stores always do.
    let dram_loads =
        (k.gmem_load_bytes as f64 * (1.0 - k.load_cached_fraction.clamp(0.0, 1.0) as f64)) as u64;
    let bus = coalescing::bus_bytes(dev, k.load_pattern, dram_loads)
        + coalescing::bus_bytes(dev, k.store_pattern, k.gmem_store_bytes);
    let eff_bw = dev.mem_bandwidth_bytes() * hide.max(0.1);
    let t_mem = bus as f64 / eff_bw;

    // --- Shared-memory roof ---
    let smem_serialized = banks::serialized_bytes(dev, &k.shared);
    let t_smem = smem_serialized as f64 / dev.shared_bandwidth_bytes();

    let t_body = t_compute.max(t_mem).max(t_smem);
    let overhead = dev.launch_overhead_us * 1e-6;
    let time_s = t_body + overhead;
    let time_ms = time_s * 1e3;

    let bound = if t_body < overhead {
        Bound::Overhead
    } else if t_compute >= t_mem && t_compute >= t_smem {
        Bound::Compute
    } else if t_mem >= t_smem {
        Bound::Memory
    } else {
        Bound::Shared
    };

    // --- Metrics ---
    let gld = if k.gmem_load_bytes == 0 {
        0.0
    } else {
        coalescing::access_efficiency(dev, k.load_pattern) * 100.0
    };
    let gst = if k.gmem_store_bytes == 0 {
        0.0
    } else {
        coalescing::access_efficiency(dev, k.store_pattern) * 100.0
    };
    let shared_eff = if k.shared.bytes == 0 {
        0.0
    } else {
        banks::shared_efficiency(dev, &k.shared) * 100.0
    };

    // Warp-level instruction estimate: one FMA warp instruction retires
    // 64 FLOPs across 32 lanes (divergence and tile waste inflate the
    // count); each 128-byte request is one instruction.
    let warp_insts = k.flops as f64 / (64.0 * wee * lane)
        + (k.gmem_load_bytes + k.gmem_store_bytes) as f64 / dev.transaction_bytes as f64
        + k.shared.bytes as f64 / 128.0;
    let cycles = time_s / dev.cycle_seconds();
    let ipc = warp_insts / (cycles * dev.sm_count as f64).max(1.0);

    let metrics = KernelMetrics {
        runtime_ms: time_ms,
        achieved_occupancy: achieved_occ * 100.0,
        ipc,
        warp_execution_efficiency: wee * 100.0,
        gld_efficiency: gld,
        gst_efficiency: gst,
        shared_efficiency: shared_eff,
        flop_efficiency: 100.0 * k.flops as f64 / (time_s * dev.peak_flops()),
    };

    TimingResult {
        time_ms,
        occupancy: occ,
        metrics,
        bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{AccessPattern, LaunchConfig, SharedAccessDesc};

    fn dev() -> DeviceSpec {
        DeviceSpec::k40c()
    }

    /// A big, well-tuned GEMM-like kernel.
    fn gemm_kernel(flops: u64) -> KernelDesc {
        let mut k = KernelDesc::new("sgemm", LaunchConfig::new(4096, 256));
        k.regs_per_thread = 80;
        k.smem_per_block = 8 * 1024;
        k.flops = flops;
        k.gmem_load_bytes = flops / 100; // high arithmetic intensity
        k.gmem_store_bytes = flops / 400;
        k.shared = SharedAccessDesc::clean(flops / 20);
        k.compute_efficiency = 0.7;
        k
    }

    #[test]
    fn compute_bound_kernel_near_roofline() {
        let flops = 2_000_000_000_000u64; // 2 TFLOP of work
        let r = time_kernel(&dev(), &gemm_kernel(flops));
        assert_eq!(r.bound, Bound::Compute);
        // With 0.7 compute efficiency and full hiding the time should be
        // ≈ flops / (0.7 · 4.29 TFLOP/s) ≈ 0.66 s.
        let ideal = flops as f64 / (0.7 * dev().peak_flops());
        assert!((r.time_ms / 1e3 - ideal).abs() < 0.1 * ideal, "{r:?}");
        assert!(r.metrics.flop_efficiency > 60.0);
    }

    #[test]
    fn memory_bound_kernel_tracks_bandwidth() {
        let mut k = KernelDesc::new("copy", LaunchConfig::new(4096, 256));
        k.flops = 1000;
        k.gmem_load_bytes = 1_000_000_000;
        k.gmem_store_bytes = 1_000_000_000;
        let r = time_kernel(&dev(), &k);
        assert_eq!(r.bound, Bound::Memory);
        // 2 GB at 288 GB/s ≈ 6.9 ms.
        assert!((r.time_ms - 6.9).abs() < 1.5, "{}", r.time_ms);
    }

    #[test]
    fn poor_coalescing_inflates_memory_time() {
        let mut k = KernelDesc::new("strided", LaunchConfig::new(4096, 256));
        k.gmem_load_bytes = 100_000_000;
        let t_good = time_kernel(&dev(), &k).time_ms;
        k.load_pattern = AccessPattern::Strided { stride_words: 8 };
        let t_bad = time_kernel(&dev(), &k).time_ms;
        assert!(t_bad > 6.0 * t_good, "good {t_good} bad {t_bad}");
    }

    #[test]
    fn bank_conflicts_can_dominate() {
        let mut k = KernelDesc::new("conflicted", LaunchConfig::new(4096, 128));
        k.flops = 1_000_000;
        k.shared = SharedAccessDesc {
            bytes: 2_000_000_000,
            bank_stride_words: 32, // 32-way conflicts
            broadcast_fraction: 0.0,
        };
        let r = time_kernel(&dev(), &k);
        assert_eq!(r.bound, Bound::Shared);
        assert!(r.metrics.shared_efficiency < 5.0);
    }

    #[test]
    fn low_occupancy_slows_compute() {
        let mut k = gemm_kernel(100_000_000_000);
        k.occupancy_needed = 0.4;
        let fast = time_kernel(&dev(), &k).time_ms;
        // Starve occupancy with huge register usage.
        k.regs_per_thread = 200;
        let slow = time_kernel(&dev(), &k).time_ms;
        assert!(slow > 1.5 * fast, "fast {fast} slow {slow}");
    }

    #[test]
    fn register_rich_kernel_with_low_needs_stays_fast() {
        // cuda-convnet2 pattern: 116 regs → 26 % occupancy, but
        // occupancy_needed 0.15 (huge ILP) keeps it at full speed.
        let mut k = gemm_kernel(100_000_000_000);
        k.regs_per_thread = 116;
        k.smem_per_block = 16 * 1024;
        k.occupancy_needed = 0.15;
        let r = time_kernel(&dev(), &k);
        assert!(r.metrics.achieved_occupancy < 30.0);
        assert!(r.metrics.flop_efficiency > 55.0, "{:?}", r.metrics);
    }

    #[test]
    fn divergence_slows_and_reports_wee() {
        let mut k = gemm_kernel(100_000_000_000);
        let t0 = time_kernel(&dev(), &k).time_ms;
        k.warp_efficiency = 0.5;
        let r = time_kernel(&dev(), &k);
        assert!(r.time_ms > 1.8 * t0);
        assert!((r.metrics.warp_execution_efficiency - 50.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_kernel_is_overhead_bound() {
        let mut k = KernelDesc::new("tiny", LaunchConfig::new(1, 32));
        k.flops = 100;
        let r = time_kernel(&dev(), &k);
        assert_eq!(r.bound, Bound::Overhead);
        assert!(r.time_ms >= 0.005);
    }

    #[test]
    fn partial_wave_reduces_achieved_occupancy() {
        let mut k = gemm_kernel(1_000_000_000);
        k.launch.grid_blocks = 8; // fewer blocks than SMs
        let r = time_kernel(&dev(), &k);
        assert!(r.metrics.achieved_occupancy < r.occupancy.theoretical * 100.0);
    }

    #[test]
    fn smem_only_kernel_reports_zero_global_efficiency() {
        // The paper's cuDNN observation: kernels computing entirely in
        // shared memory show 0 % gld/gst efficiency.
        let mut k = KernelDesc::new("cudnn_tile", LaunchConfig::new(512, 256));
        k.flops = 1_000_000_000;
        k.shared = SharedAccessDesc::clean(10_000_000);
        let r = time_kernel(&dev(), &k);
        assert_eq!(r.metrics.gld_efficiency, 0.0);
        assert_eq!(r.metrics.gst_efficiency, 0.0);
        assert!(r.metrics.shared_efficiency > 0.0);
    }

    #[test]
    fn cached_loads_relieve_the_memory_roof() {
        let mut k = KernelDesc::new("gemm_cached", LaunchConfig::new(4096, 256));
        k.flops = 1_000_000;
        k.gmem_load_bytes = 2_000_000_000;
        k.load_pattern = AccessPattern::Strided { stride_words: 4 };
        let uncached = time_kernel(&dev(), &k).time_ms;
        k.load_cached_fraction = 0.75;
        let cached = time_kernel(&dev(), &k).time_ms;
        assert!(
            cached < 0.35 * uncached,
            "uncached {uncached} cached {cached}"
        );
        // The gld metric stays pattern-derived regardless of caching.
        assert!((time_kernel(&dev(), &k).metrics.gld_efficiency - 25.0).abs() < 1e-9);
    }

    #[test]
    fn ipc_in_plausible_kepler_range() {
        let r = time_kernel(&dev(), &gemm_kernel(500_000_000_000));
        assert!(
            r.metrics.ipc > 0.5 && r.metrics.ipc < 8.0,
            "{}",
            r.metrics.ipc
        );
    }
}
