//! An nvprof-style profiling session.
//!
//! Paper §III-B: *"With the nvprof tool provided by NVIDIA, we profile
//! and analyze those top kernels in five important metrics"* and §V-A:
//! *"we group the similar kernels who have the same functionalities into
//! one"*. A [`ProfilerSession`] records kernel launches (aggregated by
//! kernel name), host↔device transfers and device-memory allocations,
//! then renders a [`ProfileReport`] with the paper's aggregations:
//! hotspot-kernel runtime shares (Fig. 4), runtime-weighted top-kernel
//! metrics (Fig. 6), transfer overhead fractions (Fig. 7) and peak
//! memory (Fig. 5).

use crate::device::DeviceSpec;
use crate::kernel::KernelDesc;
use crate::memory::{MemoryTracker, OomError};
use crate::metrics::KernelMetrics;
use crate::timeline::{SpanKind, Timeline};
use crate::timing::{time_kernel, TimingResult};
use crate::transfer::Transfer;
use serde::{Deserialize, Serialize};

/// Aggregated record of every launch of one (grouped) kernel name.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelRecord {
    /// Grouped kernel name.
    pub name: String,
    /// Number of launches recorded.
    pub launches: u64,
    /// Total time across launches, milliseconds.
    pub total_ms: f64,
    /// Runtime-weighted metrics across launches.
    pub metrics: KernelMetrics,
}

/// Rendered output of a session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Device the session modeled.
    pub device: String,
    /// Kernel records, sorted by descending total time.
    pub kernels: Vec<KernelRecord>,
    /// Sum of kernel time, milliseconds.
    pub kernel_ms: f64,
    /// Total wire time of transfers, milliseconds.
    pub transfer_wire_ms: f64,
    /// Transfer time visible on the critical path, milliseconds.
    pub transfer_visible_ms: f64,
    /// Peak device memory, bytes.
    pub peak_mem_bytes: u64,
}

impl ProfileReport {
    /// End-to-end modeled time: kernels + unhidden transfers.
    pub fn total_ms(&self) -> f64 {
        self.kernel_ms + self.transfer_visible_ms
    }

    /// Fraction of total time spent in visible transfers — the paper's
    /// Fig. 7 quantity.
    pub fn transfer_fraction(&self) -> f64 {
        let total = self.total_ms();
        if total <= 0.0 {
            0.0
        } else {
            self.transfer_visible_ms / total
        }
    }

    /// Runtime share of one kernel group — the paper's Fig. 4 quantity.
    pub fn kernel_share(&self, name: &str) -> f64 {
        if self.kernel_ms <= 0.0 {
            return 0.0;
        }
        self.kernels
            .iter()
            .find(|k| k.name == name)
            .map(|k| k.total_ms / self.kernel_ms)
            .unwrap_or(0.0)
    }

    /// The top `n` kernels by runtime.
    pub fn top_kernels(&self, n: usize) -> &[KernelRecord] {
        &self.kernels[..n.min(self.kernels.len())]
    }

    /// Runtime-weighted metric aggregate over the top `n` kernels — the
    /// paper's Fig. 6 methodology ("take a weighted average of those top
    /// kernels to get the final estimate of performance metrics for that
    /// implementation").
    pub fn weighted_metrics(&self, top_n: usize) -> KernelMetrics {
        let rows: Vec<(f64, KernelMetrics)> = self
            .top_kernels(top_n)
            .iter()
            .map(|k| (k.total_ms, k.metrics))
            .collect();
        KernelMetrics::weighted_average(&rows)
    }
}

/// A recording session over one device.
///
/// ```
/// use gcnn_gpusim::{DeviceSpec, KernelDesc, LaunchConfig, ProfilerSession};
///
/// let mut session = ProfilerSession::new(DeviceSpec::k40c());
/// let mut kernel = KernelDesc::new("sgemm", LaunchConfig::new(1024, 256));
/// kernel.flops = 1_000_000_000;
/// session.launch(&kernel);
/// let report = session.report();
/// assert_eq!(report.kernels[0].name, "sgemm");
/// assert!(report.total_ms() > 0.0);
/// ```
#[derive(Debug)]
pub struct ProfilerSession {
    dev: DeviceSpec,
    kernels: Vec<KernelRecord>,
    transfer_wire_ms: f64,
    transfer_visible_ms: f64,
    memory: MemoryTracker,
    timeline: Timeline,
}

impl ProfilerSession {
    /// Start a session on a device.
    pub fn new(dev: DeviceSpec) -> Self {
        let memory = MemoryTracker::new(dev.global_mem_bytes);
        ProfilerSession {
            dev,
            kernels: Vec::new(),
            transfer_wire_ms: 0.0,
            transfer_visible_ms: 0.0,
            memory,
            timeline: Timeline::new(),
        }
    }

    /// The device under test.
    pub fn device(&self) -> &DeviceSpec {
        &self.dev
    }

    /// Record one kernel launch; returns the timing for the caller.
    pub fn launch(&mut self, kernel: &KernelDesc) -> TimingResult {
        let result = time_kernel(&self.dev, kernel);
        self.timeline
            .push(kernel.name.clone(), SpanKind::Kernel, result.time_ms);
        match self.kernels.iter_mut().find(|r| r.name == kernel.name) {
            Some(rec) => {
                // Merge metrics runtime-weighted.
                let merged = KernelMetrics::weighted_average(&[
                    (rec.total_ms, rec.metrics),
                    (result.time_ms, result.metrics),
                ]);
                rec.launches += 1;
                rec.total_ms += result.time_ms;
                rec.metrics = KernelMetrics {
                    runtime_ms: rec.total_ms,
                    ..merged
                };
            }
            None => self.kernels.push(KernelRecord {
                name: kernel.name.clone(),
                launches: 1,
                total_ms: result.time_ms,
                metrics: result.metrics,
            }),
        }
        result
    }

    /// Record a host↔device transfer.
    pub fn transfer(&mut self, t: Transfer) {
        self.transfer_wire_ms += t.wire_time_ms(&self.dev);
        let visible = t.visible_time_ms(&self.dev);
        self.transfer_visible_ms += visible;
        if visible > 0.0 {
            let label = match t.direction {
                crate::transfer::TransferDirection::HostToDevice => "H2D copy",
                crate::transfer::TransferDirection::DeviceToHost => "D2H copy",
            };
            self.timeline.push(label, SpanKind::Transfer, visible);
        }
    }

    /// Allocate device memory (tracked toward the peak).
    pub fn alloc(
        &mut self,
        label: impl Into<String>,
        bytes: u64,
    ) -> Result<crate::memory::AllocationId, OomError> {
        self.memory.alloc(label, bytes)
    }

    /// Free a device allocation.
    pub fn free(&mut self, id: crate::memory::AllocationId) {
        self.memory.free(id);
    }

    /// The memory tracker (peak inspection).
    pub fn memory(&self) -> &MemoryTracker {
        &self.memory
    }

    /// The execution timeline recorded so far (one span per launch and
    /// per visible transfer, serial single-stream schedule).
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Render the report.
    pub fn report(&self) -> ProfileReport {
        let mut kernels = self.kernels.clone();
        kernels.sort_by(|a, b| b.total_ms.total_cmp(&a.total_ms));
        let kernel_ms = kernels.iter().map(|k| k.total_ms).sum();
        ProfileReport {
            device: self.dev.name.clone(),
            kernels,
            kernel_ms,
            transfer_wire_ms: self.transfer_wire_ms,
            transfer_visible_ms: self.transfer_visible_ms,
            peak_mem_bytes: self.memory.peak(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::LaunchConfig;
    use crate::transfer::TransferDirection;

    fn kernel(name: &str, flops: u64) -> KernelDesc {
        let mut k = KernelDesc::new(name, LaunchConfig::new(1024, 256));
        k.flops = flops;
        k.compute_efficiency = 0.6;
        k
    }

    #[test]
    fn launches_aggregate_by_name() {
        let mut s = ProfilerSession::new(DeviceSpec::k40c());
        s.launch(&kernel("gemm", 1_000_000_000));
        s.launch(&kernel("gemm", 1_000_000_000));
        s.launch(&kernel("im2col", 100_000_000));
        let r = s.report();
        assert_eq!(r.kernels.len(), 2);
        assert_eq!(r.kernels[0].name, "gemm");
        assert_eq!(r.kernels[0].launches, 2);
        assert!(r.kernels[0].total_ms > r.kernels[1].total_ms);
    }

    #[test]
    fn kernel_share_sums_to_one() {
        let mut s = ProfilerSession::new(DeviceSpec::k40c());
        s.launch(&kernel("a", 3_000_000_000));
        s.launch(&kernel("b", 1_000_000_000));
        let r = s.report();
        let total = r.kernel_share("a") + r.kernel_share("b");
        assert!((total - 1.0).abs() < 1e-9);
        assert!(r.kernel_share("a") > 0.5);
        assert_eq!(r.kernel_share("missing"), 0.0);
    }

    #[test]
    fn transfer_fraction_reflects_visibility() {
        let mut s = ProfilerSession::new(DeviceSpec::k40c());
        s.launch(&kernel("k", 1_000_000_000));
        s.transfer(Transfer::prefetched(
            TransferDirection::HostToDevice,
            1 << 30,
        ));
        let hidden = s.report();
        assert!(hidden.transfer_fraction() < 1e-9);
        assert!(hidden.transfer_wire_ms > 0.0);

        let mut s = ProfilerSession::new(DeviceSpec::k40c());
        s.launch(&kernel("k", 1_000_000_000));
        s.transfer(Transfer::sync(TransferDirection::HostToDevice, 1 << 30));
        let visible = s.report();
        assert!(visible.transfer_fraction() > 0.5);
    }

    #[test]
    fn memory_peak_tracked_through_session() {
        let mut s = ProfilerSession::new(DeviceSpec::k40c());
        let a = s.alloc("input", 1 << 30).unwrap();
        s.alloc("workspace", 2 << 30).unwrap();
        s.free(a);
        assert_eq!(s.report().peak_mem_bytes, 3 << 30);
    }

    #[test]
    fn weighted_metrics_follow_dominant_kernel() {
        let mut s = ProfilerSession::new(DeviceSpec::k40c());
        let mut fast = kernel("dominant", 50_000_000_000);
        fast.warp_efficiency = 1.0;
        let mut slow = kernel("minor", 100_000_000);
        slow.warp_efficiency = 0.5;
        s.launch(&fast);
        s.launch(&slow);
        let m = s.report().weighted_metrics(5);
        assert!(m.warp_execution_efficiency > 95.0, "{m:?}");
    }

    #[test]
    fn oom_propagates() {
        let mut s = ProfilerSession::new(DeviceSpec::k40c());
        assert!(s.alloc("huge", 13 * (1 << 30)).is_err());
    }
}
