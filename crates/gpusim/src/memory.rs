//! Device-memory allocation tracking.
//!
//! Paper §V-B: *"GPU cannot afford a large memory-consuming application
//! due to its limit device memory. Thus memory usage also should be
//! considered"* — and the paper measures peak usage per implementation
//! with `nvidia-smi` (Fig. 5) and reports crashes when FFT workspaces
//! blow past the card. [`MemoryTracker`] reproduces both: it tracks the
//! high-water mark of a plan's allocations and raises [`OomError`] when
//! the 12 GB card would have been exhausted.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Allocation failure: the device is out of memory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OomError {
    /// The allocation that failed.
    pub requested: u64,
    /// Bytes in use at the time.
    pub in_use: u64,
    /// Device capacity.
    pub capacity: u64,
    /// Label of the failed allocation.
    pub label: String,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of device memory allocating '{}': requested {} B with {} B in use of {} B",
            self.label, self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for OomError {}

/// Handle to a live allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocationId(usize);

/// A device-memory book-keeper with peak tracking.
#[derive(Debug, Clone)]
pub struct MemoryTracker {
    capacity: u64,
    in_use: u64,
    peak: u64,
    live: Vec<Option<(String, u64)>>,
}

impl MemoryTracker {
    /// Tracker for a device with the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        MemoryTracker {
            capacity,
            in_use: 0,
            peak: 0,
            live: Vec::new(),
        }
    }

    /// Allocate `bytes` under `label`.
    pub fn alloc(
        &mut self,
        label: impl Into<String>,
        bytes: u64,
    ) -> Result<AllocationId, OomError> {
        let label = label.into();
        if self.in_use + bytes > self.capacity {
            return Err(OomError {
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
                label,
            });
        }
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        self.live.push(Some((label, bytes)));
        Ok(AllocationId(self.live.len() - 1))
    }

    /// Release an allocation. Double frees are rejected.
    pub fn free(&mut self, id: AllocationId) {
        let slot = self
            .live
            .get_mut(id.0)
            .expect("MemoryTracker::free: unknown allocation");
        let (_, bytes) = slot.take().expect("MemoryTracker::free: double free");
        self.in_use -= bytes;
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// High-water mark since construction.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Device capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Labels and sizes of live allocations (for reports).
    pub fn live_allocations(&self) -> impl Iterator<Item = (&str, u64)> {
        self.live
            .iter()
            .flatten()
            .map(|(label, bytes)| (label.as_str(), *bytes))
    }
}

/// Convenience: peak bytes of a plan that allocates everything up front
/// and frees nothing (how the framework models express workspaces).
pub fn peak_of_plan(capacity: u64, allocations: &[(&str, u64)]) -> Result<u64, OomError> {
    let mut tracker = MemoryTracker::new(capacity);
    for (label, bytes) in allocations {
        tracker.alloc(*label, *bytes)?;
    }
    Ok(tracker.peak())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_peak_across_alloc_free() {
        let mut t = MemoryTracker::new(1000);
        let a = t.alloc("a", 400).unwrap();
        let _b = t.alloc("b", 500).unwrap();
        assert_eq!(t.peak(), 900);
        t.free(a);
        assert_eq!(t.in_use(), 500);
        let _c = t.alloc("c", 300).unwrap();
        assert_eq!(t.peak(), 900); // 800 < 900
    }

    #[test]
    fn oom_raises_with_context() {
        let mut t = MemoryTracker::new(100);
        t.alloc("base", 80).unwrap();
        let err = t.alloc("ws", 30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.in_use, 80);
        assert!(err.to_string().contains("'ws'"));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut t = MemoryTracker::new(100);
        let a = t.alloc("a", 10).unwrap();
        t.free(a);
        t.free(a);
    }

    #[test]
    fn live_allocations_lists_labels() {
        let mut t = MemoryTracker::new(100);
        let a = t.alloc("x", 10).unwrap();
        t.alloc("y", 20).unwrap();
        t.free(a);
        let live: Vec<_> = t.live_allocations().collect();
        assert_eq!(live, vec![("y", 20)]);
    }

    #[test]
    fn plan_peak_helper() {
        let peak = peak_of_plan(1000, &[("in", 100), ("w", 50), ("out", 200)]).unwrap();
        assert_eq!(peak, 350);
        assert!(peak_of_plan(100, &[("big", 200)]).is_err());
    }
}
