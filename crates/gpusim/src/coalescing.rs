//! Global-memory coalescing model.
//!
//! Paper §V-C-2: *"When global load or store efficiency is less than
//! 100 %, it indicates that there exists request replays in global
//! memory access due to inappropriate access pattern, such as unaligned
//! or non-coalesced memory access."* Efficiency here is the ratio of
//! requested bytes to the bytes actually moved in 128-byte transactions.

use crate::device::DeviceSpec;
use crate::kernel::AccessPattern;

/// Number of distinct memory transactions one warp-wide 4-byte access
/// generates under the given pattern.
pub fn transactions_per_request(dev: &DeviceSpec, pattern: AccessPattern) -> u32 {
    let warp = dev.warp_size;
    let word = 4u32; // all gcnn traffic is f32
    let per_transaction = dev.transaction_bytes / word; // words per 128 B
    match pattern {
        AccessPattern::Coalesced => warp.div_ceil(per_transaction),
        AccessPattern::Strided { stride_words } => {
            if stride_words == 0 {
                // Broadcast: all lanes hit one word → one transaction.
                1
            } else {
                // Lanes touch words 0, s, 2s, …; distinct 128-byte
                // segments touched:
                let span_words = (warp - 1) * stride_words + 1;
                let segments = span_words.div_ceil(per_transaction);
                segments.min(warp)
            }
        }
        AccessPattern::Random => warp,
        AccessPattern::Unaligned => warp.div_ceil(per_transaction) + 1,
    }
}

/// Requested-to-required throughput ratio for the pattern — the
/// `gld_efficiency`/`gst_efficiency` metric.
pub fn access_efficiency(dev: &DeviceSpec, pattern: AccessPattern) -> f64 {
    let ideal = transactions_per_request(dev, AccessPattern::Coalesced) as f64;
    let actual = transactions_per_request(dev, pattern) as f64;
    match pattern {
        // A broadcast needs fewer bytes than a full warp request; keep
        // efficiency capped at 1.0 for loads/stores (unlike shared
        // memory, global broadcasts don't over-credit).
        AccessPattern::Strided { stride_words: 0 } => 1.0,
        _ => (ideal / actual).min(1.0),
    }
}

/// Bytes actually moved across the memory bus for `useful_bytes` of
/// requested data under the pattern.
pub fn bus_bytes(dev: &DeviceSpec, pattern: AccessPattern, useful_bytes: u64) -> u64 {
    let eff = access_efficiency(dev, pattern);
    if eff <= 0.0 {
        return useful_bytes;
    }
    (useful_bytes as f64 / eff).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::k40c()
    }

    #[test]
    fn coalesced_is_one_transaction() {
        assert_eq!(
            transactions_per_request(&dev(), AccessPattern::Coalesced),
            1
        );
        assert!((access_efficiency(&dev(), AccessPattern::Coalesced) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stride_two_halves_efficiency() {
        let p = AccessPattern::Strided { stride_words: 2 };
        assert_eq!(transactions_per_request(&dev(), p), 2);
        assert!((access_efficiency(&dev(), p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn large_strides_degenerate_to_one_transaction_per_lane() {
        let p = AccessPattern::Strided { stride_words: 64 };
        assert_eq!(transactions_per_request(&dev(), p), 32);
        assert!((access_efficiency(&dev(), p) - 1.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn random_is_worst_case() {
        assert_eq!(transactions_per_request(&dev(), AccessPattern::Random), 32);
        assert!((access_efficiency(&dev(), AccessPattern::Random) - 1.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn broadcast_is_free() {
        let p = AccessPattern::Strided { stride_words: 0 };
        assert_eq!(transactions_per_request(&dev(), p), 1);
        assert!((access_efficiency(&dev(), p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unaligned_costs_one_extra_transaction() {
        assert_eq!(
            transactions_per_request(&dev(), AccessPattern::Unaligned),
            2
        );
        assert!((access_efficiency(&dev(), AccessPattern::Unaligned) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bus_bytes_inflates_by_inefficiency() {
        let p = AccessPattern::Strided { stride_words: 4 };
        assert!((access_efficiency(&dev(), p) - 0.25).abs() < 1e-12);
        assert_eq!(bus_bytes(&dev(), p, 1000), 4000);
        assert_eq!(bus_bytes(&dev(), AccessPattern::Coalesced, 1000), 1000);
    }

    #[test]
    fn efficiency_monotone_in_stride() {
        let mut last = 2.0;
        for s in [1u32, 2, 4, 8, 16, 32, 64] {
            let e = access_efficiency(&dev(), AccessPattern::Strided { stride_words: s });
            assert!(e <= last, "stride {s}: {e} > {last}");
            last = e;
        }
    }
}
