//! Execution timelines and Chrome-trace export.
//!
//! nvprof's contemporary GUI (nvvp) rendered kernel/transfer timelines;
//! the modern equivalent is the Chrome trace-event format that
//! `chrome://tracing` and Perfetto consume. [`Timeline`] records the
//! modeled execution as ordered spans and serializes to that format, so
//! a plan's schedule can be inspected visually.

use serde::{Deserialize, Serialize};

/// Category of a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// GPU kernel execution.
    Kernel,
    /// Host↔device copy (visible portion).
    Transfer,
}

impl SpanKind {
    fn track(&self) -> u32 {
        match self {
            SpanKind::Kernel => 1,
            SpanKind::Transfer => 2,
        }
    }

    fn category(&self) -> &'static str {
        match self {
            SpanKind::Kernel => "kernel",
            SpanKind::Transfer => "transfer",
        }
    }
}

/// One recorded span.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Span {
    /// Display name.
    pub name: String,
    /// Span kind.
    pub kind: SpanKind,
    /// Start offset from timeline origin, microseconds.
    pub start_us: f64,
    /// Duration, microseconds.
    pub duration_us: f64,
}

/// An append-only execution timeline.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    spans: Vec<Span>,
    cursor_us: f64,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Append a span of `duration_ms` at the current cursor (serial
    /// schedule, like a single-stream CUDA program) and advance.
    pub fn push(&mut self, name: impl Into<String>, kind: SpanKind, duration_ms: f64) {
        let duration_us = duration_ms * 1e3;
        self.spans.push(Span {
            name: name.into(),
            kind,
            start_us: self.cursor_us,
            duration_us,
        });
        self.cursor_us += duration_us;
    }

    /// Recorded spans in schedule order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// End time of the schedule, microseconds.
    pub fn total_us(&self) -> f64 {
        self.cursor_us
    }

    /// Serialize to the Chrome trace-event JSON array format
    /// (`chrome://tracing` / Perfetto / speedscope all accept it).
    pub fn to_chrome_trace(&self) -> String {
        #[derive(Serialize)]
        struct Event<'a> {
            name: &'a str,
            cat: &'static str,
            ph: &'static str,
            ts: f64,
            dur: f64,
            pid: u32,
            tid: u32,
        }
        let events: Vec<Event<'_>> = self
            .spans
            .iter()
            .map(|s| Event {
                name: &s.name,
                cat: s.kind.category(),
                ph: "X", // complete event
                ts: s.start_us,
                dur: s.duration_us,
                pid: 0,
                tid: s.kind.track(),
            })
            .collect();
        serde_json::to_string_pretty(&events).expect("spans are serializable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_sequential() {
        let mut t = Timeline::new();
        t.push("a", SpanKind::Kernel, 2.0);
        t.push("b", SpanKind::Transfer, 1.0);
        t.push("c", SpanKind::Kernel, 0.5);
        assert_eq!(t.spans().len(), 3);
        assert_eq!(t.spans()[0].start_us, 0.0);
        assert_eq!(t.spans()[1].start_us, 2000.0);
        assert_eq!(t.spans()[2].start_us, 3000.0);
        assert_eq!(t.total_us(), 3500.0);
    }

    #[test]
    fn chrome_trace_shape() {
        let mut t = Timeline::new();
        t.push("sgemm", SpanKind::Kernel, 1.5);
        let json = t.to_chrome_trace();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0]["name"], "sgemm");
        assert_eq!(arr[0]["ph"], "X");
        assert_eq!(arr[0]["dur"], 1500.0);
        assert_eq!(arr[0]["cat"], "kernel");
    }

    #[test]
    fn kinds_map_to_distinct_tracks() {
        assert_ne!(SpanKind::Kernel.track(), SpanKind::Transfer.track());
    }

    #[test]
    fn empty_timeline_serializes() {
        let t = Timeline::new();
        assert_eq!(t.total_us(), 0.0);
        let parsed: serde_json::Value = serde_json::from_str(&t.to_chrome_trace()).unwrap();
        assert!(parsed.as_array().unwrap().is_empty());
    }
}
