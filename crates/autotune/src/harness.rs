//! The measurement harness: run every candidate of a substrate at one
//! layer configuration, aggregate with the shared trimmed-median timing
//! util, and pick a winner subject to an optional memory constraint.
//!
//! Stability under CI jitter comes from three levers: warmup repetitions
//! before any timed one, a trimmed median over N reps (a single
//! scheduler hiccup cannot move the result), and an optional per-
//! candidate wall-clock timeout so one pathological candidate cannot
//! stall the whole search.

use crate::policy::Constraint;
use crate::substrate::{Direction, Substrate};
use crate::timing::{self, Repeats};
use gcnn_conv::{ConvConfig, Strategy};
use gcnn_tensor::Layout;
use serde::Serialize;
use std::sync::OnceLock;
use std::time::Instant;

fn measure_counter() -> &'static gcnn_trace::Counter {
    static C: OnceLock<gcnn_trace::Counter> = OnceLock::new();
    C.get_or_init(|| gcnn_trace::counter("autotune.measure.count"))
}

fn timeout_counter() -> &'static gcnn_trace::Counter {
    static C: OnceLock<gcnn_trace::Counter> = OnceLock::new();
    C.get_or_init(|| gcnn_trace::counter("autotune.reject.timeout"))
}

fn memory_counter() -> &'static gcnn_trace::Counter {
    static C: OnceLock<gcnn_trace::Counter> = OnceLock::new();
    C.get_or_init(|| gcnn_trace::counter("autotune.reject.memory"))
}

/// Knobs of one measurement sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeasureParams {
    /// Warmup + timed repetition counts.
    pub repeats: Repeats,
    /// Per-candidate wall-clock budget, milliseconds. A candidate whose
    /// repetitions exceed it is rejected (its partial samples are
    /// discarded) rather than allowed to stall the sweep.
    pub timeout_ms: Option<f64>,
}

impl MeasureParams {
    /// Defaults (1 warmup, 5 reps, no timeout) overridden by
    /// `GCNN_TUNE_WARMUP`, `GCNN_TUNE_REPS` and `GCNN_TUNE_TIMEOUT_MS`.
    pub fn from_env() -> Self {
        let timeout_ms = std::env::var("GCNN_TUNE_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|ms| *ms > 0.0);
        MeasureParams {
            repeats: Repeats::from_env(1, 5),
            timeout_ms,
        }
    }
}

/// How one candidate fared in a sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Outcome {
    /// The candidate completed its repetitions.
    Measured {
        /// Trimmed-median time over the repetitions, milliseconds.
        time_ms: f64,
        /// Peak workspace across the repetitions, bytes.
        workspace_bytes: u64,
        /// Full summary statistics of the timed samples.
        stats: timing::Stats,
    },
    /// The candidate was rejected (unsupported, over budget, timed out).
    Rejected {
        /// Why.
        reason: String,
    },
}

/// One candidate's result within a sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CandidateReport {
    /// Candidate name on the substrate.
    pub name: String,
    /// Its convolution strategy.
    pub strategy: Strategy,
    /// The tensor layout the candidate executes in.
    pub layout: Layout,
    /// What happened.
    pub outcome: Outcome,
}

impl CandidateReport {
    /// The measured time, if the candidate completed.
    pub fn time_ms(&self) -> Option<f64> {
        match &self.outcome {
            Outcome::Measured { time_ms, .. } => Some(*time_ms),
            Outcome::Rejected { .. } => None,
        }
    }
}

/// Measure every candidate of `sub` at `cfg`/`direction`.
///
/// Runs under the `autotune.measure` span and ticks
/// `autotune.measure.count` once per sweep. Candidates are rejected —
/// never errored — when unsupported, when their peak workspace violates
/// `constraint` (`autotune.reject.memory`), or when their accumulated
/// wall clock exceeds the timeout (`autotune.reject.timeout`).
pub fn measure_candidates(
    sub: &dyn Substrate,
    cfg: &ConvConfig,
    direction: Direction,
    params: &MeasureParams,
    constraint: &Constraint,
) -> Vec<CandidateReport> {
    let _span = gcnn_trace::span("autotune.measure");
    measure_counter().inc();
    sub.candidates()
        .into_iter()
        .map(|cand| {
            let outcome = measure_one(sub, &cand.name, cfg, direction, params, constraint);
            CandidateReport {
                name: cand.name,
                strategy: cand.strategy,
                layout: cand.layout,
                outcome,
            }
        })
        .collect()
}

fn measure_one(
    sub: &dyn Substrate,
    name: &str,
    cfg: &ConvConfig,
    direction: Direction,
    params: &MeasureParams,
    constraint: &Constraint,
) -> Outcome {
    let started = Instant::now();
    let over_budget = |started: &Instant| {
        params
            .timeout_ms
            .is_some_and(|limit| started.elapsed().as_secs_f64() * 1e3 > limit)
    };

    // Warmup (also the support probe: the first failure rejects).
    for _ in 0..params.repeats.warmup.max(1) {
        if let Err(reason) = sub.run_once(name, cfg, direction) {
            return Outcome::Rejected { reason };
        }
        if over_budget(&started) {
            timeout_counter().inc();
            return Outcome::Rejected {
                reason: format!(
                    "timeout after {:.1} ms (warmup)",
                    params.timeout_ms.unwrap()
                ),
            };
        }
    }

    let mut samples = Vec::with_capacity(params.repeats.reps.max(1));
    let mut peak_ws = 0u64;
    for _ in 0..params.repeats.reps.max(1) {
        match sub.run_once(name, cfg, direction) {
            Ok(run) => {
                samples.push(run.cost_ms);
                peak_ws = peak_ws.max(run.workspace_bytes);
            }
            Err(reason) => return Outcome::Rejected { reason },
        }
        if over_budget(&started) {
            timeout_counter().inc();
            return Outcome::Rejected {
                reason: format!("timeout after {:.1} ms", params.timeout_ms.unwrap()),
            };
        }
    }

    if !constraint.allows(peak_ws) {
        memory_counter().inc();
        return Outcome::Rejected {
            reason: format!("workspace {peak_ws} B over memory budget"),
        };
    }

    Outcome::Measured {
        time_ms: timing::trimmed_median(&samples),
        workspace_bytes: peak_ws,
        stats: timing::stats(&samples),
    }
}

/// The fastest measured candidate of a sweep, if any survived.
pub fn pick_winner(reports: &[CandidateReport]) -> Option<&CandidateReport> {
    reports
        .iter()
        .filter(|r| r.time_ms().is_some())
        .min_by(|a, b| a.time_ms().unwrap().total_cmp(&b.time_ms().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::SimSubstrate;

    fn sweep(cfg: &ConvConfig, constraint: &Constraint) -> Vec<CandidateReport> {
        let sub = SimSubstrate::k40c();
        let params = MeasureParams {
            repeats: Repeats::new(1, 3),
            timeout_ms: None,
        };
        measure_candidates(&sub, cfg, Direction::Training, &params, constraint)
    }

    #[test]
    fn sweep_measures_supported_rejects_rest() {
        // Stride 2 rules out the FFT family and Theano-legacy direct.
        let strided = ConvConfig::from_tuple(64, 32, 64, 5, 2);
        let reports = sweep(&strided, &Constraint::None);
        assert_eq!(reports.len(), 7);
        let fbfft = reports.iter().find(|r| r.name == "fbfft").unwrap();
        assert!(matches!(fbfft.outcome, Outcome::Rejected { .. }));
        assert!(reports.iter().any(|r| r.time_ms().is_some()));
    }

    #[test]
    fn winner_is_min_time() {
        let reports = sweep(&ConvConfig::paper_base(), &Constraint::None);
        let winner = pick_winner(&reports).expect("some candidate survives");
        let min = reports
            .iter()
            .filter_map(CandidateReport::time_ms)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(winner.time_ms().unwrap(), min);
    }

    #[test]
    fn memory_budget_rejects_large_workspaces() {
        // A 1-byte budget no candidate can satisfy: every supported one
        // must be rejected for memory, leaving no winner.
        let reports = sweep(&ConvConfig::paper_base(), &Constraint::SpeedWithinMemory(1));
        assert!(pick_winner(&reports).is_none());
        assert!(reports.iter().any(
            |r| matches!(&r.outcome, Outcome::Rejected { reason } if reason.contains("memory"))
        ));
    }

    #[test]
    fn deterministic_substrate_gives_zero_spread() {
        let reports = sweep(&ConvConfig::paper_base(), &Constraint::None);
        for r in &reports {
            if let Outcome::Measured { stats, .. } = &r.outcome {
                assert_eq!(stats.iters, 3);
                assert!(
                    (stats.max_ms - stats.min_ms).abs() < 1e-9,
                    "simulator must be deterministic"
                );
            }
        }
    }

    #[test]
    fn zero_timeout_rejects_everything() {
        let sub = SimSubstrate::k40c();
        let params = MeasureParams {
            repeats: Repeats::new(1, 3),
            timeout_ms: Some(0.0),
        };
        let reports = measure_candidates(
            &sub,
            &ConvConfig::paper_base(),
            Direction::Training,
            &params,
            &Constraint::None,
        );
        assert!(pick_winner(&reports).is_none());
        assert!(reports
            .iter()
            .all(|r| matches!(&r.outcome, Outcome::Rejected { .. })));
    }
}
