//! The one timing utility every wall-clock measurement in the workspace
//! shares: warmup iterations followed by N timed repetitions, summarized
//! with a **trimmed median** so a single scheduler hiccup cannot move
//! the reported number.
//!
//! `perf_smoke`, `bench_report` and the autotune measurement harness all
//! build on these functions instead of hand-rolling mean-of-10 loops;
//! repetition counts are environment-overridable so CI can trade
//! stability for wall-clock budget ([`Repeats::from_env`]).

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Summary statistics of one timed section, in milliseconds.
///
/// `p50_ms` is the [`trimmed_median`] — the median after discarding the
/// top and bottom quartile of samples — which is the number regression
/// gates and the tuner compare.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Number of samples summarized.
    pub iters: usize,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Trimmed median (see [`trimmed_median`]).
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// Fastest sample.
    pub min_ms: f64,
    /// Slowest sample.
    pub max_ms: f64,
}

/// Median of the samples that survive discarding the lowest and highest
/// quartile (⌊n/4⌋ from each end). For fewer than four samples this is
/// the plain median. Panics on an empty slice.
pub fn trimmed_median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "trimmed_median: no samples");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let trim = sorted.len() / 4;
    let kept = &sorted[trim..sorted.len() - trim];
    let mid = kept.len() / 2;
    if kept.len() % 2 == 1 {
        kept[mid]
    } else {
        0.5 * (kept[mid - 1] + kept[mid])
    }
}

/// Summarize raw millisecond samples. Panics on an empty slice.
pub fn stats(samples: &[f64]) -> Stats {
    assert!(!samples.is_empty(), "stats: no samples");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Stats {
        iters: samples.len(),
        mean_ms: samples.iter().sum::<f64>() / samples.len() as f64,
        p50_ms: trimmed_median(samples),
        p95_ms: sorted[((sorted.len() - 1) as f64 * 0.95).ceil() as usize],
        min_ms: sorted[0],
        max_ms: sorted[sorted.len() - 1],
    }
}

/// How many warmup and timed repetitions a measurement runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Repeats {
    /// Untimed warmup iterations (populate pools, plan caches, branch
    /// predictors) before the timed ones.
    pub warmup: usize,
    /// Timed repetitions; at least 1 is always run.
    pub reps: usize,
}

impl Repeats {
    /// Construct explicitly.
    pub fn new(warmup: usize, reps: usize) -> Self {
        Repeats { warmup, reps }
    }

    /// Defaults overridden by `GCNN_TUNE_WARMUP` / `GCNN_TUNE_REPS`.
    pub fn from_env(default_warmup: usize, default_reps: usize) -> Self {
        Repeats {
            warmup: env_usize("GCNN_TUNE_WARMUP", default_warmup),
            reps: env_usize("GCNN_TUNE_REPS", default_reps),
        }
    }
}

impl Default for Repeats {
    fn default() -> Self {
        Repeats::new(1, 5)
    }
}

/// Parse a `usize` environment variable, falling back to `default` when
/// unset or unparsable.
pub fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Run `body` for `repeats.warmup` untimed iterations, then
/// `repeats.reps` timed ones, returning per-iteration milliseconds
/// (always at least one sample).
pub fn time_wall(repeats: Repeats, mut body: impl FnMut()) -> Vec<f64> {
    for _ in 0..repeats.warmup {
        body();
    }
    (0..repeats.reps.max(1))
        .map(|_| {
            let t = Instant::now();
            body();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trimmed_median_drops_outliers() {
        // One wild outlier out of 8 samples must not move the median.
        let samples = [1.0, 1.1, 0.9, 1.0, 1.05, 0.95, 1.0, 50.0];
        let tm = trimmed_median(&samples);
        assert!((0.9..=1.1).contains(&tm), "trimmed median {tm}");
    }

    #[test]
    fn trimmed_median_small_samples_is_plain_median() {
        assert_eq!(trimmed_median(&[3.0]), 3.0);
        assert_eq!(trimmed_median(&[1.0, 3.0]), 2.0);
        assert_eq!(trimmed_median(&[1.0, 2.0, 9.0]), 2.0);
    }

    #[test]
    fn stats_orders_min_p50_max() {
        let s = stats(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.iters, 5);
        assert_eq!(s.min_ms, 1.0);
        assert_eq!(s.max_ms, 5.0);
        assert!(s.min_ms <= s.p50_ms && s.p50_ms <= s.max_ms);
        assert!(s.p50_ms <= s.p95_ms);
        assert_eq!(s.mean_ms, 3.0);
    }

    #[test]
    fn time_wall_runs_warmup_and_reps() {
        let mut calls = 0;
        let samples = time_wall(Repeats::new(2, 3), || calls += 1);
        assert_eq!(samples.len(), 3);
        assert_eq!(calls, 5);
        assert!(samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn time_wall_zero_reps_still_samples_once() {
        let samples = time_wall(Repeats::new(0, 0), || {});
        assert_eq!(samples.len(), 1);
    }

    #[test]
    fn repeats_env_fallback() {
        // Variables unset in the test environment → defaults.
        let r = Repeats::from_env(2, 7);
        assert!(r.reps >= 1);
        let _ = r.warmup;
        assert_eq!(env_usize("GCNN_DEFINITELY_UNSET_VAR", 42), 42);
    }
}
