//! The persistent tuning cache: an on-disk store of measured winners
//! keyed by `(device fingerprint, ConvConfig, direction)`.
//!
//! The file format is versioned JSON written atomically (temp file +
//! rename), so a crash mid-save can never leave a half-written cache.
//! Loading is paranoid by design: a missing file yields an empty cache,
//! and a truncated, garbage, or wrong-schema-version file yields an
//! empty cache flagged [`TuningCache::degraded`] — callers fall back to
//! heuristic selection and the process never panics on foreign bytes.
//!
//! The vendored `serde` stand-in derives only *serialization*;
//! deserialization is a hand-written decoder over [`serde_json::Value`]
//! matching the derive's encoding (struct fields by name, unit enum
//! variants as bare strings). The round-trip property tests in
//! `tests/cache_roundtrip.rs` hold the two sides together.

use crate::substrate::Direction;
use gcnn_conv::{ConvConfig, Strategy};
use gcnn_tensor::Layout;
use serde::Serialize;
use serde_json::Value;
use std::collections::HashMap;
use std::path::Path;
use std::sync::OnceLock;

/// Version stamp of the on-disk format. Bump on any incompatible change;
/// older files then degrade to heuristics instead of being misread.
///
/// v3 added the per-entry layout verdict (channel-blocked NCHWc vs.
/// planar) and tracks the `cpu/host/v3` substrate fingerprint; v2 is
/// skipped so cache schema and fingerprint versions stay in lockstep.
/// v1 and v2 files lack the `layout` field and must degrade, not be
/// misread as planar.
pub const SCHEMA_VERSION: u32 = 3;

fn hit_counter() -> &'static gcnn_trace::Counter {
    static C: OnceLock<gcnn_trace::Counter> = OnceLock::new();
    C.get_or_init(|| gcnn_trace::counter("autotune.cache.hits"))
}

fn miss_counter() -> &'static gcnn_trace::Counter {
    static C: OnceLock<gcnn_trace::Counter> = OnceLock::new();
    C.get_or_init(|| gcnn_trace::counter("autotune.cache.misses"))
}

fn eviction_counter() -> &'static gcnn_trace::Counter {
    static C: OnceLock<gcnn_trace::Counter> = OnceLock::new();
    C.get_or_init(|| gcnn_trace::counter("autotune.cache.evictions"))
}

fn degraded_counter() -> &'static gcnn_trace::Counter {
    static C: OnceLock<gcnn_trace::Counter> = OnceLock::new();
    C.get_or_init(|| gcnn_trace::counter("autotune.cache.load_degraded"))
}

/// What a cached measurement is indexed by. A winner is only meaningful
/// on the device it was measured on, for the exact layer shape, for the
/// pass direction that was timed.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub struct CacheKey {
    /// Substrate fingerprint ([`crate::substrate::Substrate::fingerprint`]).
    pub device: String,
    /// The layer shape that was tuned.
    pub cfg: ConvConfig,
    /// Which pass was timed.
    pub direction: Direction,
}

/// The stored result of one tuning decision.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CacheEntry {
    /// Winning candidate's name ("cuDNN", "fbfft", "unrolling", …).
    pub implementation: String,
    /// The convolution strategy that candidate executes.
    pub strategy: Strategy,
    /// The tensor layout the winner executes in (planar `Nchw` for all
    /// candidates except the CPU channel-blocked `nchwc` path).
    pub layout: Layout,
    /// Its measured (trimmed-median) time, milliseconds.
    pub time_ms: f64,
    /// Peak workspace the winner required, bytes. JSON numbers travel
    /// as `f64`, so values are exact only up to 2⁵³ bytes (8 PiB) —
    /// far beyond any device this models.
    pub workspace_bytes: u64,
    /// How many timed repetitions produced `time_ms`.
    pub reps: usize,
}

/// One key/entry pair as it appears in the `entries` array on disk.
#[derive(Debug, Clone, Serialize)]
struct CacheRecord {
    key: CacheKey,
    entry: CacheEntry,
}

/// The whole file: version stamp plus records.
#[derive(Debug, Serialize)]
struct CacheFile {
    schema_version: u32,
    entries: Vec<CacheRecord>,
}

/// In-memory slot: the entry plus an LRU sequence number.
#[derive(Debug, Clone)]
struct Slot {
    seq: u64,
    entry: CacheEntry,
}

/// The tuning cache: an LRU-bounded map with atomic persistence and
/// degrade-don't-panic loading. See the module docs for the contract.
#[derive(Debug, Default)]
pub struct TuningCache {
    entries: HashMap<CacheKey, Slot>,
    next_seq: u64,
    capacity: Option<usize>,
    degraded: Option<String>,
}

impl TuningCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        TuningCache::default()
    }

    /// An empty cache holding at most `capacity` entries; inserting past
    /// that evicts the least-recently-used entry.
    pub fn with_capacity(capacity: usize) -> Self {
        TuningCache {
            capacity: Some(capacity.max(1)),
            ..TuningCache::default()
        }
    }

    /// Load from `path`. Missing file → empty cache (first run, not an
    /// error). Unreadable, corrupt, or version-mismatched file → empty
    /// cache with [`TuningCache::degraded`] set and a logged warning;
    /// never a panic.
    pub fn load(path: &Path) -> Self {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return TuningCache::new(),
            Err(e) => return TuningCache::new_degraded(path, format!("unreadable: {e}")),
        };
        match decode_cache_file(&text) {
            Ok(records) => {
                let mut cache = TuningCache::new();
                for (key, entry) in records {
                    cache.insert(key, entry);
                }
                cache
            }
            Err(reason) => TuningCache::new_degraded(path, reason),
        }
    }

    fn new_degraded(path: &Path, reason: String) -> Self {
        eprintln!(
            "warning: tuning cache {} ignored ({reason}); falling back to heuristics",
            path.display()
        );
        degraded_counter().inc();
        TuningCache {
            degraded: Some(reason),
            ..TuningCache::default()
        }
    }

    /// Why the last [`TuningCache::load`] discarded the file, if it did.
    /// `None` for a clean (or first-run empty) load.
    pub fn degraded(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    /// Number of cached decisions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no decisions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a decision, refreshing its LRU position. Ticks the
    /// `autotune.cache.hits` / `autotune.cache.misses` counters.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<CacheEntry> {
        match self.entries.get_mut(key) {
            Some(slot) => {
                self.next_seq += 1;
                slot.seq = self.next_seq;
                hit_counter().inc();
                Some(slot.entry.clone())
            }
            None => {
                miss_counter().inc();
                None
            }
        }
    }

    /// Insert (or replace) a decision, evicting the least-recently-used
    /// entry when a capacity bound is exceeded.
    pub fn insert(&mut self, key: CacheKey, entry: CacheEntry) {
        self.next_seq += 1;
        let seq = self.next_seq;
        self.entries.insert(key, Slot { seq, entry });
        if let Some(cap) = self.capacity {
            while self.entries.len() > cap {
                let oldest = self
                    .entries
                    .iter()
                    .min_by_key(|(_, slot)| slot.seq)
                    .map(|(k, _)| k.clone())
                    .expect("non-empty map over capacity");
                self.entries.remove(&oldest);
                eviction_counter().inc();
            }
        }
    }

    /// Persist to `path` atomically: serialize everything, write to
    /// `<path>.tmp` in the same directory, then rename over the target.
    /// Records are sorted so identical contents produce identical bytes.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut records: Vec<CacheRecord> = self
            .entries
            .iter()
            .map(|(key, slot)| CacheRecord {
                key: key.clone(),
                entry: slot.entry.clone(),
            })
            .collect();
        records.sort_by_key(|r| record_sort_key(&r.key));
        let file = CacheFile {
            schema_version: SCHEMA_VERSION,
            entries: records,
        };
        let text = serde_json::to_string_pretty(&file)
            .map_err(|e| std::io::Error::other(format!("serialize tuning cache: {e:?}")))?;
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)
    }
}

fn record_sort_key(key: &CacheKey) -> (String, [usize; 7], String) {
    let c = &key.cfg;
    (
        key.device.clone(),
        [
            c.batch, c.channels, c.input, c.filters, c.kernel, c.stride, c.pad,
        ],
        key.direction.to_string(),
    )
}

// ---- hand-written decoding over serde_json::Value --------------------

fn decode_cache_file(text: &str) -> Result<Vec<(CacheKey, CacheEntry)>, String> {
    let value = serde_json::from_str(text).map_err(|e| format!("parse error: {e:?}"))?;
    let obj = value.as_object().ok_or("top level is not an object")?;
    let version = obj
        .get("schema_version")
        .and_then(Value::as_u64)
        .ok_or("missing schema_version")?;
    if version != u64::from(SCHEMA_VERSION) {
        return Err(format!(
            "schema version {version} (this build reads {SCHEMA_VERSION})"
        ));
    }
    let entries = obj
        .get("entries")
        .and_then(Value::as_array)
        .ok_or("missing entries array")?;
    entries
        .iter()
        .enumerate()
        .map(|(i, record)| decode_record(record).map_err(|e| format!("entry {i}: {e}")))
        .collect()
}

fn decode_record(value: &Value) -> Result<(CacheKey, CacheEntry), String> {
    let obj = value.as_object().ok_or("record is not an object")?;
    let key = decode_key(obj.get("key").ok_or("missing key")?)?;
    let entry = decode_entry(obj.get("entry").ok_or("missing entry")?)?;
    Ok((key, entry))
}

fn decode_key(value: &Value) -> Result<CacheKey, String> {
    let obj = value.as_object().ok_or("key is not an object")?;
    Ok(CacheKey {
        device: obj
            .get("device")
            .and_then(Value::as_str)
            .ok_or("key.device")?
            .to_string(),
        cfg: decode_config(obj.get("cfg").ok_or("key.cfg")?)?,
        direction: decode_direction(obj.get("direction").ok_or("key.direction")?)?,
    })
}

fn decode_config(value: &Value) -> Result<ConvConfig, String> {
    let field = |name: &str| -> Result<usize, String> {
        value
            .get(name)
            .and_then(Value::as_u64)
            .map(|v| v as usize)
            .ok_or_else(|| format!("cfg.{name}"))
    };
    Ok(ConvConfig {
        batch: field("batch")?,
        channels: field("channels")?,
        input: field("input")?,
        filters: field("filters")?,
        kernel: field("kernel")?,
        stride: field("stride")?,
        pad: field("pad")?,
    })
}

fn decode_direction(value: &Value) -> Result<Direction, String> {
    // The derive encodes unit variants as their bare name.
    match value.as_str() {
        Some("Forward") => Ok(Direction::Forward),
        Some("Backward") => Ok(Direction::Backward),
        Some("Training") => Ok(Direction::Training),
        _ => Err(format!("unknown direction {value:?}")),
    }
}

fn decode_strategy(value: &Value) -> Result<Strategy, String> {
    match value.as_str() {
        Some("Direct") => Ok(Strategy::Direct),
        Some("Unrolling") => Ok(Strategy::Unrolling),
        Some("Fft") => Ok(Strategy::Fft),
        _ => Err(format!("unknown strategy {value:?}")),
    }
}

fn decode_layout(value: &Value) -> Result<Layout, String> {
    match value.as_str() {
        Some("Nchw") => Ok(Layout::Nchw),
        Some("Chwn") => Ok(Layout::Chwn),
        Some("Hwcn") => Ok(Layout::Hwcn),
        Some("Nchw8c") => Ok(Layout::Nchw8c),
        Some("Nchw16c") => Ok(Layout::Nchw16c),
        _ => Err(format!("unknown layout {value:?}")),
    }
}

fn decode_entry(value: &Value) -> Result<CacheEntry, String> {
    let obj = value.as_object().ok_or("entry is not an object")?;
    Ok(CacheEntry {
        implementation: obj
            .get("implementation")
            .and_then(Value::as_str)
            .ok_or("entry.implementation")?
            .to_string(),
        strategy: decode_strategy(obj.get("strategy").ok_or("entry.strategy")?)?,
        layout: decode_layout(obj.get("layout").ok_or("entry.layout")?)?,
        time_ms: obj
            .get("time_ms")
            .and_then(Value::as_f64)
            .ok_or("entry.time_ms")?,
        workspace_bytes: obj
            .get("workspace_bytes")
            .and_then(Value::as_u64)
            .ok_or("entry.workspace_bytes")?,
        reps: obj
            .get("reps")
            .and_then(Value::as_u64)
            .ok_or("entry.reps")? as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(device: &str, batch: usize) -> CacheKey {
        CacheKey {
            device: device.to_string(),
            cfg: ConvConfig::with_channels(batch, 3, 32, 16, 3, 1),
            direction: Direction::Training,
        }
    }

    fn entry(name: &str, ms: f64) -> CacheEntry {
        CacheEntry {
            implementation: name.to_string(),
            strategy: Strategy::Unrolling,
            layout: Layout::Nchw,
            time_ms: ms,
            workspace_bytes: 1024,
            reps: 5,
        }
    }

    #[test]
    fn lookup_hits_and_misses() {
        let mut cache = TuningCache::new();
        assert!(cache.lookup(&key("dev", 32)).is_none());
        cache.insert(key("dev", 32), entry("cuDNN", 1.5));
        let hit = cache.lookup(&key("dev", 32)).expect("hit");
        assert_eq!(hit.implementation, "cuDNN");
        assert!(cache.lookup(&key("other", 32)).is_none());
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut cache = TuningCache::with_capacity(2);
        cache.insert(key("dev", 32), entry("a", 1.0));
        cache.insert(key("dev", 64), entry("b", 2.0));
        // Touch 32 so 64 becomes the LRU victim.
        assert!(cache.lookup(&key("dev", 32)).is_some());
        cache.insert(key("dev", 96), entry("c", 3.0));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&key("dev", 64)).is_none(), "LRU evicted");
        assert!(cache.lookup(&key("dev", 32)).is_some());
        assert!(cache.lookup(&key("dev", 96)).is_some());
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("gcnn_autotune_cache_test_rt");
        let path = dir.join("tune.json");
        let mut cache = TuningCache::new();
        cache.insert(key("sim/k40c", 32), entry("fbfft", 3.25));
        cache.insert(key("sim/k40c", 64), entry("cuDNN", 0.125));
        cache.save(&path).expect("save");
        let mut loaded = TuningCache::load(&path);
        assert!(loaded.degraded().is_none());
        assert_eq!(loaded.len(), 2);
        assert_eq!(
            loaded.lookup(&key("sim/k40c", 32)).unwrap(),
            entry("fbfft", 3.25)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_empty_not_degraded() {
        let cache = TuningCache::load(Path::new("/nonexistent/gcnn/tune.json"));
        assert!(cache.is_empty());
        assert!(cache.degraded().is_none());
    }

    #[test]
    fn wrong_schema_version_degrades() {
        let dir = std::env::temp_dir().join("gcnn_autotune_cache_test_ver");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tune.json");
        std::fs::write(&path, "{\"schema_version\": 999, \"entries\": []}").unwrap();
        let cache = TuningCache::load(&path);
        assert!(cache.is_empty());
        assert!(cache.degraded().unwrap().contains("999"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pre_layout_caches_degrade_to_heuristics() {
        // v1/v2 entries have no `layout` field; reading one as planar
        // would silently mis-bind layer boundaries, so both versions
        // must be rejected wholesale (cache degraded → heuristics), even
        // when the rest of the record would decode fine.
        let dir = std::env::temp_dir().join("gcnn_autotune_cache_test_prelayout");
        std::fs::create_dir_all(&dir).unwrap();
        for old_version in [1u32, 2u32] {
            let path = dir.join(format!("tune_v{old_version}.json"));
            let record = concat!(
                "{\"key\": {\"device\": \"cpu/host/v1/4threads/avx2\", ",
                "\"cfg\": {\"batch\": 32, \"channels\": 3, \"input\": 32, ",
                "\"filters\": 16, \"kernel\": 3, \"stride\": 1, \"pad\": 0}, ",
                "\"direction\": \"Forward\"}, ",
                "\"entry\": {\"implementation\": \"unrolling\", ",
                "\"strategy\": \"Unrolling\", \"time_ms\": 1.5, ",
                "\"workspace_bytes\": 1024, \"reps\": 5}}"
            );
            let text = format!("{{\"schema_version\": {old_version}, \"entries\": [{record}]}}");
            std::fs::write(&path, text).unwrap();
            let cache = TuningCache::load(&path);
            assert!(cache.is_empty(), "v{old_version} cache must not load");
            let reason = cache.degraded().expect("degraded");
            assert!(
                reason.contains(&format!("schema version {old_version}")),
                "reason should name the stale version, got: {reason}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn current_schema_missing_layout_field_degrades() {
        // Defense in depth: even a file claiming schema v3 must be
        // rejected if an entry lacks the layout verdict.
        let dir = std::env::temp_dir().join("gcnn_autotune_cache_test_nolayout");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tune.json");
        let record = concat!(
            "{\"key\": {\"device\": \"d\", ",
            "\"cfg\": {\"batch\": 1, \"channels\": 1, \"input\": 8, ",
            "\"filters\": 1, \"kernel\": 3, \"stride\": 1, \"pad\": 0}, ",
            "\"direction\": \"Forward\"}, ",
            "\"entry\": {\"implementation\": \"direct\", ",
            "\"strategy\": \"Direct\", \"time_ms\": 1.0, ",
            "\"workspace_bytes\": 0, \"reps\": 1}}"
        );
        let text = format!("{{\"schema_version\": {SCHEMA_VERSION}, \"entries\": [{record}]}}");
        std::fs::write(&path, text).unwrap();
        let cache = TuningCache::load(&path);
        assert!(cache.is_empty());
        assert!(cache.degraded().unwrap().contains("entry.layout"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn blocked_layout_round_trips() {
        let dir = std::env::temp_dir().join("gcnn_autotune_cache_test_blocked");
        let path = dir.join("tune.json");
        let mut cache = TuningCache::new();
        let mut e = entry("nchwc", 0.75);
        e.layout = Layout::Nchw8c;
        cache.insert(key("cpu/host/v3/4threads/avx2", 32), e.clone());
        cache.save(&path).expect("save");
        let mut loaded = TuningCache::load(&path);
        assert!(loaded.degraded().is_none());
        let hit = loaded
            .lookup(&key("cpu/host/v3/4threads/avx2", 32))
            .expect("hit");
        assert_eq!(hit, e);
        assert_eq!(hit.layout, Layout::Nchw8c);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_is_deterministic() {
        let dir = std::env::temp_dir().join("gcnn_autotune_cache_test_det");
        let a_path = dir.join("a.json");
        let b_path = dir.join("b.json");
        let mut a = TuningCache::new();
        let mut b = TuningCache::new();
        // Insert in opposite orders; bytes must match after sorting.
        a.insert(key("dev", 32), entry("x", 1.0));
        a.insert(key("dev", 64), entry("y", 2.0));
        b.insert(key("dev", 64), entry("y", 2.0));
        b.insert(key("dev", 32), entry("x", 1.0));
        a.save(&a_path).unwrap();
        b.save(&b_path).unwrap();
        assert_eq!(
            std::fs::read_to_string(&a_path).unwrap(),
            std::fs::read_to_string(&b_path).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
