//! The policy engine: how a caller wants winners chosen.
//!
//! [`Policy::Heuristic`] is zero-measurement model-based dispatch (one
//! modeled run per candidate, equivalent to `gcnn-core::advisor`'s
//! `Scenario::Speed` ranking on the simulator substrate).
//! [`Policy::Measure`] is the cudnnFind path: consult the cache, and on
//! a miss run the full measurement sweep and remember the winner.
//! [`Policy::CacheOnly`] is serving mode: never measure, fall back to
//! the heuristic on a miss.

use crate::cache::{CacheEntry, CacheKey, TuningCache};
use crate::harness::{measure_candidates, pick_winner, MeasureParams, Outcome};
use crate::substrate::{Direction, Substrate};
use gcnn_conv::{ConvConfig, Strategy};
use gcnn_tensor::Layout;
use serde::Serialize;

/// How winners are selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Policy {
    /// Model-based pick; no measurement sweep, no cache interaction.
    Heuristic,
    /// Cached winner if present, else measure all candidates and cache
    /// the result.
    Measure,
    /// Cached winner if present, else heuristic — never measures.
    /// Serving mode: latency-safe even with a cold cache.
    CacheOnly,
}

/// Resource constraint on the selection, mirroring
/// `gcnn-core::advisor::Scenario::SpeedWithinMemory`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Constraint {
    /// Fastest candidate, any workspace.
    None,
    /// Fastest candidate whose peak workspace fits the byte budget.
    SpeedWithinMemory(u64),
}

impl Constraint {
    /// Whether a peak workspace of `bytes` satisfies the constraint.
    pub fn allows(&self, bytes: u64) -> bool {
        match self {
            Constraint::None => true,
            Constraint::SpeedWithinMemory(budget) => bytes <= *budget,
        }
    }
}

/// Where a [`Selection`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SelectionSource {
    /// Persistent cache hit.
    Cache,
    /// Fresh measurement sweep this call.
    Measured,
    /// Model-based heuristic (no measurement).
    Heuristic,
}

/// The chosen candidate for one layer configuration.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Selection {
    /// Winning candidate's name on the substrate.
    pub implementation: String,
    /// The convolution strategy it executes.
    pub strategy: Strategy,
    /// The tensor layout it executes in (planar [`Layout::Nchw`] for
    /// everything except the CPU channel-blocked `nchwc` candidate).
    pub layout: Layout,
    /// Its (measured or modeled) time, milliseconds.
    pub time_ms: f64,
    /// Its peak workspace, bytes.
    pub workspace_bytes: u64,
    /// How the choice was made.
    pub source: SelectionSource,
}

/// A configured selector: policy + constraint + measurement knobs.
#[derive(Debug, Clone)]
pub struct Tuner {
    /// Selection policy.
    pub policy: Policy,
    /// Memory constraint applied to every candidate.
    pub constraint: Constraint,
    /// Measurement knobs (used by [`Policy::Measure`] only).
    pub params: MeasureParams,
}

impl Tuner {
    /// A tuner with [`Constraint::None`] and environment-derived
    /// measurement knobs.
    pub fn new(policy: Policy) -> Self {
        Tuner {
            policy,
            constraint: Constraint::None,
            params: MeasureParams::from_env(),
        }
    }

    /// Replace the constraint.
    pub fn with_constraint(mut self, constraint: Constraint) -> Self {
        self.constraint = constraint;
        self
    }

    /// Replace the measurement knobs.
    pub fn with_params(mut self, params: MeasureParams) -> Self {
        self.params = params;
        self
    }

    /// Choose a candidate for `cfg`/`direction` on `sub`.
    ///
    /// Returns `None` when no candidate satisfies the constraint (e.g.
    /// an impossible memory budget). A degraded cache (corrupt file on
    /// load) is simply empty, so `Measure` re-measures and `CacheOnly`
    /// heuristically falls back — degradation never panics or errors.
    pub fn select(
        &self,
        sub: &dyn Substrate,
        cache: &mut TuningCache,
        cfg: &ConvConfig,
        direction: Direction,
    ) -> Option<Selection> {
        match self.policy {
            Policy::Heuristic => self.heuristic(sub, cfg, direction),
            Policy::Measure => {
                if let Some(sel) = self.cached(sub, cache, cfg, direction) {
                    return Some(sel);
                }
                let sel = self.measure(sub, cfg, direction)?;
                cache.insert(
                    self.key(sub, cfg, direction),
                    CacheEntry {
                        implementation: sel.implementation.clone(),
                        strategy: sel.strategy,
                        layout: sel.layout,
                        time_ms: sel.time_ms,
                        workspace_bytes: sel.workspace_bytes,
                        reps: self.params.repeats.reps.max(1),
                    },
                );
                Some(sel)
            }
            Policy::CacheOnly => self
                .cached(sub, cache, cfg, direction)
                .or_else(|| self.heuristic(sub, cfg, direction)),
        }
    }

    fn key(&self, sub: &dyn Substrate, cfg: &ConvConfig, direction: Direction) -> CacheKey {
        CacheKey {
            device: sub.fingerprint(),
            cfg: *cfg,
            direction,
        }
    }

    /// Cache probe; a hit whose stored workspace violates the current
    /// constraint is ignored (the entry was measured under a looser
    /// budget) and selection proceeds as a miss.
    fn cached(
        &self,
        sub: &dyn Substrate,
        cache: &mut TuningCache,
        cfg: &ConvConfig,
        direction: Direction,
    ) -> Option<Selection> {
        let entry = cache.lookup(&self.key(sub, cfg, direction))?;
        if !self.constraint.allows(entry.workspace_bytes) {
            return None;
        }
        Some(Selection {
            implementation: entry.implementation,
            strategy: entry.strategy,
            layout: entry.layout,
            time_ms: entry.time_ms,
            workspace_bytes: entry.workspace_bytes,
            source: SelectionSource::Cache,
        })
    }

    /// One modeled/real run per candidate, minimum cost wins. On the
    /// simulator substrate this ranks candidates by exactly the modeled
    /// time `gcnn-core::advisor::advise` ranks, so the two agree.
    fn heuristic(
        &self,
        sub: &dyn Substrate,
        cfg: &ConvConfig,
        direction: Direction,
    ) -> Option<Selection> {
        sub.candidates()
            .into_iter()
            .filter_map(|cand| {
                let run = sub.run_once(&cand.name, cfg, direction).ok()?;
                self.constraint
                    .allows(run.workspace_bytes)
                    .then_some(Selection {
                        implementation: cand.name,
                        strategy: cand.strategy,
                        layout: cand.layout,
                        time_ms: run.cost_ms,
                        workspace_bytes: run.workspace_bytes,
                        source: SelectionSource::Heuristic,
                    })
            })
            .min_by(|a, b| a.time_ms.total_cmp(&b.time_ms))
    }

    fn measure(
        &self,
        sub: &dyn Substrate,
        cfg: &ConvConfig,
        direction: Direction,
    ) -> Option<Selection> {
        let reports = measure_candidates(sub, cfg, direction, &self.params, &self.constraint);
        let winner = pick_winner(&reports)?;
        let Outcome::Measured {
            time_ms,
            workspace_bytes,
            ..
        } = &winner.outcome
        else {
            return None;
        };
        Some(Selection {
            implementation: winner.name.clone(),
            strategy: winner.strategy,
            layout: winner.layout,
            time_ms: *time_ms,
            workspace_bytes: *workspace_bytes,
            source: SelectionSource::Measured,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::MeasureParams;
    use crate::substrate::SimSubstrate;
    use crate::timing::Repeats;

    fn tuner(policy: Policy) -> Tuner {
        Tuner::new(policy).with_params(MeasureParams {
            repeats: Repeats::new(1, 3),
            timeout_ms: None,
        })
    }

    #[test]
    fn measure_then_cache_hit() {
        let sub = SimSubstrate::k40c();
        let mut cache = TuningCache::new();
        let cfg = ConvConfig::paper_base();
        let t = tuner(Policy::Measure);

        let first = t
            .select(&sub, &mut cache, &cfg, Direction::Training)
            .expect("winner");
        assert_eq!(first.source, SelectionSource::Measured);
        assert_eq!(cache.len(), 1);

        let second = t
            .select(&sub, &mut cache, &cfg, Direction::Training)
            .expect("winner");
        assert_eq!(second.source, SelectionSource::Cache);
        assert_eq!(second.implementation, first.implementation);
        assert_eq!(second.time_ms, first.time_ms);
    }

    #[test]
    fn heuristic_never_touches_cache() {
        let sub = SimSubstrate::k40c();
        let mut cache = TuningCache::new();
        let cfg = ConvConfig::paper_base();
        let sel = tuner(Policy::Heuristic)
            .select(&sub, &mut cache, &cfg, Direction::Training)
            .expect("winner");
        assert_eq!(sel.source, SelectionSource::Heuristic);
        assert!(cache.is_empty());
    }

    #[test]
    fn heuristic_and_measured_agree_on_simulator() {
        // The simulator is deterministic, so a measured trimmed median
        // equals a single heuristic run — same winner either way.
        let sub = SimSubstrate::k40c();
        let mut cache = TuningCache::new();
        let cfg = ConvConfig::paper_base();
        let h = tuner(Policy::Heuristic)
            .select(&sub, &mut cache, &cfg, Direction::Training)
            .unwrap();
        let m = tuner(Policy::Measure)
            .select(&sub, &mut cache, &cfg, Direction::Training)
            .unwrap();
        assert_eq!(h.implementation, m.implementation);
        assert!((h.time_ms - m.time_ms).abs() < 1e-9);
    }

    #[test]
    fn cache_only_falls_back_to_heuristic() {
        let sub = SimSubstrate::k40c();
        let mut cache = TuningCache::new();
        let cfg = ConvConfig::paper_base();
        let sel = tuner(Policy::CacheOnly)
            .select(&sub, &mut cache, &cfg, Direction::Training)
            .expect("fallback winner");
        assert_eq!(sel.source, SelectionSource::Heuristic);
        assert!(cache.is_empty(), "CacheOnly must not write the cache");
    }

    #[test]
    fn memory_constraint_changes_or_blocks_choice() {
        let sub = SimSubstrate::k40c();
        let mut cache = TuningCache::new();
        let cfg = ConvConfig::paper_base();
        let unconstrained = tuner(Policy::Measure)
            .select(&sub, &mut cache, &cfg, Direction::Training)
            .unwrap();
        // Impossible budget → no selection at all.
        let blocked = tuner(Policy::Measure)
            .with_constraint(Constraint::SpeedWithinMemory(1))
            .select(&sub, &mut TuningCache::new(), &cfg, Direction::Training);
        assert!(blocked.is_none());
        // A budget just under the unconstrained winner's workspace must
        // not return anything exceeding it.
        if unconstrained.workspace_bytes > 1 {
            let budget = unconstrained.workspace_bytes - 1;
            if let Some(sel) = tuner(Policy::Measure)
                .with_constraint(Constraint::SpeedWithinMemory(budget))
                .select(&sub, &mut TuningCache::new(), &cfg, Direction::Training)
            {
                assert!(sel.workspace_bytes <= budget);
                assert_ne!(sel.implementation, unconstrained.implementation);
            }
        }
    }

    #[test]
    fn constrained_probe_ignores_looser_cache_entry() {
        let sub = SimSubstrate::k40c();
        let mut cache = TuningCache::new();
        let cfg = ConvConfig::paper_base();
        // Warm the cache without a constraint…
        let warm = tuner(Policy::Measure)
            .select(&sub, &mut cache, &cfg, Direction::Training)
            .unwrap();
        assert!(warm.workspace_bytes > 1);
        // …then select under a budget the cached entry violates: the
        // hit must be ignored, not returned.
        let sel = tuner(Policy::CacheOnly)
            .with_constraint(Constraint::SpeedWithinMemory(1))
            .select(&sub, &mut cache, &cfg, Direction::Training);
        assert!(sel.is_none() || sel.unwrap().workspace_bytes <= 1);
    }
}
