//! Measurement substrates: the things a candidate algorithm can be
//! timed *on*.
//!
//! cuDNN's `cudnnFindConvolutionForwardAlgorithm` measures candidates on
//! the physical GPU; this workspace has two substrates standing in for
//! it. [`SimSubstrate`] runs each implementation's [`ExecutionPlan`]
//! through the `gcnn-gpusim` device model (deterministic modeled
//! milliseconds — the same quantity the advisor ranks). [`CpuSubstrate`]
//! wall-clock-times the three *real* convolution strategies on actual
//! tensors, which is where warmup and trimmed-median aggregation earn
//! their keep.
//!
//! [`ExecutionPlan`]: gcnn_frameworks::ExecutionPlan

use gcnn_conv::{algorithm_for, nchwc, ConvConfig, Strategy};
use gcnn_frameworks::{all_implementations, implementation_by_name};
use gcnn_gpusim::DeviceSpec;
use gcnn_tensor::Layout;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// Which pass of a training iteration is being tuned. Part of the
/// persistent cache key: forward-only serving and full training can
/// legitimately pick different winners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Forward pass only (inference serving).
    Forward,
    /// Backward-data + backward-filters only.
    Backward,
    /// One full training iteration (forward + both backward passes) —
    /// what the paper measures and what [`SimSubstrate`] models.
    Training,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Direction::Forward => "forward",
            Direction::Backward => "backward",
            Direction::Training => "training",
        })
    }
}

/// One selectable algorithm on a substrate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Candidate {
    /// Stable name — a framework name on [`SimSubstrate`] ("cuDNN",
    /// "fbfft", …), a strategy name on [`CpuSubstrate`].
    pub name: String,
    /// The convolution strategy the candidate executes.
    pub strategy: Strategy,
    /// The activation layout the candidate executes over. Planar
    /// [`Layout::Nchw`] for every candidate except the CPU substrate's
    /// `"nchwc"`, which runs the channel-blocked fused direct path.
    pub layout: Layout,
}

/// Cost of one repetition of a candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunCost {
    /// Cost in milliseconds — modeled device time on [`SimSubstrate`],
    /// wall-clock on [`CpuSubstrate`].
    pub cost_ms: f64,
    /// Peak workspace the run required, bytes: plan allocations on the
    /// simulator, fresh arena bytes on the CPU.
    pub workspace_bytes: u64,
}

/// A surface candidates can be measured on.
pub trait Substrate {
    /// Device fingerprint for the persistent cache key. Two processes
    /// with the same fingerprint must agree on what a measurement means.
    fn fingerprint(&self) -> String;

    /// All selectable candidates, in a stable order.
    fn candidates(&self) -> Vec<Candidate>;

    /// Execute one repetition of `candidate` at `cfg`/`direction`.
    /// `Err(reason)` marks the candidate unsupported there.
    fn run_once(
        &self,
        candidate: &str,
        cfg: &ConvConfig,
        direction: Direction,
    ) -> Result<RunCost, String>;
}

/// The seven framework implementations executed on the `gcnn-gpusim`
/// device model. Deterministic; one repetition equals one modeled
/// training iteration.
#[derive(Debug, Clone)]
pub struct SimSubstrate {
    /// The modeled device.
    pub dev: DeviceSpec,
}

impl SimSubstrate {
    /// A substrate over an explicit device.
    pub fn new(dev: DeviceSpec) -> Self {
        SimSubstrate { dev }
    }

    /// The paper's Tesla K40c.
    pub fn k40c() -> Self {
        SimSubstrate::new(DeviceSpec::k40c())
    }
}

impl Substrate for SimSubstrate {
    fn fingerprint(&self) -> String {
        // Everything the timing model's output depends on at first
        // order; a different SM count, clock or memory size is a
        // different device as far as cached winners are concerned.
        format!(
            "sim/{}/sm{}x{}@{}MHz/{}MiB",
            self.dev.name,
            self.dev.sm_count,
            self.dev.cores_per_sm,
            self.dev.clock_mhz,
            self.dev.global_mem_bytes >> 20
        )
    }

    fn candidates(&self) -> Vec<Candidate> {
        all_implementations()
            .iter()
            .map(|imp| Candidate {
                name: imp.name().to_string(),
                strategy: imp.strategy(),
                layout: Layout::Nchw,
            })
            .collect()
    }

    fn run_once(
        &self,
        candidate: &str,
        cfg: &ConvConfig,
        direction: Direction,
    ) -> Result<RunCost, String> {
        if direction != Direction::Training {
            // The framework plans model one full training iteration;
            // pretending they split per pass would fabricate data.
            return Err(format!(
                "simulator substrate models full training iterations, not {direction}"
            ));
        }
        let imp = implementation_by_name(candidate)
            .ok_or_else(|| format!("unknown implementation {candidate}"))?;
        imp.supports(cfg).map_err(|e| e.to_string())?;
        let plan = imp.plan(cfg);
        let report = plan
            .execute(&self.dev, 1)
            .map_err(|_| "out of device memory".to_string())?;
        Ok(RunCost {
            cost_ms: report.total_ms(),
            workspace_bytes: plan.peak_bytes(),
        })
    }
}

/// The three real `gcnn-conv` strategies, wall-clock-timed on this
/// machine with actual tensors. Workspace is accounted through the
/// arena: the bytes of fresh (pool-miss) checkouts the run triggers.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuSubstrate;

impl CpuSubstrate {
    /// Construct the CPU substrate.
    pub fn new() -> Self {
        CpuSubstrate
    }

    /// One timed repetition of the channel-blocked fused direct path.
    ///
    /// Forward-only — the packed path has no backward kernels. Packing
    /// (input and filters) happens outside the timed region: in a fused
    /// chain the pack cost is paid once at the chain boundary and
    /// amortized across its layers, so charging it to every layer would
    /// systematically bias the verdict toward planar.
    fn run_nchwc_once(&self, cfg: &ConvConfig, direction: Direction) -> Result<RunCost, String> {
        if direction != Direction::Forward {
            return Err(format!(
                "nchwc packed path is forward-only, not {direction}"
            ));
        }
        nchwc::supports(cfg).map_err(|e| e.to_string())?;
        let block = gcnn_tensor::simd::preferred_block();
        let x = gcnn_tensor::init::uniform_tensor(cfg.input_shape(), -1.0, 1.0, 97);
        let w = gcnn_tensor::init::uniform_tensor(cfg.filter_shape(), -0.5, 0.5, 98);
        let mut pin = gcnn_tensor::workspace::take_f32(nchwc::packed_input_len(cfg, block));
        let mut pw = gcnn_tensor::workspace::take_f32(nchwc::packed_filter_len(cfg, block));
        let mut pout = gcnn_tensor::workspace::take_f32(nchwc::packed_output_len(cfg, block));
        nchwc::pack_input(cfg, &x, block, pin.as_mut_slice());
        nchwc::pack_filters(cfg, &w, block, pw.as_mut_slice());

        let bytes_before = gcnn_tensor::workspace::fresh_alloc_bytes();
        let t = Instant::now();
        nchwc::fused_conv_relu(
            cfg,
            block,
            pin.as_slice(),
            pw.as_slice(),
            std::hint::black_box(pout.as_mut_slice()),
            false,
        );
        Ok(RunCost {
            cost_ms: t.elapsed().as_secs_f64() * 1e3,
            workspace_bytes: gcnn_tensor::workspace::fresh_alloc_bytes() - bytes_before,
        })
    }
}

impl Substrate for CpuSubstrate {
    fn fingerprint(&self) -> String {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        // The SIMD dispatch path changes what a measurement means: a
        // verdict cached under the scalar kernels must not be trusted by
        // a process running the AVX2/NEON ones (and vice versa), so the
        // effective ISA is part of the device identity. The `v3`
        // generation tag invalidates verdicts measured before the
        // NCHWc layout candidate existed (`v2` was the split-complex
        // FFT rework): older winners never saw the packed path compete.
        let isa = gcnn_tensor::simd::isa_name();
        format!("cpu/host/v3/{threads}threads/{isa}")
    }

    fn candidates(&self) -> Vec<Candidate> {
        let mut cands: Vec<Candidate> = [Strategy::Direct, Strategy::Unrolling, Strategy::Fft]
            .into_iter()
            .map(|s| Candidate {
                name: s.to_string(),
                strategy: s,
                layout: Layout::Nchw,
            })
            .collect();
        // The channel-blocked fused direct path. Forward-only: training
        // keeps planar layouts, so this candidate rejects any direction
        // with a backward pass and can only win serving-style tunes.
        cands.push(Candidate {
            name: "nchwc".to_string(),
            strategy: Strategy::Direct,
            layout: gcnn_tensor::nchwc::preferred_layout(),
        });
        cands
    }

    fn run_once(
        &self,
        candidate: &str,
        cfg: &ConvConfig,
        direction: Direction,
    ) -> Result<RunCost, String> {
        let strategy = match candidate {
            "direct" => Strategy::Direct,
            "unrolling" => Strategy::Unrolling,
            "fft" => Strategy::Fft,
            "nchwc" => return self.run_nchwc_once(cfg, direction),
            other => return Err(format!("unknown strategy {other}")),
        };
        let algo = algorithm_for(strategy);
        algo.supports(cfg).map_err(|e| e.to_string())?;

        // Inputs are built outside the timed region; only the
        // convolution itself is measured.
        let x = gcnn_tensor::init::uniform_tensor(cfg.input_shape(), -1.0, 1.0, 97);
        let w = gcnn_tensor::init::uniform_tensor(cfg.filter_shape(), -0.5, 0.5, 98);
        let g = gcnn_tensor::init::uniform_tensor(cfg.output_shape(), -1.0, 1.0, 99);

        let bytes_before = gcnn_tensor::workspace::fresh_alloc_bytes();
        let t = Instant::now();
        match direction {
            Direction::Forward => {
                std::hint::black_box(algo.forward(cfg, &x, &w));
            }
            Direction::Backward => {
                std::hint::black_box(algo.backward_data(cfg, &g, &w));
                std::hint::black_box(algo.backward_filters(cfg, &x, &g));
            }
            Direction::Training => {
                std::hint::black_box(algo.forward(cfg, &x, &w));
                std::hint::black_box(algo.backward_data(cfg, &g, &w));
                std::hint::black_box(algo.backward_filters(cfg, &x, &g));
            }
        }
        Ok(RunCost {
            cost_ms: t.elapsed().as_secs_f64() * 1e3,
            workspace_bytes: gcnn_tensor::workspace::fresh_alloc_bytes() - bytes_before,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_candidates_are_the_seven_implementations() {
        let sub = SimSubstrate::k40c();
        let c = sub.candidates();
        assert_eq!(c.len(), 7);
        assert!(c.iter().any(|c| c.name == "fbfft"));
        assert!(c
            .iter()
            .all(|c| c.name != "fbfft" || c.strategy == Strategy::Fft));
    }

    #[test]
    fn sim_run_matches_plan_execution() {
        let sub = SimSubstrate::k40c();
        let cfg = ConvConfig::paper_base();
        let run = sub.run_once("cuDNN", &cfg, Direction::Training).unwrap();
        let imp = implementation_by_name("cuDNN").unwrap();
        let want = imp.plan(&cfg).execute(&sub.dev, 1).unwrap().total_ms();
        assert!((run.cost_ms - want).abs() < 1e-9);
        assert_eq!(run.workspace_bytes, imp.plan(&cfg).peak_bytes());
    }

    #[test]
    fn sim_rejects_unsupported_and_non_training() {
        let sub = SimSubstrate::k40c();
        let strided = ConvConfig::from_tuple(64, 32, 64, 5, 2);
        assert!(sub
            .run_once("fbfft", &strided, Direction::Training)
            .is_err());
        assert!(sub
            .run_once("cuDNN", &ConvConfig::paper_base(), Direction::Forward)
            .is_err());
        assert!(sub
            .run_once(
                "no-such-impl",
                &ConvConfig::paper_base(),
                Direction::Training
            )
            .is_err());
    }

    #[test]
    fn cpu_runs_all_three_strategies() {
        let sub = CpuSubstrate::new();
        let cfg = ConvConfig::with_channels(2, 2, 8, 4, 3, 1);
        for cand in sub.candidates() {
            if cand.name == "nchwc" {
                continue; // forward-only; covered below
            }
            let run = sub
                .run_once(&cand.name, &cfg, Direction::Training)
                .unwrap_or_else(|e| panic!("{}: {e}", cand.name));
            assert!(run.cost_ms > 0.0, "{}", cand.name);
        }
    }

    #[test]
    fn cpu_nchwc_candidate_is_forward_only_and_blocked() {
        let sub = CpuSubstrate::new();
        let cands = sub.candidates();
        assert_eq!(cands.len(), 4);
        let nchwc = cands.iter().find(|c| c.name == "nchwc").unwrap();
        assert_eq!(nchwc.strategy, Strategy::Direct);
        assert!(
            nchwc.layout.is_blocked(),
            "nchwc must carry a blocked layout"
        );
        assert!(
            cands
                .iter()
                .filter(|c| c.name != "nchwc")
                .all(|c| c.layout == Layout::Nchw),
            "planar candidates must stay NCHW"
        );

        let cfg = ConvConfig::with_channels(2, 2, 8, 4, 3, 1);
        let run = sub.run_once("nchwc", &cfg, Direction::Forward).unwrap();
        assert!(run.cost_ms > 0.0);
        for dir in [Direction::Backward, Direction::Training] {
            let err = sub.run_once("nchwc", &cfg, dir).unwrap_err();
            assert!(err.contains("forward-only"), "{err}");
        }
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let sim = SimSubstrate::k40c();
        assert_eq!(sim.fingerprint(), sim.fingerprint());
        assert_ne!(sim.fingerprint(), CpuSubstrate::new().fingerprint());
        assert!(sim.fingerprint().contains("Tesla K40c"));
    }

    #[test]
    fn cpu_fingerprint_carries_isa() {
        let fp = CpuSubstrate::new().fingerprint();
        assert!(
            fp.ends_with(&format!("/{}", gcnn_tensor::simd::isa_name())),
            "fingerprint {fp} missing ISA suffix"
        );
        assert!(
            fp.contains("/v3/"),
            "fingerprint {fp} missing the layout-verdict generation tag"
        );
    }
}
