//! `gcnn-autotune` — measurement-driven per-layer algorithm selection
//! with a persistent tuning cache.
//!
//! The paper's goal is to "assist practitioners identifying the
//! implementations that best serve their CNN computation needs in
//! different scenarios"; production stacks answer that the way cuDNN's
//! `cudnnFindConvolutionForwardAlgorithm` does — measure the candidates
//! on the actual substrate and cache the winner per layer shape. This
//! crate is that subsystem, in three layers:
//!
//! 1. **measurement harness** ([`harness`]) — warmup + trimmed-median
//!    timing over N reps (shared util in [`timing`]), optional per-
//!    candidate wall-clock timeout, peak-workspace accounting;
//! 2. **persistent cache** ([`cache`]) — versioned JSON keyed by
//!    `(device fingerprint, ConvConfig, direction)`, atomic writes,
//!    degrade-to-heuristics on corrupt or stale files;
//! 3. **policy engine** ([`policy`]) — `Heuristic` / `Measure` /
//!    `CacheOnly` plus a `SpeedWithinMemory` constraint mirroring
//!    `gcnn-core::advisor::Scenario`.
//!
//! Candidates run on a [`substrate::Substrate`]: the gpusim device
//! model (the seven framework implementations, deterministic) or the
//! real CPU strategies (wall clock). `gcnn-models::Network::tune` walks
//! a network through a [`policy::Tuner`] to pick each conv layer's
//! algorithm, and the `autotune_report` bench binary compares the tuned
//! schedule against single-framework and oracle schedules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod harness;
pub mod policy;
pub mod substrate;
pub mod timing;

pub use cache::{CacheEntry, CacheKey, TuningCache, SCHEMA_VERSION};
pub use harness::{measure_candidates, pick_winner, CandidateReport, MeasureParams, Outcome};
pub use policy::{Constraint, Policy, Selection, SelectionSource, Tuner};
pub use substrate::{Candidate, CpuSubstrate, Direction, RunCost, SimSubstrate, Substrate};
pub use timing::{stats, time_wall, trimmed_median, Repeats, Stats};
