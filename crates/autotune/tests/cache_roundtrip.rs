//! Property tests for the tuning-cache file format.
//!
//! The encoder is the derived `Serialize` of the vendored serde; the
//! decoder is hand-written over `serde_json::Value` (the stand-in has no
//! typed deserialization). These round-trips are what hold the two
//! sides to the same format, plus the degrade-don't-panic contract for
//! truncated, garbage, and wrong-schema-version files.

use gcnn_autotune::cache::{CacheEntry, CacheKey, TuningCache};
use gcnn_autotune::substrate::Direction;
use gcnn_conv::{ConvConfig, Strategy as ConvStrategy};
use gcnn_tensor::Layout;
use proptest::prelude::*;
use std::path::PathBuf;

fn temp_path(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gcnn_autotune_rt_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{case}.json"))
}

fn arb_direction() -> impl Strategy<Value = Direction> {
    prop_oneof![
        Just(Direction::Forward),
        Just(Direction::Backward),
        Just(Direction::Training),
    ]
}

fn arb_strategy() -> impl Strategy<Value = ConvStrategy> {
    prop_oneof![
        Just(ConvStrategy::Direct),
        Just(ConvStrategy::Unrolling),
        Just(ConvStrategy::Fft),
    ]
}

fn arb_layout() -> impl Strategy<Value = Layout> {
    prop_oneof![
        Just(Layout::Nchw),
        Just(Layout::Chwn),
        Just(Layout::Hwcn),
        Just(Layout::Nchw8c),
        Just(Layout::Nchw16c),
    ]
}

fn arb_config() -> impl Strategy<Value = ConvConfig> {
    (
        1usize..512,
        1usize..512,
        1usize..256,
        1usize..1024,
        1usize..16,
        1usize..5,
    )
        .prop_map(
            |(batch, channels, input, filters, kernel, stride)| ConvConfig {
                batch,
                channels,
                input,
                filters,
                kernel,
                stride,
                pad: kernel % 3,
            },
        )
}

fn arb_device() -> impl Strategy<Value = String> {
    // The vendored proptest has no string strategies; synthesize
    // fingerprint-shaped names (including characters JSON must escape).
    (0usize..4, 1u32..64, 100u32..2000).prop_map(|(kind, sms, clock)| {
        let prefix = [
            "sim/Tesla K40c",
            "sim/GTX \"Titan\"",
            "cpu/host",
            "dev\\weird\npath",
        ][kind];
        format!("{prefix}/sm{sms}@{clock}MHz")
    })
}

fn arb_key() -> impl Strategy<Value = CacheKey> {
    (arb_device(), arb_config(), arb_direction()).prop_map(|(device, cfg, direction)| CacheKey {
        device,
        cfg,
        direction,
    })
}

fn arb_entry() -> impl Strategy<Value = CacheEntry> {
    // Workspace bytes stay below 2^53: the JSON number line (f64 in the
    // vendored Value) is exact only up to there — see the cache docs.
    (
        0usize..7,
        arb_strategy(),
        arb_layout(),
        0.0f64..1e6,
        0u64..(1 << 53),
        1usize..32,
    )
        .prop_map(
            |(imp, strategy, layout, time_ms, workspace_bytes, reps)| CacheEntry {
                implementation: [
                    "Caffe",
                    "Torch-cunn",
                    "Theano-CorrMM",
                    "Theano-fft",
                    "cuDNN",
                    "cuda-convnet2",
                    "fbfft",
                ][imp]
                    .to_string(),
                strategy,
                layout,
                time_ms,
                workspace_bytes,
                reps,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn save_load_identity(
        pairs in proptest::collection::vec((arb_key(), arb_entry()), 1..20),
        case in 0u64..u64::MAX,
    ) {
        let path = temp_path("identity", case);
        let mut cache = TuningCache::new();
        // Later duplicates of a key overwrite earlier ones, mirroring
        // insert semantics; mimic that in the expectation map.
        let mut expected = std::collections::HashMap::new();
        for (key, entry) in pairs {
            cache.insert(key.clone(), entry.clone());
            expected.insert(key, entry);
        }
        cache.save(&path).expect("save");

        let mut loaded = TuningCache::load(&path);
        prop_assert!(loaded.degraded().is_none());
        prop_assert_eq!(loaded.len(), expected.len());
        for (key, entry) in &expected {
            let got = loaded.lookup(key);
            prop_assert_eq!(got.as_ref(), Some(entry));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_degrades_without_panic(
        key in arb_key(),
        entry in arb_entry(),
        case in 0u64..u64::MAX,
        cut_num in 1usize..1000,
    ) {
        let path = temp_path("trunc", case);
        let mut cache = TuningCache::new();
        cache.insert(key, entry);
        cache.save(&path).expect("save");

        let full = std::fs::read_to_string(&path).unwrap();
        // Cut somewhere strictly inside the document.
        let cut = 1 + cut_num % (full.len() - 1);
        let truncated: String = full.chars().take(cut).collect();
        std::fs::write(&path, truncated).unwrap();

        let loaded = TuningCache::load(&path);
        prop_assert!(loaded.is_empty());
        prop_assert!(loaded.degraded().is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_file_degrades_without_panic(
        bytes in proptest::collection::vec(0u8..=255, 0..512),
        case in 0u64..u64::MAX,
    ) {
        let path = temp_path("garbage", case);
        std::fs::write(&path, &bytes).unwrap();
        let loaded = TuningCache::load(&path);
        prop_assert!(loaded.is_empty());
        // Arbitrary bytes may accidentally form valid JSON, but never a
        // valid non-empty cache of our schema.
        prop_assert_eq!(loaded.len(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_schema_version_degrades(
        key in arb_key(),
        entry in arb_entry(),
        version in 0u64..1_000_000,
        case in 0u64..u64::MAX,
    ) {
        prop_assume!(version != u64::from(gcnn_autotune::SCHEMA_VERSION));
        let path = temp_path("version", case);
        let mut cache = TuningCache::new();
        cache.insert(key, entry);
        cache.save(&path).expect("save");

        // Rewrite the version stamp in place; the rest stays valid.
        let text = std::fs::read_to_string(&path).unwrap();
        let current = format!("\"schema_version\": {}", gcnn_autotune::SCHEMA_VERSION);
        prop_assert!(text.contains(&current));
        std::fs::write(&path, text.replace(&current, &format!("\"schema_version\": {version}")))
            .unwrap();

        let loaded = TuningCache::load(&path);
        prop_assert!(loaded.is_empty());
        prop_assert!(loaded.degraded().is_some());
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn mangled_entries_degrade_not_panic() {
    // Hand-picked structural corruptions the fuzz above may not hit.
    for bad in [
        "{}",
        "[]",
        "null",
        "{\"schema_version\": 1}",
        "{\"schema_version\": 1, \"entries\": 7}",
        "{\"schema_version\": 1, \"entries\": [7]}",
        "{\"schema_version\": 1, \"entries\": [{\"key\": {}, \"entry\": {}}]}",
        "{\"schema_version\": \"one\", \"entries\": []}",
    ] {
        let path = temp_path("mangled", bad.len() as u64);
        std::fs::write(&path, bad).unwrap();
        let loaded = TuningCache::load(&path);
        assert!(loaded.is_empty(), "{bad:?} must load as empty");
        assert!(loaded.degraded().is_some(), "{bad:?} must be degraded");
        std::fs::remove_file(&path).ok();
    }
}
