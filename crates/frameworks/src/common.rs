//! Shared plan-building helpers for the framework models.

use gcnn_conv::ConvConfig;
use gcnn_gpusim::{AccessPattern, KernelDesc, LaunchConfig, SharedAccessDesc};

/// Bytes of an `f32` tensor with `elems` elements.
pub const fn f32_bytes(elems: u64) -> u64 {
    elems * 4
}

/// Derived sizes every plan needs.
#[derive(Debug, Clone, Copy)]
pub struct Sizes {
    /// Mini-batch.
    pub b: u64,
    /// Input channels.
    pub c: u64,
    /// Input spatial size.
    pub i: u64,
    /// Filters.
    pub f: u64,
    /// Kernel size.
    pub k: u64,
    /// Output spatial size.
    pub o: u64,
    /// `o²`.
    pub o2: u64,
    /// `c·k²` (im2col rows).
    pub ckk: u64,
    /// Input tensor bytes.
    pub input_bytes: u64,
    /// Filter tensor bytes.
    pub filter_bytes: u64,
    /// Output tensor bytes.
    pub output_bytes: u64,
    /// Forward FLOPs (`2·b·f·c·o²·k²`).
    pub fwd_flops: u64,
}

impl Sizes {
    /// Compute from a configuration.
    pub fn of(cfg: &ConvConfig) -> Self {
        let (b, c, i, f, k) = (
            cfg.batch as u64,
            cfg.channels as u64,
            cfg.input as u64,
            cfg.filters as u64,
            cfg.kernel as u64,
        );
        let o = cfg.output() as u64;
        Sizes {
            b,
            c,
            i,
            f,
            k,
            o,
            o2: o * o,
            ckk: c * k * k,
            input_bytes: f32_bytes(b * c * i * i),
            filter_bytes: f32_bytes(f * c * k * k),
            output_bytes: f32_bytes(b * f * o * o),
            fwd_flops: cfg.forward_flops(),
        }
    }
}

/// The baseline tensor allocations of one training iteration.
///
/// `share_activation_grads` models Torch-cunn / cuda-convnet2, which
/// reuse the activation buffer for its gradient (the reason their peak
/// memory in the paper's Fig. 5 sits ~2× below Caffe/cuDNN/Theano,
/// whose `grad_output` is a separate tensor).
pub fn tensor_allocations(cfg: &ConvConfig, share_activation_grads: bool) -> Vec<(String, u64)> {
    let s = Sizes::of(cfg);
    let mut allocs = vec![
        // The CUDA context + cuBLAS/cuFFT handles every framework holds
        // resident — nvidia-smi (the paper's Fig. 5 instrument) counts
        // it, which is why even tiny layers report ≥ ~125 MB.
        ("cuda_context".to_string(), 100 * 1024 * 1024),
        ("input".to_string(), s.input_bytes),
        ("filters".to_string(), s.filter_bytes),
        ("filter_grads".to_string(), s.filter_bytes),
        ("output".to_string(), s.output_bytes),
        ("input_grads".to_string(), s.input_bytes),
    ];
    if !share_activation_grads {
        allocs.push(("output_grads".to_string(), s.output_bytes));
    }
    allocs
}

/// Pick the best tile size for a dimension from `(tile, efficiency)`
/// candidates: the paper's tile-quantization mechanism (§4.3 of
/// DESIGN.md). Returns `(tile, efficiency × utilization)` where
/// utilization is `dim / (ceil(dim/tile)·tile)`.
pub fn best_tile(dim: u64, candidates: &[(u64, f64)]) -> (u64, f64) {
    assert!(!candidates.is_empty(), "best_tile: no candidates");
    candidates
        .iter()
        .map(|&(tile, eff)| {
            let padded = dim.div_ceil(tile) * tile;
            let util = dim as f64 / padded as f64;
            (tile, eff * util)
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty candidates")
}

/// Parameters for [`gemm_kernel`].
#[derive(Debug, Clone, Copy)]
pub struct GemmKernelSpec {
    /// Registers per thread (Table II).
    pub regs: u32,
    /// Shared memory per block, bytes.
    pub smem: u32,
    /// Threads per block.
    pub block: u32,
    /// C tile height (m-axis).
    pub tile_m: u64,
    /// C tile width (n-axis).
    pub tile_n: u64,
    /// Steady-state fraction of peak FLOP/s.
    pub compute_efficiency: f32,
    /// Occupancy needed to hide latency.
    pub occupancy_needed: f32,
    /// Global load pattern.
    pub load_pattern: AccessPattern,
    /// Extra lane-utilization factor (tile quantization on top axes).
    pub lane_utilization: f32,
}

/// Build a tiled-GEMM kernel descriptor for `C(m×n) = A(m×k)·B(k×n)`.
///
/// Global traffic follows the classic tiled-GEMM bound: each C tile
/// streams an `tile_m×k` panel of A and a `k×tile_n` panel of B, so
/// loads = `4k·(n/tile_n·m + m/tile_m·n)`; shared traffic is one staging
/// pass of those panels.
pub fn gemm_kernel(name: &str, m: u64, n: u64, k: u64, spec: GemmKernelSpec) -> KernelDesc {
    let tiles_m = m.div_ceil(spec.tile_m);
    let tiles_n = n.div_ceil(spec.tile_n);
    // Split-K: when the C-tile grid can't fill the device (e.g. the
    // f × ck² weight-gradient GEMM with its huge shared dimension),
    // cuBLAS-class kernels split the k loop across extra blocks and
    // reduce at the end.
    let tiles = (tiles_m * tiles_n).max(1);
    let split_k = if tiles < 60 {
        (60 / tiles).min(k.div_ceil(256)).max(1)
    } else {
        1
    };
    let grid = (tiles * split_k) as u32;

    let mut desc = KernelDesc::new(name, LaunchConfig::new(grid, spec.block));
    desc.regs_per_thread = spec.regs;
    desc.smem_per_block = spec.smem;
    desc.flops = 2 * m * n * k;
    // A is streamed once per column of C tiles, B once per row of tiles;
    // most re-reads hit L2 (resident panels), so DRAM sees a fraction.
    desc.gmem_load_bytes = 4 * k * (m * tiles_n + n * tiles_m);
    desc.load_cached_fraction = 0.75;
    desc.gmem_store_bytes = 4 * m * n;
    desc.load_pattern = spec.load_pattern;
    desc.store_pattern = AccessPattern::Strided { stride_words: 2 };
    // Every loaded panel element is staged through shared memory and
    // read tile-width times; cuBLAS-class kernels keep that conflict
    // free with a dash of broadcast.
    desc.shared = SharedAccessDesc {
        bytes: desc.gmem_load_bytes * 4,
        bank_stride_words: 1,
        broadcast_fraction: 0.005,
    };
    desc.warp_efficiency = 0.99; // edge-tile predication only
    desc.compute_efficiency = spec.compute_efficiency;
    desc.occupancy_needed = spec.occupancy_needed;
    desc.lane_utilization = spec.lane_utilization;
    desc
}

/// Build an `im2col`/`col2im`-style reshaping kernel: memory-bound,
/// reads `bytes_in`, writes `bytes_out`, with the given load pattern
/// (the paper's §V-C-2 blames these kernels' non-coalesced accesses for
/// the unrolling frameworks' <20 % gld efficiency).
pub fn reshape_kernel(
    name: &str,
    bytes_in: u64,
    bytes_out: u64,
    regs: u32,
    load_pattern: AccessPattern,
) -> KernelDesc {
    let threads = (bytes_out / 4).max(1);
    let grid = threads.div_ceil(256).max(1).min(u32::MAX as u64) as u32;
    let mut desc = KernelDesc::new(name, LaunchConfig::new(grid, 256));
    desc.regs_per_thread = regs;
    desc.flops = 0;
    desc.gmem_load_bytes = bytes_in;
    desc.load_pattern = load_pattern;
    desc.gmem_store_bytes = bytes_out;
    desc.store_pattern = AccessPattern::Strided { stride_words: 2 };
    desc.warp_efficiency = 0.98; // boundary branches
    desc.compute_efficiency = 0.05;
    desc.occupancy_needed = 0.5; // pure latency machine: needs warps
    desc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ConvConfig {
        ConvConfig::paper_base()
    }

    #[test]
    fn sizes_of_paper_base() {
        let s = Sizes::of(&base());
        assert_eq!(s.o, 118);
        assert_eq!(s.ckk, 3 * 121);
        assert_eq!(s.input_bytes, 64 * 3 * 128 * 128 * 4);
        assert_eq!(s.fwd_flops, 2 * 64 * 64 * 3 * 118 * 118 * 121);
    }

    #[test]
    fn tensor_allocations_shared_vs_separate() {
        let sep = tensor_allocations(&base(), false);
        let shared = tensor_allocations(&base(), true);
        let sum = |v: &[(String, u64)]| v.iter().map(|(_, b)| *b).sum::<u64>();
        let s = Sizes::of(&base());
        assert_eq!(sum(&sep) - sum(&shared), s.output_bytes);
    }

    #[test]
    fn best_tile_prefers_exact_fit() {
        // dim 160: tile 32 fits exactly (util 1.0, eff 0.6); tile 128
        // pads to 256 (util 0.625, eff 0.74 → 0.4625).
        let (tile, score) = best_tile(160, &[(32, 0.6), (64, 0.68), (128, 0.74)]);
        assert_eq!(tile, 32);
        assert!((score - 0.6).abs() < 1e-12);

        // dim 128: the big tile wins outright.
        let (tile, score) = best_tile(128, &[(32, 0.6), (64, 0.68), (128, 0.74)]);
        assert_eq!(tile, 128);
        assert!((score - 0.74).abs() < 1e-12);
    }

    #[test]
    fn gemm_kernel_flops_and_grid() {
        let spec = GemmKernelSpec {
            regs: 80,
            smem: 8 * 1024,
            block: 256,
            tile_m: 64,
            tile_n: 64,
            compute_efficiency: 0.7,
            occupancy_needed: 0.25,
            load_pattern: AccessPattern::Strided { stride_words: 4 },
            lane_utilization: 1.0,
        };
        let k = gemm_kernel("sgemm", 96, 200, 363, spec);
        assert_eq!(k.flops, 2 * 96 * 200 * 363);
        // tiles: ceil(96/64)=2 × ceil(200/64)=4 = 8 blocks, split-K
        // ×ceil(363/256)=2 to help fill the device.
        assert_eq!(k.launch.grid_blocks, 16);
        assert!(k.gmem_store_bytes == 4 * 96 * 200);
        assert!(k.shared.bytes > 0);
    }

    #[test]
    fn reshape_kernel_is_memory_bound() {
        let k = reshape_kernel(
            "im2col",
            1 << 20,
            4 << 20,
            24,
            AccessPattern::Strided { stride_words: 8 },
        );
        assert_eq!(k.flops, 0);
        assert_eq!(k.gmem_load_bytes, 1 << 20);
        assert_eq!(k.gmem_store_bytes, 4 << 20);
    }
}
