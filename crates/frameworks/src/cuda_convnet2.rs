//! cuda-convnet2: Krizhevsky's direct convolution.
//!
//! Paper §V-A: *"cuda-convnet2 computes for convolutional layers
//! directly, which is mainly achieved by three kernels:
//! `filterActs_YxX_color`, `img_acts_color` and
//! `conv_weight_acts_c_preload`"*; §V-B: it is *"the most memory
//! efficient one in all scenarios"* because direct convolution keeps no
//! intermediate data; §V-C-1: its 116 registers/thread cap occupancy at
//! 14–22 % — compensated by register-level ILP; and §IV-B: it *"was
//! optimized for mini-batch sizes of a multiple of 128, and thus
//! performs well only in those cases"*, with hard shape restrictions
//! (square inputs/kernels, batch % 32, filters % 16).

use crate::common::{self, Sizes};
use crate::plan::{ExecutionPlan, PlannedKernel, ResourceProfile};
use crate::ConvImplementation;
use gcnn_conv::{ConvAlgorithm, ConvConfig, DirectConv, Strategy, Unsupported};
use gcnn_gpusim::{
    AccessPattern, KernelDesc, LaunchConfig, SharedAccessDesc, Transfer, TransferDirection,
};

/// The cuda-convnet2 implementation model.
#[derive(Debug, Clone, Copy, Default)]
pub struct CudaConvnet2;

impl CudaConvnet2 {
    /// Image-tile efficiency: filterActs processes images in tiles of
    /// 32/64/128 along the (innermost, CHWN-layout) batch axis; partial
    /// tiles waste lanes. The 128-wide variant is the most optimized —
    /// the Fig. 3a "multiple of 128" mechanism.
    pub fn batch_tile_efficiency(batch: u64) -> f32 {
        let (_, score) = common::best_tile(batch, &[(32, 0.72), (64, 0.82), (128, 1.0)]);
        score as f32
    }

    fn direct_kernel(name: &str, cfg: &ConvConfig, flops: u64, store_bytes: u64) -> KernelDesc {
        let s = Sizes::of(cfg);
        let grid = (s.b.div_ceil(128) * s.f.div_ceil(16) * s.o2.div_ceil(16)).max(1);
        let mut k = KernelDesc::new(
            name,
            LaunchConfig::new(grid.min(u32::MAX as u64) as u32, 128),
        );
        k.regs_per_thread = 116;
        k.smem_per_block = 16 * 1024;
        k.flops = flops;
        // CHWN layout makes batch-axis loads perfectly coalesced.
        k.gmem_load_bytes = s.input_bytes + s.filter_bytes;
        k.load_pattern = AccessPattern::Coalesced;
        k.gmem_store_bytes = store_bytes;
        k.store_pattern = AccessPattern::Coalesced;
        k.shared = SharedAccessDesc {
            bytes: flops / 8,
            bank_stride_words: 1,
            broadcast_fraction: 0.01,
        };
        k.warp_efficiency = 0.98;
        let mut eff = 0.52 * Self::batch_tile_efficiency(s.b);
        // Strided windows break the 128-image-wide contiguous loads.
        if cfg.stride > 1 {
            eff *= 0.85;
        }
        k.compute_efficiency = eff;
        // Massive register ILP: latency hidden with few warps (the
        // paper's low-occupancy-yet-fast observation).
        k.occupancy_needed = 0.15;
        k
    }
}

impl ConvImplementation for CudaConvnet2 {
    fn name(&self) -> &'static str {
        "cuda-convnet2"
    }

    fn strategy(&self) -> Strategy {
        Strategy::Direct
    }

    fn resources(&self) -> ResourceProfile {
        ResourceProfile {
            registers: 116,
            shared_kb: 16.0,
        }
    }

    fn supports(&self, cfg: &ConvConfig) -> Result<(), Unsupported> {
        // Paper §IV-B Summary: "Cuda-convnet2 only supports square input
        // images and square kernels, its mini-batch size must be a
        // multiple of 32 and its filter number must be a multiple of
        // 16." (Inputs/kernels are square by construction here.)
        if !cfg.is_valid() {
            return Err(Unsupported::InvalidGeometry {
                reason: format!("{cfg}"),
            });
        }
        if cfg.batch % 32 != 0 {
            return Err(Unsupported::BatchNotMultipleOf {
                multiple: 32,
                batch: cfg.batch,
            });
        }
        if cfg.filters % 16 != 0 {
            return Err(Unsupported::FiltersNotMultipleOf {
                multiple: 16,
                filters: cfg.filters,
            });
        }
        Ok(())
    }

    fn plan(&self, cfg: &ConvConfig) -> ExecutionPlan {
        let s = Sizes::of(cfg);
        // Direct convolution: no workspace at all ("does not need
        // temporary memory to keep intermediate data"), shared
        // activation gradients.
        let allocations = common::tensor_allocations(cfg, true);

        let fwd = Self::direct_kernel("filterActs_YxX_color", cfg, s.fwd_flops, s.output_bytes);
        let bwd_data = Self::direct_kernel("img_acts_color", cfg, s.fwd_flops, s.input_bytes);
        let bwd_filters = Self::direct_kernel(
            "conv_weight_acts_c_preload",
            cfg,
            s.fwd_flops,
            s.filter_bytes,
        );

        ExecutionPlan {
            allocations,
            // Pinned upload, half-overlapped by cc2's double-buffered
            // data provider — the few-% transfer share Fig. 7 reports.
            transfers: vec![Transfer {
                direction: TransferDirection::HostToDevice,
                bytes: s.input_bytes,
                pinned: true,
                overlap: 0.5,
            }],
            kernels: vec![
                PlannedKernel::once(fwd),
                PlannedKernel::once(bwd_data),
                PlannedKernel::once(bwd_filters),
            ],
        }
    }

    fn algorithm(&self) -> Box<dyn ConvAlgorithm> {
        Box::new(DirectConv::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caffe::Caffe;
    use crate::cudnn::CuDnn;
    use crate::theano_corrmm::TheanoCorrMM;
    use crate::torch_cunn::TorchCunn;
    use gcnn_gpusim::DeviceSpec;

    fn time_of(imp: &dyn ConvImplementation, cfg: &ConvConfig) -> f64 {
        imp.plan(cfg)
            .execute(&DeviceSpec::k40c(), 1)
            .unwrap()
            .total_ms()
    }

    #[test]
    fn shape_restrictions_match_paper() {
        let ok = ConvConfig::from_tuple(64, 128, 64, 11, 1);
        assert!(CudaConvnet2.supports(&ok).is_ok());
        let bad_batch = ConvConfig::from_tuple(48, 128, 64, 11, 1);
        assert!(matches!(
            CudaConvnet2.supports(&bad_batch),
            Err(Unsupported::BatchNotMultipleOf { multiple: 32, .. })
        ));
        let bad_filters = ConvConfig::from_tuple(64, 128, 50, 11, 1);
        assert!(matches!(
            CudaConvnet2.supports(&bad_filters),
            Err(Unsupported::FiltersNotMultipleOf { multiple: 16, .. })
        ));
    }

    #[test]
    fn lowest_memory_of_all_implementations() {
        // Paper Fig. 5: "cuda-convnet2 is the most memory efficient one
        // in all scenarios given in our experiment."
        let cfg = ConvConfig::paper_base();
        let cc2 = CudaConvnet2.plan(&cfg).peak_bytes();
        assert!(cc2 < Caffe.plan(&cfg).peak_bytes());
        assert!(cc2 < TorchCunn.plan(&cfg).peak_bytes());
        assert!(cc2 < CuDnn.plan(&cfg).peak_bytes());
        assert!(cc2 < TheanoCorrMM.plan(&cfg).peak_bytes());
    }

    #[test]
    fn batch_tile_efficiency_peaks_at_multiples_of_128() {
        assert!((CudaConvnet2::batch_tile_efficiency(128) - 1.0).abs() < 1e-6);
        assert!((CudaConvnet2::batch_tile_efficiency(256) - 1.0).abs() < 1e-6);
        assert!(CudaConvnet2::batch_tile_efficiency(96) < 0.9);
        assert!(CudaConvnet2::batch_tile_efficiency(160) < 0.95);
    }

    #[test]
    fn faster_at_batch_128_than_neighbors() {
        // Paper Fig. 3a: cc2 "performs well only for those cases when
        // mini-batch size is a multiple of 128".
        let t96 = time_of(&CudaConvnet2, &ConvConfig::from_tuple(96, 128, 64, 11, 1));
        let t128 = time_of(&CudaConvnet2, &ConvConfig::from_tuple(128, 128, 64, 11, 1));
        let t160 = time_of(&CudaConvnet2, &ConvConfig::from_tuple(160, 128, 64, 11, 1));
        // Normalize per image: 128 should be the sweet spot.
        assert!(t128 / 128.0 < t96 / 96.0);
        assert!(t128 / 128.0 < t160 / 160.0);
    }

    #[test]
    fn occupancy_in_paper_band() {
        // Paper §V-C-1: cuda-convnet2 achieved occupancy 14–22 %.
        let cfg = ConvConfig::paper_base();
        let report = CudaConvnet2
            .plan(&cfg)
            .execute(&DeviceSpec::k40c(), 1)
            .unwrap();
        let occ = report.weighted_metrics(3).achieved_occupancy;
        assert!((12.0..=25.0).contains(&occ), "occupancy {occ}");
    }

    #[test]
    fn close_to_cudnn_on_kernel_sweep() {
        // Paper Fig. 3d: "the performances of cuda-convnet2 and cuDNN
        // are very close with all given kernel sizes."
        for k in [5usize, 7, 9, 11, 13] {
            let cfg = ConvConfig::from_tuple(64, 128, 64, k, 1);
            let ratio = time_of(&CudaConvnet2, &cfg) / time_of(&CuDnn, &cfg);
            assert!((0.5..=2.0).contains(&ratio), "k={k}: ratio {ratio}");
        }
    }

    #[test]
    fn cudnn_beats_cc2_at_stride_2() {
        // Paper Fig. 3e: "For greater stride (greater than 1), cuDNN
        // results in the best performance."
        let cfg = ConvConfig::from_tuple(64, 128, 64, 11, 2);
        assert!(time_of(&CuDnn, &cfg) < time_of(&CudaConvnet2, &cfg));
    }
}
