//! # gcnn-frameworks
//!
//! The seven GPU convolution implementations of Li et al. (ICPP 2016) —
//! Caffe, cuDNN, Torch-cunn, Theano-CorrMM, Theano-fft, cuda-convnet2
//! and fbfft — modeled at kernel granularity.
//!
//! Each implementation is a [`ConvImplementation`]: it
//!
//! 1. enforces the paper's *shape limitations* (§IV-B Summary:
//!    cuda-convnet2 needs square shapes, batch % 32, filters % 16;
//!    FFT-based convolutions need stride 1),
//! 2. produces an [`ExecutionPlan`] for one training iteration
//!    (forward + backward, as the paper measures) — the exact kernel
//!    launches with their Table II register/shared-memory footprints,
//!    grid geometries, FLOP and byte counts, access patterns, workspace
//!    allocations and host↔device transfer policy — which
//!    `gcnn-gpusim` turns into runtime, memory and metric predictions,
//!    and
//! 3. delegates its *numerics* to the real `gcnn-conv` strategy it
//!    implements, so every framework's arithmetic is executable and
//!    testable on the CPU.
//!
//! The calibration constants (tile widths, instruction-mix efficiencies,
//! access-pattern strides) are chosen per framework so that the paper's
//! *mechanisms* — not its numbers — drive the predictions; see
//! DESIGN.md §4.3 for the mechanism-by-mechanism accounting.

#![forbid(unsafe_code)]

pub mod caffe;
pub mod common;
pub mod cuda_convnet2;
pub mod cudnn;
pub mod fbfft;
pub mod plan;
pub mod registry;
pub mod theano_corrmm;
pub mod theano_fft;
pub mod torch_cunn;

pub use plan::{ExecutionPlan, PlannedKernel, ResourceProfile};
pub use registry::{all_implementations, implementation_by_name};

use gcnn_conv::{ConvAlgorithm, ConvConfig, Strategy, Unsupported};

/// One of the paper's seven implementations.
pub trait ConvImplementation: Send + Sync {
    /// Name as the paper uses it ("Caffe", "cuDNN", "fbfft", …).
    fn name(&self) -> &'static str;

    /// Which of the three convolution strategies it follows.
    fn strategy(&self) -> Strategy;

    /// The paper's Table II resource profile of its hotspot kernels.
    fn resources(&self) -> ResourceProfile;

    /// Shape restrictions (paper §IV-B).
    fn supports(&self, cfg: &ConvConfig) -> Result<(), Unsupported>;

    /// Kernel-level execution plan for one training iteration
    /// (forward + backward-data + backward-weights).
    fn plan(&self, cfg: &ConvConfig) -> ExecutionPlan;

    /// The real CPU algorithm computing this implementation's numerics.
    fn algorithm(&self) -> Box<dyn ConvAlgorithm>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_exposes_all_seven() {
        let impls = all_implementations();
        assert_eq!(impls.len(), 7);
        let names: Vec<_> = impls.iter().map(|i| i.name()).collect();
        for expected in [
            "Caffe",
            "cuDNN",
            "Torch-cunn",
            "Theano-CorrMM",
            "Theano-fft",
            "cuda-convnet2",
            "fbfft",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }
}
