//! The registry of all seven implementations.

use crate::caffe::Caffe;
use crate::cuda_convnet2::CudaConvnet2;
use crate::cudnn::CuDnn;
use crate::fbfft::Fbfft;
use crate::theano_corrmm::TheanoCorrMM;
use crate::theano_fft::TheanoFft;
use crate::torch_cunn::TorchCunn;
use crate::ConvImplementation;

/// All seven implementations, in the paper's listing order (§III-B:
/// "We select Caffe, Torch-cunn, Theano-CorrMM, Theano-fft, cuDNN,
/// cuda-convnet2, and fbfft as representative implementations").
///
/// ```
/// use gcnn_conv::ConvConfig;
/// use gcnn_frameworks::all_implementations;
/// use gcnn_gpusim::DeviceSpec;
///
/// let cfg = ConvConfig::paper_base();
/// for imp in all_implementations() {
///     if imp.supports(&cfg).is_ok() {
///         let report = imp.plan(&cfg).execute(&DeviceSpec::k40c(), 1).unwrap();
///         assert!(report.total_ms() > 0.0);
///     }
/// }
/// ```
pub fn all_implementations() -> Vec<Box<dyn ConvImplementation>> {
    vec![
        Box::new(Caffe),
        Box::new(TorchCunn),
        Box::new(TheanoCorrMM),
        Box::new(TheanoFft),
        Box::new(CuDnn),
        Box::new(CudaConvnet2),
        Box::new(Fbfft),
    ]
}

/// Look up an implementation by its paper name (case-insensitive).
pub fn implementation_by_name(name: &str) -> Option<Box<dyn ConvImplementation>> {
    all_implementations()
        .into_iter()
        .find(|i| i.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnn_conv::Strategy;

    #[test]
    fn lookup_by_name() {
        assert!(implementation_by_name("fbfft").is_some());
        assert!(implementation_by_name("FBFFT").is_some());
        assert!(implementation_by_name("caffe2").is_none());
    }

    #[test]
    fn strategies_partition_as_in_paper() {
        // §II-B: direct = {cuda-convnet2}; unrolling = {Caffe,
        // Torch-cunn, Theano-CorrMM, cuDNN}; FFT = {fbfft, Theano-fft}.
        let mut direct = 0;
        let mut unroll = 0;
        let mut fft = 0;
        for imp in all_implementations() {
            match imp.strategy() {
                Strategy::Direct => direct += 1,
                Strategy::Unrolling => unroll += 1,
                Strategy::Fft => fft += 1,
            }
        }
        assert_eq!((direct, unroll, fft), (1, 4, 2));
    }

    #[test]
    fn table2_resources_match_paper() {
        let expect = [
            ("Caffe", 86, 8.5),
            ("cuDNN", 80, 8.4),
            ("Torch-cunn", 84, 8.1),
            ("Theano-CorrMM", 72, 7.0),
            ("cuda-convnet2", 116, 16.0),
            ("fbfft", 106, 10.0),
            ("Theano-fft", 2, 4.5),
        ];
        for (name, regs, smem) in expect {
            let imp = implementation_by_name(name).unwrap();
            let r = imp.resources();
            assert_eq!(r.registers, regs, "{name} registers");
            assert!((r.shared_kb - smem).abs() < 1e-6, "{name} shared memory");
        }
    }

    #[test]
    fn numerics_agree_across_all_implementations() {
        // Every framework's real algorithm must produce the same
        // forward result on a supported config.
        use gcnn_conv::ConvConfig;
        use gcnn_tensor::init::uniform_tensor;

        let cfg = ConvConfig::with_channels(32, 2, 8, 16, 3, 1);
        let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 70);
        let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, 71);
        let reference = gcnn_conv::reference::forward_ref(&cfg, &x, &w);

        for imp in all_implementations() {
            imp.supports(&cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", imp.name()));
            let out = imp.algorithm().forward(&cfg, &x, &w);
            let dist = out.rel_l2_dist(&reference).unwrap();
            assert!(dist < 1e-3, "{}: rel l2 {dist}", imp.name());
        }
    }
}
