//! Theano-fft (`conv2d_fft`): the generic cuFFT-based convolution.
//!
//! The paper's consistent loser: *"Theano-fft results in the slowest
//! speed"* (Fig. 3) despite sharing fbfft's strategy — *"Because of
//! different implementation techniques, fbfft is much faster than
//! Theano-fft"* (§IV-B). The measured mechanisms, all modeled here:
//!
//! * *"most of the runtime is spent on data preparation and data
//!   transfer between CPU and GPU"* (Fig. 4g) — a heavyweight
//!   zero-pad/layout pass plus synchronous pageable copies;
//! * Table II: 2 registers/thread and 4.5 KB shared — no ILP at all, so
//!   high occupancy (39–59 %) buys nothing (§V-C-1: "little use of
//!   register and shared memory may contribute to a high achieved
//!   occupancy, which can also bring in bad performance");
//! * shared efficiency 8.16–20 % — bank-conflicted accesses (§V-C-3);
//! * warp execution efficiency 66–81 % — divergent control flow
//!   (§V-C-4).

use crate::common::{self, Sizes};
use crate::plan::{ExecutionPlan, PlannedKernel, ResourceProfile};
use crate::ConvImplementation;
use gcnn_conv::{ConvAlgorithm, ConvConfig, FftConv, Strategy, Unsupported};
use gcnn_gpusim::{
    AccessPattern, KernelDesc, LaunchConfig, SharedAccessDesc, Transfer, TransferDirection,
};

/// Smallest 7-smooth number (only prime factors 2, 3, 5, 7) that is
/// ≥ `n` — the sizes cuFFT handles without a slow generic path.
pub fn next_smooth(n: u64) -> u64 {
    fn is_smooth(mut x: u64) -> bool {
        for p in [2u64, 3, 5, 7] {
            while x % p == 0 {
                x /= p;
            }
        }
        x == 1
    }
    let mut candidate = n.max(1);
    while !is_smooth(candidate) {
        candidate += 1;
    }
    candidate
}

/// The Theano-fft implementation model.
#[derive(Debug, Clone, Copy, Default)]
pub struct TheanoFft;

impl TheanoFft {
    /// cuFFT-style transform size: `i + k − 1` (full linear-convolution
    /// padding) rounded up to the next 7-smooth size — cuFFT runs its
    /// fast mixed-radix paths only on sizes of the form 2^a·3^b·5^c·7^d
    /// and pads internally otherwise. The non-monotonic jumps of this
    /// rounding are the source of Theano-fft's jagged memory curve over
    /// kernel and input size (Fig. 5b/5d).
    pub fn transform_size(cfg: &ConvConfig) -> u64 {
        next_smooth((cfg.input + 2 * cfg.pad + cfg.kernel - 1) as u64)
    }

    /// cuFFT workspace multiplier: non-power-of-two sizes need extra
    /// mixed-radix staging buffers.
    pub fn workspace_factor(n: u64) -> f64 {
        if n.is_power_of_two() {
            1.0
        } else {
            1.3
        }
    }

    /// Spectrum + workspace bytes held live.
    pub fn spectrum_bytes(cfg: &ConvConfig) -> u64 {
        let s = Sizes::of(cfg);
        let n = Self::transform_size(cfg);
        let planes = s.b * s.c + s.f * s.c + s.b * s.f;
        let base = 8 * n * n * planes;
        (base as f64 * Self::workspace_factor(n)) as u64
    }
}

impl ConvImplementation for TheanoFft {
    fn name(&self) -> &'static str {
        "Theano-fft"
    }

    fn strategy(&self) -> Strategy {
        Strategy::Fft
    }

    fn resources(&self) -> ResourceProfile {
        ResourceProfile {
            registers: 2,
            shared_kb: 4.5,
        }
    }

    fn supports(&self, cfg: &ConvConfig) -> Result<(), Unsupported> {
        if !cfg.is_valid() {
            return Err(Unsupported::InvalidGeometry {
                reason: format!("{cfg}"),
            });
        }
        if cfg.stride != 1 {
            return Err(Unsupported::StrideNotOne { stride: cfg.stride });
        }
        Ok(())
    }

    fn plan(&self, cfg: &ConvConfig) -> ExecutionPlan {
        let s = Sizes::of(cfg);
        let n = Self::transform_size(cfg);
        let n2 = n * n;
        let (bc, fc, bf) = (s.b * s.c, s.f * s.c, s.b * s.f);
        let all_planes = bc + fc + bf;

        let mut allocations = common::tensor_allocations(cfg, false);
        allocations.push(("cufft_spectra".to_string(), Self::spectrum_bytes(cfg)));

        // Table II resources for every Theano-fft kernel: 2 registers,
        // 4.5 KB shared.
        let base = |name: &str, grid: u64, block: u32| {
            let mut k = KernelDesc::new(
                name,
                LaunchConfig::new(grid.min(u32::MAX as u64) as u32, block),
            );
            k.regs_per_thread = 2;
            k.smem_per_block = (4.5 * 1024.0) as u32;
            // No ILP: needs near-full occupancy to hide anything.
            k.occupancy_needed = 0.85;
            k.warp_efficiency = 0.72; // divergent branches (66–81 % band)
            k
        };

        // Host-side data preparation staged through a slow padding/
        // layout pass touching every spectrum plane each pass —
        // Fig. 4g's dominant slice.
        let prep_bytes = 3 * 8 * n2 * all_planes;
        let mut prep = base("data_preparation", prep_bytes / 4 / 256, 128);
        prep.gmem_load_bytes = prep_bytes * 4 / 5;
        prep.load_pattern = AccessPattern::Strided { stride_words: 8 };
        prep.gmem_store_bytes = prep_bytes / 5;
        prep.store_pattern = AccessPattern::Strided { stride_words: 2 };
        prep.compute_efficiency = 0.02;

        // Mixed-radix cuFFT transforms (≈1.4× the radix-2 op count on
        // non-power-of-two sizes).
        let fft_planes = 3 * all_planes;
        let log2n = 64 - n.leading_zeros() as u64;
        let mut fft = base("cufft_dft", fft_planes, 128);
        fft.flops = (fft_planes * 2 * n * 5 * n * log2n) * 14 / 10;
        fft.gmem_load_bytes = fft_planes * n2 * 8;
        fft.gmem_store_bytes = fft_planes * n2 * 8;
        fft.load_pattern = AccessPattern::Strided { stride_words: 8 };
        fft.store_pattern = AccessPattern::Strided { stride_words: 2 };
        // Bank-conflicted twiddle staging: the 8–20 % shared-efficiency
        // band.
        fft.shared = SharedAccessDesc {
            bytes: fft.flops / 6,
            bank_stride_words: 8,
            broadcast_fraction: 0.0,
        };
        fft.compute_efficiency = 0.25;

        // Naive spectrum transposes.
        let transpose_bytes = 2 * 8 * n2 * all_planes;
        let mut transpose = base("transpose_naive", transpose_bytes / 4 / 256, 128);
        transpose.gmem_load_bytes = transpose_bytes / 2;
        transpose.load_pattern = AccessPattern::Strided { stride_words: 8 };
        transpose.gmem_store_bytes = transpose_bytes / 2;
        transpose.store_pattern = AccessPattern::Strided { stride_words: 2 };
        transpose.compute_efficiency = 0.02;

        // Pointwise complex multiply-accumulate (no batched GEMM — the
        // "different implementation techniques" gap to fbfft).
        let mut pw = base("pointwise_mult", n2 / 4, 128);
        pw.flops = 3 * 8 * n2 * s.f * s.c * s.b;
        pw.gmem_load_bytes = 3 * 8 * n2 * (s.f * s.c + s.c * s.b);
        pw.load_pattern = AccessPattern::Strided { stride_words: 4 };
        pw.gmem_store_bytes = 3 * 8 * n2 * s.f * s.b;
        pw.store_pattern = AccessPattern::Strided { stride_words: 2 };
        pw.shared = SharedAccessDesc {
            bytes: pw.flops / 8,
            bank_stride_words: 8,
            broadcast_fraction: 0.0,
        };
        pw.compute_efficiency = 0.08;

        ExecutionPlan {
            allocations,
            // Synchronous pageable staging of inputs, filters and
            // intermediate panels each iteration.
            transfers: vec![
                Transfer::sync(TransferDirection::HostToDevice, s.input_bytes),
                Transfer::sync(TransferDirection::HostToDevice, s.filter_bytes),
                Transfer::sync(TransferDirection::DeviceToHost, s.output_bytes / 8),
            ],
            kernels: vec![
                PlannedKernel::once(prep),
                PlannedKernel::once(fft),
                PlannedKernel::once(transpose),
                PlannedKernel::once(pw),
            ],
        }
    }

    fn algorithm(&self) -> Box<dyn ConvAlgorithm> {
        Box::new(FftConv::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caffe::Caffe;
    use crate::cuda_convnet2::CudaConvnet2;
    use crate::cudnn::CuDnn;
    use crate::fbfft::Fbfft;
    use crate::theano_corrmm::TheanoCorrMM;
    use crate::torch_cunn::TorchCunn;
    use gcnn_gpusim::DeviceSpec;

    fn time_of(imp: &dyn ConvImplementation, cfg: &ConvConfig) -> f64 {
        imp.plan(cfg)
            .execute(&DeviceSpec::k40c(), 1)
            .unwrap()
            .total_ms()
    }

    #[test]
    fn slowest_of_all_seven_at_base() {
        // Paper Fig. 3a/b: "Theano-fft results in the slowest speed".
        let cfg = ConvConfig::paper_base();
        let t = time_of(&TheanoFft, &cfg);
        for other in [
            &Caffe as &dyn ConvImplementation,
            &CuDnn,
            &TorchCunn,
            &TheanoCorrMM,
            &CudaConvnet2,
            &Fbfft,
        ] {
            assert!(
                time_of(other, &cfg) < t,
                "{} should be faster than Theano-fft",
                other.name()
            );
        }
    }

    #[test]
    fn much_slower_than_fbfft_same_strategy() {
        // §IV-B: same strategy, very different speed.
        let cfg = ConvConfig::paper_base();
        let ratio = time_of(&TheanoFft, &cfg) / time_of(&Fbfft, &cfg);
        assert!(ratio > 3.0, "only {ratio:.1}× slower than fbfft");
    }

    #[test]
    fn data_preparation_dominates_hotspots() {
        // Fig. 4g: "most of the runtime is spent on data preparation and
        // data transfer" — prep + transpose should outweigh the FFT.
        let cfg = ConvConfig::paper_base();
        let report = TheanoFft
            .plan(&cfg)
            .execute(&DeviceSpec::k40c(), 1)
            .unwrap();
        let prep = report.kernel_share("data_preparation") + report.kernel_share("transpose_naive");
        let fft = report.kernel_share("cufft_dft");
        assert!(prep > fft, "prep {prep} vs fft {fft}");
    }

    #[test]
    fn metrics_match_paper_bands() {
        let cfg = ConvConfig::paper_base();
        let report = TheanoFft
            .plan(&cfg)
            .execute(&DeviceSpec::k40c(), 1)
            .unwrap();
        let m = report.weighted_metrics(5);
        // WEE 66–81 %.
        assert!(
            (60.0..=85.0).contains(&m.warp_execution_efficiency),
            "wee {}",
            m.warp_execution_efficiency
        );
        // Shared efficiency 8.16–20 %.
        assert!(
            (5.0..=25.0).contains(&m.shared_efficiency),
            "shared {}",
            m.shared_efficiency
        );
        // Achieved occupancy 39–59 % — higher than the fast frameworks
        // yet useless.
        assert!(
            (35.0..=65.0).contains(&m.achieved_occupancy),
            "occ {}",
            m.achieved_occupancy
        );
    }

    #[test]
    fn stride_restriction() {
        assert!(TheanoFft
            .supports(&ConvConfig::from_tuple(64, 128, 64, 11, 2))
            .is_err());
    }

    #[test]
    fn second_highest_memory_behind_fbfft() {
        // Fig. 5: "fbfft requires the most memory, followed by
        // Theano-fft."
        let cfg = ConvConfig::paper_base();
        let theano = TheanoFft.plan(&cfg).peak_bytes();
        assert!(theano < Fbfft.plan(&cfg).peak_bytes());
        assert!(theano > Caffe.plan(&cfg).peak_bytes());
    }

    #[test]
    fn transfer_share_within_band() {
        // Fig. 7: Theano-fft in the 1–15 % transfer band.
        let cfg = ConvConfig::paper_base();
        let report = TheanoFft
            .plan(&cfg)
            .execute(&DeviceSpec::k40c(), 1)
            .unwrap();
        let f = report.transfer_fraction();
        assert!((0.005..=0.20).contains(&f), "transfer fraction {f}");
    }
}
