//! Theano's `GpuCorrMM` op: im2col + SGEMM with Theano's buffer
//! management.
//!
//! The paper's distinguishing measurements: GEMM ≈80 % of runtime
//! (Fig. 4c), the *worst global-load efficiency* of the unrolling family
//! (11.64–15.79 %, §V-C-2: "mainly because of non-coalesced accesses"),
//! a slight edge over cuDNN at filter counts above 160 (Fig. 3c —
//! cuBLAS's finer tile quantization on the filter axis), and the Fig. 7
//! anomaly: on Conv2 (large input × tiny kernel) its data-transfer share
//! exceeds 60 % — modeled as Theano's intermediate-buffer pool falling
//! back to host-staged GEMM panels when the batched column matrix
//! outgrows its threshold.

use crate::caffe::{unrolling_plan, UnrollingStyle};
use crate::common::{self, Sizes};
use crate::plan::{ExecutionPlan, ResourceProfile};
use crate::ConvImplementation;
use gcnn_conv::{ConvAlgorithm, ConvConfig, Strategy, UnrollConv, Unsupported};
use gcnn_gpusim::{AccessPattern, Transfer, TransferDirection};

/// Batched-column-matrix size above which the model host-stages GEMM
/// panels (the Conv2 pathology). 200 MB: Conv2's 219 MB trips it; the
/// paper's Fig. 3 sweep points and the other Table I layers do not
/// (they either have `ckk ≥ 32` or smaller column matrices).
const HOST_STAGE_BYTES: u64 = 200 * 1024 * 1024;
/// The fallback only bites thin GEMMs (tiny shared dimension), where the
/// kernel cannot amortize the staging.
const HOST_STAGE_MAX_CKK: u64 = 32;

/// The Theano-CorrMM implementation model.
#[derive(Debug, Clone, Copy, Default)]
pub struct TheanoCorrMM;

impl TheanoCorrMM {
    fn style() -> UnrollingStyle {
        UnrollingStyle {
            gemm_efficiency: 0.44,
            gemm_load_pattern: AccessPattern::Strided { stride_words: 8 },
            im2col_store_pattern: AccessPattern::Strided { stride_words: 2 },
            registers: 72,
            shared_kb: 7.0,
            col_buffers: 2,
            share_activation_grads: false,
        }
    }

    /// Whether this configuration trips the host-staging fallback.
    pub fn host_stages(cfg: &ConvConfig) -> bool {
        let s = Sizes::of(cfg);
        let batched_col_bytes = common::f32_bytes(s.b * s.ckk * s.o2);
        s.ckk < HOST_STAGE_MAX_CKK && batched_col_bytes > HOST_STAGE_BYTES
    }
}

impl ConvImplementation for TheanoCorrMM {
    fn name(&self) -> &'static str {
        "Theano-CorrMM"
    }

    fn strategy(&self) -> Strategy {
        Strategy::Unrolling
    }

    fn resources(&self) -> ResourceProfile {
        ResourceProfile {
            registers: 72,
            shared_kb: 7.0,
        }
    }

    fn supports(&self, cfg: &ConvConfig) -> Result<(), Unsupported> {
        if !cfg.is_valid() {
            return Err(Unsupported::InvalidGeometry {
                reason: format!("{cfg}"),
            });
        }
        Ok(())
    }

    fn plan(&self, cfg: &ConvConfig) -> ExecutionPlan {
        let s = Sizes::of(cfg);
        let mut transfers = vec![Transfer {
            direction: TransferDirection::HostToDevice,
            bytes: s.input_bytes,
            pinned: true,
            overlap: 0.0,
        }];
        if Self::host_stages(cfg) {
            // Host-staged column panels: both im2col consumers (forward
            // and backward-weights) re-upload the whole batched panel,
            // pinned but synchronous.
            let batched_col_bytes = common::f32_bytes(s.b * s.ckk * s.o2);
            for _ in 0..2 {
                transfers.push(Transfer {
                    direction: TransferDirection::HostToDevice,
                    bytes: batched_col_bytes,
                    pinned: true,
                    overlap: 0.0,
                });
            }
        }
        unrolling_plan(cfg, &Self::style(), transfers, Vec::new())
    }

    fn algorithm(&self) -> Box<dyn ConvAlgorithm> {
        Box::new(UnrollConv::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnn_conv::table1_configs;
    use gcnn_gpusim::DeviceSpec;

    #[test]
    fn gemm_share_near_80_percent() {
        let cfg = ConvConfig::paper_base();
        let report = TheanoCorrMM
            .plan(&cfg)
            .execute(&DeviceSpec::k40c(), 1)
            .unwrap();
        let share = report.kernel_share("sgemm");
        assert!(
            (0.65..=0.90).contains(&share),
            "GEMM share {share} outside CorrMM's ~80 % band"
        );
    }

    #[test]
    fn conv2_trips_host_staging_and_only_conv2() {
        // Paper Fig. 7: among the Table I configs, only Conv2 shows the
        // >60 % transfer spike.
        let configs = table1_configs();
        assert!(!TheanoCorrMM::host_stages(&configs[0]), "Conv1");
        assert!(TheanoCorrMM::host_stages(&configs[1]), "Conv2");
        assert!(!TheanoCorrMM::host_stages(&configs[2]), "Conv3");
        assert!(!TheanoCorrMM::host_stages(&configs[3]), "Conv4");
        assert!(!TheanoCorrMM::host_stages(&configs[4]), "Conv5");
        // The paper's runtime-sweep base config must not trip it either.
        assert!(!TheanoCorrMM::host_stages(&ConvConfig::paper_base()));
        // Nor the small-kernel sweep point (64, 128, 64, 3, 1).
        assert!(!TheanoCorrMM::host_stages(&ConvConfig::from_tuple(
            64, 128, 64, 3, 1
        )));
    }

    #[test]
    fn conv2_transfer_fraction_exceeds_half() {
        let conv2 = table1_configs()[1];
        let report = TheanoCorrMM
            .plan(&conv2)
            .execute(&DeviceSpec::k40c(), 1)
            .unwrap();
        let f = report.transfer_fraction();
        assert!(f > 0.5, "Conv2 transfer fraction {f}, paper shows >60 %");
    }

    #[test]
    fn normal_configs_have_small_transfer_share() {
        let cfg = ConvConfig::paper_base();
        let report = TheanoCorrMM
            .plan(&cfg)
            .execute(&DeviceSpec::k40c(), 1)
            .unwrap();
        assert!(report.transfer_fraction() < 0.10);
    }

    #[test]
    fn gld_efficiency_matches_paper_band() {
        // Paper §V-C-2: Theano-CorrMM gld efficiency 11.64–15.79 %.
        let cfg = ConvConfig::paper_base();
        let report = TheanoCorrMM
            .plan(&cfg)
            .execute(&DeviceSpec::k40c(), 1)
            .unwrap();
        let m = report.weighted_metrics(5);
        assert!(
            (8.0..=20.0).contains(&m.gld_efficiency),
            "gld {} outside the paper's band",
            m.gld_efficiency
        );
    }
}
