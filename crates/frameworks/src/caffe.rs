//! Caffe's convolutional layer: per-image im2col + cuBLAS SGEMM.
//!
//! Paper §V-A: *"in Caffe, Torch-cunn and Theano-CorrMM,
//! `im2col_gpu_kernel` and `col2im_gpu_kernel` mainly take up the rest
//! of the runtime"* after GEMM's 87 % share; §V-D: *"Take Caffe as
//! example, before starting to compute convolution, a data prefetching
//! thread is used to hide the latency from CPU-GPU data transfer"* —
//! hence its ≈0 % transfer overhead in Fig. 7.

use crate::common::{self, Sizes};
use crate::plan::{ExecutionPlan, PlannedKernel, ResourceProfile};
use crate::ConvImplementation;
use gcnn_conv::{ConvAlgorithm, ConvConfig, Strategy, UnrollConv, Unsupported};
use gcnn_gpusim::{AccessPattern, Transfer, TransferDirection};

/// Parameters distinguishing the three explicit-unrolling frameworks.
#[derive(Debug, Clone, Copy)]
pub(crate) struct UnrollingStyle {
    /// Steady-state SGEMM efficiency (fraction of peak).
    pub gemm_efficiency: f32,
    /// SGEMM global-load pattern (drives the gld metric).
    pub gemm_load_pattern: AccessPattern,
    /// im2col store pattern (the k²-expanded column-matrix writes).
    pub im2col_store_pattern: AccessPattern,
    /// Registers per thread of the hotspot kernels (Table II).
    pub registers: u32,
    /// Shared memory per block of the hotspot kernels (Table II).
    pub shared_kb: f32,
    /// Number of im2col workspace buffers held live (forward + backward
    /// paths that keep separate buffers).
    pub col_buffers: u32,
    /// Whether activation gradients share the activation buffer
    /// (Torch's in-place convention halves peak memory).
    pub share_activation_grads: bool,
}

/// Build the full one-iteration plan shared by Caffe, Torch-cunn and
/// Theano-CorrMM: per-image im2col + SGEMM forward, SGEMM + col2im
/// backward-data, im2col + SGEMM backward-weights.
pub(crate) fn unrolling_plan(
    cfg: &ConvConfig,
    style: &UnrollingStyle,
    transfers: Vec<Transfer>,
    extra_allocations: Vec<(String, u64)>,
) -> ExecutionPlan {
    let s = Sizes::of(cfg);
    let col_bytes = common::f32_bytes(s.ckk * s.o2);
    let b = cfg.batch as u32;

    let mut allocations = common::tensor_allocations(cfg, style.share_activation_grads);
    for i in 0..style.col_buffers {
        allocations.push((format!("im2col_workspace_{i}"), col_bytes));
    }
    allocations.extend(extra_allocations);

    let gemm_spec = |tile_m: u64, tile_n: u64, lane: f32| common::GemmKernelSpec {
        regs: style.registers,
        smem: (style.shared_kb * 1024.0) as u32,
        block: 256,
        tile_m,
        tile_n,
        compute_efficiency: style.gemm_efficiency,
        occupancy_needed: 0.25,
        load_pattern: style.gemm_load_pattern,
        lane_utilization: lane,
    };

    // cuBLAS picks its tile per GEMM shape; the filter axis quantizes.
    let (tile_f, f_score) = common::best_tile(s.f, &[(32, 0.92), (64, 0.97), (128, 1.0)]);
    let lane_f = (f_score / 1.0) as f32;

    // Per-image GEMMs (×batch launches each).
    let fwd_gemm = common::gemm_kernel("sgemm", s.f, s.o2, s.ckk, gemm_spec(tile_f, 64, lane_f));
    let bwd_data_gemm = common::gemm_kernel("sgemm", s.ckk, s.o2, s.f, gemm_spec(64, 64, 1.0));
    let bwd_filter_gemm =
        common::gemm_kernel("sgemm", s.f, s.ckk, s.o2, gemm_spec(tile_f, 64, lane_f));

    // Reshaping kernels. im2col re-reads each input pixel k² times
    // (mostly from L2 after the first touch, but with the replayed,
    // non-coalesced request pattern §V-C-2 complains about) and writes
    // the expanded column matrix; col2im reads the column matrix
    // sequentially and scatter-adds back into the image.
    let image_bytes = common::f32_bytes(s.c * s.i * s.i);
    let mut im2col = common::reshape_kernel(
        "im2col_gpu_kernel",
        image_bytes,
        col_bytes,
        style.registers / 3,
        AccessPattern::Strided { stride_words: 8 },
    );
    im2col.store_pattern = style.im2col_store_pattern;
    let mut col2im = common::reshape_kernel(
        "col2im_gpu_kernel",
        col_bytes,
        image_bytes,
        style.registers / 3,
        AccessPattern::Coalesced,
    );
    col2im.load_cached_fraction = 0.3;
    col2im.store_pattern = AccessPattern::Strided { stride_words: 2 };

    ExecutionPlan {
        allocations,
        transfers,
        kernels: vec![
            // Forward: im2col + GEMM per image.
            PlannedKernel::times(im2col.clone(), b),
            PlannedKernel::times(fwd_gemm, b),
            // Backward data: GEMM + col2im per image.
            PlannedKernel::times(bwd_data_gemm, b),
            PlannedKernel::times(col2im, b),
            // Backward weights: im2col again + GEMM per image.
            PlannedKernel::times(im2col, b),
            PlannedKernel::times(bwd_filter_gemm, b),
        ],
    }
}

/// The Caffe implementation model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Caffe;

impl Caffe {
    pub(crate) fn style() -> UnrollingStyle {
        UnrollingStyle {
            gemm_efficiency: 0.40,
            gemm_load_pattern: AccessPattern::Strided { stride_words: 6 },
            im2col_store_pattern: AccessPattern::Coalesced,
            registers: 86,
            shared_kb: 8.5,
            col_buffers: 1,
            share_activation_grads: false,
        }
    }
}

impl ConvImplementation for Caffe {
    fn name(&self) -> &'static str {
        "Caffe"
    }

    fn strategy(&self) -> Strategy {
        Strategy::Unrolling
    }

    fn resources(&self) -> ResourceProfile {
        ResourceProfile {
            registers: 86,
            shared_kb: 8.5,
        }
    }

    fn supports(&self, cfg: &ConvConfig) -> Result<(), Unsupported> {
        // "Unrolling-based implementations are most flexible in
        // configuration selection as they support any possible shapes."
        if !cfg.is_valid() {
            return Err(Unsupported::InvalidGeometry {
                reason: format!("{cfg}"),
            });
        }
        Ok(())
    }

    fn plan(&self, cfg: &ConvConfig) -> ExecutionPlan {
        let s = Sizes::of(cfg);
        // Prefetch thread: pinned + fully overlapped input upload.
        let transfers = vec![Transfer::prefetched(
            TransferDirection::HostToDevice,
            s.input_bytes,
        )];
        unrolling_plan(cfg, &Self::style(), transfers, Vec::new())
    }

    fn algorithm(&self) -> Box<dyn ConvAlgorithm> {
        Box::new(UnrollConv::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnn_gpusim::DeviceSpec;

    #[test]
    fn gemm_dominates_runtime() {
        // Paper Fig. 4a: GEMM ≈ 87 % of Caffe's convolutional layer.
        let cfg = ConvConfig::paper_base();
        let report = Caffe.plan(&cfg).execute(&DeviceSpec::k40c(), 1).unwrap();
        let share = report.kernel_share("sgemm");
        assert!(
            (0.75..=0.95).contains(&share),
            "GEMM share {share} outside Caffe's ~87 % band"
        );
    }

    #[test]
    fn transfers_are_hidden() {
        // Paper Fig. 7: Caffe ≈ 0 % transfer overhead (prefetch thread).
        let cfg = ConvConfig::paper_base();
        let report = Caffe.plan(&cfg).execute(&DeviceSpec::k40c(), 1).unwrap();
        assert!(report.transfer_fraction() < 0.01);
    }

    #[test]
    fn supports_any_valid_shape() {
        assert!(Caffe
            .supports(&ConvConfig::with_channels(33, 3, 57, 7, 5, 3))
            .is_ok());
        assert!(Caffe
            .supports(&ConvConfig::with_channels(1, 1, 2, 1, 5, 1))
            .is_err());
    }

    #[test]
    fn numerics_delegate_to_unrolling() {
        assert_eq!(Caffe.algorithm().strategy(), Strategy::Unrolling);
    }

    #[test]
    fn plan_holds_separate_gradient_buffers() {
        let cfg = ConvConfig::paper_base();
        let plan = Caffe.plan(&cfg);
        assert!(plan
            .allocations
            .iter()
            .any(|(name, _)| name == "output_grads"));
        assert!(plan
            .allocations
            .iter()
            .any(|(name, _)| name.starts_with("im2col_workspace")));
    }
}
