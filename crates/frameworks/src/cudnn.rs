//! cuDNN (v3, as the paper evaluates inside Caffe): implicit-GEMM
//! convolution.
//!
//! Paper §V-A: *"In cuDNN, the unrolling operations and matrix-matrix
//! multiplications are optimized by using shared memory and tiled matrix
//! multiplication, which is mainly achieved by `wgrad_alg0_engine` and
//! `cuDNN_gemm` kernels"* — there is no materialized im2col matrix, so
//! no `im2col_gpu_kernel` in its hotspot profile, and its top kernels
//! show **0 % global-load efficiency** because they compute out of
//! shared memory (§V-C-2). The cost is a workspace and slightly higher
//! memory than Torch (Fig. 5), in exchange for the best unrolling-family
//! speed (Fig. 3).
//!
//! Large-filter behavior: the implicit-GEMM keeps the filter tile
//! resident in shared memory; past ~144 filters the tile spills to a
//! multi-pass schedule and Theano-CorrMM's plain cuBLAS pulls slightly
//! ahead (the paper's Fig. 3c crossover at f > 160).

use crate::common::{self, Sizes};
use crate::plan::{ExecutionPlan, PlannedKernel, ResourceProfile};
use crate::ConvImplementation;
use gcnn_conv::{ConvAlgorithm, ConvConfig, Strategy, UnrollConv, Unsupported};
use gcnn_gpusim::{
    AccessPattern, KernelDesc, LaunchConfig, SharedAccessDesc, Transfer, TransferDirection,
};

/// Filter count beyond which the resident filter tile spills.
const FILTER_TILE_SPILL: u64 = 144;
/// Efficiency retained after the spill to a multi-pass schedule.
const SPILL_PENALTY: f32 = 0.70;
/// Filter volume (`c·k²`) below which the bank is kept fully resident.
const RESIDENT_FILTER_VOLUME: u64 = 1024;

/// The cuDNN implementation model.
#[derive(Debug, Clone, Copy, Default)]
pub struct CuDnn;

impl CuDnn {
    /// Steady-state efficiency for a given filter count and filter
    /// volume (tile choice + spill penalty) — the Fig. 3c mechanism.
    ///
    /// The spill only applies to small-`ck²` (first-layer) shapes where
    /// cuDNN keeps the whole filter bank resident in shared memory;
    /// mid-network layers with large `ck²` stream the filter axis anyway
    /// and never spill — which is why cuDNN remains the fastest
    /// unrolling implementation on Table I's Conv5 (f = 384, c = 384)
    /// while losing the c = 3 filter sweep above 160 filters.
    pub fn gemm_efficiency(filters: u64, ckk: u64) -> f32 {
        let (_, score) = common::best_tile(filters, &[(32, 0.46), (64, 0.48), (128, 0.50)]);
        let mut eff = score as f32;
        if filters > FILTER_TILE_SPILL && ckk < RESIDENT_FILTER_VOLUME {
            eff *= SPILL_PENALTY;
        }
        eff
    }

    /// The fused implicit-GEMM kernel: all operand staging happens in
    /// shared memory; global loads are done by the precompute kernel.
    fn fused_kernel(name: &str, cfg: &ConvConfig, flops: u64, store_bytes: u64) -> KernelDesc {
        let s = Sizes::of(cfg);
        let tiles = (s.f.div_ceil(64) * s.o2.div_ceil(64) * s.b).max(1);
        let mut k = KernelDesc::new(
            name,
            LaunchConfig::new(tiles.min(u32::MAX as u64) as u32, 256),
        );
        k.regs_per_thread = 80;
        k.smem_per_block = (8.4 * 1024.0) as u32;
        k.flops = flops;
        k.gmem_load_bytes = 0; // operands staged by the precompute pass
        k.gmem_store_bytes = store_bytes;
        k.store_pattern = AccessPattern::Strided { stride_words: 2 };
        // Heavy shared-memory reuse with a broadcast component — the
        // paper's >130 % shared-efficiency observation.
        k.shared = SharedAccessDesc {
            bytes: flops / 4,
            bank_stride_words: 1,
            broadcast_fraction: 0.015,
        };
        k.warp_efficiency = 0.99;
        k.compute_efficiency = Self::gemm_efficiency(s.f, s.ckk);
        k.occupancy_needed = 0.30;
        k
    }
}

impl ConvImplementation for CuDnn {
    fn name(&self) -> &'static str {
        "cuDNN"
    }

    fn strategy(&self) -> Strategy {
        Strategy::Unrolling
    }

    fn resources(&self) -> ResourceProfile {
        ResourceProfile {
            registers: 80,
            shared_kb: 8.4,
        }
    }

    fn supports(&self, cfg: &ConvConfig) -> Result<(), Unsupported> {
        if !cfg.is_valid() {
            return Err(Unsupported::InvalidGeometry {
                reason: format!("{cfg}"),
            });
        }
        Ok(())
    }

    fn plan(&self, cfg: &ConvConfig) -> ExecutionPlan {
        let s = Sizes::of(cfg);
        let col_bytes = common::f32_bytes(s.ckk * s.o2);

        let mut allocations = common::tensor_allocations(cfg, false);
        // Workspace: index tables + staging tiles — about half an
        // im2col buffer plus a fixed arena. Grows much more slowly with
        // k than the explicit unrollers' full column matrices, which is
        // why cuDNN becomes the most memory-efficient unrolling
        // implementation at large kernel sizes (Fig. 5d).
        allocations.push((
            "cudnn_workspace".to_string(),
            col_bytes / 2 + 8 * 1024 * 1024,
        ));

        // Precompute pass: streams input + filters into staged tiles.
        // Carries all of cuDNN's (inefficient) global traffic — §V-C-2:
        // "other top kernels that pre-compute for convolution […] result
        // in low global load and store efficiencies".
        let mut precompute = common::reshape_kernel(
            "precomputed_convolve_sgemm",
            s.input_bytes + s.filter_bytes,
            col_bytes / 2,
            48,
            AccessPattern::Strided { stride_words: 8 },
        );
        precompute.store_pattern = AccessPattern::Strided { stride_words: 4 };

        let fwd = Self::fused_kernel("cuDNN_gemm", cfg, s.fwd_flops, s.output_bytes);
        let bwd_data = Self::fused_kernel("cuDNN_gemm", cfg, s.fwd_flops, s.input_bytes);
        let bwd_filters = Self::fused_kernel("wgrad_alg0_engine", cfg, s.fwd_flops, s.filter_bytes);

        ExecutionPlan {
            allocations,
            // Prefetched pinned input: ≈0 % visible transfer (Fig. 7).
            transfers: vec![Transfer::prefetched(
                TransferDirection::HostToDevice,
                s.input_bytes,
            )],
            kernels: vec![
                PlannedKernel::times(precompute, 3),
                PlannedKernel::once(fwd),
                PlannedKernel::once(bwd_data),
                PlannedKernel::once(bwd_filters),
            ],
        }
    }

    fn algorithm(&self) -> Box<dyn ConvAlgorithm> {
        Box::new(UnrollConv::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caffe::Caffe;
    use crate::theano_corrmm::TheanoCorrMM;
    use crate::torch_cunn::TorchCunn;
    use gcnn_gpusim::DeviceSpec;

    fn time_of(imp: &dyn ConvImplementation, cfg: &ConvConfig) -> f64 {
        imp.plan(cfg)
            .execute(&DeviceSpec::k40c(), 1)
            .unwrap()
            .total_ms()
    }

    #[test]
    fn fastest_unrolling_implementation_at_base_config() {
        // Paper §IV-B: "For unrolling-based convolution, cuDNN is the
        // overall fastest implementation."
        let cfg = ConvConfig::paper_base();
        let t_cudnn = time_of(&CuDnn, &cfg);
        assert!(t_cudnn < time_of(&Caffe, &cfg));
        assert!(t_cudnn < time_of(&TorchCunn, &cfg));
        assert!(t_cudnn < time_of(&TheanoCorrMM, &cfg));
    }

    #[test]
    fn corrmm_wins_above_160_filters() {
        // Paper Fig. 3c: "for large filter numbers (greater than 160),
        // Theano-CorrMM slightly outperforms cuDNN".
        for f in [160usize, 176, 208, 240] {
            let cfg = ConvConfig::from_tuple(64, 128, f, 11, 1);
            assert!(
                time_of(&TheanoCorrMM, &cfg) < time_of(&CuDnn, &cfg),
                "CorrMM should win at f={f}"
            );
        }
        for f in [64usize, 96, 128] {
            let cfg = ConvConfig::from_tuple(64, 128, f, 11, 1);
            assert!(
                time_of(&CuDnn, &cfg) < time_of(&TheanoCorrMM, &cfg),
                "cuDNN should win at f={f}"
            );
        }
    }

    #[test]
    fn top_kernels_have_zero_global_load_efficiency() {
        // Paper §V-C-2: cuDNN's shared-memory-resident top kernels show
        // 0 % gld efficiency; the weighted aggregate stays low.
        let cfg = ConvConfig::paper_base();
        let report = CuDnn.plan(&cfg).execute(&DeviceSpec::k40c(), 1).unwrap();
        let top = &report.kernels[0];
        assert!(top.name == "cuDNN_gemm" || top.name == "wgrad_alg0_engine");
        assert_eq!(top.metrics.gld_efficiency, 0.0);
        let agg = report.weighted_metrics(5);
        assert!(agg.gld_efficiency < 20.0, "{}", agg.gld_efficiency);
    }

    #[test]
    fn shared_efficiency_exceeds_100_percent() {
        // Paper §V-C-3: "cuDNN has the overall highest percentages of
        // shared efficiency (over 130 % in most cases)".
        let cfg = ConvConfig::paper_base();
        let report = CuDnn.plan(&cfg).execute(&DeviceSpec::k40c(), 1).unwrap();
        let agg = report.weighted_metrics(3);
        assert!(agg.shared_efficiency > 100.0, "{}", agg.shared_efficiency);
    }

    #[test]
    fn occupancy_in_paper_band() {
        // Paper §V-C-1: cuDNN achieved occupancy 29–37 %.
        let cfg = ConvConfig::paper_base();
        let report = CuDnn.plan(&cfg).execute(&DeviceSpec::k40c(), 1).unwrap();
        let occ = report.weighted_metrics(3).achieved_occupancy;
        assert!((25.0..=40.0).contains(&occ), "occupancy {occ}");
    }

    #[test]
    fn memory_between_torch_and_explicit_unrollers_at_base() {
        // Fig. 5: cuDNN consumes more than Torch-cunn (workspace +
        // separate gradients) at the base configuration.
        let cfg = ConvConfig::paper_base();
        assert!(CuDnn.plan(&cfg).peak_bytes() > TorchCunn.plan(&cfg).peak_bytes());
    }

    #[test]
    fn most_memory_efficient_unroller_at_large_kernels() {
        // Fig. 5d: "with the increase of kernel size, cuDNN becomes the
        // most memory efficient implementation" among the unrollers.
        let cfg = ConvConfig::from_tuple(64, 128, 64, 15, 1);
        let cudnn = CuDnn.plan(&cfg).peak_bytes();
        assert!(cudnn < Caffe.plan(&cfg).peak_bytes());
        assert!(cudnn < TheanoCorrMM.plan(&cfg).peak_bytes());
    }
}
