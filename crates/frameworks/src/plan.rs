//! Execution plans: the kernel-level schedule an implementation runs for
//! one training iteration.

use gcnn_gpusim::{
    DeviceSpec, KernelDesc, OomError, ProfileReport, ProfilerSession, Timeline, Transfer,
};
use serde::{Deserialize, Serialize};

/// Table II row: per-thread registers and per-block shared memory of an
/// implementation's hotspot kernels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceProfile {
    /// Registers per thread.
    pub registers: u32,
    /// Shared memory per block, KB.
    pub shared_kb: f32,
}

impl ResourceProfile {
    /// Shared memory in bytes.
    pub fn shared_bytes(&self) -> u32 {
        (self.shared_kb * 1024.0) as u32
    }
}

/// One kernel repeated `count` times (e.g. Caffe's per-image im2col is
/// one planned kernel with `count = batch`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedKernel {
    /// The launch description.
    pub desc: KernelDesc,
    /// Number of identical launches.
    pub count: u32,
}

impl PlannedKernel {
    /// A kernel launched once.
    pub fn once(desc: KernelDesc) -> Self {
        PlannedKernel { desc, count: 1 }
    }

    /// A kernel launched `count` times.
    pub fn times(desc: KernelDesc, count: u32) -> Self {
        PlannedKernel { desc, count }
    }
}

/// Everything one training iteration does on the device.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// Device allocations, labeled (tensors + workspaces). All live for
    /// the duration of the iteration, so their sum is the peak.
    pub allocations: Vec<(String, u64)>,
    /// Host↔device copies of the iteration.
    pub transfers: Vec<Transfer>,
    /// Kernel launches in order.
    pub kernels: Vec<PlannedKernel>,
}

impl ExecutionPlan {
    /// Total device bytes the plan holds at peak.
    pub fn peak_bytes(&self) -> u64 {
        self.allocations.iter().map(|(_, b)| *b).sum()
    }

    /// Total useful FLOPs across all launches.
    pub fn total_flops(&self) -> u64 {
        self.kernels
            .iter()
            .map(|p| p.desc.flops * p.count as u64)
            .sum()
    }

    /// Execute the plan on a fresh profiler session over `dev` for
    /// `iterations` iterations (allocations persist across iterations,
    /// as frameworks reuse their buffers; kernels and transfers repeat).
    pub fn execute(&self, dev: &DeviceSpec, iterations: u32) -> Result<ProfileReport, OomError> {
        self.execute_traced(dev, iterations)
            .map(|(report, _)| report)
    }

    /// [`ExecutionPlan::execute`], additionally returning the execution
    /// [`Timeline`] (exportable to Chrome trace format).
    pub fn execute_traced(
        &self,
        dev: &DeviceSpec,
        iterations: u32,
    ) -> Result<(ProfileReport, Timeline), OomError> {
        let mut session = ProfilerSession::new(dev.clone());
        for (label, bytes) in &self.allocations {
            session.alloc(label.clone(), *bytes)?;
        }
        for _ in 0..iterations {
            for t in &self.transfers {
                session.transfer(*t);
            }
            for pk in &self.kernels {
                for _ in 0..pk.count {
                    session.launch(&pk.desc);
                }
            }
        }
        let timeline = session.timeline().clone();
        Ok((session.report(), timeline))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnn_gpusim::{LaunchConfig, TransferDirection};

    fn plan() -> ExecutionPlan {
        let mut k = KernelDesc::new("work", LaunchConfig::new(512, 256));
        k.flops = 1_000_000_000;
        ExecutionPlan {
            allocations: vec![("input".into(), 1000), ("output".into(), 2000)],
            transfers: vec![Transfer::sync(TransferDirection::HostToDevice, 1 << 20)],
            kernels: vec![PlannedKernel::times(k, 3)],
        }
    }

    #[test]
    fn peak_and_flops_totals() {
        let p = plan();
        assert_eq!(p.peak_bytes(), 3000);
        assert_eq!(p.total_flops(), 3_000_000_000);
    }

    #[test]
    fn execute_counts_launches_and_iterations() {
        let p = plan();
        let report = p.execute(&DeviceSpec::k40c(), 2).unwrap();
        assert_eq!(report.kernels.len(), 1);
        assert_eq!(report.kernels[0].launches, 6);
        assert_eq!(report.peak_mem_bytes, 3000);
        assert!(report.transfer_visible_ms > 0.0);
    }

    #[test]
    fn oom_surfaces_from_execute() {
        let mut p = plan();
        p.allocations.push(("huge".into(), u64::MAX / 2));
        assert!(p.execute(&DeviceSpec::k40c(), 1).is_err());
    }

    #[test]
    fn resource_profile_bytes() {
        let r = ResourceProfile {
            registers: 86,
            shared_kb: 8.5,
        };
        assert_eq!(r.shared_bytes(), 8704);
    }
}
