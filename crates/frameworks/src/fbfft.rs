//! fbfft: Facebook's FFT convolution (Vasilache et al., ICLR 2015).
//!
//! Paper §V-A: *"the computation of convolutional layers is mainly
//! achieved by three steps in fbfft. Firstly, the kernel
//! `decimateInFrequency` uses DIF algorithm to transform input and
//! weight data from spatial domain to frequency domain. Secondly, the
//! `Transpose` kernel is used to convert the BDHW layout into HWBD and
//! then conducts Cgemm matrix multiplications. Thirdly, the `Transpose`
//! kernel converts the Cgemm results back to BDHW layout and performs an
//! inverse FFT by using `decimateInFrequencyInverse`."*
//!
//! Performance shape (paper §IV-B): fastest overall at k ≥ 7 (its cost
//! depends on the padded transform size, not the kernel), losing to
//! cuDNN below; stride-1 only; and the *highest memory consumption* of
//! all seven (Fig. 5: 1632–10866 MB) because every plane of input,
//! filters and output is held as a power-of-two-padded complex spectrum,
//! double-buffered around the transposes — the power-of-two padding is
//! also what makes its memory jump discontinuously across input sizes
//! (Fig. 5b).

use crate::common::{self, Sizes};
use crate::plan::{ExecutionPlan, PlannedKernel, ResourceProfile};
use crate::ConvImplementation;
use gcnn_conv::{ConvAlgorithm, ConvConfig, FftConv, Strategy, Unsupported};
use gcnn_gpusim::{
    AccessPattern, KernelDesc, LaunchConfig, SharedAccessDesc, Transfer, TransferDirection,
};

/// FLOPs of a 2-D radix-2 FFT over an `n×n` plane.
fn fft2d_flops(n: u64) -> u64 {
    if n <= 1 {
        return 0;
    }
    // 2n row/column transforms of size n at 5·n·log2(n) each.
    2 * n * 5 * n * (n.trailing_zeros() as u64)
}

/// The fbfft implementation model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fbfft;

impl Fbfft {
    /// Transform size: next power of two covering the (padded) input —
    /// valid correlation needs no k-dependent padding (DESIGN.md §4.4).
    pub fn transform_size(cfg: &ConvConfig) -> u64 {
        ((cfg.input + 2 * cfg.pad) as u64).next_power_of_two()
    }

    /// Total spectrum bytes held live: all (batch×channel),
    /// (filter×channel) and (batch×filter) planes as N² complex values,
    /// double-buffered for the layout transposes.
    pub fn spectrum_bytes(cfg: &ConvConfig) -> u64 {
        let s = Sizes::of(cfg);
        let n = Self::transform_size(cfg);
        let planes = s.b * s.c + s.f * s.c + s.b * s.f;
        2 * 8 * n * n * planes
    }
}

impl ConvImplementation for Fbfft {
    fn name(&self) -> &'static str {
        "fbfft"
    }

    fn strategy(&self) -> Strategy {
        Strategy::Fft
    }

    fn resources(&self) -> ResourceProfile {
        ResourceProfile {
            registers: 106,
            shared_kb: 10.0,
        }
    }

    fn supports(&self, cfg: &ConvConfig) -> Result<(), Unsupported> {
        if !cfg.is_valid() {
            return Err(Unsupported::InvalidGeometry {
                reason: format!("{cfg}"),
            });
        }
        // Paper §IV-B: "fbfft and Theano-conv2d_fft only support stride
        // size of 1".
        if cfg.stride != 1 {
            return Err(Unsupported::StrideNotOne { stride: cfg.stride });
        }
        Ok(())
    }

    fn plan(&self, cfg: &ConvConfig) -> ExecutionPlan {
        let s = Sizes::of(cfg);
        let n = Self::transform_size(cfg);
        let n2 = n * n;
        // Real-input transforms keep only the Hermitian half-spectrum;
        // all kernel traffic below is sized accordingly (the allocation
        // model above stays full-size — fbfft's buffer pool is allocated
        // generously, which is what nvidia-smi sees).
        let half_bins = n * (n / 2 + 1);
        let (bc, fc, bf) = (s.b * s.c, s.f * s.c, s.b * s.f);
        let all_planes = bc + fc + bf;

        let mut allocations = common::tensor_allocations(cfg, true);
        allocations.push(("fft_spectra".to_string(), Self::spectrum_bytes(cfg)));

        let base = |name: &str, grid: u64, block: u32| {
            let mut k = KernelDesc::new(
                name,
                LaunchConfig::new(grid.min(u32::MAX as u64) as u32, block),
            );
            k.regs_per_thread = 106;
            k.smem_per_block = 10 * 1024;
            k.occupancy_needed = 0.20;
            k.warp_efficiency = 0.99;
            k
        };

        // Forward DIF transforms: each of the three passes transforms
        // its two operand plane sets.
        let fwd_planes = 2 * all_planes;
        let mut dif = base("decimateInFrequency", fwd_planes, 128);
        dif.flops = fwd_planes * fft2d_flops(n);
        dif.gmem_load_bytes = fwd_planes * n2 * 4; // real input planes
        dif.gmem_store_bytes = fwd_planes * half_bins * 8;
        // Butterfly gather/scatter replays requests (low nvprof gld/gst,
        // §V-C-2's "little use of global memory by certain top efficient
        // kernels") while L2 keeps the actual DRAM traffic small.
        dif.load_pattern = AccessPattern::Strided { stride_words: 4 };
        dif.load_cached_fraction = 0.85;
        dif.store_pattern = AccessPattern::Strided { stride_words: 2 };
        dif.shared = SharedAccessDesc {
            bytes: dif.flops / 6,
            bank_stride_words: 1,
            broadcast_fraction: 0.0,
        };
        dif.compute_efficiency = 0.50;

        // Inverse transforms: one result plane set per pass.
        let inv_planes = all_planes;
        let mut difi = base("decimateInFrequencyInverse", inv_planes, 128);
        difi.flops = inv_planes * fft2d_flops(n);
        difi.gmem_load_bytes = inv_planes * half_bins * 8;
        difi.gmem_store_bytes = inv_planes * n2 * 4; // real output planes
        difi.load_pattern = AccessPattern::Strided { stride_words: 4 };
        difi.load_cached_fraction = 0.85;
        difi.store_pattern = AccessPattern::Strided { stride_words: 2 };
        difi.shared = SharedAccessDesc {
            bytes: difi.flops / 6,
            bank_stride_words: 1,
            broadcast_fraction: 0.0,
        };
        difi.compute_efficiency = 0.50;

        // Layout transposes: BDHW ↔ HWBD around each pass's CGEMM.
        // The inverse-direction transpose is fused into the inverse FFT
        // kernel, so only the forward direction moves through global
        // memory explicitly.
        let transpose_bytes = 3 * 2 * 8 * half_bins * all_planes * 2 / 3;
        // fbfft's transpose is shared-memory tiled: both sides of the
        // copy stay coalesced.
        let mut transpose = common::reshape_kernel(
            "Transpose",
            transpose_bytes / 2,
            transpose_bytes / 2,
            64,
            AccessPattern::Strided { stride_words: 4 },
        );
        transpose.load_cached_fraction = 0.85;
        transpose.store_pattern = AccessPattern::Strided { stride_words: 2 };
        transpose.regs_per_thread = 64;
        transpose.smem_per_block = 4 * 1024;
        transpose.shared = SharedAccessDesc::clean(transpose_bytes);

        // Per-frequency-bin complex GEMM, all three passes. Complex
        // MAC = 8 real FLOPs.
        let mut cgemm = base("Cgemm", half_bins / 16, 256);
        cgemm.flops = 3 * 8 * half_bins * s.f * s.c * s.b;
        // Operands stream from the transposed spectra.
        cgemm.gmem_load_bytes = 3 * 8 * half_bins * (s.f * s.c + s.c * s.b);
        cgemm.load_pattern = AccessPattern::Strided { stride_words: 4 };
        cgemm.load_cached_fraction = 0.90;
        cgemm.gmem_store_bytes = 3 * 8 * half_bins * s.f * s.b;
        cgemm.store_pattern = AccessPattern::Strided { stride_words: 2 };
        cgemm.shared = SharedAccessDesc {
            bytes: cgemm.flops / 8,
            bank_stride_words: 1,
            broadcast_fraction: 0.01,
        };
        cgemm.compute_efficiency = 0.55;

        ExecutionPlan {
            allocations,
            // Inputs live on the GPU across iterations (Torch harness);
            // only a prefetched upload at iteration start.
            transfers: vec![Transfer::prefetched(
                TransferDirection::HostToDevice,
                s.input_bytes,
            )],
            kernels: vec![
                PlannedKernel::once(dif),
                PlannedKernel::once(transpose),
                PlannedKernel::once(cgemm),
                PlannedKernel::once(difi),
            ],
        }
    }

    fn algorithm(&self) -> Box<dyn ConvAlgorithm> {
        Box::new(FftConv::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caffe::Caffe;
    use crate::cuda_convnet2::CudaConvnet2;
    use crate::cudnn::CuDnn;
    use crate::torch_cunn::TorchCunn;
    use gcnn_gpusim::DeviceSpec;

    fn time_of(imp: &dyn ConvImplementation, cfg: &ConvConfig) -> f64 {
        imp.plan(cfg)
            .execute(&DeviceSpec::k40c(), 1)
            .unwrap()
            .total_ms()
    }

    #[test]
    fn rejects_stride_above_one() {
        let cfg = ConvConfig::from_tuple(64, 128, 64, 11, 2);
        assert!(matches!(
            Fbfft.supports(&cfg),
            Err(Unsupported::StrideNotOne { stride: 2 })
        ));
    }

    #[test]
    fn fastest_at_base_config() {
        // Paper Fig. 3a/b: fbfft 1.4–9.7× faster than the others at the
        // base configuration (k = 11).
        let cfg = ConvConfig::paper_base();
        let t = time_of(&Fbfft, &cfg);
        for other in [
            &Caffe as &dyn ConvImplementation,
            &CuDnn,
            &TorchCunn,
            &CudaConvnet2,
        ] {
            let ratio = time_of(other, &cfg) / t;
            assert!(
                ratio > 1.2,
                "{} only {ratio:.2}× slower than fbfft",
                other.name()
            );
        }
    }

    #[test]
    fn runtime_flat_in_kernel_size() {
        // Paper Fig. 3d: "the runtime of fbfft tends to be a constant
        // value" as k grows.
        let t3 = time_of(&Fbfft, &ConvConfig::from_tuple(64, 128, 64, 3, 1));
        let t13 = time_of(&Fbfft, &ConvConfig::from_tuple(64, 128, 64, 13, 1));
        assert!((t13 / t3 - 1.0).abs() < 0.15, "t3={t3} t13={t13}");
    }

    #[test]
    fn cudnn_wins_small_kernels_fbfft_wins_large() {
        // Paper §IV-B: "For small kernels (smaller than 7), cuDNN
        // outperforms fbfft. Otherwise, fbfft is faster."
        for k in [3usize, 5] {
            let cfg = ConvConfig::from_tuple(64, 128, 64, k, 1);
            assert!(
                time_of(&CuDnn, &cfg) < time_of(&Fbfft, &cfg),
                "cuDNN should win at k={k}"
            );
        }
        for k in [7usize, 9, 11, 13] {
            let cfg = ConvConfig::from_tuple(64, 128, 64, k, 1);
            assert!(
                time_of(&Fbfft, &cfg) < time_of(&CuDnn, &cfg),
                "fbfft should win at k={k}"
            );
        }
    }

    #[test]
    fn memory_is_highest_and_jumps_at_pow2_boundaries() {
        // Paper Fig. 5: fbfft consumes the most memory, with
        // fluctuations driven by power-of-two padding.
        let cfg = ConvConfig::paper_base();
        let fb = Fbfft.plan(&cfg).peak_bytes();
        assert!(fb > Caffe.plan(&cfg).peak_bytes());
        assert!(fb > CudaConvnet2.plan(&cfg).peak_bytes());

        // i = 128 → N = 128; i = 144 → N = 256: the spectrum quadruples.
        let at_128 = Fbfft::spectrum_bytes(&ConvConfig::from_tuple(64, 128, 64, 11, 1));
        let at_144 = Fbfft::spectrum_bytes(&ConvConfig::from_tuple(64, 144, 64, 11, 1));
        assert!(at_144 > 3 * at_128);
    }

    #[test]
    fn paper_memory_band_magnitude() {
        // Paper Fig. 5: fbfft ranges 1632–10866 MB across the sweeps.
        // The base configuration should land within that order of
        // magnitude (gigabytes, not hundreds of MB).
        let cfg = ConvConfig::paper_base();
        let mb = Fbfft.plan(&cfg).peak_bytes() / (1024 * 1024);
        assert!((800..12_000).contains(&mb), "fbfft peak {mb} MB");
    }

    #[test]
    fn hotspots_are_the_four_paper_kernels() {
        let cfg = ConvConfig::paper_base();
        let report = Fbfft.plan(&cfg).execute(&DeviceSpec::k40c(), 1).unwrap();
        let names: Vec<_> = report.kernels.iter().map(|k| k.name.as_str()).collect();
        for expected in [
            "decimateInFrequency",
            "decimateInFrequencyInverse",
            "Transpose",
            "Cgemm",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }
}
