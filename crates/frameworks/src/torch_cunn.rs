//! Torch-cunn's `SpatialConvolutionMM`: the Torch flavor of
//! im2col + SGEMM.
//!
//! Distinguishing traits the paper measures: GEMM at ≈83 % of runtime
//! (Fig. 4b), the *lowest unrolling-family memory footprint* (Fig. 5 —
//! Torch shares activation/gradient buffers, 170–2093 MB), Table II
//! resources 84 regs / 8.1 KB, and a small synchronous input upload
//! each iteration (Fig. 7's 1–4 % band).

use crate::caffe::{unrolling_plan, UnrollingStyle};
use crate::common::Sizes;
use crate::plan::{ExecutionPlan, ResourceProfile};
use crate::ConvImplementation;
use gcnn_conv::{ConvAlgorithm, ConvConfig, Strategy, UnrollConv, Unsupported};
use gcnn_gpusim::{AccessPattern, Transfer, TransferDirection};

/// The Torch-cunn implementation model.
#[derive(Debug, Clone, Copy, Default)]
pub struct TorchCunn;

impl TorchCunn {
    fn style() -> UnrollingStyle {
        UnrollingStyle {
            gemm_efficiency: 0.42,
            gemm_load_pattern: AccessPattern::Strided { stride_words: 6 },
            im2col_store_pattern: AccessPattern::Coalesced,
            registers: 84,
            shared_kb: 8.1,
            col_buffers: 1,
            share_activation_grads: true,
        }
    }
}

impl ConvImplementation for TorchCunn {
    fn name(&self) -> &'static str {
        "Torch-cunn"
    }

    fn strategy(&self) -> Strategy {
        Strategy::Unrolling
    }

    fn resources(&self) -> ResourceProfile {
        ResourceProfile {
            registers: 84,
            shared_kb: 8.1,
        }
    }

    fn supports(&self, cfg: &ConvConfig) -> Result<(), Unsupported> {
        if !cfg.is_valid() {
            return Err(Unsupported::InvalidGeometry {
                reason: format!("{cfg}"),
            });
        }
        Ok(())
    }

    fn plan(&self, cfg: &ConvConfig) -> ExecutionPlan {
        let s = Sizes::of(cfg);
        // Synchronous pinned upload of the mini-batch each iteration.
        let transfers = vec![Transfer {
            direction: TransferDirection::HostToDevice,
            bytes: s.input_bytes,
            pinned: true,
            overlap: 0.0,
        }];
        unrolling_plan(cfg, &Self::style(), transfers, Vec::new())
    }

    fn algorithm(&self) -> Box<dyn ConvAlgorithm> {
        Box::new(UnrollConv::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caffe::Caffe;
    use gcnn_gpusim::DeviceSpec;

    #[test]
    fn gemm_share_near_83_percent() {
        let cfg = ConvConfig::paper_base();
        let report = TorchCunn
            .plan(&cfg)
            .execute(&DeviceSpec::k40c(), 1)
            .unwrap();
        let share = report.kernel_share("sgemm");
        assert!(
            (0.70..=0.92).contains(&share),
            "GEMM share {share} outside Torch's ~83 % band"
        );
    }

    #[test]
    fn uses_less_memory_than_caffe() {
        // Paper Fig. 5: Torch-cunn is the most memory-efficient
        // unrolling implementation (shared activation gradients).
        let cfg = ConvConfig::paper_base();
        assert!(TorchCunn.plan(&cfg).peak_bytes() < Caffe.plan(&cfg).peak_bytes());
    }

    #[test]
    fn small_visible_transfer_overhead() {
        // Paper Fig. 7: Torch-cunn in the 1–15 % band — nonzero but
        // modest.
        let cfg = ConvConfig::paper_base();
        let report = TorchCunn
            .plan(&cfg)
            .execute(&DeviceSpec::k40c(), 1)
            .unwrap();
        let f = report.transfer_fraction();
        assert!(f > 0.001 && f < 0.15, "transfer fraction {f}");
    }

    #[test]
    fn resources_match_table2() {
        let r = TorchCunn.resources();
        assert_eq!(r.registers, 84);
        assert!((r.shared_kb - 8.1).abs() < 1e-6);
    }
}
