//! Property-based tests over the framework models: execution plans must
//! be well-formed and behave monotonically over the whole supported
//! configuration space, not just the paper's sweep points.

use gcnn_conv::ConvConfig;
use gcnn_frameworks::all_implementations;
use gcnn_gpusim::DeviceSpec;
use proptest::prelude::*;

fn configs() -> impl Strategy<Value = ConvConfig> {
    (
        1usize..5,  // batch multiplier (×32 keeps cc2 in play)
        1usize..5,  // channels
        4usize..40, // input
        1usize..8,  // filter multiplier (×16)
        1usize..8,  // kernel
        1usize..3,  // stride
    )
        .prop_map(|(bm, c, i, fm, k, s)| ConvConfig::with_channels(32 * bm, c, i, 16 * fm, k, s))
        .prop_filter("valid geometry", |cfg| cfg.is_valid())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every supported plan is well-formed: nonzero kernels, positive
    /// FLOPs, allocations covering at least the I/O tensors.
    #[test]
    fn plans_well_formed(cfg in configs()) {
        let min_tensor_bytes = (cfg.input_shape().bytes()
            + cfg.filter_shape().bytes()
            + cfg.output_shape().bytes()) as u64;
        for imp in all_implementations() {
            if imp.supports(&cfg).is_err() {
                continue;
            }
            let plan = imp.plan(&cfg);
            prop_assert!(!plan.kernels.is_empty(), "{}", imp.name());
            prop_assert!(plan.total_flops() > 0, "{}", imp.name());
            prop_assert!(
                plan.peak_bytes() >= min_tensor_bytes,
                "{} at {cfg}: peak {} below tensor floor {min_tensor_bytes}",
                imp.name(),
                plan.peak_bytes()
            );
            // All kernels have sane resources for the device.
            let dev = DeviceSpec::k40c();
            for pk in &plan.kernels {
                prop_assert!(pk.count >= 1);
                prop_assert!(pk.desc.launch.block_threads <= dev.max_threads_per_block);
                prop_assert!(pk.desc.regs_per_thread <= dev.max_registers_per_thread);
                prop_assert!(pk.desc.smem_per_block <= dev.shared_mem_per_block);
            }
        }
    }

    /// Plans execute deterministically: same config, same report.
    #[test]
    fn execution_deterministic(cfg in configs()) {
        let dev = DeviceSpec::k40c();
        for imp in all_implementations() {
            if imp.supports(&cfg).is_err() {
                continue;
            }
            let a = imp.plan(&cfg).execute(&dev, 1);
            let b = imp.plan(&cfg).execute(&dev, 1);
            match (a, b) {
                (Ok(ra), Ok(rb)) => {
                    prop_assert!((ra.total_ms() - rb.total_ms()).abs() < 1e-12);
                    prop_assert_eq!(ra.peak_mem_bytes, rb.peak_mem_bytes);
                }
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "{}: nondeterministic OOM", imp.name()),
            }
        }
    }

    /// FLOPs scale exactly linearly with batch for every implementation
    /// (all three strategies do work proportional to the batch).
    #[test]
    fn flops_linear_in_batch(cfg in configs()) {
        let mut doubled = cfg;
        doubled.batch *= 2;
        for imp in all_implementations() {
            if imp.supports(&cfg).is_err() || imp.supports(&doubled).is_err() {
                continue;
            }
            let f1 = imp.plan(&cfg).total_flops() as f64;
            let f2 = imp.plan(&doubled).total_flops() as f64;
            // FFT strategies have a batch-independent filter-transform
            // component, so allow sub-linear but require growth in
            // [1.2×, 2.05×].
            let ratio = f2 / f1;
            prop_assert!(
                (1.2..=2.05).contains(&ratio),
                "{} at {cfg}: flops ratio {ratio}",
                imp.name()
            );
        }
    }

    /// Shape restrictions are exact: supports() fails if and only if
    /// one of the paper's documented restrictions applies.
    #[test]
    fn restrictions_exact(cfg in configs()) {
        for imp in all_implementations() {
            let expected_reject = match imp.name() {
                "cuda-convnet2" => cfg.batch % 32 != 0 || cfg.filters % 16 != 0,
                "fbfft" | "Theano-fft" => cfg.stride != 1,
                _ => false,
            };
            prop_assert_eq!(
                imp.supports(&cfg).is_err(),
                expected_reject,
                "{} at {}", imp.name(), cfg
            );
        }
    }
}
