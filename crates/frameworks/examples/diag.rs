//! Calibration diagnostic: prints per-framework timing breakdowns.

use gcnn_conv::ConvConfig;
use gcnn_frameworks::all_implementations;
use gcnn_gpusim::DeviceSpec;

fn main() {
    let dev = DeviceSpec::k40c();
    let configs = [
        ("base k=11", ConvConfig::paper_base()),
        ("k=3", ConvConfig::from_tuple(64, 128, 64, 3, 1)),
        ("k=5", ConvConfig::from_tuple(64, 128, 64, 5, 1)),
        ("k=7", ConvConfig::from_tuple(64, 128, 64, 7, 1)),
        ("f=160", ConvConfig::from_tuple(64, 128, 160, 11, 1)),
        ("f=128", ConvConfig::from_tuple(64, 128, 128, 11, 1)),
        ("conv2", gcnn_conv::table1_configs()[1]),
    ];
    for (label, cfg) in configs {
        println!("=== {label} {cfg} ===");
        for imp in all_implementations() {
            if imp.supports(&cfg).is_err() {
                println!("  {:<15} unsupported", imp.name());
                continue;
            }
            let plan = imp.plan(&cfg);
            match plan.execute(&dev, 1) {
                Ok(r) => {
                    let mut parts: Vec<String> = r
                        .kernels
                        .iter()
                        .map(|k| format!("{}={:.1}ms", k.name, k.total_ms))
                        .collect();
                    parts.truncate(5);
                    println!(
                        "  {:<15} total={:>8.1}ms xfer={:>5.1}ms ({:>4.1}%) mem={:>6}MB | {}",
                        imp.name(),
                        r.total_ms(),
                        r.transfer_visible_ms,
                        100.0 * r.transfer_fraction(),
                        r.peak_mem_bytes / (1024 * 1024),
                        parts.join(" ")
                    );
                }
                Err(e) => println!("  {:<15} OOM: {e}", imp.name()),
            }
        }
    }
}
