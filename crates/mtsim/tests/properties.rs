//! Property suite for the multi-tenant simulator — the acceptance
//! gates of the mtsim subsystem:
//!
//! * conservation: every submitted job completes, under every policy;
//! * determinism: identical inputs → bit-identical reports;
//! * single-tenant parity: one stream on FIFO sees exactly its
//!   dedicated latency (slowdown 1.0, zero queueing);
//! * FIFO interference: two identical closed-loop tenants each see
//!   ≥ 1.8× their dedicated latency;
//! * partition vs time-slicing: for occupancy-limited kernel
//!   populations, SM partitioning beats round-robin on aggregate
//!   throughput.

use gcnn_conv::ConvConfig;
use gcnn_frameworks::{implementation_by_name, PlannedKernel};
use gcnn_gpusim::{DeviceSpec, KernelDesc, LaunchConfig};
use gcnn_mtsim::{simulate, Arrival, SchedPolicy, SimConfig, TenantSpec};
use proptest::prelude::*;

/// A compute-heavy kernel whose grid fills the device.
fn saturating_kernel(name: &str, flops: u64) -> KernelDesc {
    let mut k = KernelDesc::new(name, LaunchConfig::new(4096, 256));
    k.regs_per_thread = 64;
    k.flops = flops;
    k.compute_efficiency = 0.6;
    k
}

/// An occupancy-limited kernel: a grid too small to fill even half the
/// K40c's SMs, so achieved occupancy — not ALU throughput — bounds it.
/// Confining it to an SM partition costs (almost) nothing.
fn occupancy_limited_kernel(name: &str) -> KernelDesc {
    let mut k = KernelDesc::new(name, LaunchConfig::new(16, 256));
    k.regs_per_thread = 64;
    k.flops = 2_000_000_000;
    k.compute_efficiency = 0.6;
    k.occupancy_needed = 0.5;
    k
}

fn closed_tenant(name: &str, kernel: KernelDesc, launches: u32, jobs: u32) -> TenantSpec {
    TenantSpec::from_kernels(
        name,
        vec![PlannedKernel::times(kernel, launches)],
        Arrival::ClosedLoop,
        jobs,
    )
}

#[test]
fn single_tenant_parity_with_dedicated_baseline() {
    let spec = closed_tenant("solo", saturating_kernel("k", 3_000_000_000), 4, 6);
    let r = simulate(
        &DeviceSpec::k40c(),
        &[spec],
        SimConfig::new(SchedPolicy::Fifo),
    );
    let s = &r.streams[0];
    assert_eq!(s.jobs_completed, 6);
    assert!((s.slowdown - 1.0).abs() < 1e-6, "{s:?}");
    assert!(s.queue_p99_ms < 1e-9, "{s:?}");
    assert!((s.service_p50_ms - s.dedicated_latency_ms).abs() < 1e-6);
}

/// The headline FIFO gate: two identical closed-loop tenants sharing
/// one device each see at least 1.8× their dedicated job latency.
#[test]
fn fifo_two_tenant_slowdown_at_least_1_8x() {
    for launches in [3u32, 8] {
        let a = closed_tenant("a", saturating_kernel("k", 2_000_000_000), launches, 8);
        let b = closed_tenant("b", saturating_kernel("k", 2_000_000_000), launches, 8);
        let r = simulate(
            &DeviceSpec::k40c(),
            &[a, b],
            SimConfig::new(SchedPolicy::Fifo),
        );
        for s in &r.streams {
            assert!(
                s.slowdown >= 1.8,
                "launches={launches}: {:?} slowdown {}",
                s.name,
                s.slowdown
            );
        }
    }
}

/// The partition-vs-time-slicing gate: when the kernel population is
/// occupancy-limited, spatial sharing wins on aggregate throughput.
#[test]
fn partition_beats_round_robin_for_occupancy_limited_kernels() {
    let specs = [
        closed_tenant("a", occupancy_limited_kernel("small_a"), 6, 10),
        closed_tenant("b", occupancy_limited_kernel("small_b"), 6, 10),
    ];
    let rr = simulate(
        &DeviceSpec::k40c(),
        &specs,
        SimConfig::new(SchedPolicy::RoundRobin { quantum_us: 200.0 }),
    );
    let part = simulate(
        &DeviceSpec::k40c(),
        &specs,
        SimConfig::new(SchedPolicy::SmPartition),
    );
    assert!(
        part.aggregate_throughput_jobs_per_s > 1.15 * rr.aggregate_throughput_jobs_per_s,
        "partition {} vs rr {}",
        part.aggregate_throughput_jobs_per_s,
        rr.aggregate_throughput_jobs_per_s
    );
}

/// The converse sanity check: a device-filling kernel population does
/// NOT gain from partitioning — its big grids want all 15 SMs, and a
/// half-device roughly halves per-stream speed.
#[test]
fn partition_does_not_help_saturating_kernels() {
    let specs = [
        closed_tenant("a", saturating_kernel("big_a", 5_000_000_000), 4, 6),
        closed_tenant("b", saturating_kernel("big_b", 5_000_000_000), 4, 6),
    ];
    let rr = simulate(
        &DeviceSpec::k40c(),
        &specs,
        SimConfig::new(SchedPolicy::RoundRobin { quantum_us: 500.0 }),
    );
    let part = simulate(
        &DeviceSpec::k40c(),
        &specs,
        SimConfig::new(SchedPolicy::SmPartition),
    );
    // No more than a few percent apart either way.
    let ratio = part.aggregate_throughput_jobs_per_s / rr.aggregate_throughput_jobs_per_s;
    assert!(ratio < 1.15, "partitioning should not win here: {ratio}");
}

/// Real framework plans (Caffe vs cuDNN from the paper's seven) share
/// the device: conservation and interference hold on realistic kernel
/// populations, not just synthetic ones.
#[test]
fn framework_plans_share_the_device() {
    let cfg = ConvConfig::paper_base();
    let caffe = implementation_by_name("Caffe").expect("registry has Caffe");
    let cudnn = implementation_by_name("cuDNN").expect("registry has cuDNN");
    caffe.supports(&cfg).expect("paper base supported");
    cudnn.supports(&cfg).expect("paper base supported");
    let specs = [
        TenantSpec::from_plan("caffe", &caffe.plan(&cfg), Arrival::ClosedLoop, 3),
        TenantSpec::from_plan("cudnn", &cudnn.plan(&cfg), Arrival::ClosedLoop, 3),
    ];
    for policy in [
        SchedPolicy::Fifo,
        SchedPolicy::RoundRobin { quantum_us: 500.0 },
        SchedPolicy::SmPartition,
    ] {
        let r = simulate(&DeviceSpec::k40c(), &specs, SimConfig::new(policy));
        for s in &r.streams {
            assert_eq!(s.jobs_completed, 3, "{policy:?} {s:?}");
            assert!(s.slowdown >= 1.0 - 1e-9, "{policy:?} {s:?}");
            assert!(s.sm_utilization > 0.0 && s.sm_utilization <= 1.0);
        }
        assert!(r.makespan_ms > 0.0);
    }
}

/// The Maxwell descriptor drives the simulator exactly like the
/// hard-coded K40c — descriptors are a full substitute for
/// constructors.
#[test]
fn descriptor_built_device_drives_the_simulator() {
    let gm204 = DeviceSpec::gm204();
    let spec = closed_tenant("m", saturating_kernel("k", 3_000_000_000), 3, 4);
    let r = simulate(&gm204, &[spec], SimConfig::new(SchedPolicy::Fifo));
    assert_eq!(r.streams[0].jobs_completed, 4);
    assert!((r.streams[0].slowdown - 1.0).abs() < 1e-6);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: every submitted job completes under every policy,
    /// for arbitrary tenant counts, job counts and kernel shapes.
    #[test]
    fn all_jobs_complete_under_every_policy(
        n_tenants in 1usize..5,
        jobs in 1u32..6,
        launches in 1u32..4,
        grid_pick in 0usize..4,
        policy_pick in 0usize..3,
    ) {
        let policy = [
            SchedPolicy::Fifo,
            SchedPolicy::RoundRobin { quantum_us: 100.0 },
            SchedPolicy::SmPartition,
        ][policy_pick];
        let grid = [8u32, 64, 512, 4096][grid_pick];
        let mut specs = Vec::new();
        for i in 0..n_tenants {
            let mut k = KernelDesc::new("k", LaunchConfig::new(grid, 256));
            k.flops = 1_000_000_000 + i as u64 * 500_000_000;
            k.compute_efficiency = 0.5;
            specs.push(closed_tenant(&format!("t{i}"), k, launches, jobs));
        }
        let r = simulate(&DeviceSpec::k40c(), &specs, SimConfig::new(policy));
        let total: u32 = r.streams.iter().map(|s| s.jobs_completed).sum();
        prop_assert_eq!(total, n_tenants as u32 * jobs);
        for s in &r.streams {
            // Shared never beats dedicated.
            prop_assert!(s.slowdown >= 1.0 - 1e-9, "{:?}", s);
            prop_assert!(s.latency_mean_ms > 0.0);
        }
    }

    /// Determinism: the report is a pure function of the inputs.
    #[test]
    fn reports_are_deterministic(
        jobs_a in 1u32..6,
        jobs_b in 1u32..6,
        policy_pick in 0usize..3,
    ) {
        let policy = [
            SchedPolicy::Fifo,
            SchedPolicy::RoundRobin { quantum_us: 150.0 },
            SchedPolicy::SmPartition,
        ][policy_pick];
        let specs = [
            closed_tenant("a", saturating_kernel("x", 1_500_000_000), 2, jobs_a),
            closed_tenant("b", occupancy_limited_kernel("y"), 3, jobs_b),
        ];
        let r1 = simulate(&DeviceSpec::k40c(), &specs, SimConfig::new(policy));
        let r2 = simulate(&DeviceSpec::k40c(), &specs, SimConfig::new(policy));
        prop_assert_eq!(r1, r2);
    }

    /// Open arrivals below saturation keep queues bounded; the mean
    /// latency stays within an order of magnitude of dedicated.
    #[test]
    fn open_arrivals_below_saturation_stay_stable(slack in 2.0f64..6.0) {
        let base = closed_tenant("probe", saturating_kernel("k", 1_000_000_000), 2, 1);
        let dedicated = simulate(
            &DeviceSpec::k40c(),
            &[base],
            SimConfig::new(SchedPolicy::Fifo),
        );
        let job_ms = dedicated.streams[0].dedicated_latency_ms;
        let mut spec =
            closed_tenant("open", saturating_kernel("k", 1_000_000_000), 2, 12);
        spec.arrival = Arrival::Open { period_us: job_ms * 1e3 * slack };
        let r = simulate(
            &DeviceSpec::k40c(),
            &[spec],
            SimConfig::new(SchedPolicy::Fifo),
        );
        prop_assert_eq!(r.streams[0].jobs_completed, 12);
        // Arrivals are spaced wider than service: no queueing at all.
        prop_assert!(r.streams[0].queue_p99_ms < 1e-9, "{:?}", r.streams[0]);
    }
}
