//! Tenant streams: who is submitting work, what one job looks like,
//! and when jobs arrive.

use gcnn_frameworks::{ExecutionPlan, PlannedKernel};
use serde::{Deserialize, Serialize};

/// When a stream's jobs arrive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Arrival {
    /// The next job is submitted the instant the previous one
    /// completes (a training loop, or a saturating load generator).
    ClosedLoop,
    /// Jobs arrive on a fixed period regardless of completions (an
    /// inference stream with external request rate); a slow device
    /// grows the queue.
    Open {
        /// Inter-arrival period, microseconds.
        period_us: f64,
    },
}

/// One client stream: a named sequence of kernels (one *job*) submitted
/// `jobs` times under an [`Arrival`] process.
///
/// A job is the kernel schedule of one framework iteration — the
/// device-side portion of an [`ExecutionPlan`]. Host↔device transfers
/// are excluded: the simulator arbitrates the compute engine, and on
/// the modeled parts copies ride a separate DMA engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Stream name (appears in reports).
    pub name: String,
    /// The kernel sequence of one job, in dependency order. Each
    /// [`PlannedKernel`] launches `count` times back-to-back.
    pub kernels: Vec<PlannedKernel>,
    /// Arrival process.
    pub arrival: Arrival,
    /// Total jobs this stream submits before going quiet.
    pub jobs: u32,
}

impl TenantSpec {
    /// A stream replaying the kernel schedule of `plan` (transfers and
    /// allocations are dropped; see the type-level docs).
    pub fn from_plan(name: &str, plan: &ExecutionPlan, arrival: Arrival, jobs: u32) -> Self {
        TenantSpec {
            name: name.to_string(),
            kernels: plan.kernels.clone(),
            arrival,
            jobs,
        }
    }

    /// A stream over an explicit kernel list.
    pub fn from_kernels(
        name: &str,
        kernels: Vec<PlannedKernel>,
        arrival: Arrival,
        jobs: u32,
    ) -> Self {
        TenantSpec {
            name: name.to_string(),
            kernels,
            arrival,
            jobs,
        }
    }

    /// Number of kernel launches in one job.
    pub fn launches_per_job(&self) -> u64 {
        self.kernels.iter().map(|pk| pk.count as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnn_gpusim::{KernelDesc, LaunchConfig};

    #[test]
    fn from_plan_keeps_kernels_drops_the_rest() {
        let mut plan = ExecutionPlan::default();
        plan.allocations.push(("buf".into(), 1024));
        plan.kernels.push(PlannedKernel::times(
            KernelDesc::new("k", LaunchConfig::new(64, 256)),
            3,
        ));
        let t = TenantSpec::from_plan("caffe", &plan, Arrival::ClosedLoop, 5);
        assert_eq!(t.name, "caffe");
        assert_eq!(t.kernels.len(), 1);
        assert_eq!(t.launches_per_job(), 3);
        assert_eq!(t.jobs, 5);
    }
}
