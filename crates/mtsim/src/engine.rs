//! The discrete-event engine.
//!
//! Time is integer nanoseconds on a binary-heap event queue; ties break
//! on a monotone sequence number, so runs are bit-for-bit
//! deterministic. Two event kinds exist: a job *arrival* on a stream,
//! and a kernel *completion* on a lane. Kernels are non-preemptible
//! (pre-Pascal hardware), so every scheduling decision happens in
//! [`Engine::dispatch`] at a kernel boundary.
//!
//! The device is a set of *lanes*: one lane for the serializing
//! policies (FIFO, round-robin), one lane per tenant for SM
//! partitioning. Per-kernel service times are precomputed in
//! [`Engine::new`] against the lane's device (the full spec, or a
//! clone with `sm_count` and memory bandwidth scaled to the partition
//! share) via [`gcnn_gpusim::timing::time_kernel`] — the event loop
//! itself never allocates and never re-runs the timing model.

use crate::metrics::{percentile, SimReport, StreamReport};
use crate::policy::{SchedPolicy, SimConfig};
use crate::stream::{Arrival, TenantSpec};
use gcnn_gpusim::timing::time_kernel;
use gcnn_gpusim::DeviceSpec;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Event kinds, packed into the heap tuple.
const EV_ARRIVAL: u8 = 0;
const EV_KERNEL_DONE: u8 = 1;

/// Heap entry: `(time_ns, seq, kind, index)`. `index` is a tenant for
/// arrivals and a lane for completions. Ordered by time, then by
/// insertion sequence — deterministic tie-breaking.
type Event = Reverse<(u64, u64, u8, u32)>;

/// Progress of the job a stream is currently executing.
#[derive(Clone, Copy)]
struct Active {
    /// When the job arrived.
    arrival_ns: u64,
    /// When its first kernel was dispatched.
    start_ns: u64,
    /// Index into the planned-kernel list.
    k: usize,
    /// Launches of kernel `k` already completed.
    rep: u32,
}

/// Internal per-stream state.
struct Tenant {
    name: String,
    arrival: Arrival,
    jobs_total: u32,
    /// Service time of one launch of each planned kernel on this
    /// stream's lane device, nanoseconds.
    svc_ns: Vec<u64>,
    /// Achieved occupancy of each planned kernel (0–1), for the
    /// utilization metric.
    occ: Vec<f64>,
    /// Launch count of each planned kernel.
    counts: Vec<u32>,
    /// One job's service time alone on the *full* device, ns.
    dedicated_job_ns: u64,
    /// Arrival timestamps of jobs waiting to start.
    queued: VecDeque<u64>,
    active: Option<Active>,
    /// A kernel of this stream is in flight.
    running: bool,
    /// When this stream last became runnable (FIFO ordering key).
    ready_since: u64,
    /// Jobs whose arrival event has been scheduled.
    spawned: u32,
    completed: u32,
    busy_ns: u64,
    weighted_busy_ns: f64,
    queue_ns: Vec<u64>,
    service_ns: Vec<u64>,
    latency_ns: Vec<u64>,
}

impl Tenant {
    /// Has a dispatchable kernel right now (not already in flight).
    fn runnable(&self) -> bool {
        !self.running && (self.active.is_some() || !self.queued.is_empty())
    }
}

/// One schedulable device share.
struct Lane {
    /// Tenant whose kernel is in flight, if any.
    current: Option<u32>,
    /// Tenant that last held the lane (context-switch detection).
    last_tenant: Option<u32>,
    busy_ns: u64,
}

/// The multi-tenant simulator. Build with [`Engine::new`], consume
/// with [`Engine::run`].
pub struct Engine {
    policy: SchedPolicy,
    quantum_ns: u64,
    ctx_switch_ns: u64,
    tenants: Vec<Tenant>,
    lanes: Vec<Lane>,
    heap: BinaryHeap<Event>,
    seq: u64,
    now_ns: u64,
    /// Round-robin: tenant currently owning the quantum.
    rr_owner: Option<u32>,
    quantum_left_ns: u64,
    preemptions: u64,
    remaining_jobs: u64,
    makespan_ns: u64,
}

/// Milliseconds → integer nanoseconds, at least 1 (a zero-length
/// kernel would let an event fire "before" its cause under tie-break).
fn ms_to_ns(ms: f64) -> u64 {
    ((ms * 1e6).round() as u64).max(1)
}

fn us_to_ns(us: f64) -> u64 {
    ((us * 1e3).round() as u64).max(1)
}

impl Engine {
    /// Precompute service times and seed the first arrivals.
    ///
    /// Under [`SchedPolicy::SmPartition`] the device is split into
    /// `tenants.len()` equal shares — `sm_count / N` SMs (at least 1)
    /// and a proportional slice of memory bandwidth — and each
    /// stream's kernels are re-timed against its share. The other
    /// policies time every kernel against the full device.
    pub fn new(dev: &DeviceSpec, specs: &[TenantSpec], cfg: SimConfig) -> Self {
        assert!(!specs.is_empty(), "at least one tenant stream required");
        let n = specs.len();
        let partitioned = matches!(cfg.policy, SchedPolicy::SmPartition);
        let lane_count = if partitioned { n } else { 1 };

        let lane_dev = if partitioned {
            let share = (dev.sm_count / n as u32).max(1);
            let mut d = dev.clone();
            d.mem_bandwidth_gbs *= share as f64 / dev.sm_count as f64;
            d.sm_count = share;
            d
        } else {
            dev.clone()
        };

        let mut tenants = Vec::with_capacity(n);
        let mut heap = BinaryHeap::with_capacity(n * 4);
        let mut seq = 0u64;
        let mut remaining_jobs = 0u64;
        for (i, spec) in specs.iter().enumerate() {
            let mut svc_ns = Vec::with_capacity(spec.kernels.len());
            let mut occ = Vec::with_capacity(spec.kernels.len());
            let mut counts = Vec::with_capacity(spec.kernels.len());
            let mut dedicated_job_ns = 0u64;
            for pk in &spec.kernels {
                let shared = time_kernel(&lane_dev, &pk.desc);
                svc_ns.push(ms_to_ns(shared.time_ms));
                occ.push((shared.metrics.achieved_occupancy / 100.0).clamp(0.0, 1.0));
                counts.push(pk.count.max(1));
                let dedicated = time_kernel(dev, &pk.desc);
                dedicated_job_ns += ms_to_ns(dedicated.time_ms) * u64::from(pk.count.max(1));
            }
            let jobs = spec.jobs;
            remaining_jobs += u64::from(jobs);
            tenants.push(Tenant {
                name: spec.name.clone(),
                arrival: spec.arrival,
                jobs_total: jobs,
                svc_ns,
                occ,
                counts,
                dedicated_job_ns,
                queued: VecDeque::with_capacity(jobs as usize),
                active: None,
                running: false,
                ready_since: 0,
                spawned: 0,
                completed: 0,
                busy_ns: 0,
                weighted_busy_ns: 0.0,
                queue_ns: Vec::with_capacity(jobs as usize),
                service_ns: Vec::with_capacity(jobs as usize),
                latency_ns: Vec::with_capacity(jobs as usize),
            });
            if jobs > 0 {
                heap.push(Reverse((0, seq, EV_ARRIVAL, i as u32)));
                seq += 1;
                tenants[i].spawned = 1;
            }
        }

        let mut lanes = Vec::with_capacity(lane_count);
        for _ in 0..lane_count {
            lanes.push(Lane {
                current: None,
                last_tenant: None,
                busy_ns: 0,
            });
        }

        let (quantum_ns, ctx_switch_ns) = match cfg.policy {
            SchedPolicy::RoundRobin { quantum_us } => {
                (us_to_ns(quantum_us), us_to_ns(cfg.ctx_switch_us.max(0.0)))
            }
            _ => (u64::MAX, 0),
        };

        Engine {
            policy: cfg.policy,
            quantum_ns,
            ctx_switch_ns,
            tenants,
            lanes,
            heap,
            seq,
            now_ns: 0,
            rr_owner: None,
            quantum_left_ns: 0,
            preemptions: 0,
            remaining_jobs,
            makespan_ns: 0,
        }
    }

    /// Run to completion and summarize.
    pub fn run(mut self) -> SimReport {
        while self.step() {}
        self.report()
    }

    /// Process one event. Returns `false` when the simulation is over.
    /// Hot path: no allocation (all buffers are sized in [`Engine::new`]).
    fn step(&mut self) -> bool {
        let _span = gcnn_trace::span("mtsim.step");
        let Some(Reverse((t, _, kind, idx))) = self.heap.pop() else {
            return false;
        };
        self.now_ns = t;
        match kind {
            EV_ARRIVAL => self.on_arrival(idx as usize),
            _ => self.on_kernel_done(idx as usize),
        }
        self.dispatch();
        self.remaining_jobs > 0
    }

    fn on_arrival(&mut self, ti: usize) {
        let now = self.now_ns;
        let t = &mut self.tenants[ti];
        if !t.runnable() {
            // Stream was idle: it becomes runnable at this instant.
            t.ready_since = now;
        }
        t.queued.push_back(now);
        // Open arrivals self-schedule the next one; closed-loop streams
        // schedule theirs on job completion.
        if let Arrival::Open { period_us } = t.arrival {
            if t.spawned < t.jobs_total {
                t.spawned += 1;
                let at = now + us_to_ns(period_us);
                self.heap
                    .push(Reverse((at, self.seq, EV_ARRIVAL, ti as u32)));
                self.seq += 1;
            }
        }
    }

    fn on_kernel_done(&mut self, lane_idx: usize) {
        let now = self.now_ns;
        let ti = self.lanes[lane_idx]
            .current
            .take()
            .expect("completion event on an idle lane") as usize;
        self.lanes[lane_idx].last_tenant = Some(ti as u32);
        let t = &mut self.tenants[ti];
        t.running = false;
        let mut a = t.active.expect("running tenant has an active job");
        a.rep += 1;
        if a.rep >= t.counts[a.k] {
            a.k += 1;
            a.rep = 0;
        }
        if a.k >= t.counts.len() {
            // Job complete.
            t.active = None;
            t.completed += 1;
            t.queue_ns.push(a.start_ns - a.arrival_ns);
            t.service_ns.push(now - a.start_ns);
            t.latency_ns.push(now - a.arrival_ns);
            self.remaining_jobs -= 1;
            self.makespan_ns = self.makespan_ns.max(now);
            if matches!(t.arrival, Arrival::ClosedLoop) && t.spawned < t.jobs_total {
                t.spawned += 1;
                self.heap
                    .push(Reverse((now, self.seq, EV_ARRIVAL, ti as u32)));
                self.seq += 1;
            }
        } else {
            t.active = Some(a);
        }
        if self.tenants[ti].runnable() {
            self.tenants[ti].ready_since = now;
        }
    }

    /// Fill every idle lane according to the policy. Hot path: no
    /// allocation.
    fn dispatch(&mut self) {
        let _span = gcnn_trace::span("mtsim.dispatch");
        match self.policy {
            SchedPolicy::SmPartition => {
                for lane_idx in 0..self.lanes.len() {
                    if self.lanes[lane_idx].current.is_none() && self.tenants[lane_idx].runnable() {
                        self.start_kernel(lane_idx, lane_idx, 0);
                    }
                }
            }
            SchedPolicy::Fifo => {
                if self.lanes[0].current.is_some() {
                    return;
                }
                // Earliest-ready stream first; index breaks ties.
                let mut best: Option<(u64, usize)> = None;
                for (i, t) in self.tenants.iter().enumerate() {
                    if t.runnable() {
                        let key = t.ready_since;
                        if best.is_none_or(|(bk, _)| key < bk) {
                            best = Some((key, i));
                        }
                    }
                }
                if let Some((_, ti)) = best {
                    self.start_kernel(0, ti, 0);
                }
            }
            SchedPolicy::RoundRobin { .. } => {
                if self.lanes[0].current.is_some() {
                    return;
                }
                let n = self.tenants.len();
                let owner = self.rr_owner.map(|o| o as usize);
                // Stay with the quantum owner while it has work and
                // budget; otherwise rotate to the next runnable stream.
                if let Some(o) = owner {
                    if self.quantum_left_ns > 0 && self.tenants[o].runnable() {
                        self.start_kernel(0, o, 0);
                        return;
                    }
                }
                let from = owner.map_or(0, |o| o + 1);
                let mut chosen = None;
                for off in 0..n {
                    let cand = (from + off) % n;
                    if self.tenants[cand].runnable() {
                        chosen = Some(cand);
                        break;
                    }
                }
                let Some(ti) = chosen else { return };
                let mut penalty = 0;
                if let Some(o) = owner {
                    if o != ti {
                        // Involuntary if the displaced owner still had
                        // work (its quantum simply expired).
                        if self.tenants[o].runnable() {
                            self.preemptions += 1;
                            gcnn_trace::counter_inc("mtsim.preempt");
                        }
                        penalty = self.ctx_switch_ns;
                    }
                }
                self.rr_owner = Some(ti as u32);
                self.quantum_left_ns = self.quantum_ns;
                self.start_kernel(0, ti, penalty);
            }
        }
    }

    /// Dispatch the next kernel of tenant `ti` on `lane_idx`, delayed
    /// by `penalty_ns` of context-switch cost.
    fn start_kernel(&mut self, lane_idx: usize, ti: usize, penalty_ns: u64) {
        let now = self.now_ns;
        let t = &mut self.tenants[ti];
        if t.active.is_none() {
            let arrival_ns = t
                .queued
                .pop_front()
                .expect("runnable tenant with no active job has a queued one");
            t.active = Some(Active {
                arrival_ns,
                start_ns: now + penalty_ns,
                k: 0,
                rep: 0,
            });
        }
        let a = t.active.expect("just ensured");
        let svc = t.svc_ns[a.k];
        t.running = true;
        t.busy_ns += svc;
        t.weighted_busy_ns += svc as f64 * t.occ[a.k];
        self.lanes[lane_idx].current = Some(ti as u32);
        self.lanes[lane_idx].busy_ns += svc;
        self.quantum_left_ns = self.quantum_left_ns.saturating_sub(svc + penalty_ns);
        let done_at = now + penalty_ns + svc;
        self.heap.push(Reverse((
            done_at,
            self.seq,
            EV_KERNEL_DONE,
            lane_idx as u32,
        )));
        self.seq += 1;
    }

    /// Build the report after the event loop drains.
    fn report(mut self) -> SimReport {
        let makespan_ns = self.makespan_ns.max(1);
        let makespan_s = makespan_ns as f64 * 1e-9;
        let mut streams = Vec::with_capacity(self.tenants.len());
        let mut total_jobs = 0u64;
        for t in &mut self.tenants {
            t.queue_ns.sort_unstable();
            t.service_ns.sort_unstable();
            let latency_mean_ns = if t.latency_ns.is_empty() {
                0.0
            } else {
                t.latency_ns.iter().map(|&v| v as f64).sum::<f64>() / t.latency_ns.len() as f64
            };
            let dedicated_ms = t.dedicated_job_ns as f64 * 1e-6;
            total_jobs += u64::from(t.completed);
            streams.push(StreamReport {
                name: t.name.clone(),
                jobs_completed: t.completed,
                throughput_jobs_per_s: f64::from(t.completed) / makespan_s,
                queue_p50_ms: percentile(&t.queue_ns, 50.0) as f64 * 1e-6,
                queue_p99_ms: percentile(&t.queue_ns, 99.0) as f64 * 1e-6,
                service_p50_ms: percentile(&t.service_ns, 50.0) as f64 * 1e-6,
                service_p99_ms: percentile(&t.service_ns, 99.0) as f64 * 1e-6,
                latency_mean_ms: latency_mean_ns * 1e-6,
                sm_utilization: t.weighted_busy_ns / makespan_ns as f64,
                dedicated_latency_ms: dedicated_ms,
                slowdown: if dedicated_ms > 0.0 {
                    latency_mean_ns * 1e-6 / dedicated_ms
                } else {
                    1.0
                },
            });
        }
        let lane_busy: u64 = self.lanes.iter().map(|l| l.busy_ns).sum();
        SimReport {
            policy: self.policy.label().to_string(),
            makespan_ms: makespan_ns as f64 * 1e-6,
            aggregate_throughput_jobs_per_s: total_jobs as f64 / makespan_s,
            device_busy_fraction: lane_busy as f64 / (self.lanes.len() as f64 * makespan_ns as f64),
            preemptions: self.preemptions,
            streams,
        }
    }
}

/// Convenience: build and run in one call.
pub fn simulate(dev: &DeviceSpec, specs: &[TenantSpec], cfg: SimConfig) -> SimReport {
    Engine::new(dev, specs, cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::Arrival;
    use gcnn_frameworks::PlannedKernel;
    use gcnn_gpusim::{KernelDesc, LaunchConfig};

    fn big_kernel(name: &str) -> KernelDesc {
        let mut k = KernelDesc::new(name, LaunchConfig::new(4096, 256));
        k.regs_per_thread = 64;
        k.flops = 5_000_000_000;
        k.compute_efficiency = 0.6;
        k
    }

    fn tenant(name: &str, jobs: u32) -> TenantSpec {
        TenantSpec::from_kernels(
            name,
            vec![
                PlannedKernel::once(big_kernel("a")),
                PlannedKernel::times(big_kernel("b"), 2),
            ],
            Arrival::ClosedLoop,
            jobs,
        )
    }

    #[test]
    fn single_tenant_fifo_matches_dedicated() {
        let r = simulate(
            &DeviceSpec::k40c(),
            &[tenant("solo", 4)],
            SimConfig::new(SchedPolicy::Fifo),
        );
        assert_eq!(r.streams[0].jobs_completed, 4);
        assert!((r.streams[0].slowdown - 1.0).abs() < 1e-6, "{r:?}");
        assert!(r.streams[0].queue_p99_ms < 1e-9);
    }

    #[test]
    fn two_tenant_fifo_interference_near_2x() {
        let r = simulate(
            &DeviceSpec::k40c(),
            &[tenant("a", 6), tenant("b", 6)],
            SimConfig::new(SchedPolicy::Fifo),
        );
        for s in &r.streams {
            assert_eq!(s.jobs_completed, 6);
            assert!(s.slowdown >= 1.8, "{s:?}");
            assert!(s.slowdown <= 2.3, "{s:?}");
        }
    }

    #[test]
    fn round_robin_counts_preemptions() {
        let r = simulate(
            &DeviceSpec::k40c(),
            &[tenant("a", 4), tenant("b", 4)],
            SimConfig::new(SchedPolicy::RoundRobin { quantum_us: 50.0 }),
        );
        assert!(r.preemptions > 0, "{r:?}");
        assert_eq!(r.streams[0].jobs_completed, 4);
        assert_eq!(r.streams[1].jobs_completed, 4);
    }

    #[test]
    fn partition_runs_streams_concurrently() {
        let r = simulate(
            &DeviceSpec::k40c(),
            &[tenant("a", 4), tenant("b", 4)],
            SimConfig::new(SchedPolicy::SmPartition),
        );
        assert_eq!(r.preemptions, 0);
        // Concurrent lanes: makespan well under the serialized sum.
        let serial_ms: f64 = r
            .streams
            .iter()
            .map(|s| s.latency_mean_ms * f64::from(s.jobs_completed))
            .sum();
        assert!(r.makespan_ms < 0.9 * serial_ms, "{r:?}");
    }

    #[test]
    fn determinism_same_input_same_report() {
        let specs = [tenant("a", 5), tenant("b", 3)];
        let cfg = SimConfig::new(SchedPolicy::RoundRobin { quantum_us: 100.0 });
        let r1 = simulate(&DeviceSpec::k40c(), &specs, cfg);
        let r2 = simulate(&DeviceSpec::k40c(), &specs, cfg);
        assert_eq!(r1, r2);
    }

    #[test]
    fn open_arrivals_queue_when_overloaded() {
        // Period far below the job service time: the queue grows and
        // p99 queueing dwarfs p50 service.
        let mut spec = tenant("open", 8);
        spec.arrival = Arrival::Open { period_us: 1.0 };
        let r = simulate(
            &DeviceSpec::k40c(),
            &[spec],
            SimConfig::new(SchedPolicy::Fifo),
        );
        assert_eq!(r.streams[0].jobs_completed, 8);
        assert!(
            r.streams[0].queue_p99_ms > r.streams[0].service_p50_ms,
            "{r:?}"
        );
    }

    #[test]
    fn conservation_all_submitted_jobs_complete() {
        let r = simulate(
            &DeviceSpec::k40c(),
            &[tenant("a", 7), tenant("b", 2), tenant("c", 5)],
            SimConfig::new(SchedPolicy::Fifo),
        );
        let total: u32 = r.streams.iter().map(|s| s.jobs_completed).sum();
        assert_eq!(total, 14);
        assert!(r.device_busy_fraction > 0.9, "{r:?}");
    }
}
