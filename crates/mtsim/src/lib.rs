//! # gcnn-mtsim
//!
//! A discrete-event multi-tenant GPU simulator: N client streams —
//! each replaying the kernel schedule of a [`gcnn_frameworks`]
//! execution plan — time-share one simulated device under a pluggable
//! scheduling policy.
//!
//! The paper measures frameworks *alone* on a dedicated K40c; real
//! deployments co-locate training and inference streams on shared
//! devices. This crate extends the analytical machinery of
//! [`gcnn_gpusim`] to that regime and answers scheduling questions the
//! paper's single-tenant methodology cannot: what latency does a
//! tenant see under contention, and which sharing discipline wins for
//! a given kernel population?
//!
//! * [`stream`] — tenant specs: a job (one plan iteration's kernel
//!   sequence) plus an arrival process (closed-loop or open/periodic).
//! * [`policy`] — [`SchedPolicy::Fifo`] (stream-interleaved, kernel
//!   granularity), [`SchedPolicy::RoundRobin`] (service-time quantum +
//!   context-switch penalty) and [`SchedPolicy::SmPartition`]
//!   (MPS-style spatial shares re-timed via the occupancy model).
//! * [`engine`] — the integer-nanosecond event loop. Kernels are
//!   non-preemptible (pre-Pascal), so all decisions happen at kernel
//!   boundaries; per-kernel service times are precomputed with
//!   [`gcnn_gpusim::timing::time_kernel`] and the loop itself is
//!   allocation-free and bit-for-bit deterministic.
//! * [`metrics`] — per-stream achieved throughput, p50/p99 queueing
//!   and service latency, occupancy-weighted SM utilization, and the
//!   interference slowdown against a dedicated-device baseline.
//!
//! The headline phenomenon the model reproduces: *occupancy-limited*
//! kernels (small grids that cannot fill 15 SMs) lose nothing when
//! confined to an SM partition, so spatial sharing beats time slicing
//! on aggregate throughput exactly where the paper's occupancy chapter
//! predicts — while large-grid kernels prefer the full device and
//! time slicing. See DESIGN.md §9.

#![forbid(unsafe_code)]

pub mod engine;
pub mod metrics;
pub mod policy;
pub mod stream;

pub use engine::{simulate, Engine};
pub use metrics::{SimReport, StreamReport};
pub use policy::{SchedPolicy, SimConfig};
pub use stream::{Arrival, TenantSpec};
