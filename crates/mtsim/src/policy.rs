//! Scheduling policies for the shared device.
//!
//! Pre-Pascal GPUs cannot preempt a running kernel, so every policy
//! here makes decisions at *kernel boundaries* — the quantum of a
//! time-slicing scheduler is therefore a service-time budget, not a
//! hardware timer.

use serde::{Deserialize, Serialize};

/// How the simulated device is shared between tenant streams.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// One queue, earliest-ready stream first. Kernels from different
    /// streams interleave at kernel granularity with no switch cost —
    /// the behaviour of concurrent CUDA streams serializing onto one
    /// compute engine.
    Fifo,
    /// Round-robin time slicing: the device stays with one stream until
    /// `quantum_us` of service time is consumed (or the stream runs
    /// dry), then rotates, paying the engine's context-switch penalty.
    /// Models process-level time-sharing without MPS.
    RoundRobin {
        /// Service-time budget per turn, microseconds.
        quantum_us: f64,
    },
    /// Static SM partitioning: each of the N streams owns
    /// `sm_count / N` SMs (and a proportional slice of memory
    /// bandwidth) and runs concurrently with the others. Models
    /// MPS-style spatial sharing; kernel times are recomputed against
    /// the smaller partition via the occupancy model.
    SmPartition,
}

impl SchedPolicy {
    /// Short stable label for reports and bench JSON.
    pub fn label(&self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::RoundRobin { .. } => "rr",
            SchedPolicy::SmPartition => "partition",
        }
    }
}

/// Engine-level knobs shared by all policies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The scheduling policy.
    pub policy: SchedPolicy,
    /// Cost of switching the device between streams (pipeline drain +
    /// context restore), microseconds. Charged by [`SchedPolicy::RoundRobin`]
    /// on every involuntary rotation; FIFO stream interleaving and SM
    /// partitioning are free by construction.
    pub ctx_switch_us: f64,
}

impl SimConfig {
    /// A config with the default 25 µs context-switch penalty
    /// (same order as the K40c's kernel launch overhead ×5, the cost
    /// of a full pipeline drain on a pre-emption-free part).
    pub fn new(policy: SchedPolicy) -> Self {
        SimConfig {
            policy,
            ctx_switch_us: 25.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(SchedPolicy::Fifo.label(), "fifo");
        assert_eq!(SchedPolicy::RoundRobin { quantum_us: 100.0 }.label(), "rr");
        assert_eq!(SchedPolicy::SmPartition.label(), "partition");
    }

    #[test]
    fn default_config_charges_context_switches() {
        let cfg = SimConfig::new(SchedPolicy::Fifo);
        assert!(cfg.ctx_switch_us > 0.0);
    }
}
