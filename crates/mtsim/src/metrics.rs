//! Per-stream and whole-simulation reports.

use serde::{Deserialize, Serialize};

/// Outcome of one stream's jobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    /// Stream name (from the [`crate::TenantSpec`]).
    pub name: String,
    /// Jobs that ran to completion.
    pub jobs_completed: u32,
    /// Completed jobs per second of makespan.
    pub throughput_jobs_per_s: f64,
    /// Median time a job waited between arrival and its first kernel
    /// dispatch, milliseconds.
    pub queue_p50_ms: f64,
    /// 99th-percentile queueing time, milliseconds.
    pub queue_p99_ms: f64,
    /// Median time from first dispatch to last kernel completion,
    /// milliseconds.
    pub service_p50_ms: f64,
    /// 99th-percentile service time, milliseconds.
    pub service_p99_ms: f64,
    /// Mean end-to-end job latency (arrival → completion), ms.
    pub latency_mean_ms: f64,
    /// Occupancy-weighted fraction of the makespan this stream kept its
    /// assigned SMs busy: Σ(kernel time × achieved occupancy) over
    /// makespan. Under SM partitioning the denominator is the stream's
    /// partition, not the whole device.
    pub sm_utilization: f64,
    /// Job latency this stream would see alone on the full device, ms
    /// (service only — no queueing by construction).
    pub dedicated_latency_ms: f64,
    /// Interference slowdown: mean shared latency over dedicated
    /// latency. 1.0 = no interference.
    pub slowdown: f64,
}

/// Outcome of a whole multi-tenant simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Policy label the run used (`"fifo"`, `"rr"`, `"partition"`).
    pub policy: String,
    /// Wall-clock span from t=0 to the last job completion, ms.
    pub makespan_ms: f64,
    /// Total completed jobs per second of makespan, all streams.
    pub aggregate_throughput_jobs_per_s: f64,
    /// Fraction of (lanes × makespan) the device spent executing
    /// kernels (context-switch penalties count as idle).
    pub device_busy_fraction: f64,
    /// Involuntary stream switches charged with the context-switch
    /// penalty (round-robin quantum expiries).
    pub preemptions: u64,
    /// Per-stream outcomes, in tenant submission order.
    pub streams: Vec<StreamReport>,
}

impl SimReport {
    /// The stream report for `name`, if present.
    pub fn stream(&self, name: &str) -> Option<&StreamReport> {
        self.streams.iter().find(|s| s.name == name)
    }
}

/// Percentile of a sorted ascending sample set (nearest-rank), in the
/// samples' unit. Empty input returns 0.
pub(crate) fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 50.0), 50);
        assert_eq!(percentile(&s, 99.0), 99);
        assert_eq!(percentile(&s, 100.0), 100);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[], 99.0), 0);
    }
}
