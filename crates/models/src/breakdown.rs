//! Fig. 2: per-layer-type runtime breakdown of real CNN models.
//!
//! Paper §IV-A: *"We break down four popular real-life CNN models […]
//! to collect the runtime of each layer and identify the hotspot layers
//! for each model. The runtime we collected is the average runtime of
//! each layer for 10 training iterations. Each training iteration
//! includes one forward propagation and one backward propagation."*

use crate::layer::{walk, InstanceKind, LayerInstance, ModelSpec};
use gcnn_frameworks::common::{gemm_kernel, GemmKernelSpec};
use gcnn_frameworks::ConvImplementation;
use gcnn_gpusim::{AccessPattern, DeviceSpec, KernelDesc, LaunchConfig, ProfilerSession};
use serde::{Deserialize, Serialize};

/// Layer classes of the paper's Fig. 2 legend.
pub type LayerClass = InstanceKind;

/// One layer's modeled time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BreakdownRow {
    /// Qualified layer name.
    pub name: String,
    /// Layer class.
    pub kind: LayerClass,
    /// Modeled time for one training iteration, milliseconds.
    pub time_ms: f64,
}

/// Breakdown of one model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelBreakdown {
    /// Model name.
    pub model: String,
    /// Mini-batch used.
    pub batch: usize,
    /// Per-layer rows.
    pub rows: Vec<BreakdownRow>,
}

impl ModelBreakdown {
    /// Total iteration time.
    pub fn total_ms(&self) -> f64 {
        self.rows.iter().map(|r| r.time_ms).sum()
    }

    /// Fraction of total time spent in a layer class.
    pub fn share(&self, kind: LayerClass) -> f64 {
        let total = self.total_ms();
        if total <= 0.0 {
            return 0.0;
        }
        self.rows
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.time_ms)
            .sum::<f64>()
            / total
    }
}

/// A memory-bound elementwise/copy kernel over `bytes` of traffic.
fn bandwidth_kernel(name: &str, bytes: u64) -> KernelDesc {
    let grid = (bytes / 4).div_ceil(256).max(1).min(u32::MAX as u64) as u32;
    let mut k = KernelDesc::new(name, LaunchConfig::new(grid, 256));
    k.regs_per_thread = 16;
    k.gmem_load_bytes = bytes / 2;
    k.gmem_store_bytes = bytes / 2;
    k.load_pattern = AccessPattern::Coalesced;
    k.store_pattern = AccessPattern::Coalesced;
    k.compute_efficiency = 0.05;
    k.occupancy_needed = 0.5;
    k
}

/// Model one non-conv layer's training-iteration time (fwd + bwd) on the
/// device.
fn time_other_layer(session: &mut ProfilerSession, inst: &LayerInstance) -> f64 {
    let in_bytes = inst.in_elems * 4;
    let out_bytes = inst.out_elems * 4;
    match inst.kind {
        InstanceKind::Pool => {
            // Forward reads the input and writes the output; backward
            // routes gradients back.
            let fwd = bandwidth_kernel("pool_fwd", in_bytes + out_bytes);
            let bwd = bandwidth_kernel("pool_bwd", in_bytes + out_bytes);
            session.launch(&fwd).time_ms + session.launch(&bwd).time_ms
        }
        InstanceKind::Relu => {
            let fwd = bandwidth_kernel("relu_fwd", 2 * out_bytes);
            let bwd = bandwidth_kernel("relu_bwd", 2 * out_bytes);
            session.launch(&fwd).time_ms + session.launch(&bwd).time_ms
        }
        InstanceKind::Concat => {
            let fwd = bandwidth_kernel("concat_fwd", 2 * out_bytes);
            let bwd = bandwidth_kernel("concat_bwd", 2 * out_bytes);
            session.launch(&fwd).time_ms + session.launch(&bwd).time_ms
        }
        InstanceKind::Softmax => {
            let k = bandwidth_kernel("softmax", 4 * out_bytes);
            session.launch(&k).time_ms
        }
        InstanceKind::Fc => {
            let (in_f, out_f) = inst.fc.expect("fc dims");
            let batch = (inst.in_elems / in_f as u64).max(1);
            let spec = GemmKernelSpec {
                regs: 80,
                smem: 8 * 1024,
                block: 256,
                tile_m: 64,
                tile_n: 64,
                compute_efficiency: 0.45,
                occupancy_needed: 0.25,
                load_pattern: AccessPattern::Coalesced,
                lane_utilization: 1.0,
            };
            // Forward, backward-data, backward-weights GEMMs.
            let fwd = gemm_kernel("fc_sgemm", out_f as u64, batch, in_f as u64, spec);
            let bwd_d = gemm_kernel("fc_sgemm", in_f as u64, batch, out_f as u64, spec);
            let bwd_w = gemm_kernel("fc_sgemm", out_f as u64, in_f as u64, batch, spec);
            session.launch(&fwd).time_ms
                + session.launch(&bwd_d).time_ms
                + session.launch(&bwd_w).time_ms
        }
        InstanceKind::Conv => unreachable!("conv layers are timed via the framework plan"),
    }
}

/// Produce the Fig. 2 breakdown of one model under a given convolution
/// implementation (the paper profiles the frameworks' own conv layers;
/// cuDNN-in-Caffe is the representative default in `gcnn-core`).
pub fn model_breakdown(
    model: &ModelSpec,
    batch: usize,
    conv_impl: &dyn ConvImplementation,
    dev: &DeviceSpec,
) -> ModelBreakdown {
    let instances = walk(model, batch);
    let mut session = ProfilerSession::new(dev.clone());
    let mut rows = Vec::with_capacity(instances.len());

    for inst in &instances {
        let time_ms = match inst.kind {
            InstanceKind::Conv => {
                let cfg = inst.conv.expect("conv config");
                let plan = conv_impl.plan(&cfg);
                // Time kernels + visible transfers only; Fig. 2 is a
                // timing figure, not a memory figure.
                let mut t = 0.0;
                for pk in &plan.kernels {
                    for _ in 0..pk.count {
                        t += session.launch(&pk.desc).time_ms;
                    }
                }
                for tr in &plan.transfers {
                    t += tr.visible_time_ms(dev);
                }
                t
            }
            _ => time_other_layer(&mut session, inst),
        };
        rows.push(BreakdownRow {
            name: inst.name.clone(),
            kind: inst.kind,
            time_ms,
        });
    }

    ModelBreakdown {
        model: model.name.clone(),
        batch,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use gcnn_frameworks::cudnn::CuDnn;

    fn breakdown_of(model: ModelSpec) -> ModelBreakdown {
        model_breakdown(&model, 32, &CuDnn, &DeviceSpec::k40c())
    }

    #[test]
    fn conv_dominates_alexnet() {
        // Paper Fig. 2: conv ≈ 94 % for AlexNet.
        let b = breakdown_of(zoo::alexnet());
        let share = b.share(InstanceKind::Conv);
        assert!((0.80..=0.99).contains(&share), "conv share {share}");
    }

    #[test]
    fn conv_dominates_all_four_models() {
        // Paper Fig. 2: conv = 86–94 % across GoogLeNet, VGG, OverFeat,
        // AlexNet.
        for model in zoo::all_models() {
            let b = breakdown_of(model);
            let share = b.share(InstanceKind::Conv);
            assert!(share > 0.75, "{}: conv share {share} too low", b.model);
            assert!(
                share < 0.99,
                "{}: conv share {share} suspiciously high",
                b.model
            );
        }
    }

    #[test]
    fn fc_visible_but_minor_in_vgg() {
        let b = breakdown_of(zoo::vgg16());
        let fc = b.share(InstanceKind::Fc);
        assert!(fc > 0.0 && fc < 0.15, "fc share {fc}");
    }

    #[test]
    fn googlenet_has_concat_time() {
        let b = breakdown_of(zoo::googlenet());
        assert!(b.share(InstanceKind::Concat) > 0.0);
    }

    #[test]
    fn totals_are_positive_and_rows_complete() {
        let b = breakdown_of(zoo::alexnet());
        assert!(b.total_ms() > 0.0);
        assert_eq!(b.rows.len(), crate::layer::walk(&zoo::alexnet(), 32).len());
    }
}
