//! The model zoo: the four Fig. 2 architectures plus LeNet-5.

use crate::layer::{LayerSpec, ModelSpec, NamedLayer};

fn conv(name: &str, out: usize, kernel: usize, stride: usize, pad: usize) -> NamedLayer {
    NamedLayer::new(
        name,
        LayerSpec::Conv {
            out,
            kernel,
            stride,
            pad,
        },
    )
}

fn relu(name: &str) -> NamedLayer {
    NamedLayer::new(name, LayerSpec::Relu)
}

fn maxpool(name: &str, window: usize, stride: usize, pad: usize) -> NamedLayer {
    NamedLayer::new(
        name,
        LayerSpec::MaxPool {
            window,
            stride,
            pad,
        },
    )
}

fn avgpool(name: &str, window: usize, stride: usize) -> NamedLayer {
    NamedLayer::new(
        name,
        LayerSpec::AvgPool {
            window,
            stride,
            pad: 0,
        },
    )
}

fn fc(name: &str, out: usize) -> NamedLayer {
    NamedLayer::new(name, LayerSpec::Fc { out })
}

/// LeNet-5 (paper Fig. 1): two conv+pool stages and two FC stages over
/// 32×32 grayscale digits. ReLU replaces the original tanh, as modern
/// reimplementations do.
pub fn lenet5() -> ModelSpec {
    ModelSpec {
        name: "LeNet-5".into(),
        input_channels: 1,
        input_size: 32,
        layers: vec![
            conv("conv1", 6, 5, 1, 0),
            relu("relu1"),
            maxpool("pool1", 2, 2, 0),
            conv("conv2", 16, 5, 1, 0),
            relu("relu2"),
            maxpool("pool2", 2, 2, 0),
            fc("fc1", 120),
            relu("relu3"),
            fc("fc2", 84),
            relu("relu4"),
            fc("fc3", 10),
            NamedLayer::new("prob", LayerSpec::Softmax),
        ],
    }
}

/// AlexNet (Krizhevsky et al. 2012), single-tower variant: 5 conv + 3 FC
/// layers — the paper's "8 layers […] more than 60 million parameters".
pub fn alexnet() -> ModelSpec {
    ModelSpec {
        name: "AlexNet".into(),
        input_channels: 3,
        input_size: 227,
        layers: vec![
            conv("conv1", 96, 11, 4, 0),
            relu("relu1"),
            maxpool("pool1", 3, 2, 0),
            conv("conv2", 256, 5, 1, 2),
            relu("relu2"),
            maxpool("pool2", 3, 2, 0),
            conv("conv3", 384, 3, 1, 1),
            relu("relu3"),
            conv("conv4", 384, 3, 1, 1),
            relu("relu4"),
            conv("conv5", 256, 3, 1, 1),
            relu("relu5"),
            maxpool("pool5", 3, 2, 0),
            fc("fc6", 4096),
            relu("relu6"),
            fc("fc7", 4096),
            relu("relu7"),
            fc("fc8", 1000),
            NamedLayer::new("prob", LayerSpec::Softmax),
        ],
    }
}

/// VGG-19 (Simonyan & Zisserman): the paper's "19 layers (16
/// convolutional layers and 3 fully-connected layers), over 144 million
/// parameters".
pub fn vgg16() -> ModelSpec {
    let mut layers = Vec::new();
    let blocks: [(usize, usize, &str); 5] = [
        (64, 2, "1"),
        (128, 2, "2"),
        (256, 4, "3"),
        (512, 4, "4"),
        (512, 4, "5"),
    ];
    for (width, repeat, tag) in blocks {
        for r in 1..=repeat {
            layers.push(conv(&format!("conv{tag}_{r}"), width, 3, 1, 1));
            layers.push(relu(&format!("relu{tag}_{r}")));
        }
        layers.push(maxpool(&format!("pool{tag}"), 2, 2, 0));
    }
    layers.push(fc("fc6", 4096));
    layers.push(relu("relu6"));
    layers.push(fc("fc7", 4096));
    layers.push(relu("relu7"));
    layers.push(fc("fc8", 1000));
    layers.push(NamedLayer::new("prob", LayerSpec::Softmax));
    ModelSpec {
        name: "VGG".into(),
        input_channels: 3,
        input_size: 224,
        layers,
    }
}

/// OverFeat (fast model, Sermanet et al.): 5 conv + 3 FC over 231×231
/// inputs.
pub fn overfeat() -> ModelSpec {
    ModelSpec {
        name: "OverFeat".into(),
        input_channels: 3,
        input_size: 231,
        layers: vec![
            conv("conv1", 96, 11, 4, 0),
            relu("relu1"),
            maxpool("pool1", 2, 2, 0),
            conv("conv2", 256, 5, 1, 0),
            relu("relu2"),
            maxpool("pool2", 2, 2, 0),
            conv("conv3", 512, 3, 1, 1),
            relu("relu3"),
            conv("conv4", 1024, 3, 1, 1),
            relu("relu4"),
            conv("conv5", 1024, 3, 1, 1),
            relu("relu5"),
            maxpool("pool5", 2, 2, 0),
            fc("fc6", 3072),
            relu("relu6"),
            fc("fc7", 4096),
            relu("relu7"),
            fc("fc8", 1000),
            NamedLayer::new("prob", LayerSpec::Softmax),
        ],
    }
}

/// One Inception module with the GoogLeNet channel table
/// `(1×1, 3×3 reduce, 3×3, 5×5 reduce, 5×5, pool-proj)`.
fn inception(
    name: &str,
    c1: usize,
    c3r: usize,
    c3: usize,
    c5r: usize,
    c5: usize,
    cp: usize,
) -> NamedLayer {
    NamedLayer::new(
        name,
        LayerSpec::Inception {
            branches: vec![
                vec![conv("1x1", c1, 1, 1, 0), relu("relu_1x1")],
                vec![
                    conv("3x3_reduce", c3r, 1, 1, 0),
                    relu("relu_3x3_reduce"),
                    conv("3x3", c3, 3, 1, 1),
                    relu("relu_3x3"),
                ],
                vec![
                    conv("5x5_reduce", c5r, 1, 1, 0),
                    relu("relu_5x5_reduce"),
                    conv("5x5", c5, 5, 1, 2),
                    relu("relu_5x5"),
                ],
                vec![
                    maxpool("pool", 3, 1, 1),
                    conv("pool_proj", cp, 1, 1, 0),
                    relu("relu_pp"),
                ],
            ],
        },
    )
}

/// GoogLeNet (Szegedy et al.): the paper's "22 layers with about 6.8
/// million parameters" — stem, nine Inception modules, average-pool
/// head. Auxiliary classifiers are omitted (inference-time topology).
pub fn googlenet() -> ModelSpec {
    ModelSpec {
        name: "GoogLeNet".into(),
        input_channels: 3,
        input_size: 224,
        layers: vec![
            conv("conv1", 64, 7, 2, 3),
            relu("relu1"),
            maxpool("pool1", 3, 2, 0),
            conv("conv2_reduce", 64, 1, 1, 0),
            relu("relu2r"),
            conv("conv2", 192, 3, 1, 1),
            relu("relu2"),
            maxpool("pool2", 3, 2, 0),
            inception("inception_3a", 64, 96, 128, 16, 32, 32),
            inception("inception_3b", 128, 128, 192, 32, 96, 64),
            maxpool("pool3", 3, 2, 0),
            inception("inception_4a", 192, 96, 208, 16, 48, 64),
            inception("inception_4b", 160, 112, 224, 24, 64, 64),
            inception("inception_4c", 128, 128, 256, 24, 64, 64),
            inception("inception_4d", 112, 144, 288, 32, 64, 64),
            inception("inception_4e", 256, 160, 320, 32, 128, 128),
            maxpool("pool4", 3, 2, 0),
            inception("inception_5a", 256, 160, 320, 32, 128, 128),
            inception("inception_5b", 384, 192, 384, 48, 128, 128),
            avgpool("pool5", 7, 1),
            fc("fc", 1000),
            NamedLayer::new("prob", LayerSpec::Softmax),
        ],
    }
}

/// The four Fig. 2 models, in the paper's plotting order.
pub fn all_models() -> Vec<ModelSpec> {
    vec![googlenet(), vgg16(), overfeat(), alexnet()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{walk, InstanceKind};

    fn count(model: &ModelSpec, kind: InstanceKind) -> usize {
        walk(model, 2).iter().filter(|i| i.kind == kind).count()
    }

    #[test]
    fn alexnet_has_5_conv_3_fc() {
        // The paper: "AlexNet […] has 8 layers (5 convolutional layers
        // and 3 fully-connected layers)".
        let m = alexnet();
        assert_eq!(count(&m, InstanceKind::Conv), 5);
        assert_eq!(count(&m, InstanceKind::Fc), 3);
    }

    #[test]
    fn alexnet_shapes() {
        let inst = walk(&alexnet(), 1);
        let conv1 = inst[0].conv.unwrap();
        assert_eq!(conv1.output(), 55); // (227−11)/4+1
                                        // fc6 consumes 256·6·6 = 9216 features.
        let fc6 = inst.iter().find(|i| i.name == "fc6").unwrap();
        assert_eq!(fc6.fc, Some((9216, 4096)));
    }

    #[test]
    fn vgg_has_16_conv_3_fc() {
        // The paper: "VGGNet has 19 layers (16 convolutional layers and
        // 3 fully-connected layers)".
        let m = vgg16();
        assert_eq!(count(&m, InstanceKind::Conv), 16);
        assert_eq!(count(&m, InstanceKind::Fc), 3);
        // fc6 sees 512·7·7.
        let inst = walk(&m, 1);
        let fc6 = inst.iter().find(|i| i.name == "fc6").unwrap();
        assert_eq!(fc6.fc, Some((512 * 7 * 7, 4096)));
    }

    #[test]
    fn googlenet_has_9_inceptions_57_convs() {
        let m = googlenet();
        // 3 stem convs + 9 modules × 6 convs = 57.
        assert_eq!(count(&m, InstanceKind::Conv), 57);
        assert_eq!(count(&m, InstanceKind::Concat), 9);
        // Final features before FC: 1024 channels at 1×1.
        let inst = walk(&m, 1);
        let fc_layer = inst.iter().find(|i| i.name == "fc").unwrap();
        assert_eq!(fc_layer.fc, Some((1024, 1000)));
    }

    #[test]
    fn googlenet_channel_flow() {
        let inst = walk(&googlenet(), 1);
        // inception_3a output: 64+128+32+32 = 256 channels at 28².
        let concat = inst
            .iter()
            .find(|i| i.name == "inception_3a/concat")
            .unwrap();
        assert_eq!(concat.out_elems, 256 * 28 * 28);
    }

    #[test]
    fn overfeat_shapes() {
        let inst = walk(&overfeat(), 1);
        let conv1 = inst[0].conv.unwrap();
        assert_eq!(conv1.output(), 56); // (231−11)/4+1
        let fc6 = inst.iter().find(|i| i.name == "fc6").unwrap();
        assert_eq!(fc6.fc, Some((1024 * 6 * 6, 3072)));
    }

    #[test]
    fn lenet_shapes() {
        let inst = walk(&lenet5(), 1);
        let fc1 = inst.iter().find(|i| i.name == "fc1").unwrap();
        assert_eq!(fc1.fc, Some((16 * 5 * 5, 120)));
    }

    #[test]
    fn all_models_walk_cleanly_at_batch_128() {
        for m in all_models() {
            let inst = walk(&m, 128);
            assert!(!inst.is_empty(), "{}", m.name);
        }
    }
}
