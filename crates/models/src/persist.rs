//! Weight persistence for [`Network`](crate::Network).
//!
//! A compact little-endian binary format: magic, version, one
//! length-prefixed `f32` blob per parameter tensor (conv filters, FC
//! weights, FC biases, in layer order). Velocities and hyper-parameters
//! are not persisted — a loaded network resumes with fresh optimizer
//! state, like Caffe's `.caffemodel` snapshots.

use std::fmt;

/// Magic bytes at the head of a weight file.
pub const MAGIC: &[u8; 4] = b"GCNN";
/// Current format version.
pub const VERSION: u32 = 1;

/// Errors from [`decode_blobs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Stream ended mid-record.
    Truncated,
    /// Blob count or length mismatched the receiving network.
    ShapeMismatch {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not a gcnn weight file (bad magic)"),
            PersistError::BadVersion(v) => write!(f, "unsupported weight-file version {v}"),
            PersistError::Truncated => write!(f, "weight file truncated"),
            PersistError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Encode parameter blobs into the wire format.
pub fn encode_blobs(blobs: &[&[f32]]) -> Vec<u8> {
    let payload: usize = blobs.iter().map(|b| 4 + 4 * b.len()).sum();
    let mut out = Vec::with_capacity(4 + 4 + 4 + payload);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(blobs.len() as u32).to_le_bytes());
    for blob in blobs {
        out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        for v in *blob {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Decode the wire format back into parameter blobs.
pub fn decode_blobs(bytes: &[u8]) -> Result<Vec<Vec<f32>>, PersistError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], PersistError> {
        if *pos + n > bytes.len() {
            return Err(PersistError::Truncated);
        }
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };

    if take(&mut pos, 4)? != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;

    let mut blobs = Vec::with_capacity(count);
    for _ in 0..count {
        let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        let raw = take(&mut pos, 4 * len)?;
        let blob = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        blobs.push(blob);
    }
    if pos != bytes.len() {
        return Err(PersistError::ShapeMismatch {
            detail: format!("{} trailing bytes", bytes.len() - pos),
        });
    }
    Ok(blobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let a = vec![1.0f32, -2.5, 3.25];
        let b = vec![0.0f32; 7];
        let bytes = encode_blobs(&[&a, &b]);
        let back = decode_blobs(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], a);
        assert_eq!(back[1], b);
    }

    #[test]
    fn empty_blob_list() {
        let bytes = encode_blobs(&[]);
        assert_eq!(decode_blobs(&bytes).unwrap().len(), 0);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode_blobs(&[&[1.0]]);
        bytes[0] = b'X';
        assert_eq!(decode_blobs(&bytes), Err(PersistError::BadMagic));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = encode_blobs(&[&[1.0]]);
        bytes[4] = 9;
        assert!(matches!(
            decode_blobs(&bytes),
            Err(PersistError::BadVersion(9))
        ));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = encode_blobs(&[&[1.0, 2.0, 3.0]]);
        assert_eq!(
            decode_blobs(&bytes[..bytes.len() - 2]),
            Err(PersistError::Truncated)
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = encode_blobs(&[&[1.0]]);
        bytes.push(0);
        assert!(matches!(
            decode_blobs(&bytes),
            Err(PersistError::ShapeMismatch { .. })
        ));
    }
}
