//! # gcnn-models
//!
//! The CNN model zoo of Li et al. (ICPP 2016) and the machinery behind
//! their Fig. 2: per-layer runtime breakdowns of **AlexNet, GoogLeNet,
//! VGG and OverFeat** ("Convolutional layer consumes the bulk of total
//! runtime — 86 %, 89 %, 90 % and 94 %"), plus **LeNet-5** (the paper's
//! §II-A architecture walkthrough, Fig. 1) wired into a real,
//! CPU-executable training loop on synthetic data.
//!
//! * [`layer`] — declarative layer specs and the shape walker that
//!   instantiates them (including GoogLeNet's Inception branches).
//! * [`zoo`] — the five architectures.
//! * [`breakdown`] — Fig. 2: time every layer on the GPU model and
//!   aggregate by layer type.
//! * [`network`] — an executable sequential CNN (real numerics from
//!   `gcnn-conv`) with SGD training.
//! * [`data`] — deterministic synthetic datasets.

#![forbid(unsafe_code)]

pub mod breakdown;
pub mod data;
pub mod layer;
pub mod network;
pub mod persist;
pub mod zoo;

pub use breakdown::{model_breakdown, BreakdownRow, LayerClass, ModelBreakdown};
pub use layer::{LayerInstance, LayerSpec, ModelSpec, NamedLayer};
pub use network::{Network, TrainReport, TunedLayer};
pub use zoo::{alexnet, all_models, googlenet, lenet5, overfeat, vgg16};
